/**
 * @file
 * campaign_client — CLI for the campaign daemon (docs/SERVICE.md).
 *
 *   campaign_client submit SPEC.json [-o key.path=value]... [--detach]
 *   campaign_client results ID [--from N]
 *   campaign_client status
 *   campaign_client cancel ID
 *   campaign_client ping | shutdown
 *
 * submit loads the spec file (resolving includes), applies -o
 * overrides, submits, and tails the result stream to stdout — one
 * JSON row per line, exactly the bytes the daemon produced, so two
 * transcripts of the same spec diff clean. --detach prints the job id
 * and exits instead. All commands honor --socket PATH / --tcp PORT
 * (default $HIRISE_SVC_SOCKET, else /tmp/hirise_served.sock).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "svc/campaign_spec.hh"
#include "svc/client.hh"

namespace {

using hirise::svc::Client;
using hirise::svc::Json;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: campaign_client [--socket PATH | --tcp PORT] CMD\n"
        "  submit SPEC.json [-o key.path=value]... [--detach]\n"
        "  results ID [--from N]\n"
        "  status\n"
        "  cancel ID\n"
        "  ping\n"
        "  shutdown\n");
    return 2;
}

std::unique_ptr<Client>
connect(const std::string &socketPath, int tcpPort)
{
    std::string err;
    std::unique_ptr<Client> c =
        tcpPort > 0 ? Client::connectTcp(tcpPort, &err)
                    : Client::connectUnix(socketPath, &err);
    if (!c)
        std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
    return c;
}

/** Print row frames to stdout verbatim until the done frame; returns
 *  0 when the job finished, 3 when it was cancelled or failed. */
int
tailStream(Client &c)
{
    std::string payload, err;
    while (true) {
        if (!c.recvRaw(&payload, &err)) {
            std::fprintf(stderr, "campaign_client: %s\n",
                         err.c_str());
            return 1;
        }
        Json frame;
        // Rows pass through untouched; only control frames (done /
        // error) are interpreted, and they always parse.
        if (payload.rfind("{\"done\":", 0) == 0 &&
            Json::parse(payload, &frame) &&
            frame["done"].asBool()) {
            const std::string &state = frame["state"].asString();
            std::fprintf(
                stderr,
                "campaign_client: %s rows=%.0f hits=%.0f "
                "misses=%.0f hit_rate=%.1f%%\n",
                state.c_str(), frame["rows"].asNumber(),
                frame["cache_hits"].asNumber(),
                frame["cache_misses"].asNumber(),
                100.0 * frame["hit_rate"].asNumber());
            return state == "done" ? 0 : 3;
        }
        std::fwrite(payload.data(), 1, payload.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }
}

int
cmdSubmit(Client &c, const std::string &file,
          const std::vector<std::string> &overrides, bool detach)
{
    Json doc;
    std::string err;
    if (!hirise::svc::loadSpecFile(file, &doc, &err)) {
        std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
        return 1;
    }
    for (const std::string &o : overrides) {
        if (!hirise::svc::applySpecOverride(&doc, o, &err)) {
            std::fprintf(stderr, "campaign_client: -o %s: %s\n",
                         o.c_str(), err.c_str());
            return 1;
        }
    }
    // Validate locally first: a clean error beats a daemon round
    // trip, and the daemon applies the identical rules.
    hirise::svc::CampaignSpec spec;
    if (!hirise::svc::parseCampaignSpec(doc, &spec, &err)) {
        std::fprintf(stderr, "campaign_client: %s: %s\n",
                     file.c_str(), err.c_str());
        return 1;
    }

    Json req = Json::object();
    req.set("op", "submit");
    req.set("spec", doc);
    req.set("stream", !detach);
    Json resp;
    if (!c.request(req, &resp, &err)) {
        std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
        return 1;
    }
    if (!resp["ok"].asBool()) {
        std::fprintf(stderr, "campaign_client: %s\n",
                     resp["error"].asString().c_str());
        return 1;
    }
    std::fprintf(stderr, "campaign_client: job %s (%.0f points)\n",
                 resp["id"].asString().c_str(),
                 resp["points"].asNumber());
    if (detach) {
        std::printf("%s\n", resp["id"].asString().c_str());
        return 0;
    }
    return tailStream(c);
}

int
cmdResults(Client &c, const std::string &id, double from)
{
    Json req = Json::object();
    req.set("op", "results");
    req.set("id", id);
    if (from > 0)
        req.set("from", from);
    Json resp;
    std::string err;
    if (!c.request(req, &resp, &err)) {
        std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
        return 1;
    }
    if (!resp["ok"].asBool()) {
        std::fprintf(stderr, "campaign_client: %s\n",
                     resp["error"].asString().c_str());
        return 1;
    }
    return tailStream(c);
}

int
cmdStatus(Client &c)
{
    Json req = Json::object();
    req.set("op", "status");
    Json resp;
    std::string err;
    if (!c.request(req, &resp, &err)) {
        std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
        return 1;
    }
    const Json &jobs = resp["jobs"];
    std::printf("%-22s %-10s %9s %9s %9s  %s\n", "ID", "STATE",
                "DONE", "POINTS", "HIT%", "NAME");
    for (const Json &j : jobs.items()) {
        std::string hit = "-";
        if (j.has("hit_rate")) {
            char b[16];
            std::snprintf(b, sizeof(b), "%.1f",
                          100.0 * j["hit_rate"].asNumber());
            hit = b;
        }
        std::printf("%-22s %-10s %9.0f %9.0f %9s  %s\n",
                    j["id"].asString().c_str(),
                    j["state"].asString().c_str(),
                    j["done"].asNumber(), j["points"].asNumber(),
                    hit.c_str(), j["name"].asString().c_str());
    }
    const Json &m = resp["metrics"];
    std::printf("queue=%.0f busy=%d inflight=%.0f cache: "
                "hits=%.0f misses=%.0f disk=%.0f hit_rate=%.1f%% "
                "streamed=%.0fB\n",
                m["queue_depth"].asNumber(),
                m["worker_busy"].asBool() ? 1 : 0,
                m["points_inflight"].asNumber(),
                m["cache_hits"].asNumber(),
                m["cache_misses"].asNumber(),
                m["cache_disk_hits"].asNumber(),
                100.0 * m["cache_hit_rate"].asNumber(),
                m["bytes_streamed"].asNumber());
    return 0;
}

int
cmdSimple(Client &c, const char *op, const std::string &id)
{
    Json req = Json::object();
    req.set("op", op);
    if (!id.empty())
        req.set("id", id);
    Json resp;
    std::string err;
    if (!c.request(req, &resp, &err)) {
        std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
        return 1;
    }
    if (!resp["ok"].asBool()) {
        std::fprintf(stderr, "campaign_client: %s\n",
                     resp["error"].asString().c_str());
        return 1;
    }
    std::printf("%s\n", resp.dump().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *env = std::getenv("HIRISE_SVC_SOCKET");
    std::string socketPath =
        env && *env ? env : "/tmp/hirise_served.sock";
    int tcpPort = 0;

    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--socket" && i + 1 < argc) {
            socketPath = argv[++i];
        } else if (a == "--tcp" && i + 1 < argc) {
            tcpPort = std::atoi(argv[++i]);
        } else {
            args.push_back(a);
        }
    }
    if (args.empty())
        return usage();

    const std::string &cmd = args[0];
    auto client = connect(socketPath, tcpPort);
    if (!client)
        return 1;

    if (cmd == "submit") {
        if (args.size() < 2)
            return usage();
        std::string file = args[1];
        std::vector<std::string> overrides;
        bool detach = false;
        for (std::size_t i = 2; i < args.size(); ++i) {
            if (args[i] == "-o" && i + 1 < args.size())
                overrides.push_back(args[++i]);
            else if (args[i] == "--detach")
                detach = true;
            else
                return usage();
        }
        return cmdSubmit(*client, file, overrides, detach);
    }
    if (cmd == "results") {
        if (args.size() < 2)
            return usage();
        double from = 0;
        if (args.size() >= 4 && args[2] == "--from")
            from = std::atof(args[3].c_str());
        return cmdResults(*client, args[1], from);
    }
    if (cmd == "status")
        return cmdStatus(*client);
    if (cmd == "cancel")
        return args.size() < 2 ? usage()
                               : cmdSimple(*client, "cancel", args[1]);
    if (cmd == "ping")
        return cmdSimple(*client, "ping", "");
    if (cmd == "shutdown")
        return cmdSimple(*client, "shutdown", "");
    return usage();
}
