/**
 * @file
 * Config-fuzzing CLI for the simulation core: random SwitchSpec x
 * traffic x seed x fault-set configurations run on the optimized
 * simulator and the naive oracle in lockstep. On a mismatch the
 * failing configuration is shrunk to a minimal reproducer and printed
 * as a ready-to-paste gtest case; the exit status is nonzero.
 *
 * With --mutate the oracle carries a deliberately seeded bug, proving
 * the harness detects arbiter bugs (pair with --expect-mismatch to
 * invert the exit status for CI).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/fuzz.hh"

using namespace hirise;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --configs N   number of random configs to run (default 200)\n"
        "  --seed S      PRNG seed for config sampling (default 1)\n"
        "  --threads N   worker threads for differential runs\n"
        "                (0 = shared pool default, 1 = serial)\n"
        "  --mutate M    seed an oracle bug: lrg-off-by-one |\n"
        "                clrg-halve-winner | islip-grant-ptr-stuck |\n"
        "                pim-reuse-round-rng | wavefront-stuck-priority |\n"
        "                isolation-threshold-off-by-one\n"
        "  --expect-mismatch  exit 0 iff a mismatch WAS found\n"
        "  --no-shrink   print the raw failing config, do not shrink\n"
        "  --verbose     describe every config as it runs\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    check::FuzzOptions opt;
    bool expect_mismatch = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--configs") {
            opt.configs = std::strtoull(next(), nullptr, 10);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (a == "--threads") {
            opt.threads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--mutate") {
            std::string m = next();
            if (m == "lrg-off-by-one") {
                opt.mutation = check::Mutation::LrgUpdateOffByOne;
            } else if (m == "clrg-halve-winner") {
                opt.mutation = check::Mutation::ClrgHalveWinnerOnly;
            } else if (m == "islip-grant-ptr-stuck") {
                opt.mutation = check::Mutation::IslipGrantPtrStuck;
            } else if (m == "pim-reuse-round-rng") {
                opt.mutation = check::Mutation::PimReuseRoundRng;
            } else if (m == "wavefront-stuck-priority") {
                opt.mutation = check::Mutation::WavefrontStuckPriority;
            } else if (m == "isolation-threshold-off-by-one") {
                opt.mutation =
                    check::Mutation::IsolationThresholdOffByOne;
            } else {
                std::fprintf(stderr, "unknown mutation '%s'\n",
                             m.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (a == "--expect-mismatch") {
            expect_mismatch = true;
        } else if (a == "--no-shrink") {
            opt.shrinkOnFailure = false;
        } else if (a == "--verbose") {
            opt.verbose = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    check::FuzzReport rep = check::runFuzz(opt);

    if (!rep.mismatchFound) {
        std::printf("fuzz_sim: %llu configs clean (seed %llu%s%s)\n",
                    static_cast<unsigned long long>(rep.configsRun),
                    static_cast<unsigned long long>(opt.seed),
                    opt.mutation != check::Mutation::None
                        ? ", mutation "
                        : "",
                    opt.mutation != check::Mutation::None
                        ? check::toString(opt.mutation)
                        : "");
        return expect_mismatch ? 1 : 0;
    }

    std::printf("fuzz_sim: mismatch after %llu config(s)\n",
                static_cast<unsigned long long>(rep.configsRun));
    std::printf("config:  %s\n", check::describe(rep.failing).c_str());
    std::printf("detail:  %s (cycle %llu)\n",
                rep.outcome.detail.c_str(),
                static_cast<unsigned long long>(
                    rep.outcome.mismatchCycle));
    std::printf("--- minimal repro: paste into tests/check_test.cc ---\n"
                "%s"
                "------------------------------------------------------\n",
                rep.repro.c_str());
    return expect_mismatch ? 0 : 1;
}
