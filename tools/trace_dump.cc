/**
 * @file
 * Offline viewer/validator for hirise-trace-v1 JSONL files (written by
 * obs::CycleTracer::exportJsonl or the bench --trace flag).
 *
 *   trace_dump <trace.jsonl>                per-kind summary
 *   trace_dump --validate <trace.jsonl>     strict schema check; exit
 *                                           nonzero on any violation
 *   trace_dump --chrome out.json <t.jsonl>  convert to Chrome
 *                                           trace_event JSON
 */

#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace {

using hirise::obs::Ev;
using hirise::obs::kNumEv;

struct ParsedEvent
{
    std::uint64_t cycle = 0;
    std::uint64_t id = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t tid = 0;
    Ev kind = Ev::Inject;
};

struct ParsedTrace
{
    std::uint64_t headerEvents = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::vector<std::string> names;
    std::vector<ParsedEvent> events;
};

[[noreturn]] void
fail(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fputs("trace_dump: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

bool
extractU64(const std::string &line, const char *key, std::uint64_t *out)
{
    std::string k = std::string("\"") + key + "\":";
    std::size_t pos = line.find(k);
    if (pos == std::string::npos)
        return false;
    pos += k.size();
    char *end = nullptr;
    unsigned long long v = std::strtoull(line.c_str() + pos, &end, 10);
    if (end == line.c_str() + pos)
        return false;
    *out = v;
    return true;
}

/** Read the JSON string starting at line[pos] == '"'; false on bad
 *  escapes or a missing closing quote. Advances @p pos past it. */
bool
readJsonString(const std::string &line, std::size_t *pos,
               std::string *out)
{
    std::size_t i = *pos;
    if (i >= line.size() || line[i] != '"')
        return false;
    ++i;
    out->clear();
    while (i < line.size()) {
        char ch = line[i];
        if (ch == '"') {
            *pos = i + 1;
            return true;
        }
        if (ch == '\\') {
            if (i + 1 >= line.size())
                return false;
            char esc = line[i + 1];
            switch (esc) {
              case '"':
                out->push_back('"');
                break;
              case '\\':
                out->push_back('\\');
                break;
              case 'n':
                out->push_back('\n');
                break;
              case 't':
                out->push_back('\t');
                break;
              case 'u': {
                if (i + 5 >= line.size())
                    return false;
                unsigned code = static_cast<unsigned>(std::strtoul(
                    line.substr(i + 2, 4).c_str(), nullptr, 16));
                out->push_back(static_cast<char>(code & 0x7f));
                i += 4;
                break;
              }
              default:
                return false;
            }
            i += 2;
            continue;
        }
        out->push_back(ch);
        ++i;
    }
    return false;
}

bool
extractStr(const std::string &line, const char *key, std::string *out)
{
    std::string k = std::string("\"") + key + "\":";
    std::size_t pos = line.find(k);
    if (pos == std::string::npos)
        return false;
    pos += k.size();
    return readJsonString(line, &pos, out);
}

void
parseHeader(const std::string &line, int lineno, ParsedTrace *t)
{
    std::string schema;
    if (!extractStr(line, "schema", &schema))
        fail("line %d: header has no \"schema\" field", lineno);
    if (schema != "hirise-trace-v1")
        fail("line %d: unsupported schema '%s'", lineno,
             schema.c_str());
    if (!extractU64(line, "events", &t->headerEvents))
        fail("line %d: header has no \"events\" count", lineno);
    if (!extractU64(line, "recorded", &t->recorded))
        fail("line %d: header has no \"recorded\" count", lineno);
    if (!extractU64(line, "dropped", &t->dropped))
        fail("line %d: header has no \"dropped\" count", lineno);

    std::size_t pos = line.find("\"names\":[");
    if (pos == std::string::npos)
        fail("line %d: header has no \"names\" array", lineno);
    pos += std::strlen("\"names\":[");
    while (pos < line.size() && line[pos] != ']') {
        std::string name;
        if (!readJsonString(line, &pos, &name))
            fail("line %d: malformed \"names\" array", lineno);
        t->names.push_back(std::move(name));
        if (pos < line.size() && line[pos] == ',')
            ++pos;
    }
    if (pos >= line.size())
        fail("line %d: unterminated \"names\" array", lineno);
}

void
parseEvent(const std::string &line, int lineno, ParsedTrace *t)
{
    ParsedEvent e;
    std::string kind;
    std::uint64_t v;
    if (!extractU64(line, "cycle", &v))
        fail("line %d: event has no \"cycle\"", lineno);
    e.cycle = v;
    if (!extractStr(line, "kind", &kind))
        fail("line %d: event has no \"kind\"", lineno);
    if (!hirise::obs::evFromString(kind, &e.kind))
        fail("line %d: unknown event kind '%s'", lineno, kind.c_str());
    if (!extractU64(line, "tid", &v))
        fail("line %d: event has no \"tid\"", lineno);
    e.tid = static_cast<std::uint32_t>(v);
    if (!extractU64(line, "a", &v))
        fail("line %d: event has no \"a\"", lineno);
    e.a = static_cast<std::uint32_t>(v);
    if (!extractU64(line, "b", &v))
        fail("line %d: event has no \"b\"", lineno);
    e.b = static_cast<std::uint32_t>(v);
    if (!extractU64(line, "c", &v))
        fail("line %d: event has no \"c\"", lineno);
    e.c = static_cast<std::uint32_t>(v);
    if (!extractU64(line, "id", &v))
        fail("line %d: event has no \"id\"", lineno);
    e.id = v;
    t->events.push_back(e);
}

ParsedTrace
parseFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fail("cannot open '%s'", path.c_str());
    ParsedTrace t;
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    while (std::getline(f, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (!saw_header) {
            parseHeader(line, lineno, &t);
            saw_header = true;
            continue;
        }
        parseEvent(line, lineno, &t);
    }
    if (!saw_header)
        fail("'%s' is empty: no header line", path.c_str());
    return t;
}

/** Strict checks beyond per-line syntax (the --validate contract). */
void
validate(const ParsedTrace &t)
{
    if (t.events.size() != t.headerEvents)
        fail("header says %" PRIu64 " events but file has %zu",
             t.headerEvents, t.events.size());
    if (t.recorded != t.headerEvents + t.dropped)
        fail("header inconsistent: recorded=%" PRIu64
             " != events=%" PRIu64 " + dropped=%" PRIu64,
             t.recorded, t.headerEvents, t.dropped);
    if (t.events.empty())
        fail("trace has no events (instrumentation never fired?)");
    for (std::size_t i = 0; i < t.events.size(); ++i) {
        const ParsedEvent &e = t.events[i];
        if ((e.kind == Ev::ExpBegin || e.kind == Ev::ExpEnd) &&
            e.a >= t.names.size())
            fail("event %zu: name id %u out of range (%zu names)", i,
                 e.a, t.names.size());
    }
}

void
summarize(const ParsedTrace &t)
{
    std::uint64_t per_kind[kNumEv] = {};
    std::uint64_t cyc_min = ~0ull, cyc_max = 0;
    std::uint64_t sim_events = 0;
    std::uint32_t tid_max = 0;
    for (const ParsedEvent &e : t.events) {
        ++per_kind[static_cast<std::uint32_t>(e.kind)];
        if (e.tid > tid_max)
            tid_max = e.tid;
        if (e.kind == Ev::ExpBegin || e.kind == Ev::ExpEnd)
            continue; // wall-clock stamps, not cycles
        ++sim_events;
        if (e.cycle < cyc_min)
            cyc_min = e.cycle;
        if (e.cycle > cyc_max)
            cyc_max = e.cycle;
    }
    std::printf("%zu events (%" PRIu64 " recorded, %" PRIu64
                " dropped by ring wrap), threads<=%u\n",
                t.events.size(), t.recorded, t.dropped, tid_max + 1);
    if (sim_events)
        std::printf("cycle range: [%" PRIu64 ", %" PRIu64 "]\n",
                    cyc_min, cyc_max);
    for (std::uint32_t k = 0; k < kNumEv; ++k) {
        if (per_kind[k])
            std::printf("  %-14s %" PRIu64 "\n",
                        hirise::obs::toString(static_cast<Ev>(k)),
                        per_kind[k]);
    }
    if (!t.names.empty()) {
        std::printf("experiments:");
        for (const auto &n : t.names)
            std::printf(" %s", n.c_str());
        std::printf("\n");
    }
}

void
writeChromeString(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            std::fputc('\\', f);
        if (static_cast<unsigned char>(ch) >= 0x20)
            std::fputc(ch, f);
    }
    std::fputc('"', f);
}

void
exportChrome(const ParsedTrace &t, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fail("cannot open '%s' for writing", path.c_str());
    std::fputs("{\"traceEvents\":[", f);
    bool first = true;
    for (const ParsedEvent &e : t.events) {
        if (!first)
            std::fputc(',', f);
        first = false;
        if (e.kind == Ev::ExpBegin || e.kind == Ev::ExpEnd) {
            const char *ph = e.kind == Ev::ExpBegin ? "B" : "E";
            std::string name = e.a < t.names.size()
                                   ? t.names[e.a]
                                   : std::string("experiment");
            std::fputs("{\"name\":", f);
            writeChromeString(f, name);
            std::fprintf(f,
                         ",\"ph\":\"%s\",\"ts\":%" PRIu64
                         ",\"pid\":1,\"tid\":%u}",
                         ph, e.cycle, e.tid);
            continue;
        }
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                     "\"ts\":%" PRIu64 ",\"pid\":0,\"tid\":%u,"
                     "\"args\":{\"a\":%u,\"b\":%u,\"c\":%u,"
                     "\"id\":%" PRIu64 "}}",
                     hirise::obs::toString(e.kind), e.cycle, e.tid, e.a,
                     e.b, e.c, e.id);
    }
    std::fputs("]}\n", f);
    if (std::ferror(f))
        fail("I/O error writing '%s'", path.c_str());
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bool do_validate = false;
    std::string chrome_out;
    std::string input;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--validate") == 0) {
            do_validate = true;
        } else if (std::strcmp(argv[i], "--chrome") == 0 &&
                   i + 1 < argc) {
            chrome_out = argv[++i];
        } else if (argv[i][0] == '-') {
            fail("unknown option '%s' (usage: trace_dump [--validate] "
                 "[--chrome <out.json>] <trace.jsonl>)",
                 argv[i]);
        } else if (input.empty()) {
            input = argv[i];
        } else {
            fail("more than one input file given");
        }
    }
    if (input.empty())
        fail("usage: trace_dump [--validate] [--chrome <out.json>] "
             "<trace.jsonl>");

    ParsedTrace t = parseFile(input);
    if (do_validate) {
        validate(t);
        std::printf("OK: %zu events, %" PRIu64 " dropped, %zu "
                    "experiment name(s)\n",
                    t.events.size(), t.dropped, t.names.size());
    }
    if (!chrome_out.empty())
        exportChrome(t, chrome_out);
    if (!do_validate && chrome_out.empty())
        summarize(t);
    return 0;
}
