/**
 * @file
 * hirise_served — the persistent campaign daemon (docs/SERVICE.md).
 *
 *   hirise_served [--socket PATH] [--tcp PORT] [--snapshot-dir DIR]
 *                 [--shard N] [--max-queue N] [--replicas N]
 *
 * Listens on a unix socket (default $HIRISE_SVC_SOCKET, else
 * /tmp/hirise_served.sock) for framed JSON requests from
 * campaign_client, runs campaigns through the shared thread pool and
 * SimCache (enable the disk tier with HIRISE_SIMCACHE_DIR to survive
 * restarts), and streams results back incrementally. SIGINT/SIGTERM
 * trigger a graceful shutdown: in-flight points drain, queued jobs
 * are cancelled, subscribers get their final frames.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "sim/sweep.hh"
#include "svc/server.hh"

namespace {

// Signal handlers may only touch this fd (write() is
// async-signal-safe; Server::shutdown() is not).
volatile sig_atomic_t g_wake_fd = -1;

void
onSignal(int)
{
    if (g_wake_fd >= 0) {
        char b = 'Q';
        [[maybe_unused]] ssize_t n =
            ::write(static_cast<int>(g_wake_fd), &b, 1);
    }
}

const char *
envOr(const char *name, const char *dflt)
{
    const char *v = std::getenv(name);
    return v && *v ? v : dflt;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket PATH] [--tcp PORT] [--snapshot-dir DIR]\n"
        "          [--shard N] [--max-queue N] [--replicas N]\n"
        "  --socket PATH    unix socket (default $HIRISE_SVC_SOCKET\n"
        "                   or /tmp/hirise_served.sock)\n"
        "  --tcp PORT       also listen on 127.0.0.1:PORT (-1 for an\n"
        "                   ephemeral port, printed on startup)\n"
        "  --snapshot-dir D per-point checkpoint snapshots for specs\n"
        "                   with checkpoint_cycles > 0\n"
        "  --shard N        points per streaming shard\n"
        "                   (default $HIRISE_SVC_SHARD or 2x lanes)\n"
        "  --max-queue N    queued-job cap (default 64)\n"
        "  --replicas N     BatchSim lanes (default $HIRISE_BATCH)\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hirise;

    svc::ServerOptions opt;
    opt.socketPath =
        envOr("HIRISE_SVC_SOCKET", "/tmp/hirise_served.sock");
    if (const char *s = std::getenv("HIRISE_SVC_SHARD"))
        opt.shardPoints = std::strtoul(s, nullptr, 10);

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--socket") {
            opt.socketPath = value("--socket");
        } else if (a == "--tcp") {
            opt.tcpPort = std::atoi(value("--tcp"));
        } else if (a == "--snapshot-dir") {
            opt.snapshotDir = value("--snapshot-dir");
        } else if (a == "--shard") {
            opt.shardPoints =
                std::strtoul(value("--shard"), nullptr, 10);
        } else if (a == "--max-queue") {
            opt.maxQueuedJobs =
                std::strtoul(value("--max-queue"), nullptr, 10);
        } else if (a == "--replicas") {
            sim::setBatchReplicas(static_cast<std::uint32_t>(
                std::strtoul(value("--replicas"), nullptr, 10)));
        } else if (a == "--help" || a == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
            return usage(argv[0]);
        }
    }

    svc::Server server(opt);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "hirise_served: %s\n", err.c_str());
        return 1;
    }

    g_wake_fd = server.wakeFd();
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::printf("hirise_served: listening on %s\n",
                server.socketPath().c_str());
    if (server.port() > 0)
        std::printf("hirise_served: tcp 127.0.0.1:%d\n",
                    server.port());
    if (sim::SimCache::global().diskEnabled() && !opt.cache)
        std::printf("hirise_served: disk cache %s\n",
                    sim::SimCache::global().diskDir().c_str());
    std::fflush(stdout);

    server.run();
    std::printf("hirise_served: drained, exiting\n");
    return 0;
}
