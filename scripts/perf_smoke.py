#!/usr/bin/env python3
"""Perf smoke check: compare a fresh google-benchmark JSON run against
the committed baseline (BENCH_microperf.json) and fail on regressions.

For every benchmark name present in both files, the throughput metric
(items_per_second when both report it, else 1/real_time) must not drop
more than --threshold (default 25%) below the baseline. New benchmarks
with no baseline entry are reported and skipped; baseline entries
missing from the fresh run fail, since a silently dropped benchmark
would otherwise hide a regression forever.

Host-context guard: a baseline captured on a different machine is not
a meaningful throughput reference, so when the recorded context
differs from the fresh run on num_cpus, mhz_per_cpu, or the dispatched
SIMD tier (hirise_simd_tier), regressions are downgraded to warnings
and the differing context fields are printed as a delta table.
--strict restores hard failure regardless of context (for CI jobs that
pin the runner). Missing benchmarks always fail: dropping a benchmark
is a suite change, not a host effect. A library_build_type mismatch
between the two runs is always a hard error, never a warning: debug
vs release timing loops are not the same experiment on any host.

Usage:
  scripts/perf_smoke.py <baseline.json> <fresh.json>
      [--threshold 0.25] [--filter SUBSTRING] [--strict]
"""

import argparse
import json
import sys

# Context fields that make throughput numbers comparable. A mismatch
# in any of them means the baseline was captured on effectively a
# different machine.
HOST_CONTEXT_KEYS = ("num_cpus", "mhz_per_cpu", "hirise_simd_tier")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return doc.get("context", {}), out


def metric(entry):
    """Throughput-style metric: higher is better."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"]), "items/s"
    return 1.0 / float(entry["real_time"]), "1/real_time"


def context_deltas(base_ctx, fresh_ctx):
    """Host-context fields that differ between the two runs."""
    deltas = []
    for key in HOST_CONTEXT_KEYS:
        b, f = base_ctx.get(key), fresh_ctx.get(key)
        if b != f:
            deltas.append((key, b, f))
    return deltas


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max fractional drop vs baseline (default .25)")
    ap.add_argument("--filter", default="",
                    help="only compare benchmarks containing SUBSTRING")
    ap.add_argument("--strict", action="store_true",
                    help="fail on regressions even when the baseline "
                         "host context differs from this machine")
    args = ap.parse_args()

    base_ctx, base = load(args.baseline)
    fresh_ctx, fresh = load(args.fresh)
    b_lib = base_ctx.get("library_build_type")
    f_lib = fresh_ctx.get("library_build_type")
    if b_lib != f_lib:
        # Not part of the host-context downgrade: a debug timing loop
        # vs a release one changes the measurement itself, so the
        # comparison is meaningless rather than merely noisy.
        sys.exit(f"library_build_type mismatch: baseline "
                 f"'{b_lib}' vs fresh '{f_lib}' — re-capture the "
                 "baseline with a matching build (hard error; "
                 "--strict not required)")
    if args.filter:
        base = {k: v for k, v in base.items() if args.filter in k}
        fresh = {k: v for k, v in fresh.items() if args.filter in k}
    if not base:
        sys.exit("no baseline benchmarks matched; nothing to compare")

    deltas = context_deltas(base_ctx, fresh_ctx)
    downgrade = bool(deltas) and not args.strict
    if deltas:
        kw = max(len(k) for k, _, _ in deltas) + 2
        print("host context differs from baseline:")
        print(f"  {'field':<{kw}}{'baseline':>14}{'fresh':>14}")
        for key, b, f in deltas:
            print(f"  {key:<{kw}}{str(b):>14}{str(f):>14}")
        if downgrade:
            print("  -> regressions reported as warnings only "
                  "(pass --strict to enforce)\n")
        else:
            print("  -> --strict: regressions still enforced\n")

    width = max(len(n) for n in base) + 2
    print(f"{'benchmark':<{width}}{'baseline':>14}{'fresh':>14}"
          f"{'delta':>9}  status")
    failures = []
    warnings = []
    for name in sorted(base):
        if name not in fresh:
            print(f"{name:<{width}}{'-':>14}{'-':>14}{'-':>9}  MISSING")
            failures.append(f"{name}: present in baseline but not in "
                            "the fresh run")
            continue
        b, _ = metric(base[name])
        f, unit = metric(fresh[name])
        delta = f / b - 1.0
        bad = delta < -args.threshold
        status = "ok"
        if bad:
            status = "WARN" if downgrade else "FAIL"
        print(f"{name:<{width}}{b:>14.4g}{f:>14.4g}"
              f"{delta * 100:>8.1f}%  {status} ({unit})")
        if bad:
            msg = (f"{name}: {f:.4g} vs baseline {b:.4g} "
                   f"({delta * 100:+.1f}% < -{args.threshold * 100:.0f}%)")
            (warnings if downgrade else failures).append(msg)
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<{width}}{'-':>14}{metric(fresh[name])[0]:>14.4g}"
              f"{'-':>9}  new (no baseline)")

    if warnings:
        print("\nperf smoke WARNINGS (baseline host differs; "
              "not failing):", file=sys.stderr)
        for w in warnings:
            print(f"  {w}", file=sys.stderr)
    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
