#!/usr/bin/env python3
"""Perf smoke check: compare a fresh google-benchmark JSON run against
the committed baseline (BENCH_microperf.json) and fail on regressions.

For every benchmark name present in both files, the throughput metric
(items_per_second when both report it, else 1/real_time) must not drop
more than --threshold (default 25%) below the baseline. New benchmarks
with no baseline entry are reported and skipped; baseline entries
missing from the fresh run fail, since a silently dropped benchmark
would otherwise hide a regression forever.

Usage:
  scripts/perf_smoke.py <baseline.json> <fresh.json>
      [--threshold 0.25] [--filter SUBSTRING]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def metric(entry):
    """Throughput-style metric: higher is better."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"]), "items/s"
    return 1.0 / float(entry["real_time"]), "1/real_time"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max fractional drop vs baseline (default .25)")
    ap.add_argument("--filter", default="",
                    help="only compare benchmarks containing SUBSTRING")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    if args.filter:
        base = {k: v for k, v in base.items() if args.filter in k}
        fresh = {k: v for k, v in fresh.items() if args.filter in k}
    if not base:
        sys.exit("no baseline benchmarks matched; nothing to compare")

    width = max(len(n) for n in base) + 2
    print(f"{'benchmark':<{width}}{'baseline':>14}{'fresh':>14}"
          f"{'delta':>9}  status")
    failures = []
    for name in sorted(base):
        if name not in fresh:
            print(f"{name:<{width}}{'-':>14}{'-':>14}{'-':>9}  MISSING")
            failures.append(f"{name}: present in baseline but not in "
                            "the fresh run")
            continue
        b, _ = metric(base[name])
        f, unit = metric(fresh[name])
        delta = f / b - 1.0
        bad = delta < -args.threshold
        status = "FAIL" if bad else "ok"
        print(f"{name:<{width}}{b:>14.4g}{f:>14.4g}"
              f"{delta * 100:>8.1f}%  {status} ({unit})")
        if bad:
            failures.append(
                f"{name}: {f:.4g} vs baseline {b:.4g} "
                f"({delta * 100:+.1f}% < -{args.threshold * 100:.0f}%)")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<{width}}{'-':>14}{metric(fresh[name])[0]:>14.4g}"
              f"{'-':>9}  new (no baseline)")

    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
