#!/usr/bin/env python3
"""Render a bench CSV (from `bench_* --csv <dir>`) as an SVG line chart.

Pure standard library, so it works in offline environments:

    ./build/bench/bench_fig10 --csv out/
    scripts/plot_csv.py out/fig10.csv out/fig10.svg

The first CSV column is the x axis; every further numeric column
becomes a series. Non-numeric cells ("sat", "-") break the line, which
matches how the latency figures should render at saturation.
"""

import csv
import sys

WIDTH, HEIGHT = 640, 420
MARGIN = 56
PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
           "#8c564b", "#e377c2", "#7f7f7f"]


def parse(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        sys.exit(f"{path}: need a header and at least one data row")
    header = rows[0]
    series = {name: [] for name in header[1:]}
    xs = []
    for row in rows[1:]:
        if not row or not row[0]:
            continue
        try:
            x = float(row[0])
        except ValueError:
            continue  # summary/ratio rows
        xs.append(x)
        for name, cell in zip(header[1:], row[1:]):
            try:
                series[name].append(float(cell))
            except ValueError:
                series[name].append(None)  # 'sat' / '-' gaps
    return header[0], xs, series


def bounds(xs, series):
    ys = [v for vals in series.values() for v in vals if v is not None]
    if not xs or not ys:
        sys.exit("no numeric data to plot")
    return min(xs), max(xs), min(min(ys), 0.0), max(ys)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <in.csv> <out.svg>")
    xlabel, xs, series = parse(sys.argv[1])
    x0, x1, y0, y1 = bounds(xs, series)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0

    def sx(x):
        return MARGIN + (x - x0) / xr * (WIDTH - 2 * MARGIN)

    def sy(y):
        return HEIGHT - MARGIN - (y - y0) / yr * (HEIGHT - 2 * MARGIN)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="11">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<line x1="{MARGIN}" y1="{HEIGHT - MARGIN}" x2="{WIDTH - MARGIN}" '
        f'y2="{HEIGHT - MARGIN}" stroke="black"/>',
        f'<line x1="{MARGIN}" y1="{MARGIN}" x2="{MARGIN}" '
        f'y2="{HEIGHT - MARGIN}" stroke="black"/>',
    ]
    for i in range(5):
        xv = x0 + xr * i / 4
        yv = y0 + yr * i / 4
        parts.append(
            f'<text x="{sx(xv):.1f}" y="{HEIGHT - MARGIN + 16}" '
            f'text-anchor="middle">{xv:g}</text>')
        parts.append(
            f'<text x="{MARGIN - 6}" y="{sy(yv):.1f}" '
            f'text-anchor="end" dominant-baseline="middle">{yv:g}'
            f'</text>')
    parts.append(
        f'<text x="{WIDTH / 2}" y="{HEIGHT - 12}" '
        f'text-anchor="middle">{xlabel}</text>')

    for idx, (name, vals) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        segment = []
        for x, v in zip(xs, vals):
            if v is None:
                segment = flush(parts, segment, color)
                continue
            segment.append(f"{sx(x):.1f},{sy(v):.1f}")
        flush(parts, segment, color)
        ly = MARGIN + 14 * idx
        parts.append(
            f'<rect x="{WIDTH - MARGIN - 130}" y="{ly - 8}" width="10" '
            f'height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{WIDTH - MARGIN - 116}" y="{ly}">{name}</text>')

    parts.append("</svg>")
    with open(sys.argv[2], "w") as f:
        f.write("\n".join(parts))
    print(f"wrote {sys.argv[2]}")


def flush(parts, segment, color):
    if len(segment) >= 2:
        parts.append(
            f'<polyline points="{" ".join(segment)}" fill="none" '
            f'stroke="{color}" stroke-width="1.6"/>')
    return []


if __name__ == "__main__":
    main()
