#!/usr/bin/env bash
# End-to-end smoke of the campaign daemon (docs/SERVICE.md), as run by
# the CI service-smoke job. Three phases, each asserting one pillar of
# the serving story:
#
#  1. warm-cache resubmission — submit the same spec twice to one
#     daemon; the transcripts must be byte-identical and the second
#     run >=90% cache-served (in practice 100%);
#  2. kill -9 mid-sweep + resume — run a checkpointed sweep, SIGKILL
#     the daemon while rows are streaming, restart it on the same
#     cache + snapshot directories, resubmit, and require the full
#     transcript to be byte-identical to an uninterrupted reference
#     run (completed points come back from the disk SimCache, the
#     in-progress point from its snapshot);
#  3. graceful shutdown — send `shutdown` while a job is streaming;
#     the client must still receive a terminal frame (done or
#     cancelled, never a dropped connection) and the daemon must
#     drain and exit 0.
#
# Usage: [BUILD_DIR=path] scripts/svc_smoke.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
served="$build_dir/tools/hirise_served"
client="$build_dir/tools/campaign_client"
spec="$repo_root/examples/campaigns/quick.json"

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

sock="$work/s.sock"

start_daemon() { # args: cache-dir [extra served flags...]
    local cache="$1"
    shift
    HIRISE_SIMCACHE_DIR="$cache" \
        "$served" --socket "$sock" "$@" >"$work/served.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        kill -0 "$daemon_pid" 2>/dev/null || {
            echo "daemon died at startup:" >&2
            cat "$work/served.log" >&2
            exit 1
        }
        sleep 0.1
    done
    echo "daemon socket never appeared" >&2
    exit 1
}

stop_daemon() {
    [ -n "$daemon_pid" ] || return 0
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
    rm -f "$sock"
}

hit_rate_of() { # args: client stderr file
    sed -n 's/.*hit_rate=\([0-9.]*\)%.*/\1/p' "$1" | tail -1
}

echo "== phase 1: warm-cache resubmission =================================="
start_daemon "$work/cache1"
"$client" --socket "$sock" submit "$spec" \
    >"$work/run1.jsonl" 2>"$work/run1.err"
"$client" --socket "$sock" submit "$spec" \
    >"$work/run2.jsonl" 2>"$work/run2.err"
cat "$work/run1.err" "$work/run2.err"

cmp "$work/run1.jsonl" "$work/run2.jsonl" || {
    echo "FAIL: resubmission transcript differs" >&2
    exit 1
}
[ -s "$work/run1.jsonl" ] || {
    echo "FAIL: empty transcript" >&2
    exit 1
}
rate="$(hit_rate_of "$work/run2.err")"
awk -v r="${rate:-0}" 'BEGIN { exit !(r >= 90.0) }' || {
    echo "FAIL: warm resubmission hit rate ${rate:-none}% < 90%" >&2
    exit 1
}
echo "ok: byte-identical transcripts, warm hit rate ${rate}%"
stop_daemon

echo "== phase 2: kill -9 mid-sweep, restart, resume ======================="
# Checkpointed long-ish sweep: enough cycles per point that the kill
# lands mid-run, small enough to stay CI-friendly.
ckpt_args=(-o checkpoint_cycles=1000 -o sim.measure_cycles=60000
           -o seeds='[1,2,3,4]')

# --shard 1 streams row by row, so the kill below lands with most of
# the sweep still outstanding (sharding never changes the bytes, only
# when they flush — the cmp against this reference proves that too).
start_daemon "$work/cache-ref" --snapshot-dir "$work/snap-ref" --shard 1
"$client" --socket "$sock" submit "$spec" "${ckpt_args[@]}" \
    >"$work/ref.jsonl" 2>"$work/ref.err"
cat "$work/ref.err"
stop_daemon

# Interrupted run: SIGKILL the daemon once the first rows streamed.
start_daemon "$work/cache-kill" --snapshot-dir "$work/snap-kill" --shard 1
"$client" --socket "$sock" submit "$spec" "${ckpt_args[@]}" \
    >"$work/part.jsonl" 2>"$work/part.err" &
client_pid=$!
for _ in $(seq 1 300); do
    [ -s "$work/part.jsonl" ] && break
    sleep 0.1
done
[ -s "$work/part.jsonl" ] || {
    echo "FAIL: no rows streamed before the kill window" >&2
    exit 1
}
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
wait "$client_pid" 2>/dev/null || true # client sees the dead socket
rm -f "$sock"

# Restart on the same cache + snapshot dirs; resubmit; the complete
# transcript must equal the uninterrupted reference byte for byte.
start_daemon "$work/cache-kill" --snapshot-dir "$work/snap-kill"
"$client" --socket "$sock" submit "$spec" "${ckpt_args[@]}" \
    >"$work/resumed.jsonl" 2>"$work/resumed.err"
cat "$work/resumed.err"
cmp "$work/ref.jsonl" "$work/resumed.jsonl" || {
    echo "FAIL: resumed transcript differs from uninterrupted run" >&2
    diff "$work/ref.jsonl" "$work/resumed.jsonl" | head >&2 || true
    exit 1
}
# The restart must have reused prior work (disk cache and/or
# snapshot): the resumed run may not recompute everything cold.
hits="$(sed -n 's/.*hits=\([0-9]*\).*/\1/p' "$work/resumed.err" | tail -1)"
[ "${hits:-0}" -gt 0 ] || {
    echo "FAIL: resumed run had zero cache hits (recomputed cold)" >&2
    exit 1
}
echo "ok: resumed transcript byte-identical, $hits points cache-served"
stop_daemon

echo "== phase 3: graceful shutdown drains ================================="
start_daemon "$work/cache3" --snapshot-dir "$work/snap3"
"$client" --socket "$sock" submit "$spec" "${ckpt_args[@]}" \
    >"$work/drain.jsonl" 2>"$work/drain.err" &
client_pid=$!
sleep 0.5
"$client" --socket "$sock" shutdown
set +e
wait "$client_pid"
client_rc=$?
wait "$daemon_pid"
daemon_rc=$?
set -e
daemon_pid=""
cat "$work/drain.err"
# rc 0 = job finished before the drain, rc 3 = cancelled mid-sweep;
# both mean a terminal frame arrived. rc 1 = connection dropped with
# no terminal frame, which is exactly the bug this phase exists for.
if [ "$client_rc" != 0 ] && [ "$client_rc" != 3 ]; then
    echo "FAIL: client rc=$client_rc (no terminal frame on shutdown)" >&2
    exit 1
fi
if [ "$daemon_rc" != 0 ]; then
    echo "FAIL: daemon exited $daemon_rc after graceful shutdown" >&2
    cat "$work/served.log" >&2
    exit 1
fi
grep -q "drained, exiting" "$work/served.log" || {
    echo "FAIL: daemon log missing drain marker" >&2
    cat "$work/served.log" >&2
    exit 1
}
echo "ok: client got a terminal frame (rc=$client_rc), daemon drained and exited 0"

echo "service smoke: all phases passed"
