#!/usr/bin/env bash
# Build the microbenchmark suites in Release mode and record their
# merged results as BENCH_microperf.json at the repo root, so the
# simulator's own performance trajectory is tracked across PRs
# (compare against the committed file from the previous PR before
# overwriting it).
#
# Two suites are recorded: bench_microperf (per-cycle simulation hot
# path) and bench_campaign (campaign layer: thread pool, sim cache,
# speculative saturation search).
#
# The script refuses to write the output file unless google-benchmark
# reports a release library build — debug numbers committed by
# accident would poison every later comparison. On hosts whose
# *installed* libbenchmark was itself compiled without NDEBUG (the
# check reflects the library, not this repo's flags), set
# HIRISE_BENCH_ALLOW_DEBUG=1 to downgrade the refusal to a warning.
#
# Usage: scripts/run_microbench.sh [extra google-benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-release}"
out_file="$repo_root/BENCH_microperf.json"
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target bench_microperf bench_campaign \
    -j"$(nproc)"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in bench_microperf bench_campaign; do
    "$build_dir/bench/$bench" \
        --benchmark_format=console \
        --benchmark_out="$tmp_dir/$bench.json" \
        --benchmark_out_format=json \
        "$@"
done

python3 - "$tmp_dir" "$out_file" "$git_sha" <<'EOF'
import json
import os
import sys

tmp_dir, out_file, git_sha = sys.argv[1], sys.argv[2], sys.argv[3]
allow_debug = os.environ.get("HIRISE_BENCH_ALLOW_DEBUG") == "1"

merged = None
for name in ("bench_microperf", "bench_campaign"):
    path = f"{tmp_dir}/{name}.json"
    if os.path.getsize(path) == 0:
        sys.exit(f"{name}: empty result file — did a "
                 "--benchmark_filter match nothing in this suite?")
    with open(path) as f:
        doc = json.load(f)
    build_type = doc["context"].get("library_build_type", "")
    if build_type != "release":
        msg = (f"{name}: library_build_type is '{build_type}', "
               "expected 'release'")
        if not allow_debug:
            sys.exit(msg + " — refusing to record debug numbers "
                     "(HIRISE_BENCH_ALLOW_DEBUG=1 overrides)")
        print(f"WARNING: {msg}", file=sys.stderr)
    for bench in doc["benchmarks"]:
        bench["suite"] = name
    if merged is None:
        merged = doc
    else:
        merged["benchmarks"].extend(doc["benchmarks"])

merged["context"]["git_sha"] = git_sha
with open(out_file, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF

echo "wrote $out_file (git_sha=$git_sha)"
