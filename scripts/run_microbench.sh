#!/usr/bin/env bash
# Build bench_microperf in Release mode and record its results as
# BENCH_microperf.json at the repo root, so the simulator's own
# performance trajectory is tracked across PRs (compare against the
# committed file from the previous PR before overwriting it).
#
# Usage: scripts/run_microbench.sh [extra google-benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-release}"
out_file="$repo_root/BENCH_microperf.json"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target bench_microperf -j"$(nproc)"

"$build_dir/bench/bench_microperf" \
    --benchmark_format=json \
    --benchmark_out="$out_file" \
    --benchmark_out_format=json \
    "$@"

echo "wrote $out_file"
