#!/usr/bin/env bash
# Build the microbenchmark suites in Release mode and record their
# merged results as BENCH_microperf.json at the repo root, so the
# simulator's own performance trajectory is tracked across PRs
# (compare against the committed file from the previous PR before
# overwriting it).
#
# Three suites are recorded: bench_microperf (per-cycle simulation
# hot path), bench_campaign (campaign layer: thread pool, sim cache,
# speculative saturation search), and bench_service (campaign daemon:
# socket round-trip serving vs direct in-process evaluation, frame
# codec, row serialization).
#
# The script refuses to write the output file unless the suite itself
# was compiled Release ("hirise_build_type" custom context, from
# bench_gbench_main.cc) — debug numbers committed by accident would
# poison every later comparison. That check has NO override. A second
# check covers the library_build_type field (stamped by
# bench_gbench_main.cc's file reporter from the suite's own NDEBUG;
# on the raw installed libbenchmark it may read "debug" regardless of
# how this repo is compiled). For the TRACKED baseline
# (BENCH_microperf.json at the repo root) that check also has NO
# override: a baseline the whole perf-smoke gate diffs against must
# never carry debug timing loops. For ad-hoc runs redirected elsewhere
# via OUT_FILE=..., HIRISE_BENCH_ALLOW_DEBUG=1 downgrades it to a loud
# warning and stamps a 'library_build_type_waiver' key into the
# recorded JSON context so the output self-documents.
#
# Usage: [OUT_FILE=path] scripts/run_microbench.sh [extra gbench args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-release}"
tracked_file="$repo_root/BENCH_microperf.json"
out_file="${OUT_FILE:-$tracked_file}"
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target bench_microperf bench_campaign \
    bench_service -j"$(nproc)"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in bench_microperf bench_campaign bench_service; do
    "$build_dir/bench/$bench" \
        --benchmark_format=console \
        --benchmark_out="$tmp_dir/$bench.json" \
        --benchmark_out_format=json \
        "$@"
done

python3 - "$tmp_dir" "$out_file" "$git_sha" "$tracked_file" <<'EOF'
import json
import os
import sys

tmp_dir, out_file, git_sha, tracked_file = sys.argv[1:5]
# The tracked baseline never accepts a debug-library waiver; ad-hoc
# outputs (OUT_FILE=... pointing elsewhere) may, under
# HIRISE_BENCH_ALLOW_DEBUG=1.
is_tracked = os.path.realpath(out_file) == os.path.realpath(tracked_file)
allow_debug = (os.environ.get("HIRISE_BENCH_ALLOW_DEBUG") == "1"
               and not is_tracked)

merged = None
debug_library = None
for name in ("bench_microperf", "bench_campaign", "bench_service"):
    path = f"{tmp_dir}/{name}.json"
    if os.path.getsize(path) == 0:
        sys.exit(f"{name}: empty result file — did a "
                 "--benchmark_filter match nothing in this suite?")
    with open(path) as f:
        doc = json.load(f)
    own_build = doc["context"].get("hirise_build_type", "")
    if own_build != "release":
        sys.exit(f"{name}: hirise_build_type is '{own_build}', "
                 "expected 'release' — the suite itself was not "
                 "compiled with NDEBUG; refusing to record debug "
                 "numbers (no override: rebuild Release)")
    build_type = doc["context"].get("library_build_type", "")
    if build_type != "release":
        msg = (f"{name}: library_build_type is '{build_type}', "
               "expected 'release' (installed libbenchmark)")
        if not allow_debug:
            if is_tracked:
                sys.exit(msg + " — refusing to overwrite the tracked "
                         "baseline from a debug library build (no "
                         "override; HIRISE_BENCH_ALLOW_DEBUG only "
                         "applies to ad-hoc OUT_FILE=... runs)")
            sys.exit(msg + " — refusing to record; set "
                     "HIRISE_BENCH_ALLOW_DEBUG=1 if the library is "
                     "known-debug on this host")
        debug_library = build_type
    for bench in doc["benchmarks"]:
        bench["suite"] = name
    if merged is None:
        merged = doc
    else:
        merged["benchmarks"].extend(doc["benchmarks"])

merged["context"]["git_sha"] = git_sha
if debug_library is not None:
    # Stamp the waiver into the recorded context so the committed
    # baseline self-documents that its timing loop linked a non-release
    # libbenchmark (the loop overhead is in the library, so per-cycle
    # numbers are still comparable across runs on the same host).
    merged["context"]["library_build_type_waiver"] = (
        f"HIRISE_BENCH_ALLOW_DEBUG=1: installed libbenchmark is a "
        f"'{debug_library}' build")
    banner = "!" * 68
    print(f"\n{banner}\n"
          f"!! WARNING: libbenchmark is a '{debug_library}' build; "
          "recording anyway\n"
          "!! under HIRISE_BENCH_ALLOW_DEBUG=1. Waiver stamped into "
          "the JSON\n"
          "!! context as 'library_build_type_waiver'. Compare this "
          "baseline only\n"
          "!! against runs recorded with the same library build.\n"
          f"{banner}\n",
          file=sys.stderr)
with open(out_file, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF

echo "wrote $out_file (git_sha=$git_sha)"
