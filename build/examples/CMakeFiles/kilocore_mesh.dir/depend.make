# Empty dependencies file for kilocore_mesh.
# This may be replaced when dependencies are built.
