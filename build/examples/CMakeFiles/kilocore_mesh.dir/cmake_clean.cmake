file(REMOVE_RECURSE
  "CMakeFiles/kilocore_mesh.dir/kilocore_mesh.cpp.o"
  "CMakeFiles/kilocore_mesh.dir/kilocore_mesh.cpp.o.d"
  "kilocore_mesh"
  "kilocore_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kilocore_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
