# Empty compiler generated dependencies file for fairness_demo.
# This may be replaced when dependencies are built.
