file(REMOVE_RECURSE
  "CMakeFiles/fairness_demo.dir/fairness_demo.cpp.o"
  "CMakeFiles/fairness_demo.dir/fairness_demo.cpp.o.d"
  "fairness_demo"
  "fairness_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
