file(REMOVE_RECURSE
  "CMakeFiles/cmp_workload.dir/cmp_workload.cpp.o"
  "CMakeFiles/cmp_workload.dir/cmp_workload.cpp.o.d"
  "cmp_workload"
  "cmp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
