# Empty compiler generated dependencies file for cmp_workload.
# This may be replaced when dependencies are built.
