file(REMOVE_RECURSE
  "CMakeFiles/switch_sim_cli.dir/switch_sim_cli.cpp.o"
  "CMakeFiles/switch_sim_cli.dir/switch_sim_cli.cpp.o.d"
  "switch_sim_cli"
  "switch_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
