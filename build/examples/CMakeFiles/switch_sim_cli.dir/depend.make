# Empty dependencies file for switch_sim_cli.
# This may be replaced when dependencies are built.
