# Empty dependencies file for hirise_phys.
# This may be replaced when dependencies are built.
