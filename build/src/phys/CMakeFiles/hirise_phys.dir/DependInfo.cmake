
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/delay.cc" "src/phys/CMakeFiles/hirise_phys.dir/delay.cc.o" "gcc" "src/phys/CMakeFiles/hirise_phys.dir/delay.cc.o.d"
  "/root/repo/src/phys/floorplan.cc" "src/phys/CMakeFiles/hirise_phys.dir/floorplan.cc.o" "gcc" "src/phys/CMakeFiles/hirise_phys.dir/floorplan.cc.o.d"
  "/root/repo/src/phys/geometry.cc" "src/phys/CMakeFiles/hirise_phys.dir/geometry.cc.o" "gcc" "src/phys/CMakeFiles/hirise_phys.dir/geometry.cc.o.d"
  "/root/repo/src/phys/model.cc" "src/phys/CMakeFiles/hirise_phys.dir/model.cc.o" "gcc" "src/phys/CMakeFiles/hirise_phys.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
