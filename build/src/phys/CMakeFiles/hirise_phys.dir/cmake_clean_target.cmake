file(REMOVE_RECURSE
  "libhirise_phys.a"
)
