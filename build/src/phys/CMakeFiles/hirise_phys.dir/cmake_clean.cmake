file(REMOVE_RECURSE
  "CMakeFiles/hirise_phys.dir/delay.cc.o"
  "CMakeFiles/hirise_phys.dir/delay.cc.o.d"
  "CMakeFiles/hirise_phys.dir/floorplan.cc.o"
  "CMakeFiles/hirise_phys.dir/floorplan.cc.o.d"
  "CMakeFiles/hirise_phys.dir/geometry.cc.o"
  "CMakeFiles/hirise_phys.dir/geometry.cc.o.d"
  "CMakeFiles/hirise_phys.dir/model.cc.o"
  "CMakeFiles/hirise_phys.dir/model.cc.o.d"
  "libhirise_phys.a"
  "libhirise_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
