file(REMOVE_RECURSE
  "CMakeFiles/hirise_harness.dir/ablations2.cc.o"
  "CMakeFiles/hirise_harness.dir/ablations2.cc.o.d"
  "CMakeFiles/hirise_harness.dir/bench_main.cc.o"
  "CMakeFiles/hirise_harness.dir/bench_main.cc.o.d"
  "CMakeFiles/hirise_harness.dir/discussion.cc.o"
  "CMakeFiles/hirise_harness.dir/discussion.cc.o.d"
  "CMakeFiles/hirise_harness.dir/experiments.cc.o"
  "CMakeFiles/hirise_harness.dir/experiments.cc.o.d"
  "CMakeFiles/hirise_harness.dir/fault.cc.o"
  "CMakeFiles/hirise_harness.dir/fault.cc.o.d"
  "CMakeFiles/hirise_harness.dir/kilocore.cc.o"
  "CMakeFiles/hirise_harness.dir/kilocore.cc.o.d"
  "CMakeFiles/hirise_harness.dir/table6.cc.o"
  "CMakeFiles/hirise_harness.dir/table6.cc.o.d"
  "libhirise_harness.a"
  "libhirise_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
