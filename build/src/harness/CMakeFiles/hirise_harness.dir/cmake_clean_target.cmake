file(REMOVE_RECURSE
  "libhirise_harness.a"
)
