
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/ablations2.cc" "src/harness/CMakeFiles/hirise_harness.dir/ablations2.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/ablations2.cc.o.d"
  "/root/repo/src/harness/bench_main.cc" "src/harness/CMakeFiles/hirise_harness.dir/bench_main.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/bench_main.cc.o.d"
  "/root/repo/src/harness/discussion.cc" "src/harness/CMakeFiles/hirise_harness.dir/discussion.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/discussion.cc.o.d"
  "/root/repo/src/harness/experiments.cc" "src/harness/CMakeFiles/hirise_harness.dir/experiments.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/experiments.cc.o.d"
  "/root/repo/src/harness/fault.cc" "src/harness/CMakeFiles/hirise_harness.dir/fault.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/fault.cc.o.d"
  "/root/repo/src/harness/kilocore.cc" "src/harness/CMakeFiles/hirise_harness.dir/kilocore.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/kilocore.cc.o.d"
  "/root/repo/src/harness/table6.cc" "src/harness/CMakeFiles/hirise_harness.dir/table6.cc.o" "gcc" "src/harness/CMakeFiles/hirise_harness.dir/table6.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/hirise_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hirise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/hirise_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hirise_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hirise_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hirise_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/hirise_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/hirise_arb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
