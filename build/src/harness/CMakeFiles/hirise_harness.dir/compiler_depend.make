# Empty compiler generated dependencies file for hirise_harness.
# This may be replaced when dependencies are built.
