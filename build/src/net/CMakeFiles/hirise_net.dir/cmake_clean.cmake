file(REMOVE_RECURSE
  "CMakeFiles/hirise_net.dir/input_port.cc.o"
  "CMakeFiles/hirise_net.dir/input_port.cc.o.d"
  "libhirise_net.a"
  "libhirise_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
