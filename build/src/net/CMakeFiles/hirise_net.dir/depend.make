# Empty dependencies file for hirise_net.
# This may be replaced when dependencies are built.
