file(REMOVE_RECURSE
  "libhirise_net.a"
)
