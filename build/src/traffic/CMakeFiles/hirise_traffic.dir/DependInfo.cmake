
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/pattern.cc" "src/traffic/CMakeFiles/hirise_traffic.dir/pattern.cc.o" "gcc" "src/traffic/CMakeFiles/hirise_traffic.dir/pattern.cc.o.d"
  "/root/repo/src/traffic/trace.cc" "src/traffic/CMakeFiles/hirise_traffic.dir/trace.cc.o" "gcc" "src/traffic/CMakeFiles/hirise_traffic.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
