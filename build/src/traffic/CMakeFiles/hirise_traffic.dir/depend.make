# Empty dependencies file for hirise_traffic.
# This may be replaced when dependencies are built.
