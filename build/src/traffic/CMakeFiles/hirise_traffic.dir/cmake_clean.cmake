file(REMOVE_RECURSE
  "CMakeFiles/hirise_traffic.dir/pattern.cc.o"
  "CMakeFiles/hirise_traffic.dir/pattern.cc.o.d"
  "CMakeFiles/hirise_traffic.dir/trace.cc.o"
  "CMakeFiles/hirise_traffic.dir/trace.cc.o.d"
  "libhirise_traffic.a"
  "libhirise_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
