file(REMOVE_RECURSE
  "libhirise_traffic.a"
)
