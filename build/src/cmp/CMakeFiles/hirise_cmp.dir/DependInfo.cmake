
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cmp/graph_transport.cc" "src/cmp/CMakeFiles/hirise_cmp.dir/graph_transport.cc.o" "gcc" "src/cmp/CMakeFiles/hirise_cmp.dir/graph_transport.cc.o.d"
  "/root/repo/src/cmp/msg_switch.cc" "src/cmp/CMakeFiles/hirise_cmp.dir/msg_switch.cc.o" "gcc" "src/cmp/CMakeFiles/hirise_cmp.dir/msg_switch.cc.o.d"
  "/root/repo/src/cmp/system.cc" "src/cmp/CMakeFiles/hirise_cmp.dir/system.cc.o" "gcc" "src/cmp/CMakeFiles/hirise_cmp.dir/system.cc.o.d"
  "/root/repo/src/cmp/workload.cc" "src/cmp/CMakeFiles/hirise_cmp.dir/workload.cc.o" "gcc" "src/cmp/CMakeFiles/hirise_cmp.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/hirise_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hirise_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/hirise_arb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hirise_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
