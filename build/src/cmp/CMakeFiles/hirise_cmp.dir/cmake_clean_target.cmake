file(REMOVE_RECURSE
  "libhirise_cmp.a"
)
