file(REMOVE_RECURSE
  "CMakeFiles/hirise_cmp.dir/graph_transport.cc.o"
  "CMakeFiles/hirise_cmp.dir/graph_transport.cc.o.d"
  "CMakeFiles/hirise_cmp.dir/msg_switch.cc.o"
  "CMakeFiles/hirise_cmp.dir/msg_switch.cc.o.d"
  "CMakeFiles/hirise_cmp.dir/system.cc.o"
  "CMakeFiles/hirise_cmp.dir/system.cc.o.d"
  "CMakeFiles/hirise_cmp.dir/workload.cc.o"
  "CMakeFiles/hirise_cmp.dir/workload.cc.o.d"
  "libhirise_cmp.a"
  "libhirise_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
