# Empty compiler generated dependencies file for hirise_cmp.
# This may be replaced when dependencies are built.
