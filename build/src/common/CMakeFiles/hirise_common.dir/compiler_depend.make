# Empty compiler generated dependencies file for hirise_common.
# This may be replaced when dependencies are built.
