file(REMOVE_RECURSE
  "CMakeFiles/hirise_common.dir/logging.cc.o"
  "CMakeFiles/hirise_common.dir/logging.cc.o.d"
  "CMakeFiles/hirise_common.dir/spec.cc.o"
  "CMakeFiles/hirise_common.dir/spec.cc.o.d"
  "CMakeFiles/hirise_common.dir/stats.cc.o"
  "CMakeFiles/hirise_common.dir/stats.cc.o.d"
  "CMakeFiles/hirise_common.dir/table.cc.o"
  "CMakeFiles/hirise_common.dir/table.cc.o.d"
  "libhirise_common.a"
  "libhirise_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
