file(REMOVE_RECURSE
  "libhirise_common.a"
)
