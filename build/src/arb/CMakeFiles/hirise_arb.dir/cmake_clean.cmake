file(REMOVE_RECURSE
  "CMakeFiles/hirise_arb.dir/matrix_arbiter.cc.o"
  "CMakeFiles/hirise_arb.dir/matrix_arbiter.cc.o.d"
  "CMakeFiles/hirise_arb.dir/sub_block_arbiter.cc.o"
  "CMakeFiles/hirise_arb.dir/sub_block_arbiter.cc.o.d"
  "libhirise_arb.a"
  "libhirise_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
