file(REMOVE_RECURSE
  "libhirise_arb.a"
)
