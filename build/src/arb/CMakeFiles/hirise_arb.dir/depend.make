# Empty dependencies file for hirise_arb.
# This may be replaced when dependencies are built.
