# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("phys")
subdirs("arb")
subdirs("net")
subdirs("traffic")
subdirs("fabric")
subdirs("sim")
subdirs("cmp")
subdirs("noc")
subdirs("rtl")
subdirs("harness")
