file(REMOVE_RECURSE
  "libhirise_rtl.a"
)
