file(REMOVE_RECURSE
  "CMakeFiles/hirise_rtl.dir/wired_arbiter.cc.o"
  "CMakeFiles/hirise_rtl.dir/wired_arbiter.cc.o.d"
  "CMakeFiles/hirise_rtl.dir/wired_column.cc.o"
  "CMakeFiles/hirise_rtl.dir/wired_column.cc.o.d"
  "libhirise_rtl.a"
  "libhirise_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
