# Empty compiler generated dependencies file for hirise_rtl.
# This may be replaced when dependencies are built.
