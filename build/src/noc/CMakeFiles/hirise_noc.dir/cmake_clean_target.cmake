file(REMOVE_RECURSE
  "libhirise_noc.a"
)
