# Empty compiler generated dependencies file for hirise_noc.
# This may be replaced when dependencies are built.
