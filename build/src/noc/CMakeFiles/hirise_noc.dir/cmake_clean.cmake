file(REMOVE_RECURSE
  "CMakeFiles/hirise_noc.dir/graph_noc.cc.o"
  "CMakeFiles/hirise_noc.dir/graph_noc.cc.o.d"
  "CMakeFiles/hirise_noc.dir/mesh.cc.o"
  "CMakeFiles/hirise_noc.dir/mesh.cc.o.d"
  "CMakeFiles/hirise_noc.dir/topology.cc.o"
  "CMakeFiles/hirise_noc.dir/topology.cc.o.d"
  "libhirise_noc.a"
  "libhirise_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
