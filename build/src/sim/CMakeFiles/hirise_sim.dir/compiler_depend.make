# Empty compiler generated dependencies file for hirise_sim.
# This may be replaced when dependencies are built.
