file(REMOVE_RECURSE
  "CMakeFiles/hirise_sim.dir/network_sim.cc.o"
  "CMakeFiles/hirise_sim.dir/network_sim.cc.o.d"
  "CMakeFiles/hirise_sim.dir/sweep.cc.o"
  "CMakeFiles/hirise_sim.dir/sweep.cc.o.d"
  "libhirise_sim.a"
  "libhirise_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
