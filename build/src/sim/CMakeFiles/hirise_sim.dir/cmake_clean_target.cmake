file(REMOVE_RECURSE
  "libhirise_sim.a"
)
