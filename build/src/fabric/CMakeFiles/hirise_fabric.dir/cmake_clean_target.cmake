file(REMOVE_RECURSE
  "libhirise_fabric.a"
)
