
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cc" "src/fabric/CMakeFiles/hirise_fabric.dir/fabric.cc.o" "gcc" "src/fabric/CMakeFiles/hirise_fabric.dir/fabric.cc.o.d"
  "/root/repo/src/fabric/flat2d.cc" "src/fabric/CMakeFiles/hirise_fabric.dir/flat2d.cc.o" "gcc" "src/fabric/CMakeFiles/hirise_fabric.dir/flat2d.cc.o.d"
  "/root/repo/src/fabric/hirise.cc" "src/fabric/CMakeFiles/hirise_fabric.dir/hirise.cc.o" "gcc" "src/fabric/CMakeFiles/hirise_fabric.dir/hirise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/hirise_arb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
