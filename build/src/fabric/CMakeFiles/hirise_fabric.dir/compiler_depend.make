# Empty compiler generated dependencies file for hirise_fabric.
# This may be replaced when dependencies are built.
