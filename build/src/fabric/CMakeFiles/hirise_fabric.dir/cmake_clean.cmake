file(REMOVE_RECURSE
  "CMakeFiles/hirise_fabric.dir/fabric.cc.o"
  "CMakeFiles/hirise_fabric.dir/fabric.cc.o.d"
  "CMakeFiles/hirise_fabric.dir/flat2d.cc.o"
  "CMakeFiles/hirise_fabric.dir/flat2d.cc.o.d"
  "CMakeFiles/hirise_fabric.dir/hirise.cc.o"
  "CMakeFiles/hirise_fabric.dir/hirise.cc.o.d"
  "libhirise_fabric.a"
  "libhirise_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirise_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
