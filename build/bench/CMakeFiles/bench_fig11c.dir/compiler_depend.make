# Empty compiler generated dependencies file for bench_fig11c.
# This may be replaced when dependencies are built.
