# Empty dependencies file for bench_fault.
# This may be replaced when dependencies are built.
