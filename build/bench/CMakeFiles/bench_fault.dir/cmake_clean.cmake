file(REMOVE_RECURSE
  "CMakeFiles/bench_fault.dir/bench_fault.cc.o"
  "CMakeFiles/bench_fault.dir/bench_fault.cc.o.d"
  "bench_fault"
  "bench_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
