file(REMOVE_RECURSE
  "CMakeFiles/bench_kilocore.dir/bench_kilocore.cc.o"
  "CMakeFiles/bench_kilocore.dir/bench_kilocore.cc.o.d"
  "bench_kilocore"
  "bench_kilocore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kilocore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
