# Empty compiler generated dependencies file for bench_kilocore.
# This may be replaced when dependencies are built.
