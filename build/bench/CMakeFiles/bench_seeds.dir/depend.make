# Empty dependencies file for bench_seeds.
# This may be replaced when dependencies are built.
