file(REMOVE_RECURSE
  "CMakeFiles/bench_seeds.dir/bench_seeds.cc.o"
  "CMakeFiles/bench_seeds.dir/bench_seeds.cc.o.d"
  "bench_seeds"
  "bench_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
