file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_alloc.dir/bench_ablate_alloc.cc.o"
  "CMakeFiles/bench_ablate_alloc.dir/bench_ablate_alloc.cc.o.d"
  "bench_ablate_alloc"
  "bench_ablate_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
