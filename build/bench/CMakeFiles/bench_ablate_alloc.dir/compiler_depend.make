# Empty compiler generated dependencies file for bench_ablate_alloc.
# This may be replaced when dependencies are built.
