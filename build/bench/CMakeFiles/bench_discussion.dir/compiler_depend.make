# Empty compiler generated dependencies file for bench_discussion.
# This may be replaced when dependencies are built.
