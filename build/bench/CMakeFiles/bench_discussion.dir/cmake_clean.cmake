file(REMOVE_RECURSE
  "CMakeFiles/bench_discussion.dir/bench_discussion.cc.o"
  "CMakeFiles/bench_discussion.dir/bench_discussion.cc.o.d"
  "bench_discussion"
  "bench_discussion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
