# Empty dependencies file for bench_fig11a.
# This may be replaced when dependencies are built.
