file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a.dir/bench_fig11a.cc.o"
  "CMakeFiles/bench_fig11a.dir/bench_fig11a.cc.o.d"
  "bench_fig11a"
  "bench_fig11a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
