file(REMOVE_RECURSE
  "CMakeFiles/bench_headline.dir/bench_headline.cc.o"
  "CMakeFiles/bench_headline.dir/bench_headline.cc.o.d"
  "bench_headline"
  "bench_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
