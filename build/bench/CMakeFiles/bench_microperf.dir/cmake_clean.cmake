file(REMOVE_RECURSE
  "CMakeFiles/bench_microperf.dir/bench_microperf.cc.o"
  "CMakeFiles/bench_microperf.dir/bench_microperf.cc.o.d"
  "bench_microperf"
  "bench_microperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
