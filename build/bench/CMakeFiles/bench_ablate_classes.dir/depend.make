# Empty dependencies file for bench_ablate_classes.
# This may be replaced when dependencies are built.
