file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_classes.dir/bench_ablate_classes.cc.o"
  "CMakeFiles/bench_ablate_classes.dir/bench_ablate_classes.cc.o.d"
  "bench_ablate_classes"
  "bench_ablate_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
