file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_buffers.dir/bench_ablate_buffers.cc.o"
  "CMakeFiles/bench_ablate_buffers.dir/bench_ablate_buffers.cc.o.d"
  "bench_ablate_buffers"
  "bench_ablate_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
