# Empty dependencies file for bench_ablate_buffers.
# This may be replaced when dependencies are built.
