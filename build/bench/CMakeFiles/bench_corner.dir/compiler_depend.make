# Empty compiler generated dependencies file for bench_corner.
# This may be replaced when dependencies are built.
