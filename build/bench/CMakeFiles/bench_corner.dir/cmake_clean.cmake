file(REMOVE_RECURSE
  "CMakeFiles/bench_corner.dir/bench_corner.cc.o"
  "CMakeFiles/bench_corner.dir/bench_corner.cc.o.d"
  "bench_corner"
  "bench_corner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
