# Empty compiler generated dependencies file for bench_fig9b.
# This may be replaced when dependencies are built.
