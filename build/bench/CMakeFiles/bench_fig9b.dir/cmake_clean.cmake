file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b.dir/bench_fig9b.cc.o"
  "CMakeFiles/bench_fig9b.dir/bench_fig9b.cc.o.d"
  "bench_fig9b"
  "bench_fig9b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
