# Empty dependencies file for bench_fig9a.
# This may be replaced when dependencies are built.
