file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a.dir/bench_fig9a.cc.o"
  "CMakeFiles/bench_fig9a.dir/bench_fig9a.cc.o.d"
  "bench_fig9a"
  "bench_fig9a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
