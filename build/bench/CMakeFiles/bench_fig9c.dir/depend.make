# Empty dependencies file for bench_fig9c.
# This may be replaced when dependencies are built.
