file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c.dir/bench_fig9c.cc.o"
  "CMakeFiles/bench_fig9c.dir/bench_fig9c.cc.o.d"
  "bench_fig9c"
  "bench_fig9c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
