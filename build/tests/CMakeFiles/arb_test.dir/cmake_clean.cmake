file(REMOVE_RECURSE
  "CMakeFiles/arb_test.dir/arb_test.cc.o"
  "CMakeFiles/arb_test.dir/arb_test.cc.o.d"
  "arb_test"
  "arb_test.pdb"
  "arb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
