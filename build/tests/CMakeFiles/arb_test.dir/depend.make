# Empty dependencies file for arb_test.
# This may be replaced when dependencies are built.
