
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phys_test.cc" "tests/CMakeFiles/phys_test.dir/phys_test.cc.o" "gcc" "tests/CMakeFiles/phys_test.dir/phys_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phys/CMakeFiles/hirise_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
