file(REMOVE_RECURSE
  "CMakeFiles/rtl_test.dir/rtl_test.cc.o"
  "CMakeFiles/rtl_test.dir/rtl_test.cc.o.d"
  "rtl_test"
  "rtl_test.pdb"
  "rtl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
