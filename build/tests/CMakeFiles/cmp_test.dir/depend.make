# Empty dependencies file for cmp_test.
# This may be replaced when dependencies are built.
