file(REMOVE_RECURSE
  "CMakeFiles/cmp_test.dir/cmp_test.cc.o"
  "CMakeFiles/cmp_test.dir/cmp_test.cc.o.d"
  "cmp_test"
  "cmp_test.pdb"
  "cmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
