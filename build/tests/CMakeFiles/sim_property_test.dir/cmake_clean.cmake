file(REMOVE_RECURSE
  "CMakeFiles/sim_property_test.dir/sim_property_test.cc.o"
  "CMakeFiles/sim_property_test.dir/sim_property_test.cc.o.d"
  "sim_property_test"
  "sim_property_test.pdb"
  "sim_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
