# Empty dependencies file for sim_property_test.
# This may be replaced when dependencies are built.
