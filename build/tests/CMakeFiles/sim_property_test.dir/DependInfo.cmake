
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_property_test.cc" "tests/CMakeFiles/sim_property_test.dir/sim_property_test.cc.o" "gcc" "tests/CMakeFiles/sim_property_test.dir/sim_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hirise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hirise_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/hirise_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/hirise_arb.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hirise_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hirise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
