file(REMOVE_RECURSE
  "CMakeFiles/traffic_test.dir/traffic_test.cc.o"
  "CMakeFiles/traffic_test.dir/traffic_test.cc.o.d"
  "traffic_test"
  "traffic_test.pdb"
  "traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
