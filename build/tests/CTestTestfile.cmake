# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/phys_test[1]_include.cmake")
include("/root/repo/build/tests/arb_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cmp_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
