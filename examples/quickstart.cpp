/**
 * @file
 * Quickstart: build the paper's 64-radix 4-layer 4-channel Hi-Rise
 * switch with CLRG arbitration, estimate its silicon cost with the
 * physical model, and measure throughput/latency under uniform random
 * traffic with the cycle-accurate simulator.
 *
 *   ./examples/quickstart [injection_rate_packets_per_cycle]
 */

#include <cstdio>
#include <cstdlib>

#include "phys/model.hh"
#include "sim/network_sim.hh"
#include "sim/sweep.hh"
#include "traffic/pattern.hh"

int
main(int argc, char **argv)
{
    using namespace hirise;

    // 1. Describe the switch (paper's headline configuration).
    SwitchSpec spec;
    spec.topo = Topology::HiRise;
    spec.radix = 64;
    spec.layers = 4;
    spec.channels = 4;
    spec.flitBits = 128;
    spec.arb = ArbScheme::Clrg;

    // 2. Physical estimate (32 nm, Table II TSVs).
    phys::PhysModel model;
    auto rep = model.evaluate(spec);
    std::printf("%s\n", spec.name().c_str());
    std::printf("  area     : %.3f mm^2\n", rep.areaMm2);
    std::printf("  frequency: %.2f GHz (cycle %.0f ps)\n", rep.freqGhz,
                rep.cycleTimePs);
    std::printf("  energy   : %.1f pJ per 128-bit transaction\n",
                rep.energyPerTransPj);
    std::printf("  TSVs     : %llu\n",
                static_cast<unsigned long long>(rep.numTsvs));

    // 3. Simulate uniform random traffic.
    double load = argc > 1 ? std::atof(argv[1]) : 0.12;
    sim::SimConfig cfg;
    cfg.injectionRate = load; // packets/input/cycle
    sim::NetworkSim sim(spec, cfg,
                        std::make_shared<traffic::UniformRandom>(
                            spec.radix));
    auto r = sim.run();

    std::printf("\nuniform random @ %.3f packets/input/cycle:\n", load);
    std::printf("  accepted : %.2f flits/cycle  (%.2f Tbps @ %.2f "
                "GHz)\n",
                r.acceptedFlitsPerCycle,
                sim::toTbps(r.acceptedFlitsPerCycle, rep.freqGhz,
                            spec.flitBits),
                rep.freqGhz);
    std::printf("  latency  : %.1f cycles avg (%.2f ns), p99 %.0f "
                "cycles\n",
                r.avgLatencyCycles, r.avgLatencyCycles / rep.freqGhz,
                r.p99LatencyCycles);
    std::printf("  fairness : %.4f (Jain index over inputs)\n",
                r.fairness);
    return 0;
}
