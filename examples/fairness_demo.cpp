/**
 * @file
 * Reproduces the paper's section III-B walkthrough interactively:
 * inputs {3,7,11,15} on layer 1 and {20} on layer 2 all request
 * output 63 on layer 4. Prints the grant sequence under the baseline
 * L-2-L LRG (Fig 4), WLRG, and CLRG (Fig 5), plus the resulting
 * bandwidth shares.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "fabric/hirise.hh"

namespace {

using namespace hirise;
using namespace hirise::fabric;

std::vector<std::uint32_t>
grantSequence(ArbScheme arb, int cycles)
{
    SwitchSpec spec;
    spec.topo = Topology::HiRise;
    spec.radix = 64;
    spec.layers = 4;
    spec.channels = 1;
    spec.arb = arb;
    HiRiseFabric fab(spec);

    std::vector<std::uint32_t> seq;
    for (int t = 0; t < cycles; ++t) {
        std::vector<std::uint32_t> req(64, kNoRequest);
        for (auto i : {3u, 7u, 11u, 15u, 20u})
            req[i] = 63;
        const auto &grant = fab.arbitrate(req);
        for (std::uint32_t i = 0; i < 64; ++i) {
            if (grant[i]) {
                seq.push_back(i);
                fab.release(i, 63); // single-cycle packets: arb study
            }
        }
    }
    return seq;
}

void
show(const char *label, ArbScheme arb)
{
    auto seq = grantSequence(arb, 400);
    std::printf("%-11s first grants: ", label);
    for (std::size_t i = 0; i < 15 && i < seq.size(); ++i)
        std::printf("%u ", seq[i]);
    std::map<std::uint32_t, int> share;
    for (auto w : seq)
        ++share[w];
    std::printf("\n%-11s shares      : ", label);
    for (auto &[input, wins] : share) {
        std::printf("i%u=%.0f%% ", input,
                    100.0 * wins / static_cast<double>(seq.size()));
    }
    std::printf("\n\n");
}

} // namespace

int
main()
{
    std::printf("Adversarial pattern of paper section III-B: inputs "
                "{3,7,11,15} on L1\nand {20} on L2 all requesting "
                "output 63 on L4 (1-channel Hi-Rise).\n"
                "A fair arbiter gives every input 20%%.\n\n");
    show("L-2-L LRG", ArbScheme::LayerLrg);
    show("WLRG", ArbScheme::Wlrg);
    show("CLRG", ArbScheme::Clrg);
    return 0;
}
