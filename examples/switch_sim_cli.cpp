/**
 * @file
 * Full-featured command-line driver for the switch simulator — the
 * "BookSim-style" entry point a downstream user reaches for first.
 * Every architectural and simulation knob is a flag:
 *
 *   switch_sim_cli --topo hirise --radix 64 --layers 4 --channels 4
 *                  --arb clrg --alloc input --pattern uniform
 *                  --load 0.15 --cycles 50000 --seed 7
 *
 * Prints the physical estimate and the simulation results, including
 * Hi-Rise channel utilization when applicable.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "fabric/hirise.hh"
#include "phys/model.hh"
#include "sim/network_sim.hh"
#include "sim/sweep.hh"
#include "traffic/pattern.hh"
#include "traffic/trace.hh"

namespace {

using namespace hirise;

struct Args
{
    SwitchSpec spec;
    std::string pattern = "uniform";
    std::string traceFile;
    double load = 0.1;
    double burstLen = 8.0;
    std::uint32_t hotspot = ~0u;
    net::Cycle warmup = 10000;
    net::Cycle cycles = 50000;
    std::uint64_t seed = 1;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: switch_sim_cli [options]\n"
        "  --topo 2d|folded|hirise     (default hirise)\n"
        "  --radix N                   (default 64)\n"
        "  --layers L                  (default 4)\n"
        "  --channels C                (default 4)\n"
        "  --arb lrg|l2l|wlrg|clrg     (default clrg)\n"
        "  --alloc input|output|prio   (default input)\n"
        "  --classes K                 CLRG classes (default 3)\n"
        "  --pattern uniform|hotspot|bursty|adversarial|transpose|\n"
        "            bitcomp|trace    (default uniform)\n"
        "  --trace FILE                trace file for --pattern trace\n"
        "  --hotspot N                 hot output (default radix-1)\n"
        "  --burst B                   mean burst length (default 8)\n"
        "  --load R                    packets/input/cycle\n"
        "  --warmup N --cycles N --seed N\n");
    std::exit(2);
}

Args
parse(int argc, char **argv)
{
    Args a;
    a.spec.topo = Topology::HiRise;
    a.spec.arb = ArbScheme::Clrg;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string f = argv[i];
        if (f == "--topo") {
            std::string v = next(i);
            if (v == "2d") {
                a.spec.topo = Topology::Flat2D;
                a.spec.arb = ArbScheme::Lrg;
            } else if (v == "folded") {
                a.spec.topo = Topology::Folded3D;
                a.spec.arb = ArbScheme::Lrg;
            } else if (v == "hirise") {
                a.spec.topo = Topology::HiRise;
            } else {
                usage();
            }
        } else if (f == "--radix") {
            a.spec.radix = std::atoi(next(i));
        } else if (f == "--layers") {
            a.spec.layers = std::atoi(next(i));
        } else if (f == "--channels") {
            a.spec.channels = std::atoi(next(i));
        } else if (f == "--arb") {
            std::string v = next(i);
            if (v == "lrg")
                a.spec.arb = ArbScheme::Lrg;
            else if (v == "l2l")
                a.spec.arb = ArbScheme::LayerLrg;
            else if (v == "wlrg")
                a.spec.arb = ArbScheme::Wlrg;
            else if (v == "clrg")
                a.spec.arb = ArbScheme::Clrg;
            else
                usage();
        } else if (f == "--alloc") {
            std::string v = next(i);
            if (v == "input")
                a.spec.alloc = ChannelAlloc::InputBinned;
            else if (v == "output")
                a.spec.alloc = ChannelAlloc::OutputBinned;
            else if (v == "prio")
                a.spec.alloc = ChannelAlloc::Priority;
            else
                usage();
        } else if (f == "--classes") {
            a.spec.clrgMaxCount = std::atoi(next(i)) - 1;
        } else if (f == "--pattern") {
            a.pattern = next(i);
        } else if (f == "--trace") {
            a.traceFile = next(i);
        } else if (f == "--hotspot") {
            a.hotspot = std::atoi(next(i));
        } else if (f == "--burst") {
            a.burstLen = std::atof(next(i));
        } else if (f == "--load") {
            a.load = std::atof(next(i));
        } else if (f == "--warmup") {
            a.warmup = std::atoll(next(i));
        } else if (f == "--cycles") {
            a.cycles = std::atoll(next(i));
        } else if (f == "--seed") {
            a.seed = std::atoll(next(i));
        } else {
            usage();
        }
    }
    return a;
}

std::shared_ptr<traffic::TrafficPattern>
makePattern(const Args &a)
{
    std::uint32_t radix = a.spec.radix;
    if (a.pattern == "uniform")
        return std::make_shared<traffic::UniformRandom>(radix);
    if (a.pattern == "hotspot") {
        std::uint32_t hot = a.hotspot == ~0u ? radix - 1 : a.hotspot;
        return std::make_shared<traffic::Hotspot>(radix, hot);
    }
    if (a.pattern == "bursty")
        return std::make_shared<traffic::Bursty>(radix, a.burstLen);
    if (a.pattern == "adversarial")
        return std::make_shared<traffic::Adversarial>(
            std::vector<std::uint32_t>{3, 7, 11, 15, 20}, radix - 1,
            radix);
    if (a.pattern == "transpose")
        return std::make_shared<traffic::Transpose>(radix);
    if (a.pattern == "bitcomp")
        return std::make_shared<traffic::BitComplement>(radix);
    if (a.pattern == "trace") {
        if (a.traceFile.empty())
            fatal("--pattern trace needs --trace FILE");
        return std::make_shared<traffic::TraceReplay>(
            traffic::TraceReplay::fromFile(a.traceFile, radix));
    }
    fatal("unknown pattern '%s'", a.pattern.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parse(argc, argv);
    a.spec.validate();

    phys::PhysModel model;
    auto rep = model.evaluate(a.spec);
    std::printf("config   : %s, alloc %s\n", a.spec.name().c_str(),
                toString(a.spec.alloc));
    std::printf("physical : %.3f mm^2, %.2f GHz, %.1f pJ/trans, "
                "%llu TSVs\n",
                rep.areaMm2, rep.freqGhz, rep.energyPerTransPj,
                static_cast<unsigned long long>(rep.numTsvs));

    sim::SimConfig cfg;
    cfg.injectionRate = a.load;
    cfg.warmupCycles = a.warmup;
    cfg.measureCycles = a.cycles;
    cfg.seed = a.seed;
    sim::NetworkSim sim(a.spec, cfg, makePattern(a));
    auto r = sim.run();

    std::printf("traffic  : %s @ %.4f packets/input/cycle\n",
                a.pattern.c_str(), a.load);
    std::printf("accepted : %.3f flits/cycle = %.2f Tbps\n",
                r.acceptedFlitsPerCycle,
                sim::toTbps(r.acceptedFlitsPerCycle, rep.freqGhz,
                            a.spec.flitBits));
    std::printf("latency  : avg %.1f cycles (%.2f ns), p99 %.0f "
                "cycles\n",
                r.avgLatencyCycles, r.avgLatencyCycles / rep.freqGhz,
                r.p99LatencyCycles);
    std::printf("fairness : %.4f (Jain over participating inputs)\n",
                r.fairness);

    if (a.spec.topo == Topology::HiRise) {
        const auto &fab = dynamic_cast<const fabric::HiRiseFabric &>(
            sim.fabricRef());
        const auto &st = fab.stats();
        std::printf("paths    : %llu same-layer grants, %llu "
                    "cross-layer grants\n",
                    static_cast<unsigned long long>(st.grantsLocal),
                    static_cast<unsigned long long>(st.grantsCross));
        double max_util = 0.0;
        for (std::uint32_t s = 0; s < a.spec.layers; ++s)
            for (std::uint32_t d = 0; d < a.spec.layers; ++d)
                for (std::uint32_t k = 0;
                     s != d && k < a.spec.channels; ++k)
                    max_util = std::max(
                        max_util, fab.channelUtilization(s, d, k));
        std::printf("L2LCs    : hottest channel %.1f%% utilized\n",
                    100.0 * max_util);
    }
    return 0;
}
