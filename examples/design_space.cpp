/**
 * @file
 * Design-space exploration with the physical model + simulator: for a
 * target radix, sweep layer count and channel multiplicity, report
 * area / frequency / energy / simulated saturation throughput, and
 * pick the best configuration by throughput per mm^2 — the kind of
 * study behind the paper's choice of the 4-channel 4-layer design.
 *
 *   ./examples/design_space [radix]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "phys/model.hh"
#include "sim/sweep.hh"
#include "traffic/pattern.hh"

int
main(int argc, char **argv)
{
    using namespace hirise;

    std::uint32_t radix =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;

    phys::PhysModel model;
    sim::SimConfig cfg;
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 12000;
    auto uniform = [radix] {
        return std::make_shared<traffic::UniformRandom>(radix);
    };

    Table t("Hi-Rise design space, radix " + std::to_string(radix) +
            " (CLRG, uniform random)");
    t.header({"Layers", "Channels", "GHz", "mm^2", "pJ", "Tbps",
              "Tbps/mm^2"});

    double best_density = 0.0;
    std::string best;
    for (std::uint32_t layers : {2u, 3u, 4u, 5u, 6u}) {
        for (std::uint32_t chans : {1u, 2u, 4u}) {
            SwitchSpec spec;
            spec.topo = Topology::HiRise;
            spec.radix = radix;
            spec.layers = layers;
            spec.channels = chans;
            spec.arb = ArbScheme::Clrg;

            auto rep = model.evaluate(spec);
            double flits =
                sim::saturationFlitsPerCycle(spec, cfg, uniform);
            double tbps = sim::toTbps(flits, rep.freqGhz,
                                      spec.flitBits);
            double density = tbps / rep.areaMm2;
            t.row({Table::integer(layers), Table::integer(chans),
                   Table::num(rep.freqGhz, 2),
                   Table::num(rep.areaMm2, 3),
                   Table::num(rep.energyPerTransPj, 1),
                   Table::num(tbps, 2), Table::num(density, 1)});
            if (density > best_density) {
                best_density = density;
                best = "L" + std::to_string(layers) + " c" +
                       std::to_string(chans);
            }
        }
    }
    t.print();

    // The flat 2D reference point.
    SwitchSpec flat;
    flat.topo = Topology::Flat2D;
    flat.radix = radix;
    flat.arb = ArbScheme::Lrg;
    auto rep2d = model.evaluate(flat);
    double flits2d = sim::saturationFlitsPerCycle(flat, cfg, uniform);
    double tbps2d = sim::toTbps(flits2d, rep2d.freqGhz, flat.flitBits);
    std::printf("\n2D reference: %.2f GHz, %.3f mm^2, %.2f Tbps "
                "(%.1f Tbps/mm^2)\n",
                rep2d.freqGhz, rep2d.areaMm2, tbps2d,
                tbps2d / rep2d.areaMm2);
    std::printf("Best Hi-Rise by bandwidth density: %s "
                "(%.1f Tbps/mm^2)\n",
                best.c_str(), best_density);
    return 0;
}
