/**
 * @file
 * Section VI-E demonstration: compose Hi-Rise switches into a 2D mesh
 * NoC for kilo-core 3D chips (paper Fig 13) and compare against a
 * mesh of flat 2D routers at equal concentration. XY routing between
 * routers, adaptive Z (layer) routing inside each 3D switch.
 *
 *   ./examples/kilocore_mesh [width] [height] [load_pkts_per_node_ns]
 */

#include <cstdio>
#include <cstdlib>

#include "noc/mesh.hh"
#include "phys/model.hh"

int
main(int argc, char **argv)
{
    using namespace hirise;

    std::uint32_t w = argc > 1 ? std::atoi(argv[1]) : 4;
    std::uint32_t h = argc > 2 ? std::atoi(argv[2]) : 4;
    double load_pns = argc > 3 ? std::atof(argv[3]) : 0.02;

    noc::MeshConfig hr;
    hr.width = w;
    hr.height = h;
    hr.router.topo = Topology::HiRise;
    hr.router.radix = 64;
    hr.router.layers = 4;
    hr.router.channels = 4;
    hr.router.arb = ArbScheme::Clrg;

    noc::MeshConfig flat = hr;
    flat.router = SwitchSpec{};
    flat.router.topo = Topology::Flat2D;
    flat.router.radix = 52; // 48 local + 4 mesh ports per router
    flat.router.arb = ArbScheme::Lrg;

    phys::PhysModel model;
    double f_hr = model.evaluate(hr.router).freqGhz;
    double f_2d = model.evaluate(flat.router).freqGhz;

    std::printf("mesh %ux%u, %u nodes/router, %u nodes total, "
                "uniform random @ %.3f packets/node/ns\n\n",
                w, h, hr.localPerRouter(), hr.totalNodes(), load_pns);

    auto report = [&](const char *label, noc::MeshConfig &cfg,
                      double freq) {
        noc::MeshNoc mesh(cfg);
        auto r = mesh.run(load_pns / freq, 4000, 16000);
        bool sat =
            r.acceptedPktsPerCycle < 0.95 * r.offeredPktsPerCycle;
        char lat[32];
        if (sat)
            std::snprintf(lat, sizeof(lat), "(saturated)");
        else
            std::snprintf(lat, sizeof(lat), "%.2f ns",
                          r.avgLatencyCycles / freq);
        std::printf("%-24s %.2f GHz  lat %-12s accepted %.1f "
                    "packets/ns  avg %.2f hops\n",
                    label, freq, lat, r.acceptedPktsPerCycle * freq,
                    r.avgHops);
    };

    report("mesh of Hi-Rise (3D)", hr, f_hr);
    report("mesh of 2D routers", flat, f_2d);

    std::printf("\nThe Hi-Rise routers expose one mesh port per "
                "layer per direction\n(4x inter-router links) and "
                "run faster, so the 3D mesh sustains a\nmuch higher "
                "load - the scaling path section VI-E sketches for\n"
                "kilo-core systems.\n");
    return 0;
}
