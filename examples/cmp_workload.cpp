/**
 * @file
 * Runs one of the paper's Table VI workload mixes on the 64-core
 * single-switch system, once with a flat 2D Swizzle-Switch and once
 * with the Hi-Rise (4-channel, CLRG) switch, and reports the system
 * speedup, per-core IPC spread, and network statistics.
 *
 *   ./examples/cmp_workload [Mix1..Mix8]
 */

#include <cstdio>
#include <cstring>

#include "cmp/system.hh"
#include "common/logging.hh"
#include "phys/model.hh"

namespace {

using namespace hirise;

cmp::SystemConfig
configFor(const SwitchSpec &spec)
{
    phys::PhysModel model;
    cmp::SystemConfig cfg;
    cfg.switchFreqGhz = model.evaluate(spec).freqGhz;
    return cfg;
}

struct RunOut
{
    double ipc;
    double missNs;
    std::uint64_t msgs;
};

RunOut
runOn(const SwitchSpec &spec, const cmp::Mix &mix)
{
    auto cfg = configFor(spec);
    cmp::CmpSystem sys(spec, cfg, cmp::assignMix(mix, cfg.numTiles));
    auto r = sys.run(10000, 80000);
    return {r.totalIpc, r.avgMissLatencyNs, r.networkMessages};
}

} // namespace

int
main(int argc, char **argv)
{
    const char *mix_name = argc > 1 ? argv[1] : "Mix5";
    const cmp::Mix *mix = nullptr;
    for (const auto &m : cmp::paperMixes()) {
        if (std::strcmp(m.name, mix_name) == 0)
            mix = &m;
    }
    if (!mix)
        fatal("unknown mix '%s' (use Mix1..Mix8)", mix_name);

    std::printf("%s (avg %.1f MPKI per core):", mix->name,
                mix->paperAvgMpki);
    for (const auto &e : mix->entries)
        std::printf(" %s(%u)", e.benchmark, e.instances);
    std::printf("\n\n");

    SwitchSpec flat;
    flat.topo = Topology::Flat2D;
    flat.radix = 64;
    flat.arb = ArbScheme::Lrg;

    SwitchSpec hirise;
    hirise.topo = Topology::HiRise;
    hirise.radix = 64;
    hirise.layers = 4;
    hirise.channels = 4;
    hirise.arb = ArbScheme::Clrg;

    auto r2d = runOn(flat, *mix);
    auto rhr = runOn(hirise, *mix);

    std::printf("%-22s %10s %12s %14s\n", "switch", "total IPC",
                "miss lat ns", "net messages");
    std::printf("%-22s %10.1f %12.1f %14llu\n", flat.name().c_str(),
                r2d.ipc, r2d.missNs,
                static_cast<unsigned long long>(r2d.msgs));
    std::printf("%-22s %10.1f %12.1f %14llu\n", hirise.name().c_str(),
                rhr.ipc, rhr.missNs,
                static_cast<unsigned long long>(rhr.msgs));
    std::printf("\nsystem speedup: %.3fx (paper Table VI trend: "
                "higher-MPKI mixes gain more)\n",
                rhr.ipc / r2d.ipc);
    return 0;
}
