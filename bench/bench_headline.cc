/**
 * @file
 * Recomputes the abstract's headline claims.
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"headline", headlineClaims}});
}
