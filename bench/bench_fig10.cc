/**
 * @file
 * Regenerates the paper's Fig10 (see DESIGN.md experiment index).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"fig10", fig10}});
}
