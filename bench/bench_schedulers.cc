/**
 * @file
 * Scheduler-matrix extension: every single-stage crossbar scheduler
 * across every analytic traffic pattern vs the MWM upper bound (see
 * docs/SCHEDULERS.md).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv,
                     {{"sched_throughput", schedThroughput},
                      {"sched_latency", schedLatency},
                      {"sched_fairness", schedFairness}});
}
