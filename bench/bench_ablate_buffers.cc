/**
 * @file
 * Ablation: VC/buffer architecture sensitivity.
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"ablate_buffers", ablateBuffers}});
}
