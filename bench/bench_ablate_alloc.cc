/**
 * @file
 * Ablation: channel-allocation policies (DESIGN.md E-A2).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"ablate_alloc", ablateChannelAlloc}});
}
