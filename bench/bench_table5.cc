/**
 * @file
 * Regenerates the paper's Table5 (see DESIGN.md experiment index).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"table5", table5}});
}
