/**
 * @file
 * Section VI-E discussion: comparison against mesh and flattened
 * butterfly (energy per flit + latency).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv,
                     {{"discussion", discussion},
                      {"discussion_speedup", discussionSpeedup}});
}
