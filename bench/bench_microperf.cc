/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: arbiter
 * decision rate, fabric arbitration cycles, and end-to-end simulated
 * cycles per second for each topology. These measure the tool, not
 * the paper's system; the table/figure binaries measure the system.
 *
 * Global operator new/delete are instrumented so every benchmark
 * reports a "heap_allocs_per_iter" counter: the arbitration and
 * simulation hot paths are required to be allocation-free in steady
 * state (see docs/HOTPATH.md), and this counter is the regression
 * guard for that property.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <new>

#include "arb/matrix_arbiter.hh"
#include "arb/sub_block_arbiter.hh"
#include "common/random.hh"
#include "fabric/fabric.hh"
#include "sim/batch_sim.hh"
#include "sim/network_sim.hh"
#include "traffic/pattern.hh"

using namespace hirise;

// ---------------------------------------------------------------------
// Heap-allocation instrumentation
// ---------------------------------------------------------------------

static std::uint64_t g_allocCount = 0;

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** Measure @p body once per iteration and attach the allocation
 *  counter. The counter must be ~0 for steady-state hot paths. */
template <typename Fn>
void
runCounted(benchmark::State &state, Fn body)
{
    std::uint64_t allocs_before = g_allocCount;
    for (auto _ : state)
        body();
    std::uint64_t allocs = g_allocCount - allocs_before;
    state.counters["heap_allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
        static_cast<double>(state.iterations()));
}

} // namespace

// ---------------------------------------------------------------------
// Arbiter core
// ---------------------------------------------------------------------

static void
BM_MatrixArbiterPick(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    arb::MatrixArbiter a(n);
    Rng rng(1);
    BitVec req(n);
    for (std::uint32_t i = 0; i < n; ++i)
        if (rng.bernoulli(0.5))
            req.set(i);
    runCounted(state, [&]() {
        auto w = a.pick(req);
        benchmark::DoNotOptimize(w);
        if (w != arb::MatrixArbiter::kNone)
            a.update(w);
    });
}
BENCHMARK(BM_MatrixArbiterPick)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

static void
BM_ClrgSubArbiter(benchmark::State &state)
{
    arb::ClrgSubArbiter sub(13, 64, 2);
    Rng rng(2);
    std::vector<arb::SubBlockRequest> reqs(13);
    for (std::uint32_t p = 0; p < 13; ++p) {
        reqs[p].valid = rng.bernoulli(0.5);
        reqs[p].primaryInput = static_cast<std::uint32_t>(
            rng.below(64));
    }
    runCounted(state, [&]() {
        auto w = sub.arbitrate(reqs);
        benchmark::DoNotOptimize(w);
    });
}
BENCHMARK(BM_ClrgSubArbiter);

// ---------------------------------------------------------------------
// Fabric layer
// ---------------------------------------------------------------------

namespace {

SwitchSpec
fabricSpec(bool hirise, std::uint32_t radix, ChannelAlloc alloc)
{
    SwitchSpec s;
    s.radix = radix;
    if (hirise) {
        s.topo = Topology::HiRise;
        s.layers = 4;
        s.channels = 4;
        s.arb = ArbScheme::Clrg;
        s.alloc = alloc;
    } else {
        s.topo = Topology::Flat2D;
        s.arb = ArbScheme::Lrg;
    }
    return s;
}

/**
 * Drive a fabric with random single-cycle traffic: every input
 * requests a random output at rate 0.5, grants are released the same
 * cycle (pure arbitration load, no connection holding).
 */
void
driveFabric(benchmark::State &state, const SwitchSpec &spec)
{
    auto fab = fabric::makeFabric(spec);
    const std::uint32_t n = spec.radix;
    Rng rng(7);
    // Pre-generate a bank of request vectors so the RNG is outside
    // the measured loop.
    constexpr std::uint32_t kBank = 64;
    std::vector<std::vector<std::uint32_t>> bank(
        kBank, std::vector<std::uint32_t>(n, fabric::kNoRequest));
    for (auto &req : bank) {
        for (std::uint32_t i = 0; i < n; ++i) {
            if (rng.bernoulli(0.5))
                req[i] = static_cast<std::uint32_t>(rng.below(n));
        }
    }

    std::uint32_t slot = 0;
    runCounted(state, [&]() {
        const BitVec &g = fab->arbitrate(bank[slot]);
        benchmark::DoNotOptimize(g.words());
        // Immediate release keeps every output contended next cycle.
        g.forEachSet([&](std::uint32_t i) {
            fab->release(i, bank[slot][i]);
        });
        slot = (slot + 1) % kBank;
    });
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

} // namespace

static void
BM_FabricArbitrate_Flat2d(benchmark::State &state)
{
    driveFabric(state,
                fabricSpec(false,
                           static_cast<std::uint32_t>(state.range(0)),
                           ChannelAlloc::InputBinned));
}
BENCHMARK(BM_FabricArbitrate_Flat2d)->Arg(64)->Arg(128)->Arg(256);

static void
BM_FabricArbitrate_HiRise(benchmark::State &state)
{
    auto alloc =
        static_cast<ChannelAlloc>(static_cast<int>(state.range(1)));
    driveFabric(state,
                fabricSpec(true,
                           static_cast<std::uint32_t>(state.range(0)),
                           alloc));
}
BENCHMARK(BM_FabricArbitrate_HiRise)
    ->ArgsProduct({{64, 128, 256},
                   {static_cast<int>(ChannelAlloc::InputBinned),
                    static_cast<int>(ChannelAlloc::OutputBinned),
                    static_cast<int>(ChannelAlloc::Priority)}});

// ---------------------------------------------------------------------
// End-to-end simulator cycles
// ---------------------------------------------------------------------

namespace {

SwitchSpec
specFor(int topo)
{
    SwitchSpec s;
    if (topo == 0) {
        s.topo = Topology::Flat2D;
        s.arb = ArbScheme::Lrg;
    } else {
        s.topo = Topology::HiRise;
        s.layers = 4;
        s.channels = 4;
        s.arb = topo == 1 ? ArbScheme::LayerLrg : ArbScheme::Clrg;
    }
    s.radix = 64;
    return s;
}

} // namespace

static void
BM_NetworkSimCycle(benchmark::State &state)
{
    sim::SimConfig cfg;
    cfg.injectionRate = 0.15;
    cfg.denseStepping = state.range(1) != 0;
    auto spec = specFor(static_cast<int>(state.range(0)));
    sim::NetworkSim sim(spec, cfg,
                        std::make_shared<traffic::UniformRandom>(64));
    // Let VC/source-queue capacity reach steady state before counting
    // allocations (deques grow while backlog builds).
    for (int t = 0; t < 20000; ++t)
        sim.step();
    runCounted(state, [&]() { sim.step(); });
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
// Second arg: 0 = event-driven core, 1 = dense reference core.
BENCHMARK(BM_NetworkSimCycle)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1});

// ---------------------------------------------------------------------
// Whole-run throughput at low load (the event-driven core's target
// regime: most inputs idle most cycles, so active-set walks and idle
// fast-forward dominate the win). Items = simulated cycles, so
// items_per_second reads as simulated cycles per wall-clock second.
// ---------------------------------------------------------------------

namespace {

constexpr net::Cycle kLowLoadWarmup = 500;
constexpr net::Cycle kLowLoadMeasure = 20000;
/** Per-input injection rate for the low-load A/B runs. 0.01 keeps a
 *  radix-128 switch busy (~1.3 injections/cycle switch-wide) while
 *  leaving most inputs idle most cycles — the regime the event core
 *  targets. */
constexpr double kLowLoadRate = 0.01;

void
loadedRun(benchmark::State &state, Topology topo, double rate,
          net::Cycle measure, bool legacySatQueues = false)
{
    const auto radix = static_cast<std::uint32_t>(state.range(0));
    SwitchSpec spec;
    spec.radix = radix;
    if (topo == Topology::HiRise) {
        spec.topo = Topology::HiRise;
        spec.layers = 4;
        spec.channels = 4;
        spec.arb = ArbScheme::Clrg;
    } else {
        spec.topo = Topology::Flat2D;
        spec.arb = ArbScheme::Lrg;
    }
    sim::SimConfig cfg;
    cfg.injectionRate = rate;
    cfg.warmupCycles = kLowLoadWarmup;
    cfg.measureCycles = measure;
    cfg.denseStepping = state.range(1) != 0;
    cfg.legacySatQueues = legacySatQueues;
    for (auto _ : state) {
        sim::NetworkSim sim(
            spec, cfg, std::make_shared<traffic::UniformRandom>(radix));
        auto r = sim.run();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * (kLowLoadWarmup + measure)));
}

} // namespace

static void
BM_LowLoadRun_HiRise(benchmark::State &state)
{
    loadedRun(state, Topology::HiRise, kLowLoadRate, kLowLoadMeasure);
}

static void
BM_LowLoadRun_Flat2d(benchmark::State &state)
{
    loadedRun(state, Topology::Flat2D, kLowLoadRate, kLowLoadMeasure);
}

/** Saturation A/B: guards the "event mode must not regress at high
 *  load" side of the trade (the heap hands over to per-cycle polling
 *  above NetworkSim::kInjHeapMaxRate). */
static void
BM_SaturationRun_HiRise(benchmark::State &state)
{
    loadedRun(state, Topology::HiRise, 1.0, 5000);
}

/** Same saturated run with cfg.legacySatQueues pinning the
 *  materialized source queues, so the virtual-source-queue speedup is
 *  readable as BM_SaturationRun_HiRise over this entry. */
static void
BM_SaturationRun_HiRise_Legacy(benchmark::State &state)
{
    loadedRun(state, Topology::HiRise, 1.0, 5000, true);
}

constexpr net::Cycle kSatMeasure = 5000;

/**
 * Batched multi-replica counterpart of BM_SaturationRun_HiRise: R
 * independent seeds of the same saturated spec advance in lockstep
 * through one sim::BatchSim (the engine runPointsCached uses for
 * grouped cache misses). Items = R x simulated cycles, so
 * items_per_second here divided by BM_SaturationRun_HiRise/128/0's
 * reads directly as the per-replica batching speedup.
 */
static void
BM_BatchedRun_HiRise(benchmark::State &state)
{
    const auto radix = static_cast<std::uint32_t>(state.range(0));
    const auto replicas =
        static_cast<std::uint32_t>(state.range(1));
    SwitchSpec spec;
    spec.topo = Topology::HiRise;
    spec.radix = radix;
    spec.layers = 4;
    spec.channels = 4;
    spec.arb = ArbScheme::Clrg;
    sim::SimConfig cfg;
    cfg.injectionRate = 1.0;
    cfg.warmupCycles = kLowLoadWarmup;
    cfg.measureCycles = kSatMeasure;
    for (auto _ : state) {
        std::vector<std::shared_ptr<traffic::TrafficPattern>> pats;
        std::vector<sim::BatchPoint> pts;
        for (std::uint32_t r = 0; r < replicas; ++r) {
            pats.push_back(
                std::make_shared<traffic::UniformRandom>(radix));
            pts.push_back(
                {1.0, r == 0 ? cfg.seed : shardSeed(cfg.seed, r)});
        }
        sim::BatchSim batch(spec, cfg, std::move(pats), pts);
        auto res = batch.run();
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * replicas *
        (kLowLoadWarmup + kSatMeasure)));
}

// Args: {radix, dense? 1 : 0}.
BENCHMARK(BM_LowLoadRun_HiRise)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowLoadRun_Flat2d)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SaturationRun_HiRise)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SaturationRun_HiRise_Legacy)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);
// Args: {radix, replica lanes}.
BENCHMARK(BM_BatchedRun_HiRise)
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8})
    ->Unit(benchmark::kMillisecond);
