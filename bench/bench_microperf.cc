/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: arbiter
 * decision rate, fabric arbitration cycles, and end-to-end simulated
 * cycles per second for each topology. These measure the tool, not
 * the paper's system; the table/figure binaries measure the system.
 */

#include <benchmark/benchmark.h>

#include "arb/matrix_arbiter.hh"
#include "arb/sub_block_arbiter.hh"
#include "common/random.hh"
#include "sim/network_sim.hh"
#include "traffic/pattern.hh"

using namespace hirise;

static void
BM_MatrixArbiterPick(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    arb::MatrixArbiter a(n);
    Rng rng(1);
    std::vector<bool> req(n);
    for (std::uint32_t i = 0; i < n; ++i)
        req[i] = rng.bernoulli(0.5);
    for (auto _ : state) {
        auto w = a.pick(req);
        benchmark::DoNotOptimize(w);
        if (w != arb::MatrixArbiter::kNone)
            a.update(w);
    }
}
BENCHMARK(BM_MatrixArbiterPick)->Arg(16)->Arg(64)->Arg(128);

static void
BM_ClrgSubArbiter(benchmark::State &state)
{
    arb::ClrgSubArbiter sub(13, 64, 2);
    Rng rng(2);
    std::vector<arb::SubBlockRequest> reqs(13);
    for (std::uint32_t p = 0; p < 13; ++p) {
        reqs[p].valid = rng.bernoulli(0.5);
        reqs[p].primaryInput = static_cast<std::uint32_t>(
            rng.below(64));
    }
    for (auto _ : state) {
        auto w = sub.arbitrate(reqs);
        benchmark::DoNotOptimize(w);
    }
}
BENCHMARK(BM_ClrgSubArbiter);

namespace {

SwitchSpec
specFor(int topo)
{
    SwitchSpec s;
    if (topo == 0) {
        s.topo = Topology::Flat2D;
        s.arb = ArbScheme::Lrg;
    } else {
        s.topo = Topology::HiRise;
        s.layers = 4;
        s.channels = 4;
        s.arb = topo == 1 ? ArbScheme::LayerLrg : ArbScheme::Clrg;
    }
    s.radix = 64;
    return s;
}

} // namespace

static void
BM_NetworkSimCycle(benchmark::State &state)
{
    sim::SimConfig cfg;
    cfg.injectionRate = 0.15;
    auto spec = specFor(static_cast<int>(state.range(0)));
    sim::NetworkSim sim(spec, cfg,
                        std::make_shared<traffic::UniformRandom>(64));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSimCycle)->Arg(0)->Arg(1)->Arg(2);

BENCHMARK_MAIN();
