/**
 * @file
 * Ablation: CLRG class-count sensitivity (DESIGN.md E-A1).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"ablate_classes", ablateClassCount}});
}
