/**
 * @file
 * Regenerates the paper's Fig9c (see DESIGN.md experiment index).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"fig9c", fig9c}});
}
