/**
 * @file
 * Shared main for the google-benchmark suites. Replaces
 * BENCHMARK_MAIN() so the JSON context records how *this repo* was
 * compiled ("hirise_build_type"): google-benchmark's own
 * library_build_type field describes the installed libbenchmark, which
 * on some hosts is a debug build even when the suite itself is
 * Release. scripts/run_microbench.sh refuses to record results unless
 * hirise_build_type is "release".
 */

#include <benchmark/benchmark.h>

#include "common/simd.hh"

int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("hirise_build_type", "release");
#else
    benchmark::AddCustomContext("hirise_build_type", "debug");
#endif
    // Which kernel tier the run dispatched to (scalar vs avx2), so a
    // baseline captured on one tier is never silently compared against
    // the other (scripts/perf_smoke.py surfaces the field).
    benchmark::AddCustomContext(
        "hirise_simd_tier",
        hirise::simd::tierName(hirise::simd::activeTier()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
