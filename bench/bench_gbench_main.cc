/**
 * @file
 * Shared main for the google-benchmark suites. Replaces
 * BENCHMARK_MAIN() for two reasons:
 *
 * 1. The JSON context records how *this repo* was compiled
 *    ("hirise_build_type") plus the dispatched SIMD tier
 *    ("hirise_simd_tier"), so baselines are never silently compared
 *    across build types or kernel tiers.
 *
 * 2. The file reporter stamps "library_build_type" from this
 *    translation unit's NDEBUG instead of the installed
 *    libbenchmark's. The timing-loop machinery (State::KeepRunning
 *    and friends) is header-inlined into the suite, so the build mode
 *    that governs the measured numbers is the suite's own; Debian's
 *    libbenchmark .so is compiled without NDEBUG and stamps every run
 *    "debug" regardless, which would poison the build-type guards in
 *    scripts/run_microbench.sh and scripts/perf_smoke.py. Run entries
 *    ("benchmarks": [...]) are inherited from the stock JSONReporter,
 *    so their schema tracks the library.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <ctime>
#include <map>
#include <ostream>
#include <string>

#include "common/simd.hh"

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

class OwnBuildTypeJsonReporter : public benchmark::JSONReporter
{
  public:
    bool
    ReportContext(const Context &ctx) override
    {
        std::ostream &out = GetOutputStream();
        out << "{\n  \"context\": {\n";

        char when[64] = "";
        std::time_t now = std::time(nullptr);
        std::tm tmb{};
        localtime_r(&now, &tmb);
        std::strftime(when, sizeof(when), "%FT%T%z", &tmb);
        out << "    \"date\": \"" << when << "\",\n";
        out << "    \"host_name\": \"" << jsonEscape(ctx.sys_info.name)
            << "\",\n";
        out << "    \"executable\": \""
            << jsonEscape(Context::executable_name) << "\",\n";
        out << "    \"num_cpus\": " << ctx.cpu_info.num_cpus << ",\n";
        out << "    \"mhz_per_cpu\": "
            << static_cast<long>(ctx.cpu_info.cycles_per_second / 1e6 +
                                 0.5)
            << ",\n";
        out << "    \"cpu_scaling_enabled\": "
            << (ctx.cpu_info.scaling == benchmark::CPUInfo::ENABLED
                    ? "true"
                    : "false")
            << ",\n";
        out << "    \"caches\": [";
        for (std::size_t i = 0; i < ctx.cpu_info.caches.size(); ++i) {
            const auto &c = ctx.cpu_info.caches[i];
            out << (i ? "," : "") << "\n      {\n"
                << "        \"type\": \"" << jsonEscape(c.type)
                << "\",\n"
                << "        \"level\": " << c.level << ",\n"
                << "        \"size\": " << c.size << ",\n"
                << "        \"num_sharing\": " << c.num_sharing
                << "\n      }";
        }
        out << "\n    ],\n";
        out << "    \"load_avg\": [";
        for (std::size_t i = 0; i < ctx.cpu_info.load_avg.size(); ++i)
            out << (i ? "," : "") << ctx.cpu_info.load_avg[i];
        out << "],\n";
#ifdef NDEBUG
        out << "    \"library_build_type\": \"release\"";
#else
        out << "    \"library_build_type\": \"debug\"";
#endif
        if (const auto *cc = benchmark::internal::GetGlobalContext()) {
            for (const auto &kv : *cc)
                out << ",\n    \"" << jsonEscape(kv.first) << "\": \""
                    << jsonEscape(kv.second) << "\"";
        }
        out << "\n  },\n  \"benchmarks\": [\n";
        return true;
    }
};

} // namespace

int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("hirise_build_type", "release");
#else
    benchmark::AddCustomContext("hirise_build_type", "debug");
#endif
    // Which kernel tier the run dispatched to (scalar/avx2/avx512), so
    // a baseline captured on one tier is never silently compared
    // against another (scripts/perf_smoke.py surfaces the field).
    benchmark::AddCustomContext(
        "hirise_simd_tier",
        hirise::simd::tierName(hirise::simd::activeTier()));

    // The file reporter is only handed over when --benchmark_out was
    // given; otherwise RunSpecifiedBenchmarks would default its stream
    // to stdout and interleave JSON with the console report.
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::ConsoleReporter display;
    OwnBuildTypeJsonReporter file;
    benchmark::RunSpecifiedBenchmarks(&display,
                                      has_out ? &file : nullptr);
    benchmark::Shutdown();
    return 0;
}
