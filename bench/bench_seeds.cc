/**
 * @file
 * Seed-sensitivity error bars for the headline throughput numbers.
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"seeds", seedSensitivity}});
}
