/**
 * @file
 * Extension: TSV/L2LC fault-tolerance study.
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"fault", faultTolerance}});
}
