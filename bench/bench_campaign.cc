/**
 * @file
 * google-benchmark suite for the campaign engine: the persistent
 * work-stealing pool against the old spawn-per-call fork-join
 * parallelMap, cold- vs warm-cache load sweeps, and serial vs
 * speculative saturation search. These quantify the campaign-layer
 * claims in docs/HOTPATH.md; bench_microperf covers the per-cycle
 * simulation hot path.
 */

#include <benchmark/benchmark.h>

#include <numeric>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "common/thread_pool.hh"
#include "sim/sweep.hh"
#include "traffic/pattern.hh"

using namespace hirise;

namespace {

/** The pre-campaign parallelMap: spawn max_threads std::threads per
 *  call, strided item assignment, join all. Kept here verbatim as the
 *  baseline the persistent pool replaces. */
template <typename T, typename Fn>
auto
spawnPerCallMap(const std::vector<T> &items, Fn fn,
                unsigned max_threads = 0)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    using R = std::invoke_result_t<Fn, const T &>;
    std::vector<R> out(items.size());
    unsigned hw = std::thread::hardware_concurrency();
    unsigned n = max_threads ? max_threads : (hw ? hw : 1);
    n = std::min<unsigned>(n, static_cast<unsigned>(items.size()));
    if (n <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            out[i] = fn(items[i]);
        return out;
    }
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = t; i < items.size(); i += n)
                out[i] = fn(items[i]);
        });
    }
    for (auto &th : threads)
        th.join();
    return out;
}

sim::SimConfig
quickCfg()
{
    sim::SimConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    cfg.seed = 7;
    return cfg;
}

SwitchSpec
hirise64()
{
    SwitchSpec s;
    s.topo = Topology::HiRise;
    s.radix = 64;
    s.layers = 4;
    s.channels = 4;
    s.arb = ArbScheme::Clrg;
    return s;
}

sim::PatternFactory
uniform64()
{
    return [] {
        return std::make_shared<traffic::UniformRandom>(64);
    };
}

std::vector<double>
sweepLoads()
{
    std::vector<double> loads;
    for (int i = 1; i <= 12; ++i)
        loads.push_back(0.02 * i);
    return loads;
}

// ---------------------------------------------------------------------
// Pool dispatch overhead: many tiny tasks expose per-task dispatch
// cost vs the old per-call thread spawn. Note spawnPerCallMap
// degenerates to a plain serial loop when hardware_concurrency is 1,
// so this comparison is only meaningful on a multi-core host.
// ---------------------------------------------------------------------

void
BM_SpawnPerCallMap_TinyTasks(benchmark::State &state)
{
    std::vector<int> items(256);
    std::iota(items.begin(), items.end(), 0);
    for (auto _ : state) {
        auto out = spawnPerCallMap(
            items, [](const int &x) { return x * x; });
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SpawnPerCallMap_TinyTasks)->Unit(benchmark::kMicrosecond);

void
BM_PooledParallelMap_TinyTasks(benchmark::State &state)
{
    ThreadPool pool(0);
    std::vector<int> items(256);
    std::iota(items.begin(), items.end(), 0);
    for (auto _ : state) {
        auto out = parallelMap(
            items, [](const int &x) { return x * x; }, 0, &pool);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_PooledParallelMap_TinyTasks)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// Campaign workloads: a figure-style load sweep, serial vs pool vs
// warm cache.
// ---------------------------------------------------------------------

void
BM_LoadSweep_Serial(benchmark::State &state)
{
    auto loads = sweepLoads();
    for (auto _ : state) {
        sim::SimCache cache(64); // fresh: every point simulates
        sim::CampaignOptions opt;
        opt.cache = &cache;
        opt.maxThreads = 1;
        auto pts = sim::loadSweep(hirise64(), quickCfg(), uniform64(),
                                  loads, opt);
        benchmark::DoNotOptimize(pts);
    }
}
BENCHMARK(BM_LoadSweep_Serial)->Unit(benchmark::kMillisecond);

void
BM_LoadSweep_PoolColdCache(benchmark::State &state)
{
    ThreadPool pool(0);
    auto loads = sweepLoads();
    for (auto _ : state) {
        sim::SimCache cache(64);
        sim::CampaignOptions opt;
        opt.pool = &pool;
        opt.cache = &cache;
        auto pts = sim::loadSweep(hirise64(), quickCfg(), uniform64(),
                                  loads, opt);
        benchmark::DoNotOptimize(pts);
    }
}
BENCHMARK(BM_LoadSweep_PoolColdCache)->Unit(benchmark::kMillisecond);

void
BM_LoadSweep_WarmCache(benchmark::State &state)
{
    ThreadPool pool(0);
    auto loads = sweepLoads();
    sim::SimCache cache(64);
    sim::CampaignOptions opt;
    opt.pool = &pool;
    opt.cache = &cache;
    // Populate once; the measured loop is pure cache service.
    auto warmup = sim::loadSweep(hirise64(), quickCfg(), uniform64(),
                                 loads, opt);
    benchmark::DoNotOptimize(warmup);
    for (auto _ : state) {
        auto pts = sim::loadSweep(hirise64(), quickCfg(), uniform64(),
                                  loads, opt);
        benchmark::DoNotOptimize(pts);
    }
}
BENCHMARK(BM_LoadSweep_WarmCache)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Saturation search: serial bisection vs speculative tree.
// ---------------------------------------------------------------------

void
BM_SaturationSearch_Serial(benchmark::State &state)
{
    for (auto _ : state) {
        // saturationLoad memoizes through the global cache; a private
        // fresh cache per iteration would hide nothing here because
        // the serial path IS the simulations. Use speculative with
        // depth 1 and a fresh cache for an exact serial schedule.
        sim::SimCache cache(256);
        sim::CampaignOptions opt;
        opt.cache = &cache;
        opt.maxThreads = 1;
        double sat = sim::saturationLoadSpeculative(
            hirise64(), quickCfg(), uniform64(), 0.0, 0.5, 8, 1, opt);
        benchmark::DoNotOptimize(sat);
    }
}
BENCHMARK(BM_SaturationSearch_Serial)->Unit(benchmark::kMillisecond);

void
BM_SaturationSearch_Speculative(benchmark::State &state)
{
    ThreadPool pool(0);
    for (auto _ : state) {
        sim::SimCache cache(256);
        sim::CampaignOptions opt;
        opt.pool = &pool;
        opt.cache = &cache;
        double sat = sim::saturationLoadSpeculative(
            hirise64(), quickCfg(), uniform64(), 0.0, 0.5, 8, 2, opt);
        benchmark::DoNotOptimize(sat);
    }
}
BENCHMARK(BM_SaturationSearch_Speculative)->Unit(benchmark::kMillisecond);

} // namespace

// main() is bench_gbench_main.cc (records hirise_build_type).
