/**
 * @file
 * Section VI-B pathological inter-layer corner case.
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"corner", cornerInterLayer}});
}
