/**
 * @file
 * Regenerates the paper's Fig12 (see DESIGN.md experiment index).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"fig12", fig12}});
}
