/**
 * @file
 * google-benchmark suite for the campaign service layer
 * (docs/SERVICE.md §Benchmark): end-to-end serving through a real
 * daemon — unix socket, framed protocol, dispatcher thread — vs the
 * same campaign evaluated in-process, both against a warm cache so
 * the measured delta is pure protocol + queueing + streaming
 * overhead. Also micro-covers the two serialization hot spots of the
 * wire path (frame codec, canonical row formatting).
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "sim/sim_cache.hh"
#include "svc/campaign.hh"
#include "svc/campaign_spec.hh"
#include "svc/client.hh"
#include "svc/frame.hh"
#include "svc/server.hh"

using namespace hirise;

namespace {

svc::CampaignSpec
benchSpec()
{
    svc::Json doc;
    std::string err;
    bool ok = svc::Json::parse(
        R"({
          "name": "bench",
          "switch": {"topology": "hirise", "radix": 16, "layers": 2,
                     "channels": 2, "arb": "clrg"},
          "sim": {"warmup_cycles": 200, "measure_cycles": 1000,
                  "seed": 7},
          "pattern": {"kind": "uniform-random"},
          "loads": [0.05, 0.1, 0.15, 0.2],
          "seeds": [1, 2]
        })",
        &doc, &err);
    svc::CampaignSpec spec;
    if (!ok || !svc::parseCampaignSpec(doc, &spec, &err)) {
        std::fprintf(stderr, "bench spec: %s\n", err.c_str());
        std::abort();
    }
    return spec;
}

/** In-process evaluation with a warm private cache: the floor the
 *  daemon path is compared against. */
void
BM_DirectRunPoints(benchmark::State &state)
{
    svc::CampaignSpec spec = benchSpec();
    sim::SimCache cache(4096);
    svc::RunCampaignOptions opt;
    opt.cache = &cache;
    svc::runCampaign(spec, opt); // warm the cache once
    std::size_t rows = 0;
    for (auto _ : state) {
        opt.onRows = [&rows](std::size_t,
                             std::vector<std::string> r) {
            rows += r.size();
        };
        svc::CampaignOutcome out = svc::runCampaign(spec, opt);
        benchmark::DoNotOptimize(out.pointsDone);
    }
    state.counters["rows"] =
        benchmark::Counter(double(rows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DirectRunPoints)->Unit(benchmark::kMicrosecond);

/** Full serving loop: connect, submit with streaming, drain every
 *  row frame and the terminal frame. One daemon (and one warm cache)
 *  serves all iterations, like production. */
void
BM_ServeCampaign(benchmark::State &state)
{
    std::string dir =
        "/tmp/hirise_svcbench_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    sim::SimCache cache(4096);
    svc::ServerOptions sopt;
    sopt.socketPath = dir + "/s.sock";
    sopt.cache = &cache;
    svc::Server server(sopt);
    std::string err;
    if (!server.start(&err)) {
        state.SkipWithError(err.c_str());
        std::filesystem::remove_all(dir);
        return;
    }
    std::thread loop([&server] { server.run(); });

    svc::CampaignSpec spec = benchSpec();
    svc::Json req = svc::Json::object();
    req.set("op", "submit");
    req.set("spec", spec.toJson());
    req.set("stream", true);

    auto serveOnce = [&](svc::Client &c) -> bool {
        std::string e;
        if (!c.send(req, &e))
            return false;
        svc::Json resp;
        if (!c.recv(&resp, &e) || !resp["ok"].asBool())
            return false;
        std::string payload;
        while (c.recvRaw(&payload, &e)) {
            if (payload.rfind("{\"done\":", 0) == 0)
                return true;
            benchmark::DoNotOptimize(payload.data());
        }
        return false;
    };

    // Warm the cache (and fault in the whole path) once.
    {
        auto c = svc::Client::connectUnix(sopt.socketPath, &err);
        if (!c || !serveOnce(*c)) {
            state.SkipWithError("warmup submit failed");
            server.shutdown();
            loop.join();
            std::filesystem::remove_all(dir);
            return;
        }
    }

    for (auto _ : state) {
        auto c = svc::Client::connectUnix(sopt.socketPath, &err);
        if (!c || !serveOnce(*c)) {
            state.SkipWithError("submit failed");
            break;
        }
    }

    server.shutdown();
    loop.join();
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ServeCampaign)->Unit(benchmark::kMicrosecond);

/** Frame codec round trip at result-row payload sizes. */
void
BM_FrameCodecRoundTrip(benchmark::State &state)
{
    std::string payload(std::size_t(state.range(0)), 'x');
    for (auto _ : state) {
        std::string wire;
        svc::frameAppend(wire, payload);
        svc::FrameDecoder dec;
        dec.feed(wire);
        std::string out;
        dec.next(&out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_FrameCodecRoundTrip)->Arg(256)->Arg(4096);

/** Canonical row serialization (the per-point streaming cost). */
void
BM_ResultRowFormat(benchmark::State &state)
{
    sim::RunPoint pt{0.3, 12345};
    sim::SimResult r{};
    r.offeredFlitsPerCycle = 3.1999999999999997;
    r.acceptedFlitsPerCycle = 3.2;
    r.avgLatencyCycles = 4.714285714285714;
    r.p99LatencyCycles = 9.0;
    r.avgQueueingCycles = 1.25;
    r.packetsDelivered = 128000;
    r.inFlightAtMeasureEnd = 12;
    r.fairness = 0.998;
    std::size_t i = 0;
    for (auto _ : state) {
        std::string row = svc::resultRow(i++ & 1023, pt, r);
        benchmark::DoNotOptimize(row.data());
    }
}
BENCHMARK(BM_ResultRowFormat);

} // namespace
