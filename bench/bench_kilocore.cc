/**
 * @file
 * Section VI-E: kilo-core mesh of Hi-Rise switches (Fig 13).
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv, {{"kilocore", kiloCore}});
}
