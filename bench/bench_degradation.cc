/**
 * @file
 * Extension: fault-schedule degradation vs the degraded MWM bound.
 */

#include "harness/bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace hirise::harness;
    return benchMain(argc, argv,
                     {{"degradation", degradation},
                      {"degradation_latency", degradationLatency}});
}
