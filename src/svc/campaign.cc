#include "svc/campaign.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "sim/network_sim.hh"
#include "svc/json.hh"

namespace hirise::svc {

namespace {

void
appendField(std::string &out, const char *name, double v)
{
    appendJsonString(out, name);
    out += ':';
    out += numberToString(v);
}

} // namespace

std::string
resultRow(std::size_t index, const sim::RunPoint &pt,
          const sim::SimResult &r)
{
    // Hand-rolled for a fixed member order and zero intermediate
    // Json allocation: this runs once per point but is also the
    // byte-identity contract, so keep it boring and explicit.
    std::string out;
    out.reserve(320);
    out += '{';
    appendField(out, "row", double(index));
    out += ',';
    appendField(out, "load", pt.load);
    out += ',';
    appendField(out, "seed", double(pt.seed));
    out += ',';
    appendField(out, "offered_fpc", r.offeredFlitsPerCycle);
    out += ',';
    appendField(out, "accepted_fpc", r.acceptedFlitsPerCycle);
    out += ',';
    appendField(out, "avg_latency", r.avgLatencyCycles);
    out += ',';
    appendField(out, "p99_latency", r.p99LatencyCycles);
    out += ',';
    appendField(out, "avg_queueing", r.avgQueueingCycles);
    out += ',';
    appendField(out, "packets", double(r.packetsDelivered));
    out += ',';
    appendField(out, "in_flight", double(r.inFlightAtMeasureEnd));
    out += ',';
    appendField(out, "latency_overflow",
                double(r.latencyOverflowPackets));
    out += ',';
    appendField(out, "dropped", double(r.packetsDropped));
    out += ',';
    appendField(out, "fairness", r.fairness);
    out += '}';
    return out;
}

namespace {

std::string
snapshotPath(const std::string &dir, std::uint64_t key)
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.snap",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

/** Scalar checkpointed evaluation of one point: resume from the
 *  point's snapshot when one exists, advance in checkpoint_cycles
 *  slices saving a snapshot after each, finish with run() (which
 *  aggregates over the absolute measurement window, so resumed and
 *  uninterrupted executions are bit-identical), and clean up. */
bool
runPointCheckpointed(const CampaignSpec &spec,
                     const sim::RunPoint &pt, sim::SimCache &cache,
                     const RunCampaignOptions &opt,
                     sim::PatternFactory const &make,
                     std::string_view desc, sim::SimResult *out)
{
    sim::SimConfig cfg = spec.cfg;
    cfg.injectionRate = pt.load;
    cfg.seed = pt.seed;
    std::uint64_t key = sim::SimCache::key(spec.sw, cfg, desc);
    if (cache.lookup(key, out))
        return true;

    sim::NetworkSim ns(spec.sw, cfg, make());
    std::string snap = snapshotPath(opt.snapshotDir, key);
    ns.loadSnapshotFile(snap); // no snapshot / stale config: fresh run

    net::Cycle end = cfg.warmupCycles + cfg.measureCycles;
    while (ns.now() + spec.checkpointCycles < end) {
        ns.advanceTo(ns.now() + spec.checkpointCycles);
        ns.saveSnapshotFile(snap);
        if (opt.cancelled && opt.cancelled())
            return false; // snapshot stays for the resume
    }
    *out = ns.run();
    cache.store(key, *out);
    std::error_code ec;
    std::filesystem::remove(snap, ec);
    return true;
}

} // namespace

CampaignOutcome
runCampaign(const CampaignSpec &spec, const RunCampaignOptions &opt)
{
    sim::SimCache &cache =
        opt.cache ? *opt.cache : sim::SimCache::global();
    sim::PatternFactory make = spec.patternFactory();
    std::vector<sim::RunPoint> pts = spec.points();

    CampaignOutcome outcome;
    outcome.pointsTotal = pts.size();
    sim::SimCache::Stats before = cache.stats();

    bool checkpointed =
        spec.checkpointCycles > 0 && !opt.snapshotDir.empty();
    std::string desc;
    if (checkpointed)
        desc = make()->descriptor();

    std::size_t shard = opt.shardPoints;
    if (shard == 0)
        shard = std::max<std::size_t>(2 * sim::batchReplicas(), 2);

    for (std::size_t first = 0; first < pts.size(); first += shard) {
        if (opt.cancelled && opt.cancelled()) {
            outcome.cancelled = true;
            break;
        }
        std::size_t n = std::min(shard, pts.size() - first);
        std::vector<sim::RunPoint> sub(pts.begin() + first,
                                       pts.begin() + first + n);
        std::vector<sim::SimResult> results;
        if (checkpointed) {
            results.resize(n);
            bool aborted = false;
            for (std::size_t i = 0; i < n; ++i) {
                if (!runPointCheckpointed(spec, sub[i], cache, opt,
                                          make, desc, &results[i])) {
                    // Cancelled mid-point: emit the completed prefix
                    // of this shard, then stop.
                    results.resize(i);
                    sub.resize(i);
                    n = i;
                    aborted = true;
                    break;
                }
            }
            if (aborted)
                outcome.cancelled = true;
        } else {
            sim::CampaignOptions copt;
            copt.cache = &cache;
            results =
                sim::runPointsCached(spec.sw, spec.cfg, make, sub,
                                     copt);
        }
        if (n > 0) {
            std::vector<std::string> rows;
            rows.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                rows.push_back(
                    resultRow(first + i, sub[i], results[i]));
            outcome.pointsDone += n;
            if (opt.onRows)
                opt.onRows(first, std::move(rows));
        }
        if (outcome.cancelled)
            break;
    }

    sim::SimCache::Stats after = cache.stats();
    outcome.cacheDelta.hits = after.hits - before.hits;
    outcome.cacheDelta.misses = after.misses - before.misses;
    outcome.cacheDelta.diskHits = after.diskHits - before.diskHits;
    outcome.cacheDelta.stores = after.stores - before.stores;
    return outcome;
}

} // namespace hirise::svc
