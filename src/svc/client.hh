/**
 * @file
 * Blocking client connection to a campaign daemon (svc/server.hh):
 * connect over the unix socket (or loopback TCP), exchange framed
 * JSON requests/responses, and iterate streamed result-row frames.
 * Used by tools/campaign_client, the service tests, and the serving
 * benchmark; recvRaw() exposes the exact payload bytes so callers can
 * assert the byte-identity contract, not a reparse of it.
 */

#ifndef HIRISE_SVC_CLIENT_HH
#define HIRISE_SVC_CLIENT_HH

#include <memory>
#include <string>

#include "svc/frame.hh"
#include "svc/json.hh"

namespace hirise::svc {

class Client
{
  public:
    ~Client();
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a daemon's unix socket. Null + *err on failure. */
    static std::unique_ptr<Client>
    connectUnix(const std::string &path, std::string *err);

    /** Connect to a daemon's loopback TCP port. */
    static std::unique_ptr<Client> connectTcp(int port,
                                              std::string *err);

    /** Send one framed JSON request. */
    bool send(const Json &req, std::string *err);

    /** Block for the next frame's raw payload bytes. False on
     *  connection close or error. */
    bool recvRaw(std::string *payload, std::string *err);

    /** Block for the next frame, parsed. */
    bool recv(Json *out, std::string *err);

    /** send() + recv() convenience for single-response ops. */
    bool request(const Json &req, Json *resp, std::string *err);

  private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_;
    FrameDecoder dec_;
};

} // namespace hirise::svc

#endif // HIRISE_SVC_CLIENT_HH
