/**
 * @file
 * Campaign execution for the service layer: evaluate a CampaignSpec's
 * (load, seed) grid through the shared SimCache + BatchSim path
 * (sim::runPointsCached) and stream results back incrementally as
 * serialized JSON rows in deterministic point order.
 *
 * The byte-identity contract (docs/SERVICE.md): row i of a campaign
 * depends only on (spec, i). Rows carry no job id, no timestamps, no
 * daemon state, and every number is spelled through the canonical
 * svc::numberToString, so the daemon's streamed bytes equal a direct
 * in-process evaluation of the same spec — including after a kill and
 * resume, because completed points come back from the disk SimCache
 * and an in-progress point resumes from its PR-9 snapshot.
 */

#ifndef HIRISE_SVC_CAMPAIGN_HH
#define HIRISE_SVC_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sim_cache.hh"
#include "sim/sweep.hh"
#include "svc/campaign_spec.hh"

namespace hirise::svc {

/**
 * The canonical serialized result row for point @p index of
 * @p spec's grid: one compact JSON object, fixed member order,
 * canonical number spellings. This is THE row format — the daemon,
 * the client, the smoke test, and the benchmark all compare these
 * bytes directly.
 */
std::string resultRow(std::size_t index, const sim::RunPoint &pt,
                      const sim::SimResult &r);

/** Execution knobs for runCampaign (wired from daemon flags/env). */
struct RunCampaignOptions
{
    /** Result cache (null = SimCache::global()). */
    sim::SimCache *cache = nullptr;
    /** Directory for per-point PR-9 snapshots; checkpointing is live
     *  only when this is set AND spec.checkpointCycles > 0. */
    std::string snapshotDir;
    /** Points per streaming shard: each shard runs through
     *  runPointsCached as one unit, then its rows are emitted and the
     *  cancel flag is polled. 0 = default (2x batch lanes). */
    std::size_t shardPoints = 0;
    /** Polled between shards (and between checkpoint slices on the
     *  checkpointed path); returning true abandons remaining work. */
    std::function<bool()> cancelled;
    /** Called once per completed shard with the index of its first
     *  row and the serialized rows, in order. */
    std::function<void(std::size_t first,
                       std::vector<std::string> rows)>
        onRows;
};

struct CampaignOutcome
{
    std::size_t pointsTotal = 0;
    std::size_t pointsDone = 0; //!< rows emitted (prefix of the grid)
    bool cancelled = false;
    /** Cache activity attributable to this campaign (stats delta over
     *  the run; valid because one dispatcher runs jobs serially). */
    sim::SimCache::Stats cacheDelta;
};

/**
 * Evaluate @p spec's full grid in order, emitting rows shard by
 * shard. Points run through sim::runPointsCached (warm SimCache,
 * BatchSim grouping) unless the spec requests checkpointing, in which
 * case each point runs scalar with a snapshot saved every
 * spec.checkpointCycles cycles under opt.snapshotDir (resumed
 * automatically when a snapshot for the point already exists, deleted
 * on point completion). Both paths produce bit-identical SimResults.
 */
CampaignOutcome runCampaign(const CampaignSpec &spec,
                            const RunCampaignOptions &opt);

} // namespace hirise::svc

#endif // HIRISE_SVC_CAMPAIGN_HH
