/**
 * @file
 * Minimal self-contained JSON value + parser/serializer for the
 * campaign service layer (wire protocol frames and experiment-spec
 * files). No external dependencies; the subset implemented is full
 * RFC 8259 JSON minus \uXXXX surrogate pairs outside the BMP.
 *
 * Design points that matter to the service:
 *  - objects preserve insertion order, so a value serialized with
 *    dump() round-trips byte-identically and streamed result rows are
 *    deterministic (the byte-identity contract of docs/SERVICE.md);
 *  - numbers are doubles, serialized with %.17g when fractional (a
 *    round-trip-exact spelling) and as plain integers when integral,
 *    so equal doubles always produce equal bytes;
 *  - parse() never throws and never aborts: malformed input returns
 *    false with a position-annotated error, which is what lets the
 *    server treat every inbound frame as hostile (tests/svc_test.cc
 *    fuzzes this path).
 */

#ifndef HIRISE_SVC_JSON_HH
#define HIRISE_SVC_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hirise::svc {

class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, Json>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(int n) : type_(Type::Number), num_(n) {}
    Json(std::int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {}
    Json(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(std::string_view s) : type_(Type::String), str_(s) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool(bool dflt = false) const
    {
        return isBool() ? bool_ : dflt;
    }
    double asNumber(double dflt = 0.0) const
    {
        return isNumber() ? num_ : dflt;
    }
    const std::string &
    asString() const
    {
        static const std::string empty;
        return isString() ? str_ : empty;
    }

    const std::vector<Json> &
    items() const
    {
        static const std::vector<Json> empty;
        return isArray() ? arr_ : empty;
    }
    const std::vector<Member> &
    members() const
    {
        static const std::vector<Member> empty;
        return isObject() ? obj_ : empty;
    }

    std::size_t
    size() const
    {
        if (isArray())
            return arr_.size();
        if (isObject())
            return obj_.size();
        return 0;
    }

    /** Object member by key (null reference when absent / not an
     *  object). Lookup is linear: service objects are small. */
    const Json &operator[](std::string_view key) const;
    bool has(std::string_view key) const;

    /** Array element (null reference when out of range). */
    const Json &at(std::size_t i) const;

    /** Append to an array (value must be an array). */
    void push(Json v);
    /** Set (insert or overwrite) an object member, preserving the
     *  original insertion position on overwrite. */
    void set(std::string_view key, Json v);
    /** Mutable member access for in-place merge/override editing;
     *  creates the member (null) when absent. */
    Json &ref(std::string_view key);

    /** Compact single-line serialization (no whitespace). */
    std::string dump() const;
    void dumpTo(std::string &out) const;

    /**
     * Parse @p text into @p out. On failure returns false and, when
     * @p err is non-null, stores a message with the byte offset.
     * Trailing non-whitespace after the top-level value is an error.
     * Nesting beyond kMaxDepth is rejected (stack safety on hostile
     * input).
     */
    static bool parse(std::string_view text, Json *out,
                      std::string *err = nullptr);

    static constexpr int kMaxDepth = 64;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<Member> obj_;
};

/** Escape @p s as a JSON string literal (with quotes) onto @p out. */
void appendJsonString(std::string &out, std::string_view s);

/** Canonical number spelling shared by dump() and the row
 *  serializer: integers (fitting 2^53) print as integers, everything
 *  else as %.17g. Equal doubles yield equal bytes. */
std::string numberToString(double v);

} // namespace hirise::svc

#endif // HIRISE_SVC_JSON_HH
