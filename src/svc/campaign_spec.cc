#include "svc/campaign_spec.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "traffic/pattern.hh"

namespace hirise::svc {

namespace {

// ---------------------------------------------------------------------
// Enum spellings. Lower-case canonical names (distinct from the
// human-facing toString() forms in common/spec.cc, which carry
// display punctuation).
// ---------------------------------------------------------------------

struct EnumName
{
    const char *name;
    int value;
};

constexpr EnumName kTopologies[] = {
    {"flat2d", int(Topology::Flat2D)},
    {"folded3d", int(Topology::Folded3D)},
    {"hirise", int(Topology::HiRise)},
};

constexpr EnumName kArbs[] = {
    {"lrg", int(ArbScheme::Lrg)},
    {"layer-lrg", int(ArbScheme::LayerLrg)},
    {"wlrg", int(ArbScheme::Wlrg)},
    {"clrg", int(ArbScheme::Clrg)},
    {"islip", int(ArbScheme::Islip)},
    {"pim", int(ArbScheme::Pim)},
    {"wavefront", int(ArbScheme::Wavefront)},
};

constexpr EnumName kAllocs[] = {
    {"input-binned", int(ChannelAlloc::InputBinned)},
    {"output-binned", int(ChannelAlloc::OutputBinned)},
    {"priority", int(ChannelAlloc::Priority)},
};

template <std::size_t N>
const char *
enumName(const EnumName (&table)[N], int value)
{
    for (const auto &e : table) {
        if (e.value == value)
            return e.name;
    }
    return "?";
}

template <std::size_t N>
bool
enumValue(const EnumName (&table)[N], const std::string &name,
          int *out)
{
    for (const auto &e : table) {
        if (name == e.name) {
            *out = e.value;
            return true;
        }
    }
    return false;
}

template <std::size_t N>
std::string
enumChoices(const EnumName (&table)[N])
{
    std::string s;
    for (const auto &e : table) {
        if (!s.empty())
            s += "|";
        s += e.name;
    }
    return s;
}

// ---------------------------------------------------------------------
// Field readers: every getter reports a typed error instead of
// silently defaulting, so specs with typos fail loudly.
// ---------------------------------------------------------------------

struct Ctx
{
    std::string err;
    bool ok = true;

    bool
    fail(const std::string &msg)
    {
        if (ok) {
            err = msg;
            ok = false;
        }
        return false;
    }
};

bool
getU32(Ctx &c, const Json &obj, const char *key, std::uint32_t *out)
{
    const Json &v = obj[key];
    if (v.isNull())
        return true; // keep default
    double d = v.asNumber(-1.0);
    if (!v.isNumber() || d < 0 || d > 4294967295.0 ||
        d != std::floor(d))
        return c.fail(std::string(key) +
                      ": expected a non-negative integer");
    *out = static_cast<std::uint32_t>(d);
    return true;
}

bool
getU64(Ctx &c, const Json &obj, const char *key, std::uint64_t *out)
{
    const Json &v = obj[key];
    if (v.isNull())
        return true;
    double d = v.asNumber(-1.0);
    if (!v.isNumber() || d < 0 || d != std::floor(d) ||
        d > 9.007199254740992e15)
        return c.fail(std::string(key) +
                      ": expected a non-negative integer (<= 2^53)");
    *out = static_cast<std::uint64_t>(d);
    return true;
}

bool
getDouble(Ctx &c, const Json &obj, const char *key, double *out)
{
    const Json &v = obj[key];
    if (v.isNull())
        return true;
    if (!v.isNumber())
        return c.fail(std::string(key) + ": expected a number");
    *out = v.asNumber();
    return true;
}

template <std::size_t N>
bool
getEnum(Ctx &c, const Json &obj, const char *key,
        const EnumName (&table)[N], int *out)
{
    const Json &v = obj[key];
    if (v.isNull())
        return true;
    if (!v.isString() || !enumValue(table, v.asString(), out))
        return c.fail(std::string(key) + ": expected one of " +
                      enumChoices(table));
    return true;
}

/** Mirror of SwitchSpec::validate() with error returns instead of
 *  fatal(): the daemon parses hostile specs and must never exit. Keep
 *  the two in sync. */
bool
checkSwitch(Ctx &c, const SwitchSpec &s)
{
    auto isFlatScheme = [](ArbScheme a) {
        return a == ArbScheme::Lrg || a == ArbScheme::Islip ||
               a == ArbScheme::Pim || a == ArbScheme::Wavefront;
    };
    if (s.radix < 2 || s.radix > 4096)
        return c.fail("switch.radix must be in [2, 4096]");
    if (s.flitBits == 0)
        return c.fail("switch.flit_bits must be > 0");
    if (s.schedIters < 1)
        return c.fail("switch.sched_iters must be >= 1");
    if (s.topo == Topology::Flat2D) {
        if (!isFlatScheme(s.arb))
            return c.fail("a flat2d switch only supports "
                          "lrg|islip|pim|wavefront arbitration");
        return true;
    }
    if (s.layers < 2 || s.layers > s.radix)
        return c.fail("3D topologies need 2 <= layers <= radix");
    if (s.topo == Topology::Folded3D && s.arb != ArbScheme::Lrg)
        return c.fail("a folded3d switch uses lrg arbitration");
    if (s.topo == Topology::HiRise) {
        if (s.channels < 1)
            return c.fail("switch.channels must be >= 1");
        if (isFlatScheme(s.arb))
            return c.fail("hirise needs layer-lrg, wlrg, or clrg "
                          "arbitration");
        if (s.alloc == ChannelAlloc::InputBinned &&
            s.channels > s.portsPerLayer())
            return c.fail("more channels than inputs per layer");
        if (s.clrgMaxCount < 1)
            return c.fail("switch.clrg_max_count must be >= 1");
    }
    return true;
}

bool
parseLoads(Ctx &c, const Json &v, std::vector<double> *out)
{
    out->clear();
    if (v.isArray()) {
        for (const Json &l : v.items()) {
            if (!l.isNumber())
                return c.fail("loads: expected numbers");
            out->push_back(l.asNumber());
        }
    } else if (v.isObject()) {
        double from = -1, to = -1, step = 0;
        if (!getDouble(c, v, "from", &from) ||
            !getDouble(c, v, "to", &to) ||
            !getDouble(c, v, "step", &step))
            return false;
        if (!(step > 0) || to < from)
            return c.fail("loads: need from <= to and step > 0");
        if ((to - from) / step > 10000)
            return c.fail("loads: range describes > 10000 points");
        // Index-based grid, not repeated addition: the k-th load is
        // the same double no matter how the range was computed.
        auto n = static_cast<std::size_t>(
            std::floor((to - from) / step + 1e-9));
        for (std::size_t k = 0; k <= n; ++k)
            out->push_back(from + double(k) * step);
    } else {
        return c.fail("loads: expected an array or "
                      "{from, to, step}");
    }
    if (out->empty())
        return c.fail("loads: at least one point required");
    if (out->size() > 100000)
        return c.fail("loads: too many points");
    for (double l : *out) {
        if (!(l > 0.0) || l > 1.0 || std::isnan(l))
            return c.fail("loads: every load must be in (0, 1]");
    }
    return true;
}

bool
parsePattern(Ctx &c, const Json &v, const SwitchSpec &sw,
             PatternDecl *out)
{
    if (v.isNull())
        return true;
    if (!v.isObject())
        return c.fail("pattern: expected an object");
    const Json &kind = v["kind"];
    if (!kind.isNull()) {
        if (!kind.isString())
            return c.fail("pattern.kind: expected a string");
        out->kind = kind.asString();
    }
    if (!getU32(c, v, "hot", &out->hot) ||
        !getDouble(c, v, "mean_burst", &out->meanBurst) ||
        !getU32(c, v, "src_layer", &out->srcLayer) ||
        !getU32(c, v, "dst_layer", &out->dstLayer) ||
        !getU32(c, v, "dst", &out->dst))
        return false;
    if (v.has("sources")) {
        const Json &src = v["sources"];
        if (!src.isArray())
            return c.fail("pattern.sources: expected an array");
        out->sources.clear();
        for (const Json &s : src.items()) {
            double d = s.asNumber(-1.0);
            if (!s.isNumber() || d < 0 || d != std::floor(d))
                return c.fail("pattern.sources: expected integers");
            out->sources.push_back(static_cast<std::uint32_t>(d));
        }
    }

    const std::string &k = out->kind;
    if (k == "uniform-random" || k == "transpose" ||
        k == "bit-complement") {
        return true;
    }
    if (k == "hotspot") {
        if (out->hot >= sw.radix)
            return c.fail("pattern.hot: out of range");
        return true;
    }
    if (k == "bursty") {
        if (!(out->meanBurst >= 1.0) || out->meanBurst > 1e6)
            return c.fail("pattern.mean_burst must be in [1, 1e6]");
        return true;
    }
    if (k == "inter-layer-only") {
        if (sw.topo == Topology::Flat2D)
            return c.fail("pattern inter-layer-only needs a layered "
                          "topology");
        if (out->srcLayer >= sw.layers ||
            out->dstLayer >= sw.layers ||
            out->srcLayer == out->dstLayer)
            return c.fail("pattern src_layer/dst_layer: need two "
                          "distinct layers < switch.layers");
        return true;
    }
    if (k == "adversarial") {
        if (out->sources.empty())
            return c.fail("pattern adversarial needs sources");
        for (std::uint32_t s : out->sources) {
            if (s >= sw.radix)
                return c.fail("pattern.sources: out of range");
        }
        if (out->dst >= sw.radix)
            return c.fail("pattern.dst: out of range");
        return true;
    }
    return c.fail("pattern.kind: unknown kind '" + k +
                  "' (uniform-random|hotspot|bursty|transpose|"
                  "bit-complement|inter-layer-only|adversarial)");
}

} // namespace

sim::PatternFactory
CampaignSpec::patternFactory() const
{
    using namespace traffic;
    const PatternDecl p = pattern;
    const SwitchSpec s = sw;
    if (p.kind == "hotspot") {
        return [s, p] {
            return std::make_shared<Hotspot>(s.radix, p.hot);
        };
    }
    if (p.kind == "bursty") {
        return [s, p] {
            return std::make_shared<Bursty>(s.radix, p.meanBurst);
        };
    }
    if (p.kind == "transpose") {
        return [s] { return std::make_shared<Transpose>(s.radix); };
    }
    if (p.kind == "bit-complement") {
        return
            [s] { return std::make_shared<BitComplement>(s.radix); };
    }
    if (p.kind == "inter-layer-only") {
        return [s, p] {
            return std::make_shared<InterLayerOnly>(
                s.portsPerLayer(), s.channels, p.srcLayer, p.dstLayer);
        };
    }
    if (p.kind == "adversarial") {
        return [s, p] {
            return std::make_shared<Adversarial>(p.sources, p.dst,
                                                 s.radix);
        };
    }
    return
        [s] { return std::make_shared<UniformRandom>(s.radix); };
}

std::vector<sim::RunPoint>
CampaignSpec::points() const
{
    std::vector<sim::RunPoint> pts;
    pts.reserve(loads.size() * seeds.size());
    for (std::uint64_t s : seeds) {
        for (double l : loads)
            pts.push_back({l, s});
    }
    return pts;
}

Json
CampaignSpec::toJson() const
{
    Json sw_j = Json::object();
    sw_j.set("topology", enumName(kTopologies, int(sw.topo)));
    sw_j.set("radix", double(sw.radix));
    sw_j.set("layers", double(sw.layers));
    sw_j.set("channels", double(sw.channels));
    sw_j.set("flit_bits", double(sw.flitBits));
    sw_j.set("arb", enumName(kArbs, int(sw.arb)));
    sw_j.set("alloc", enumName(kAllocs, int(sw.alloc)));
    sw_j.set("clrg_max_count", double(sw.clrgMaxCount));
    sw_j.set("sched_iters", double(sw.schedIters));
    sw_j.set("sched_seed", double(sw.schedSeed));

    Json sim_j = Json::object();
    sim_j.set("vcs", double(cfg.numVcs));
    sim_j.set("vc_depth", double(cfg.vcDepth));
    sim_j.set("packet_len", double(cfg.packetLen));
    sim_j.set("warmup_cycles", double(cfg.warmupCycles));
    sim_j.set("measure_cycles", double(cfg.measureCycles));
    sim_j.set("seed", double(cfg.seed));

    Json pat_j = Json::object();
    pat_j.set("kind", pattern.kind);
    if (pattern.kind == "hotspot")
        pat_j.set("hot", double(pattern.hot));
    if (pattern.kind == "bursty")
        pat_j.set("mean_burst", pattern.meanBurst);
    if (pattern.kind == "inter-layer-only") {
        pat_j.set("src_layer", double(pattern.srcLayer));
        pat_j.set("dst_layer", double(pattern.dstLayer));
    }
    if (pattern.kind == "adversarial") {
        Json src = Json::array();
        for (std::uint32_t s : pattern.sources)
            src.push(double(s));
        pat_j.set("sources", std::move(src));
        pat_j.set("dst", double(pattern.dst));
    }

    Json loads_j = Json::array();
    for (double l : loads)
        loads_j.push(l);
    Json seeds_j = Json::array();
    for (std::uint64_t s : seeds)
        seeds_j.push(double(s));

    Json doc = Json::object();
    doc.set("name", name);
    doc.set("switch", std::move(sw_j));
    doc.set("sim", std::move(sim_j));
    doc.set("pattern", std::move(pat_j));
    doc.set("loads", std::move(loads_j));
    doc.set("seeds", std::move(seeds_j));
    doc.set("checkpoint_cycles", double(checkpointCycles));
    return doc;
}

std::uint64_t
CampaignSpec::hash() const
{
    std::string canon = toJson().dump();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char b : canon) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
parseCampaignSpec(const Json &doc, CampaignSpec *out, std::string *err)
{
    Ctx c;
    CampaignSpec spec;
    if (!doc.isObject()) {
        if (err)
            *err = "campaign spec: expected a JSON object";
        return false;
    }

    const Json &name = doc["name"];
    if (!name.isNull()) {
        if (!name.isString() || name.asString().empty() ||
            name.asString().size() > 128) {
            if (err)
                *err = "name: expected a non-empty string (<= 128 "
                       "chars)";
            return false;
        }
        spec.name = name.asString();
    }

    const Json &sw = doc["switch"];
    if (!sw.isNull() && !sw.isObject())
        c.fail("switch: expected an object");
    if (c.ok && sw.isObject()) {
        int topo = int(spec.sw.topo), arb = int(spec.sw.arb),
            alloc = int(spec.sw.alloc);
        getEnum(c, sw, "topology", kTopologies, &topo);
        getEnum(c, sw, "arb", kArbs, &arb);
        getEnum(c, sw, "alloc", kAllocs, &alloc);
        spec.sw.topo = Topology(topo);
        spec.sw.arb = ArbScheme(arb);
        spec.sw.alloc = ChannelAlloc(alloc);
        getU32(c, sw, "radix", &spec.sw.radix);
        getU32(c, sw, "layers", &spec.sw.layers);
        getU32(c, sw, "channels", &spec.sw.channels);
        getU32(c, sw, "flit_bits", &spec.sw.flitBits);
        getU32(c, sw, "clrg_max_count", &spec.sw.clrgMaxCount);
        getU32(c, sw, "sched_iters", &spec.sw.schedIters);
        getU64(c, sw, "sched_seed", &spec.sw.schedSeed);
    }
    if (c.ok)
        checkSwitch(c, spec.sw);

    const Json &sim_j = doc["sim"];
    if (!sim_j.isNull() && !sim_j.isObject())
        c.fail("sim: expected an object");
    if (c.ok && sim_j.isObject()) {
        getU32(c, sim_j, "vcs", &spec.cfg.numVcs);
        getU32(c, sim_j, "vc_depth", &spec.cfg.vcDepth);
        getU32(c, sim_j, "packet_len", &spec.cfg.packetLen);
        getU64(c, sim_j, "warmup_cycles", &spec.cfg.warmupCycles);
        getU64(c, sim_j, "measure_cycles", &spec.cfg.measureCycles);
        getU64(c, sim_j, "seed", &spec.cfg.seed);
    }
    if (c.ok) {
        if (spec.cfg.numVcs < 1 || spec.cfg.numVcs > 64)
            c.fail("sim.vcs must be in [1, 64]");
        else if (spec.cfg.vcDepth < 1 || spec.cfg.vcDepth > 1024)
            c.fail("sim.vc_depth must be in [1, 1024]");
        else if (spec.cfg.packetLen < 1 || spec.cfg.packetLen > 1024)
            c.fail("sim.packet_len must be in [1, 1024]");
        else if (spec.cfg.measureCycles < 1)
            c.fail("sim.measure_cycles must be >= 1");
        else if (spec.cfg.warmupCycles + spec.cfg.measureCycles >
                 std::uint64_t(1) << 40)
            c.fail("sim: run length over 2^40 cycles");
    }

    if (c.ok)
        parsePattern(c, doc["pattern"], spec.sw, &spec.pattern);

    if (c.ok) {
        if (!doc.has("loads"))
            c.fail("loads: required");
        else
            parseLoads(c, doc["loads"], &spec.loads);
    }

    if (c.ok && doc.has("seeds")) {
        const Json &seeds = doc["seeds"];
        if (!seeds.isArray() || seeds.size() == 0) {
            c.fail("seeds: expected a non-empty array");
        } else {
            for (const Json &s : seeds.items()) {
                double d = s.asNumber(-1.0);
                if (!s.isNumber() || d < 0 || d != std::floor(d) ||
                    d > 9.007199254740992e15) {
                    c.fail("seeds: expected non-negative integers");
                    break;
                }
                spec.seeds.push_back(static_cast<std::uint64_t>(d));
            }
        }
    }
    if (c.ok && spec.seeds.empty())
        spec.seeds.push_back(spec.cfg.seed);
    if (c.ok && spec.seeds.size() > 10000)
        c.fail("seeds: too many");
    if (c.ok && spec.loads.size() * spec.seeds.size() > 1000000)
        c.fail("campaign describes > 1e6 points");

    if (c.ok)
        getU64(c, doc, "checkpoint_cycles", &spec.checkpointCycles);

    if (!c.ok) {
        if (err)
            *err = c.err;
        return false;
    }
    *out = std::move(spec);
    return true;
}

void
jsonMerge(Json *base, const Json &overlay)
{
    if (!base->isObject() || !overlay.isObject()) {
        *base = overlay;
        return;
    }
    for (const auto &[k, v] : overlay.members()) {
        if (base->has(k) && (*base)[k].isObject() && v.isObject())
            jsonMerge(&base->ref(k), v);
        else
            base->set(k, v);
    }
}

namespace {

bool
loadSpecFileRec(const std::string &path, Json *out, std::string *err,
                std::set<std::string> *visited, int depth)
{
    namespace fs = std::filesystem;
    if (depth > 16) {
        *err = path + ": include chain too deep";
        return false;
    }
    std::error_code ec;
    std::string canon = fs::weakly_canonical(path, ec).string();
    if (canon.empty())
        canon = path;
    if (!visited->insert(canon).second) {
        *err = path + ": include cycle";
        return false;
    }

    std::ifstream f(path);
    if (!f) {
        *err = path + ": cannot open";
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    Json doc;
    std::string perr;
    if (!Json::parse(ss.str(), &doc, &perr)) {
        *err = path + ": " + perr;
        return false;
    }
    if (!doc.isObject()) {
        *err = path + ": spec file must contain a JSON object";
        return false;
    }

    // Resolve includes relative to this file, parent-first: the
    // including file's own keys override everything it includes.
    Json merged = Json::object();
    const Json &inc = doc["include"];
    if (!inc.isNull()) {
        std::vector<std::string> files;
        if (inc.isString()) {
            files.push_back(inc.asString());
        } else if (inc.isArray()) {
            for (const Json &i : inc.items()) {
                if (!i.isString()) {
                    *err = path + ": include: expected file names";
                    return false;
                }
                files.push_back(i.asString());
            }
        } else {
            *err = path + ": include: expected a file or array";
            return false;
        }
        fs::path dir = fs::path(path).parent_path();
        for (const std::string &file : files) {
            fs::path ip = fs::path(file);
            if (ip.is_relative())
                ip = dir / ip;
            Json sub;
            if (!loadSpecFileRec(ip.string(), &sub, err, visited,
                                 depth + 1))
                return false;
            jsonMerge(&merged, sub);
        }
    }

    Json self = Json::object();
    for (const auto &[k, v] : doc.members()) {
        if (k != "include")
            self.set(k, v);
    }
    jsonMerge(&merged, self);
    visited->erase(canon); // diamond includes are fine, only cycles fail
    *out = std::move(merged);
    return true;
}

} // namespace

bool
loadSpecFile(const std::string &path, Json *out, std::string *err)
{
    std::set<std::string> visited;
    return loadSpecFileRec(path, out, err, &visited, 0);
}

bool
applySpecOverride(Json *doc, std::string_view assignment,
                  std::string *err)
{
    std::size_t eq = assignment.find('=');
    if (eq == std::string_view::npos || eq == 0) {
        *err = "override must look like path.to.key=value";
        return false;
    }
    std::string_view pathPart = assignment.substr(0, eq);
    std::string_view valuePart = assignment.substr(eq + 1);

    Json value;
    if (!Json::parse(valuePart, &value))
        value = Json(std::string(valuePart)); // bare string

    Json *node = doc;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = pathPart.find('.', start);
        std::string_view key = pathPart.substr(
            start, dot == std::string_view::npos ? dot : dot - start);
        if (key.empty()) {
            *err = "override path has an empty segment";
            return false;
        }
        if (dot == std::string_view::npos) {
            node->set(key, std::move(value));
            return true;
        }
        node = &node->ref(key);
        start = dot + 1;
    }
}

} // namespace hirise::svc
