/**
 * @file
 * The campaign daemon: a poll()-based event loop accepting framed
 * JSON requests (svc/frame.hh, docs/SERVICE.md) over a unix socket
 * (and optionally loopback TCP), backed by one dispatcher thread that
 * runs submitted campaigns FIFO through svc::runCampaign — so the
 * SimCache and the global ThreadPool stay warm across requests, and
 * identical resubmissions are served almost entirely from cache.
 *
 * Ops: submit (validate + enqueue a campaign; optionally stream its
 * rows on this connection), results (replay/follow a job's rows),
 * status (job table + service metrics), cancel, ping, shutdown
 * (graceful: stop accepting, drain in-flight points, cancel the
 * queue, flush, exit).
 *
 * Threading: the event-loop thread owns every socket; the dispatcher
 * thread owns simulation. They meet at jobs' row vectors (mutex) and
 * a self-pipe the dispatcher pokes to wake the loop for streaming.
 * A signal handler may write the byte 'Q' to wakeFd() — the only
 * async-signal-safe entry point — to request graceful shutdown.
 */

#ifndef HIRISE_SVC_SERVER_HH
#define HIRISE_SVC_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/sim_cache.hh"
#include "svc/campaign.hh"
#include "svc/frame.hh"

namespace hirise::svc {

struct ServerOptions
{
    /** Unix socket path (required). An existing socket file is
     *  replaced — run one daemon per path. */
    std::string socketPath;
    /** Loopback TCP port; 0 disables TCP, -1 binds an ephemeral port
     *  (see port()). */
    int tcpPort = 0;
    /** Result cache (null = SimCache::global()). */
    sim::SimCache *cache = nullptr;
    /** Directory for per-point checkpoint snapshots ("" disables the
     *  checkpointed path even when specs request it). */
    std::string snapshotDir;
    /** Streaming shard size (0 = runCampaign default). */
    std::size_t shardPoints = 0;
    /** Submissions rejected once this many jobs are queued. */
    std::size_t maxQueuedJobs = 64;
};

class Server
{
  public:
    explicit Server(ServerOptions opt);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind sockets and start the dispatcher. False + *err when a
     *  socket cannot be set up (nothing is left half-open). */
    bool start(std::string *err);

    /** Event loop; returns after a graceful shutdown completes. */
    void run();

    /** Thread-safe graceful-shutdown request (tests / other threads).
     *  Signal handlers must instead write(wakeFd(), "Q", 1). */
    void shutdown();

    /** Write end of the self-pipe. Writing 'Q' requests graceful
     *  shutdown; any other byte just wakes the loop. */
    int wakeFd() const { return wakeW_; }

    /** Actual TCP port (after start(); 0 when TCP is disabled). */
    int port() const { return tcpPort_; }

    const std::string &socketPath() const { return opt_.socketPath; }

  private:
    struct Job
    {
        enum class State
        {
            Queued,
            Running,
            Done,
            Cancelled,
            Failed,
        };

        std::string id;
        CampaignSpec spec;
        State state = State::Queued; //!< guarded by Server::mu_
        std::vector<std::string> rows; //!< guarded by Server::mu_
        std::size_t pointsTotal = 0;
        std::size_t pointsDone = 0; //!< guarded by Server::mu_
        std::atomic<bool> cancel{false};
        sim::SimCache::Stats cacheDelta; //!< set when terminal
        std::string error;
    };

    struct Conn
    {
        int fd = -1;
        FrameDecoder dec;
        std::string out; //!< bytes pending write
        std::shared_ptr<Job> sub; //!< job being streamed (or null)
        std::size_t subNext = 0;  //!< next row index to stream
        bool closing = false; //!< close once out drains
    };

    static const char *stateName(Job::State s);

    void dispatcherLoop();
    void wake();

    void handleFrame(Conn &c, const std::string &payload);
    void opSubmit(Conn &c, const Json &req);
    void opResults(Conn &c, const Json &req);
    void opStatus(Conn &c);
    void opCancel(Conn &c, const Json &req);
    void reply(Conn &c, const Json &resp);
    void sendRaw(Conn &c, std::string_view payload);

    /** Stream newly available rows (and terminal frames) to every
     *  subscribed connection, respecting the output soft cap. */
    void pumpSubscriptions();
    void pumpConn(Conn &c);

    std::shared_ptr<Job> findJob(const std::string &id);
    void beginShutdown();
    void updateQueueMetrics();

    ServerOptions opt_;
    int tcpPort_ = 0;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int wakeR_ = -1;
    int wakeW_ = -1;

    std::vector<std::unique_ptr<Conn>> conns_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::vector<std::shared_ptr<Job>> jobs_; //!< submission order
    std::shared_ptr<Job> running_;
    std::uint64_t nextSeq_ = 1;
    /** Written under mu_ (condition-variable correctness), read
     *  lock-free from the cancel callback — hence atomic. */
    std::atomic<bool> stopDispatcher_{false};

    std::atomic<bool> shutdownReq_{false};
    bool draining_ = false; //!< event loop: shutdown in progress
    std::atomic<bool> dispatcherIdle_{true};

    std::thread dispatcher_;
    bool started_ = false;
};

} // namespace hirise::svc

#endif // HIRISE_SVC_SERVER_HH
