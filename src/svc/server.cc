#include "svc/server.hh"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hh"
#include "svc/json.hh"

namespace hirise::svc {

namespace {

/** Stop pumping rows into a connection's output buffer past this
 *  point; the rows stay in the job and flow resumes as the socket
 *  drains (slow readers throttle themselves, not the daemon). */
constexpr std::size_t kSoftOutCap = std::size_t(1) << 20;

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Json
errorResponse(const std::string &msg)
{
    Json r = Json::object();
    r.set("ok", false);
    r.set("error", msg);
    return r;
}

} // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {}

Server::~Server()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopDispatcher_ = true;
        if (running_)
            running_->cancel.store(true);
    }
    cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    for (auto &c : conns_) {
        if (c->fd >= 0)
            ::close(c->fd);
    }
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        ::unlink(opt_.socketPath.c_str());
    }
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
    if (wakeR_ >= 0)
        ::close(wakeR_);
    if (wakeW_ >= 0)
        ::close(wakeW_);
}

bool
Server::start(std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg + ": " + std::strerror(errno);
        if (unixFd_ >= 0) {
            ::close(unixFd_);
            unixFd_ = -1;
            ::unlink(opt_.socketPath.c_str());
        }
        if (tcpFd_ >= 0) {
            ::close(tcpFd_);
            tcpFd_ = -1;
        }
        if (wakeR_ >= 0) {
            ::close(wakeR_);
            wakeR_ = -1;
        }
        if (wakeW_ >= 0) {
            ::close(wakeW_);
            wakeW_ = -1;
        }
        return false;
    };

    if (opt_.socketPath.empty()) {
        if (err)
            *err = "socket path required";
        return false;
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + opt_.socketPath;
        return false;
    }
    std::memcpy(addr.sun_path, opt_.socketPath.c_str(),
                opt_.socketPath.size() + 1);

    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0)
        return fail("socket(AF_UNIX)");
    ::unlink(opt_.socketPath.c_str()); // replace a stale socket file
    if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind(" + opt_.socketPath + ")");
    if (::listen(unixFd_, 64) != 0)
        return fail("listen(" + opt_.socketPath + ")");
    if (!setNonBlocking(unixFd_))
        return fail("fcntl(unix listen)");

    if (opt_.tcpPort != 0) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0)
            return fail("socket(AF_INET)");
        int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in in{};
        in.sin_family = AF_INET;
        in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        in.sin_port =
            htons(opt_.tcpPort > 0
                      ? static_cast<std::uint16_t>(opt_.tcpPort)
                      : 0);
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&in),
                   sizeof(in)) != 0)
            return fail("bind(tcp)");
        if (::listen(tcpFd_, 64) != 0)
            return fail("listen(tcp)");
        if (!setNonBlocking(tcpFd_))
            return fail("fcntl(tcp listen)");
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        if (::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            tcpPort_ = ntohs(bound.sin_port);
    }

    int pipefd[2];
    if (::pipe(pipefd) != 0)
        return fail("pipe");
    wakeR_ = pipefd[0];
    wakeW_ = pipefd[1];
    setNonBlocking(wakeR_);
    setNonBlocking(wakeW_);

    dispatcher_ = std::thread([this] { dispatcherLoop(); });
    started_ = true;
    return true;
}

void
Server::wake()
{
    if (wakeW_ >= 0) {
        char b = 'w';
        [[maybe_unused]] ssize_t n = ::write(wakeW_, &b, 1);
    }
}

void
Server::shutdown()
{
    shutdownReq_.store(true);
    wake();
}

const char *
Server::stateName(Job::State s)
{
    switch (s) {
      case Job::State::Queued: return "queued";
      case Job::State::Running: return "running";
      case Job::State::Done: return "done";
      case Job::State::Cancelled: return "cancelled";
      case Job::State::Failed: return "failed";
    }
    return "?";
}

void
Server::updateQueueMetrics()
{
    auto &m = obs::MetricsRegistry::global();
    m.gauge("svc.queue_depth").set(double(queue_.size()));
    m.gauge("svc.worker_busy").set(running_ ? 1.0 : 0.0);
    sim::SimCache &cache =
        opt_.cache ? *opt_.cache : sim::SimCache::global();
    m.gauge("svc.cache_hit_rate").set(cache.stats().hitRate());
}

void
Server::dispatcherLoop()
{
    auto &m = obs::MetricsRegistry::global();
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return stopDispatcher_ || !queue_.empty();
            });
            if (stopDispatcher_ && queue_.empty())
                return;
            job = queue_.front();
            queue_.pop_front();
            if (job->state == Job::State::Cancelled) {
                updateQueueMetrics();
                continue;
            }
            job->state = Job::State::Running;
            running_ = job;
            dispatcherIdle_.store(false);
            updateQueueMetrics();
        }
        wake();

        RunCampaignOptions ro;
        ro.cache = opt_.cache;
        ro.snapshotDir = opt_.snapshotDir;
        ro.shardPoints = opt_.shardPoints;
        ro.cancelled = [this, job] {
            return job->cancel.load() || stopDispatcher_;
        };
        ro.onRows = [this, job, &m](std::size_t first,
                                    std::vector<std::string> rows) {
            (void)first;
            {
                std::lock_guard<std::mutex> lk(mu_);
                for (auto &r : rows)
                    job->rows.push_back(std::move(r));
                job->pointsDone = job->rows.size();
                m.gauge("svc.points_inflight")
                    .set(double(std::min(
                        opt_.shardPoints
                            ? opt_.shardPoints
                            : 2 * std::size_t(sim::batchReplicas()),
                        job->pointsTotal - job->pointsDone)));
            }
            wake();
        };

        CampaignOutcome out = runCampaign(job->spec, ro);
        {
            std::lock_guard<std::mutex> lk(mu_);
            job->cacheDelta = out.cacheDelta;
            job->state = out.cancelled ? Job::State::Cancelled
                                       : Job::State::Done;
            running_.reset();
            dispatcherIdle_.store(true);
            m.gauge("svc.points_inflight").set(0.0);
            m.counter("svc.jobs_done").inc();
            updateQueueMetrics();
        }
        wake();
    }
}

std::shared_ptr<Server::Job>
Server::findJob(const std::string &id)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &j : jobs_) {
        if (j->id == id)
            return j;
    }
    return nullptr;
}

void
Server::sendRaw(Conn &c, std::string_view payload)
{
    frameAppend(c.out, payload);
    obs::MetricsRegistry::global()
        .counter("svc.bytes_streamed")
        .inc(payload.size() + 4);
}

void
Server::reply(Conn &c, const Json &resp)
{
    sendRaw(c, resp.dump());
}

void
Server::opSubmit(Conn &c, const Json &req)
{
    const Json &specDoc = req["spec"];
    if (!specDoc.isObject()) {
        reply(c, errorResponse("submit: 'spec' object required"));
        return;
    }
    CampaignSpec spec;
    std::string perr;
    if (!parseCampaignSpec(specDoc, &spec, &perr)) {
        reply(c, errorResponse("bad spec: " + perr));
        return;
    }

    auto job = std::make_shared<Job>();
    job->spec = std::move(spec);
    job->pointsTotal = job->spec.points().size();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (draining_) {
            reply(c, errorResponse("daemon is shutting down"));
            return;
        }
        if (queue_.size() >= opt_.maxQueuedJobs) {
            reply(c, errorResponse("queue full"));
            return;
        }
        char id[48];
        std::snprintf(id, sizeof(id), "%016llx-%llu",
                      static_cast<unsigned long long>(
                          job->spec.hash()),
                      static_cast<unsigned long long>(nextSeq_++));
        job->id = id;
        jobs_.push_back(job);
        queue_.push_back(job);
        obs::MetricsRegistry::global()
            .counter("svc.jobs_submitted")
            .inc();
        updateQueueMetrics();
    }
    cv_.notify_one();

    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("id", job->id);
    resp.set("points", double(job->pointsTotal));
    reply(c, resp);

    if (req["stream"].asBool()) {
        c.sub = job;
        c.subNext = 0;
    }
}

void
Server::opResults(Conn &c, const Json &req)
{
    const Json &id = req["id"];
    if (!id.isString()) {
        reply(c, errorResponse("results: 'id' required"));
        return;
    }
    std::shared_ptr<Job> job = findJob(id.asString());
    if (!job) {
        reply(c, errorResponse("no such job: " + id.asString()));
        return;
    }
    double from = req["from"].asNumber(0.0);
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("id", job->id);
    resp.set("points", double(job->pointsTotal));
    reply(c, resp);
    c.sub = job;
    c.subNext = from > 0 ? std::size_t(from) : 0;
}

void
Server::opStatus(Conn &c)
{
    sim::SimCache &cache =
        opt_.cache ? *opt_.cache : sim::SimCache::global();
    Json resp = Json::object();
    resp.set("ok", true);

    Json jobsArr = Json::array();
    std::size_t queueDepth = 0;
    bool busy = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        queueDepth = queue_.size();
        busy = running_ != nullptr;
        for (const auto &j : jobs_) {
            Json row = Json::object();
            row.set("id", j->id);
            row.set("name", j->spec.name);
            row.set("state", stateName(j->state));
            row.set("points", double(j->pointsTotal));
            row.set("done", double(j->pointsDone));
            if (j->state == Job::State::Done ||
                j->state == Job::State::Cancelled) {
                row.set("cache_hits", double(j->cacheDelta.hits));
                row.set("cache_misses",
                        double(j->cacheDelta.misses));
                row.set("hit_rate", j->cacheDelta.hitRate());
            }
            jobsArr.push(std::move(row));
        }
    }
    resp.set("jobs", std::move(jobsArr));

    auto &m = obs::MetricsRegistry::global();
    sim::SimCache::Stats cs = cache.stats();
    Json metrics = Json::object();
    metrics.set("queue_depth", double(queueDepth));
    metrics.set("worker_busy", busy);
    metrics.set("points_inflight",
                m.gauge("svc.points_inflight").value());
    metrics.set("cache_hits", double(cs.hits));
    metrics.set("cache_misses", double(cs.misses));
    metrics.set("cache_disk_hits", double(cs.diskHits));
    metrics.set("cache_hit_rate", cs.hitRate());
    metrics.set("bytes_streamed",
                double(m.counter("svc.bytes_streamed").value()));
    metrics.set("jobs_submitted",
                double(m.counter("svc.jobs_submitted").value()));
    metrics.set("jobs_done",
                double(m.counter("svc.jobs_done").value()));
    metrics.set(
        "pool_pending",
        double(ThreadPool::global().pendingTasks()));
    resp.set("metrics", std::move(metrics));
    reply(c, resp);
}

void
Server::opCancel(Conn &c, const Json &req)
{
    const Json &id = req["id"];
    if (!id.isString()) {
        reply(c, errorResponse("cancel: 'id' required"));
        return;
    }
    std::shared_ptr<Job> job = findJob(id.asString());
    if (!job) {
        reply(c, errorResponse("no such job: " + id.asString()));
        return;
    }
    const char *state = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        job->cancel.store(true);
        if (job->state == Job::State::Queued)
            job->state = Job::State::Cancelled;
        state = stateName(job->state);
        updateQueueMetrics();
    }
    wake(); // let subscribers learn about the terminal state
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("id", job->id);
    resp.set("state", state);
    reply(c, resp);
}

void
Server::handleFrame(Conn &c, const std::string &payload)
{
    Json req;
    std::string perr;
    if (!Json::parse(payload, &req, &perr) || !req.isObject()) {
        reply(c, errorResponse("bad request: " +
                               (perr.empty() ? "not an object"
                                             : perr)));
        return;
    }
    const std::string &op = req["op"].asString();
    if (op == "ping") {
        Json resp = Json::object();
        resp.set("ok", true);
        reply(c, resp);
    } else if (op == "submit") {
        opSubmit(c, req);
    } else if (op == "results") {
        opResults(c, req);
    } else if (op == "status") {
        opStatus(c);
    } else if (op == "cancel") {
        opCancel(c, req);
    } else if (op == "shutdown") {
        Json resp = Json::object();
        resp.set("ok", true);
        reply(c, resp);
        shutdownReq_.store(true);
    } else {
        reply(c, errorResponse("unknown op: '" + op + "'"));
    }
}

void
Server::pumpConn(Conn &c)
{
    if (!c.sub)
        return;
    Job &job = *c.sub;
    bool terminal = false;
    Json doneFrame;
    {
        std::lock_guard<std::mutex> lk(mu_);
        while (c.subNext < job.rows.size() &&
               c.out.size() < kSoftOutCap) {
            // Row frames are the raw canonical row bytes — no
            // envelope, no job id — so a client transcript is
            // byte-comparable across daemons and runs.
            sendRaw(c, job.rows[c.subNext]);
            ++c.subNext;
        }
        if (c.subNext == job.rows.size() &&
            (job.state == Job::State::Done ||
             job.state == Job::State::Cancelled ||
             job.state == Job::State::Failed)) {
            terminal = true;
            doneFrame = Json::object();
            doneFrame.set("done", true);
            doneFrame.set("id", job.id);
            doneFrame.set("state", stateName(job.state));
            doneFrame.set("rows", double(job.rows.size()));
            doneFrame.set("cache_hits", double(job.cacheDelta.hits));
            doneFrame.set("cache_misses",
                          double(job.cacheDelta.misses));
            doneFrame.set("hit_rate", job.cacheDelta.hitRate());
            if (!job.error.empty())
                doneFrame.set("error", job.error);
        }
    }
    if (terminal) {
        reply(c, doneFrame);
        c.sub.reset();
        c.subNext = 0;
    }
}

void
Server::pumpSubscriptions()
{
    for (auto &c : conns_) {
        if (c->fd >= 0)
            pumpConn(*c);
    }
}

void
Server::beginShutdown()
{
    if (draining_)
        return;
    draining_ = true;
    // Stop accepting; cancel everything queued; tell the dispatcher
    // to stop after the current job's in-flight shard drains.
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
        ::unlink(opt_.socketPath.c_str());
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopDispatcher_ = true;
        for (auto &j : queue_) {
            j->cancel.store(true);
            if (j->state == Job::State::Queued)
                j->state = Job::State::Cancelled;
        }
        queue_.clear();
        if (running_)
            running_->cancel.store(true);
        updateQueueMetrics();
    }
    cv_.notify_all();
}

void
Server::run()
{
    std::vector<pollfd> pfds;
    std::vector<Conn *> pconns;
    char buf[65536];

    while (true) {
        if (shutdownReq_.load())
            beginShutdown();

        pfds.clear();
        pconns.clear();
        pfds.push_back({wakeR_, POLLIN, 0});
        if (unixFd_ >= 0)
            pfds.push_back({unixFd_, POLLIN, 0});
        if (tcpFd_ >= 0)
            pfds.push_back({tcpFd_, POLLIN, 0});
        std::size_t firstConn = pfds.size();
        for (auto &c : conns_) {
            if (c->fd < 0)
                continue;
            short ev = POLLIN;
            if (!c->out.empty())
                ev |= POLLOUT;
            pfds.push_back({c->fd, ev, 0});
            pconns.push_back(c.get());
        }

        if (draining_) {
            // Exit once the dispatcher finished and every subscriber
            // got its final bytes.
            bool idle = dispatcherIdle_.load();
            bool flushed = true;
            for (auto &c : conns_) {
                if (c->fd >= 0 && (!c->out.empty() || c->sub))
                    flushed = false;
            }
            if (idle && flushed) {
                // Close client connections here, not in the
                // destructor: peers blocked on a read must see EOF
                // the moment the daemon is done, or a client that
                // waits for close-after-drain hangs on our exit.
                for (auto &c : conns_) {
                    if (c->fd >= 0) {
                        ::close(c->fd);
                        c->fd = -1;
                    }
                }
                return;
            }
        }

        int rc = ::poll(pfds.data(),
                        static_cast<nfds_t>(pfds.size()),
                        draining_ ? 100 : -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return; // poll failure: nothing sane left to do
        }

        // Self-pipe: drain and check for a signal-delivered 'Q'.
        if (pfds[0].revents & POLLIN) {
            ssize_t n;
            while ((n = ::read(wakeR_, buf, sizeof(buf))) > 0) {
                for (ssize_t i = 0; i < n; ++i) {
                    if (buf[i] == 'Q')
                        shutdownReq_.store(true);
                }
            }
            if (shutdownReq_.load())
                beginShutdown();
        }

        // New connections.
        for (std::size_t i = 1; i < firstConn; ++i) {
            if (!(pfds[i].revents & POLLIN))
                continue;
            while (true) {
                int fd = ::accept(pfds[i].fd, nullptr, nullptr);
                if (fd < 0)
                    break;
                setNonBlocking(fd);
                auto conn = std::make_unique<Conn>();
                conn->fd = fd;
                conns_.push_back(std::move(conn));
            }
        }

        // Connection I/O.
        for (std::size_t i = firstConn; i < pfds.size(); ++i) {
            Conn &c = *pconns[i - firstConn];
            short rev = pfds[i].revents;
            if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
                // Peer gone: read may still return buffered data,
                // but anything we'd produce has nowhere to go.
                ::close(c.fd);
                c.fd = -1;
                continue;
            }
            if (rev & POLLIN) {
                while (true) {
                    ssize_t n = ::read(c.fd, buf, sizeof(buf));
                    if (n > 0) {
                        c.dec.feed(buf, std::size_t(n));
                        continue;
                    }
                    if (n == 0) {
                        c.closing = true; // flush what's pending
                    } else if (errno != EAGAIN &&
                               errno != EWOULDBLOCK &&
                               errno != EINTR) {
                        ::close(c.fd);
                        c.fd = -1;
                    }
                    break;
                }
                if (c.fd >= 0) {
                    std::string payload;
                    while (c.dec.next(&payload))
                        handleFrame(c, payload);
                    if (c.dec.error()) {
                        // Unframeable stream; there is no way to
                        // resynchronize, so drop the connection.
                        ::close(c.fd);
                        c.fd = -1;
                    }
                }
            }
        }

        pumpSubscriptions();

        // Flush output buffers.
        for (auto &cp : conns_) {
            Conn &c = *cp;
            if (c.fd < 0 || c.out.empty()) {
                if (c.fd >= 0 && c.closing && c.out.empty() &&
                    !c.sub) {
                    ::close(c.fd);
                    c.fd = -1;
                }
                continue;
            }
            ssize_t n = ::send(c.fd, c.out.data(), c.out.size(),
                               MSG_NOSIGNAL);
            if (n > 0) {
                c.out.erase(0, std::size_t(n));
            } else if (n < 0 && errno != EAGAIN &&
                       errno != EWOULDBLOCK && errno != EINTR) {
                ::close(c.fd);
                c.fd = -1;
            }
            if (c.fd >= 0 && c.closing && c.out.empty() && !c.sub) {
                ::close(c.fd);
                c.fd = -1;
            }
        }

        // Compact closed connections.
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const std::unique_ptr<Conn>
                                           &c) {
                                        return c->fd < 0;
                                    }),
                     conns_.end());
    }
}

} // namespace hirise::svc
