#include "svc/frame.hh"

#include <cstring>

namespace hirise::svc {

bool
frameAppend(std::string &out, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    auto n = static_cast<std::uint32_t>(payload.size());
    char hdr[4] = {
        static_cast<char>(n & 0xff),
        static_cast<char>((n >> 8) & 0xff),
        static_cast<char>((n >> 16) & 0xff),
        static_cast<char>((n >> 24) & 0xff),
    };
    out.append(hdr, 4);
    out.append(payload.data(), payload.size());
    return true;
}

std::string
frameEncode(std::string_view payload)
{
    std::string out;
    frameAppend(out, payload);
    return out;
}

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    if (error_ || n == 0)
        return;
    // Compact the consumed prefix before growing (bounded memory even
    // on long-lived connections).
    if (off_ > 0 && (off_ >= buf_.size() || off_ > 4096)) {
        buf_.erase(0, off_);
        off_ = 0;
    }
    buf_.append(data, n);
}

bool
FrameDecoder::next(std::string *out)
{
    if (error_)
        return false;
    std::size_t avail = buf_.size() - off_;
    if (avail < 4)
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(buf_.data() + off_);
    std::uint32_t len = std::uint32_t(p[0]) |
                        (std::uint32_t(p[1]) << 8) |
                        (std::uint32_t(p[2]) << 16) |
                        (std::uint32_t(p[3]) << 24);
    if (len > maxFrame_) {
        error_ = true;
        return false;
    }
    if (avail < 4 + std::size_t(len))
        return false;
    out->assign(buf_.data() + off_ + 4, len);
    off_ += 4 + std::size_t(len);
    return true;
}

} // namespace hirise::svc
