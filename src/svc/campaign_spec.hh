/**
 * @file
 * Declarative experiment-spec format for the campaign service: a JSON
 * document (JSON is a strict subset of YAML 1.2, so specs are valid
 * YAML artifacts) describing one campaign — a switch configuration, a
 * simulation config, a traffic pattern, and the (load, seed) grid to
 * evaluate — plus file includes and dotted-path key overrides, so
 * campaigns are reproducible artifacts instead of CLI flag soup.
 *
 *   {
 *     "include": "base.json",          // optional; file or [files]
 *     "name": "fig11b-quick",
 *     "switch": {"topology": "hirise", "radix": 64, "layers": 4,
 *                "channels": 4, "arb": "clrg"},
 *     "sim": {"warmup_cycles": 2000, "measure_cycles": 8000,
 *             "seed": 1},
 *     "pattern": {"kind": "uniform-random"},
 *     "loads": {"from": 0.05, "to": 0.60, "step": 0.05},
 *     "seeds": [1, 2, 3],              // optional; default [sim.seed]
 *     "checkpoint_cycles": 0           // optional; see docs/SERVICE.md
 *   }
 *
 * Includes are resolved relative to the including file, parent-first
 * deep merge (the includer's keys win), with cycle detection. The
 * point grid is seeds-major: for each seed, every load in order; row
 * index i is the stable identity of a point within the campaign.
 *
 * Parsing is total: every malformed document yields (false, error
 * message), never fatal()/abort, because the daemon parses specs off
 * the wire (tests/svc_test.cc fuzzes this). The validation rules
 * mirror SwitchSpec::validate() exactly so a parsed spec never trips
 * the fatal path downstream.
 */

#ifndef HIRISE_SVC_CAMPAIGN_SPEC_HH
#define HIRISE_SVC_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/spec.hh"
#include "sim/sweep.hh"
#include "svc/json.hh"

namespace hirise::svc {

/** Traffic-pattern declaration (svc mirror of traffic/pattern.hh
 *  constructors; patternFactory() instantiates). */
struct PatternDecl
{
    std::string kind = "uniform-random";
    std::uint32_t hot = 0;              //!< hotspot
    double meanBurst = 8.0;             //!< bursty
    std::uint32_t srcLayer = 0;         //!< inter-layer-only
    std::uint32_t dstLayer = 1;         //!< inter-layer-only
    std::vector<std::uint32_t> sources; //!< adversarial
    std::uint32_t dst = 0;              //!< adversarial
};

struct CampaignSpec
{
    std::string name = "campaign";
    SwitchSpec sw;
    sim::SimConfig cfg; //!< injectionRate/seed overwritten per point
    PatternDecl pattern;
    std::vector<double> loads;
    std::vector<std::uint64_t> seeds; //!< outer grid axis
    /** When > 0 (and the job has a snapshot dir), points run through
     *  the checkpointed scalar path: a PR-9 snapshot keyed per point
     *  is written every this-many cycles, so a killed daemon resumes
     *  mid-point with bit-identical output. 0 = batched path, no
     *  checkpoints. */
    std::uint64_t checkpointCycles = 0;

    /** Factory building a fresh pattern instance per run. */
    sim::PatternFactory patternFactory() const;

    /** The seeds-major (load, seed) grid; row i of the streamed
     *  results is points()[i]. */
    std::vector<sim::RunPoint> points() const;

    /** Canonical JSON form: every field, fixed order, defaults made
     *  explicit. parse(toJson()) round-trips to an equal spec, and
     *  hash() is FNV-1a over this serialization. */
    Json toJson() const;
    std::uint64_t hash() const;
};

/** Parse a campaign document. Never fatal()s; false + *err on any
 *  malformed, inconsistent, or out-of-range field. */
bool parseCampaignSpec(const Json &doc, CampaignSpec *out,
                       std::string *err);

/**
 * Load @p path, resolve "include" chains (relative to each including
 * file, parent-first deep merge, cycle/depth guarded), and return the
 * merged document with every "include" key consumed. The result still
 * needs parseCampaignSpec().
 */
bool loadSpecFile(const std::string &path, Json *out, std::string *err);

/**
 * Apply one dotted-path override "a.b.c=value" to @p doc (creating
 * intermediate objects). The value text is parsed as JSON when it is
 * one, else taken as a bare string — so `sim.seed=5`, `loads=[0.1]`,
 * and `pattern.kind=hotspot` all work unquoted.
 */
bool applySpecOverride(Json *doc, std::string_view assignment,
                       std::string *err);

/** Deep merge: object members of @p overlay are merged into @p base
 *  recursively; every other overlay value replaces the base value. */
void jsonMerge(Json *base, const Json &overlay);

} // namespace hirise::svc

#endif // HIRISE_SVC_CAMPAIGN_SPEC_HH
