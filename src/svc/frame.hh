/**
 * @file
 * Length-framed message codec for the campaign service wire protocol
 * (docs/SERVICE.md). A frame is
 *
 *   u32 little-endian payload length | payload bytes
 *
 * where the payload is one JSON document ("length-framed JSONL": one
 * logical line per frame, framed so the stream never needs to scan
 * for newlines or worry about embedded ones). The decoder is
 * incremental — feed() arbitrary chunks, next() pops complete frames
 * — and treats the peer as untrusted: a declared length above the
 * limit poisons the stream (error(), no allocation of the bogus
 * size), and a truncated tail simply never completes a frame.
 */

#ifndef HIRISE_SVC_FRAME_HH
#define HIRISE_SVC_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hirise::svc {

/** Hard ceiling on one frame's payload. Generous for result rows and
 *  campaign specs (both ~KBs); small enough that a malicious length
 *  prefix cannot balloon server memory. */
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/** Append the framed encoding of @p payload to @p out. Payloads over
 *  kMaxFrameBytes are refused (returns false, @p out untouched). */
bool frameAppend(std::string &out, std::string_view payload);

/** Convenience: the framed encoding of @p payload (empty string when
 *  over the limit — callers frame only self-produced payloads). */
std::string frameEncode(std::string_view payload);

class FrameDecoder
{
  public:
    explicit FrameDecoder(std::uint32_t max_frame = kMaxFrameBytes)
        : maxFrame_(max_frame)
    {}

    /** Buffer @p n more stream bytes. No-op once in the error state. */
    void feed(const char *data, std::size_t n);
    void
    feed(std::string_view data)
    {
        feed(data.data(), data.size());
    }

    /** Pop the next complete frame payload into @p out. False when no
     *  complete frame is buffered (or the stream is poisoned). */
    bool next(std::string *out);

    /** True once an oversized length prefix was seen; the connection
     *  must be dropped (resynchronization is impossible). */
    bool error() const { return error_; }

    /** Bytes buffered but not yet consumed (diagnostics/tests). */
    std::size_t buffered() const { return buf_.size() - off_; }

  private:
    std::uint32_t maxFrame_;
    std::string buf_;
    std::size_t off_ = 0; //!< consumed prefix of buf_
    bool error_ = false;
};

} // namespace hirise::svc

#endif // HIRISE_SVC_FRAME_HH
