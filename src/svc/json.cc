#include "svc/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hirise::svc {

namespace {

const Json kNull;

} // namespace

const Json &
Json::operator[](std::string_view key) const
{
    if (isObject()) {
        for (const auto &[k, v] : obj_) {
            if (k == key)
                return v;
        }
    }
    return kNull;
}

bool
Json::has(std::string_view key) const
{
    if (!isObject())
        return false;
    for (const auto &[k, v] : obj_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

const Json &
Json::at(std::size_t i) const
{
    if (isArray() && i < arr_.size())
        return arr_[i];
    return kNull;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ == Type::Array)
        arr_.push_back(std::move(v));
}

void
Json::set(std::string_view key, Json v)
{
    ref(key) = std::move(v);
}

Json &
Json::ref(std::string_view key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    // Callers only reach here for objects; degrade gracefully on type
    // confusion by resetting to an object (parse never does this).
    if (type_ != Type::Object) {
        *this = object();
    }
    for (auto &[k, v] : obj_) {
        if (k == key)
            return v;
    }
    obj_.emplace_back(std::string(key), Json());
    return obj_.back().second;
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

std::string
numberToString(double v)
{
    // -0.0 and 0.0 name the same simulation quantity everywhere in
    // this codebase (see SimCache::key); spell both "0".
    if (v == 0.0)
        v = 0.0;
    char buf[40];
    double r = std::round(v);
    if (std::isfinite(v) && r == v && std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else if (std::isfinite(v)) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    } else {
        // JSON has no inf/nan; serialize as null (never produced by
        // the row serializer, which filters these upstream).
        return "null";
    }
    return buf;
}

void
Json::dumpTo(std::string &out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += numberToString(num_);
        break;
      case Type::String:
        appendJsonString(out, str_);
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            arr_[i].dumpTo(out);
        }
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            appendJsonString(out, obj_[i].first);
            out += ':';
            obj_[i].second.dumpTo(out);
        }
        out += '}';
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(std::string_view word)
    {
        if (text.compare(pos, word.size(), word) != 0)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out->clear();
        while (pos < text.size()) {
            unsigned char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= text.size())
                    return fail("truncated escape");
                char e = text[pos + 1];
                pos += 2;
                switch (e) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    pos += 4;
                    if (cp >= 0xd800 && cp <= 0xdfff)
                        return fail("surrogate \\u escape unsupported");
                    // UTF-8 encode the BMP code point.
                    if (cp < 0x80) {
                        *out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        *out += static_cast<char>(0xc0 | (cp >> 6));
                        *out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        *out += static_cast<char>(0xe0 | (cp >> 12));
                        *out += static_cast<char>(0x80 |
                                                  ((cp >> 6) & 0x3f));
                        *out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            *out += static_cast<char>(c);
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double *out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        auto digits = [&]() {
            std::size_t n = 0;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9') {
                ++pos;
                ++n;
            }
            return n;
        };
        std::size_t intDigits = digits();
        if (intDigits == 0)
            return fail("expected number");
        // JSON forbids leading zeros ("01"); tolerate them (spec
        // files written by hand), the value is unambiguous.
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (digits() == 0)
                return fail("digits required after decimal point");
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (digits() == 0)
                return fail("digits required in exponent");
        }
        std::string tmp(text.substr(start, pos - start));
        char *end = nullptr;
        double v = std::strtod(tmp.c_str(), &end);
        if (end != tmp.c_str() + tmp.size())
            return fail("malformed number");
        if (!std::isfinite(v))
            return fail("number out of range");
        *out = v;
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > Json::kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case 'n':
            if (!literal("null"))
                return false;
            *out = Json();
            return true;
          case 't':
            if (!literal("true"))
                return false;
            *out = Json(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            *out = Json(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json(std::move(s));
            return true;
          }
          case '[': {
            ++pos;
            *out = Json::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Json v;
                if (!parseValue(&v, depth + 1))
                    return false;
                out->push(std::move(v));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated array");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++pos;
            *out = Json::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Json v;
                if (!parseValue(&v, depth + 1))
                    return false;
                out->set(key, std::move(v));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated object");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          default:
            if (c == '-' || (c >= '0' && c <= '9')) {
                double v;
                if (!parseNumber(&v))
                    return false;
                *out = Json(v);
                return true;
            }
            return fail("unexpected character");
        }
    }
};

} // namespace

bool
Json::parse(std::string_view text, Json *out, std::string *err)
{
    Parser p{text, 0, {}};
    Json v;
    if (!p.parseValue(&v, 0)) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing data at offset " + std::to_string(p.pos);
        return false;
    }
    *out = std::move(v);
    return true;
}

} // namespace hirise::svc
