#include "svc/client.hh"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hirise::svc {

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::unique_ptr<Client>
Client::connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "bad socket path: " + path;
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = "connect(" + path + "): " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client>
Client::connectTcp(int port, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    sockaddr_in in{};
    in.sin_family = AF_INET;
    in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    in.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&in),
                  sizeof(in)) != 0) {
        if (err)
            *err = "connect(127.0.0.1:" + std::to_string(port) +
                   "): " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd));
}

bool
Client::send(const Json &req, std::string *err)
{
    std::string bytes = frameEncode(req.dump());
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off,
                           bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += std::size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (err)
            *err = std::string("send: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Client::recvRaw(std::string *payload, std::string *err)
{
    char buf[65536];
    while (!dec_.next(payload)) {
        if (dec_.error()) {
            if (err)
                *err = "framing error (oversized frame)";
            return false;
        }
        ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            dec_.feed(buf, std::size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (err)
            *err = n == 0 ? "connection closed"
                          : std::string("read: ") +
                                std::strerror(errno);
        return false;
    }
    return true;
}

bool
Client::recv(Json *out, std::string *err)
{
    std::string payload;
    if (!recvRaw(&payload, err))
        return false;
    std::string perr;
    if (!Json::parse(payload, out, &perr)) {
        if (err)
            *err = "bad frame from daemon: " + perr;
        return false;
    }
    return true;
}

bool
Client::request(const Json &req, Json *resp, std::string *err)
{
    return send(req, err) && recv(resp, err);
}

} // namespace hirise::svc
