/**
 * @file
 * TSV fault-tolerance study (extension beyond the paper): uniform-
 * random saturation throughput of the 4-channel Hi-Rise switch as
 * L2LCs fail and binned traffic remaps to the surviving channels of
 * each layer pair.
 */

#include "harness/experiments.hh"

#include "common/parallel.hh"
#include "fabric/hirise.hh"
#include "phys/model.hh"
#include "traffic/pattern.hh"

namespace hirise::harness {

namespace {

/** NetworkSim cannot inject faults into its private fabric, so this
 *  runner drives the fabric directly with a saturated uniform-random
 *  single-packet workload per input (pure fabric capacity study). */
double
faultedSaturation(std::uint32_t num_failed, std::uint64_t seed)
{
    SwitchSpec spec = specHiRise(4, ArbScheme::Clrg);
    fabric::HiRiseFabric fab(spec);

    // Fail distinct channels in a fixed pseudo-random order.
    Rng pick(1234);
    std::uint32_t failed = 0;
    while (failed < num_failed) {
        std::uint32_t s = static_cast<std::uint32_t>(pick.below(4));
        std::uint32_t d = static_cast<std::uint32_t>(pick.below(4));
        std::uint32_t k = static_cast<std::uint32_t>(pick.below(4));
        if (s == d || fab.channelFailed(s, d, k))
            continue;
        fab.failChannel(s, d, k);
        ++failed;
    }

    // Saturated closed-loop drive: every idle input immediately
    // requests a fresh uniform-random destination.
    Rng rng(seed);
    const std::uint32_t n = spec.radix;
    const std::uint32_t len = 4;
    std::vector<std::uint32_t> want(n);
    std::vector<std::uint32_t> left(n, 0);
    std::vector<std::uint32_t> out(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t d = static_cast<std::uint32_t>(rng.below(n - 1));
        want[i] = d >= i ? d + 1 : d;
    }

    std::uint64_t flits = 0;
    const std::uint64_t cycles = 30000;
    for (std::uint64_t t = 0; t < cycles; ++t) {
        std::vector<std::uint32_t> req(n, fabric::kNoRequest);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (left[i] == 0 && !fab.outputBusy(want[i]))
                req[i] = want[i];
        }
        const auto &grant = fab.arbitrate(req);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (grant[i]) {
                left[i] = len;
                out[i] = req[i];
            } else if (left[i] > 0) {
                ++flits;
                if (--left[i] == 0) {
                    fab.release(i, out[i]);
                    std::uint32_t d = static_cast<std::uint32_t>(
                        rng.below(n - 1));
                    want[i] = d >= i ? d + 1 : d;
                }
            }
        }
    }
    return static_cast<double>(flits) / static_cast<double>(cycles);
}

} // namespace

Table
faultTolerance(const ExperimentOptions &opt)
{
    Table t("Extension: L2LC (TSV bundle) fault tolerance - UR "
            "saturation of the 64-radix 4-channel CLRG switch vs "
            "number of failed channels (48 total); binned traffic "
            "remaps to surviving channels");
    t.header({"Failed L2LCs", "Flits/cycle", "Tbps", "vs healthy"});
    phys::PhysModel model;
    double freq =
        model.evaluate(specHiRise(4, ArbScheme::Clrg)).freqGhz;
    std::vector<std::uint32_t> failCounts{0, 2, 4, 8, 12, 24};
    auto rates =
        parallelMap(failCounts, [&](const std::uint32_t &fails) {
            return faultedSaturation(fails, opt.seed);
        });
    double healthy = rates[0];
    for (std::size_t i = 0; i < failCounts.size(); ++i) {
        t.row({Table::integer(failCounts[i]), Table::num(rates[i], 2),
               Table::num(sim::toTbps(rates[i], freq, 128), 2),
               Table::num(100.0 * rates[i] / healthy, 1) + "%"});
    }
    return t;
}

} // namespace hirise::harness
