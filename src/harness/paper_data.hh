/**
 * @file
 * Published numbers from the Hi-Rise paper (MICRO 2014), used by the
 * benchmark harness to print paper-vs-measured comparisons and by the
 * regression tests to pin the model.
 */

#ifndef HIRISE_HARNESS_PAPER_DATA_HH
#define HIRISE_HARNESS_PAPER_DATA_HH

#include <cstdint>

namespace hirise::harness {

/** One row of paper Table I / IV / V. */
struct PaperCostRow
{
    const char *design;
    const char *configuration;
    double areaMm2;
    double freqGhz;
    double energyPj;
    double throughputTbps;
    std::uint64_t numTsvs;
};

/** Table IV (superset of Table I). */
inline constexpr PaperCostRow kPaperTable4[] = {
    {"2D", "64x64", 0.672, 1.69, 71.0, 9.24, 0},
    {"3D Folded", "[16x64]x4", 0.705, 1.58, 73.0, 8.86, 8192},
    {"3D 4-Channel", "[(16x28), 16*(13x1)]x4", 0.451, 2.24, 42.0,
     10.97, 6144},
    {"3D 2-Channel", "[(16x22), 16*(7x1)]x4", 0.315, 2.46, 39.0, 7.65,
     3072},
    {"3D 1-Channel", "[(16x19), 16*(4x1)]x4", 0.247, 2.64, 37.0, 4.27,
     1536},
};

/** Table V (arbitration variants; WLRG omitted as infeasible). */
inline constexpr PaperCostRow kPaperTable5[] = {
    {"2D", "64x64", 0.672, 1.69, 71.0, 9.24, 0},
    {"3D L-2-L LRG", "[(16x28), 16*(13x1)]x4", 0.451, 2.24, 42.0,
     10.97, 6144},
    {"3D CLRG", "[(16x28), 16*(13x1)]x4", 0.451, 2.2, 44.0, 10.65,
     6144},
};

/** Headline abstract claims (Hi-Rise CLRG vs 2D). */
struct PaperHeadline
{
    double throughputTbps = 10.65;    //!< 64-radix 4-layer CLRG, UR
    double throughputGainPct = 15.0;  //!< vs 2D
    double areaReductionPct = 33.0;
    double latencyReductionPct = 20.0;
    double energyReductionPct = 38.0;
};

/** Table VI: workload mixes. MPKI is the paper's per-core average
 *  (L1-MPKI + L2-MPKI); speedup is Hi-Rise over 2D. */
struct PaperMixRow
{
    const char *name;
    double avgMpki;
    double speedup;
};

inline constexpr PaperMixRow kPaperTable6[] = {
    {"Mix1", 15.0, 1.02}, {"Mix2", 21.3, 1.04}, {"Mix3", 33.3, 1.06},
    {"Mix4", 38.4, 1.06}, {"Mix5", 52.2, 1.08}, {"Mix6", 58.4, 1.09},
    {"Mix7", 66.9, 1.16}, {"Mix8", 76.0, 1.15},
};

} // namespace hirise::harness

#endif // HIRISE_HARNESS_PAPER_DATA_HH
