#include "harness/experiments.hh"

#include <cmath>

#include "common/parallel.hh"
#include "harness/paper_data.hh"
#include "phys/geometry.hh"
#include "traffic/pattern.hh"

namespace hirise::harness {

using sim::PatternFactory;
using sim::SimConfig;

SwitchSpec
spec2d(std::uint32_t radix)
{
    SwitchSpec s;
    s.topo = Topology::Flat2D;
    s.radix = radix;
    s.arb = ArbScheme::Lrg;
    return s;
}

SwitchSpec
specFolded(std::uint32_t radix, std::uint32_t layers)
{
    SwitchSpec s;
    s.topo = Topology::Folded3D;
    s.radix = radix;
    s.layers = layers;
    s.arb = ArbScheme::Lrg;
    return s;
}

SwitchSpec
specHiRise(std::uint32_t channels, ArbScheme arb, std::uint32_t radix,
           std::uint32_t layers)
{
    SwitchSpec s;
    s.topo = Topology::HiRise;
    s.radix = radix;
    s.layers = layers;
    s.channels = channels;
    s.arb = arb;
    return s;
}

namespace {

PatternFactory
uniform(std::uint32_t radix)
{
    return [radix] {
        return std::make_shared<traffic::UniformRandom>(radix);
    };
}

PatternFactory
hotspot(std::uint32_t radix, std::uint32_t hot)
{
    return [radix, hot] {
        return std::make_shared<traffic::Hotspot>(radix, hot);
    };
}

PatternFactory
adversarial()
{
    return [] {
        return std::make_shared<traffic::Adversarial>(
            std::vector<std::uint32_t>{3, 7, 11, 15, 20}, 63, 64);
    };
}

/** One cost-table row: a paper row paired with the spec to measure. */
struct CostJob
{
    const PaperCostRow *paper;
    SwitchSpec spec;
};

/** Fill the cost table: the saturation simulations (the expensive
 *  part) fan out through the campaign pool; rows are emitted in the
 *  original order afterwards. */
void
addCostRows(Table &t, const std::vector<CostJob> &jobs,
            const ExperimentOptions &opt)
{
    std::vector<double> tputs =
        parallelMap(jobs, [&](const CostJob &j) {
            return uniformSaturationTbps(j.spec, opt);
        });
    phys::PhysModel model;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const PaperCostRow &paper = *jobs[i].paper;
        auto rep = model.evaluate(jobs[i].spec);
        t.row({paper.design, paper.configuration,
               Table::num(paper.areaMm2, 3), Table::num(rep.areaMm2, 3),
               Table::num(paper.freqGhz, 2), Table::num(rep.freqGhz, 2),
               Table::num(paper.energyPj, 0),
               Table::num(rep.energyPerTransPj, 1),
               Table::num(paper.throughputTbps, 2),
               Table::num(tputs[i], 2),
               Table::integer(static_cast<long long>(paper.numTsvs)),
               Table::integer(static_cast<long long>(rep.numTsvs))});
    }
}

std::vector<std::string>
costHeader()
{
    return {"Design", "Configuration", "Area(p)", "Area(m)",
            "GHz(p)", "GHz(m)", "pJ(p)", "pJ(m)", "Tbps(p)",
            "Tbps(m)", "TSV(p)", "TSV(m)"};
}

} // namespace

double
uniformSaturationTbps(const SwitchSpec &spec,
                      const ExperimentOptions &opt)
{
    phys::PhysModel model;
    auto rep = model.evaluate(spec);
    double flits = sim::saturationFlitsPerCycle(spec, opt.simConfig(),
                                                uniform(spec.radix));
    return sim::toTbps(flits, rep.freqGhz, spec.flitBits);
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

Table
table1(const ExperimentOptions &opt)
{
    Table t("Table I: 2D vs 3D folded, 64-radix ((p)aper vs (m)odel)");
    t.header(costHeader());
    addCostRows(t,
                {{&kPaperTable4[0], spec2d()},
                 {&kPaperTable4[1], specFolded()}},
                opt);
    return t;
}

Table
table4(const ExperimentOptions &opt)
{
    Table t("Table IV: implementation cost of 64-radix switches "
            "((p)aper vs (m)odel)");
    t.header(costHeader());
    addCostRows(t,
                {{&kPaperTable4[0], spec2d()},
                 {&kPaperTable4[1], specFolded()},
                 {&kPaperTable4[2], specHiRise(4)},
                 {&kPaperTable4[3], specHiRise(2)},
                 {&kPaperTable4[4], specHiRise(1)}},
                opt);
    return t;
}

Table
table5(const ExperimentOptions &opt)
{
    Table t("Table V: arbitration variants, 64-radix 4-channel "
            "((p)aper vs (m)odel)");
    t.header(costHeader());
    addCostRows(t,
                {{&kPaperTable5[0], spec2d()},
                 {&kPaperTable5[1], specHiRise(4, ArbScheme::LayerLrg)},
                 {&kPaperTable5[2], specHiRise(4, ArbScheme::Clrg)}},
                opt);
    return t;
}

// ---------------------------------------------------------------------
// Figures 9a / 9b / 9c: physical-model sweeps
// ---------------------------------------------------------------------

Table
fig9a(const ExperimentOptions &)
{
    phys::PhysModel m;
    Table t("Fig 9a: frequency (GHz) vs radix, 4 layers");
    t.header({"Radix", "2D", "3D 4-Channel", "3D 2-Channel",
              "3D 1-Channel"});
    for (std::uint32_t r = 16; r <= 144; r += 16) {
        t.row({Table::integer(r),
               Table::num(m.evaluate(spec2d(r)).freqGhz, 2),
               Table::num(
                   m.evaluate(specHiRise(4, ArbScheme::LayerLrg, r))
                       .freqGhz,
                   2),
               Table::num(
                   m.evaluate(specHiRise(2, ArbScheme::LayerLrg, r))
                       .freqGhz,
                   2),
               Table::num(
                   m.evaluate(specHiRise(1, ArbScheme::LayerLrg, r))
                       .freqGhz,
                   2)});
    }
    return t;
}

Table
fig9b(const ExperimentOptions &)
{
    phys::PhysModel m;
    Table t("Fig 9b: frequency (GHz) vs stacked layers, 4-channel");
    t.header({"Layers", "Radix 48", "Radix 64", "Radix 80",
              "Radix 128"});
    for (std::uint32_t l = 2; l <= 7; ++l) {
        std::vector<std::string> row{Table::integer(l)};
        for (std::uint32_t r : {48u, 64u, 80u, 128u}) {
            row.push_back(Table::num(
                m.evaluate(specHiRise(4, ArbScheme::LayerLrg, r, l))
                    .freqGhz,
                2));
        }
        t.row(row);
    }
    return t;
}

Table
fig9c(const ExperimentOptions &)
{
    phys::PhysModel m;
    Table t("Fig 9c: energy per 128-bit transaction (pJ) vs radix");
    t.header({"Radix", "2D", "3D 4-Channel", "3D 2-Channel",
              "3D 1-Channel"});
    for (std::uint32_t r = 16; r <= 144; r += 16) {
        t.row({Table::integer(r),
               Table::num(m.evaluate(spec2d(r)).energyPerTransPj, 1),
               Table::num(
                   m.evaluate(specHiRise(4, ArbScheme::LayerLrg, r))
                       .energyPerTransPj,
                   1),
               Table::num(
                   m.evaluate(specHiRise(2, ArbScheme::LayerLrg, r))
                       .energyPerTransPj,
                   1),
               Table::num(
                   m.evaluate(specHiRise(1, ArbScheme::LayerLrg, r))
                       .energyPerTransPj,
                   1)});
    }
    return t;
}

// ---------------------------------------------------------------------
// Figure 10: latency vs load (uniform random)
// ---------------------------------------------------------------------

Table
fig10(const ExperimentOptions &opt)
{
    Table t("Fig 10: latency (ns) vs load (packets/input/ns), UR "
            "traffic, 64-radix");
    t.header({"Load(p/ns)", "2D", "3D 4-Ch", "3D 2-Ch", "3D 1-Ch",
              "3D Folded"});

    struct Entry
    {
        SwitchSpec spec;
        double freq;
    };
    phys::PhysModel m;
    std::vector<Entry> entries;
    for (auto spec :
         {spec2d(), specHiRise(4), specHiRise(2), specHiRise(1),
          specFolded()}) {
        entries.push_back({spec, m.evaluate(spec).freqGhz});
    }

    // The paper plots load in packets/input/ns: each design converts
    // it to packets/cycle through its own clock. All grid cells fan
    // out through the campaign pool; cells beyond the injection-
    // bandwidth limit of one flit/cycle (4-flit packets) are off the
    // chart and skipped.
    struct Cell
    {
        double loadPns;
        std::size_t entry;
        double pktPerCycle;
        bool run;
    };
    std::vector<Cell> cells;
    for (double load_pns = 0.05; load_pns <= 0.355; load_pns += 0.05) {
        for (std::size_t e = 0; e < entries.size(); ++e) {
            double pkt_per_cycle = load_pns / entries[e].freq;
            cells.push_back({load_pns, e, pkt_per_cycle,
                             pkt_per_cycle <= 0.25});
        }
    }
    // One design's runnable cells form one point family, so cache
    // misses run as multi-replica batches (sim::BatchSim) instead of
    // independent scalar simulations; every lane is bit-identical to
    // the per-cell run it replaces.
    std::vector<sim::SimResult> results(cells.size());
    for (std::size_t e = 0; e < entries.size(); ++e) {
        std::vector<std::size_t> idx;
        std::vector<sim::RunPoint> pts;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].entry == e && cells[i].run) {
                idx.push_back(i);
                pts.push_back(
                    {cells[i].pktPerCycle, opt.simConfig().seed});
            }
        }
        auto res = sim::runPointsCached(entries[e].spec,
                                        opt.simConfig(), uniform(64),
                                        pts);
        for (std::size_t k = 0; k < idx.size(); ++k)
            results[idx[k]] = std::move(res[k]);
    }

    for (std::size_t i = 0; i < cells.size();) {
        std::vector<std::string> row{Table::num(cells[i].loadPns, 2)};
        for (std::size_t e = 0; e < entries.size(); ++e, ++i) {
            if (!cells[i].run) {
                row.push_back("-");
                continue;
            }
            const sim::SimResult &r = results[i];
            bool saturated = r.acceptedFlitsPerCycle <
                             0.95 * r.offeredFlitsPerCycle;
            if (saturated) {
                row.push_back("sat");
            } else {
                row.push_back(Table::num(
                    r.avgLatencyCycles / entries[e].freq, 2));
            }
        }
        t.row(row);
    }
    return t;
}

// ---------------------------------------------------------------------
// Figure 11: arbitration-scheme studies
// ---------------------------------------------------------------------

Table
fig11a(const ExperimentOptions &opt)
{
    Table t("Fig 11a: per-input latency (cycles) for hotspot traffic "
            "(all inputs -> output 63), 80% of saturation");
    t.header({"Input", "2D", "3D L-2-L LRG", "3D WLRG", "3D CLRG"});

    // Hotspot saturation: one output serves len/(len+1) flits/cycle;
    // 63 inputs share it.
    SimConfig cfg = opt.simConfig();
    cfg.measureCycles *= 2; // per-input stats need more samples
    double sat_pkts = 0.8 / 4.0;
    double load = 0.8 * sat_pkts / 63.0;

    std::vector<SwitchSpec> specs{spec2d(),
                                  specHiRise(4, ArbScheme::LayerLrg),
                                  specHiRise(4, ArbScheme::Wlrg),
                                  specHiRise(4, ArbScheme::Clrg)};
    auto results = parallelMap(specs, [&](const SwitchSpec &spec) {
        return sim::runAtLoadCached(spec, cfg, hotspot(64, 63), load);
    });
    const auto &r2d = results[0];
    const auto &rlrg = results[1];
    const auto &rwlrg = results[2];
    const auto &rclrg = results[3];

    for (std::uint32_t i = 0; i < 63; ++i) {
        t.row({Table::integer(i),
               Table::num(r2d.perInputLatency[i], 0),
               Table::num(rlrg.perInputLatency[i], 0),
               Table::num(rwlrg.perInputLatency[i], 0),
               Table::num(rclrg.perInputLatency[i], 0)});
    }
    return t;
}

Table
fig11b(const ExperimentOptions &opt)
{
    Table t("Fig 11b: throughput (packets/ns) vs load "
            "(packets/input/ns), UR traffic");
    t.header({"Load(p/ns)", "2D", "3D L-2-L LRG", "3D WLRG",
              "3D CLRG"});

    phys::PhysModel m;
    struct Entry
    {
        SwitchSpec spec;
        double freq;
    };
    std::vector<Entry> entries;
    for (auto spec :
         {spec2d(), specHiRise(4, ArbScheme::LayerLrg),
          specHiRise(4, ArbScheme::Wlrg),
          specHiRise(4, ArbScheme::Clrg)}) {
        entries.push_back({spec, m.evaluate(spec).freqGhz});
    }

    struct Cell
    {
        double loadPns;
        std::size_t entry;
        double pktPerCycle;
    };
    std::vector<Cell> cells;
    for (double load_pns = 0.05; load_pns <= 0.455; load_pns += 0.05) {
        for (std::size_t e = 0; e < entries.size(); ++e) {
            cells.push_back(
                {load_pns, e,
                 std::min(load_pns / entries[e].freq, 1.0)});
        }
    }
    // Per-design point families again: each scheme's load column
    // batches its cache misses through sim::BatchSim.
    std::vector<sim::SimResult> results(cells.size());
    for (std::size_t e = 0; e < entries.size(); ++e) {
        std::vector<std::size_t> idx;
        std::vector<sim::RunPoint> pts;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].entry == e) {
                idx.push_back(i);
                pts.push_back(
                    {cells[i].pktPerCycle, opt.simConfig().seed});
            }
        }
        auto res = sim::runPointsCached(entries[e].spec,
                                        opt.simConfig(), uniform(64),
                                        pts);
        for (std::size_t k = 0; k < idx.size(); ++k)
            results[idx[k]] = std::move(res[k]);
    }

    for (std::size_t i = 0; i < cells.size();) {
        std::vector<std::string> row{Table::num(cells[i].loadPns, 2)};
        for (std::size_t e = 0; e < entries.size(); ++e, ++i) {
            row.push_back(Table::num(
                sim::toPacketsPerNs(results[i].acceptedFlitsPerCycle,
                                    entries[e].freq, 4),
                2));
        }
        t.row(row);
    }
    return t;
}

Table
fig11c(const ExperimentOptions &opt)
{
    Table t("Fig 11c: per-input throughput (packets/ns) for the "
            "adversarial pattern ({3,7,11,15} on L1 + {20} on L2 -> "
            "output 63)");
    t.header({"Input", "2D", "3D L-2-L LRG", "3D WLRG", "3D CLRG"});

    phys::PhysModel m;
    SimConfig cfg = opt.simConfig();
    cfg.measureCycles *= 2;
    double load = 0.2; // past the shared output's capacity

    std::vector<SwitchSpec> specs{spec2d(),
                                  specHiRise(1, ArbScheme::LayerLrg),
                                  specHiRise(1, ArbScheme::Wlrg),
                                  specHiRise(1, ArbScheme::Clrg)};
    auto results = parallelMap(specs, [&](const SwitchSpec &spec) {
        return sim::runAtLoadCached(spec, cfg, adversarial(), load);
    });
    double f2d = m.evaluate(specs[0]).freqGhz;
    double flrg = m.evaluate(specs[1]).freqGhz;
    double fwlrg = m.evaluate(specs[2]).freqGhz;
    double fclrg = m.evaluate(specs[3]).freqGhz;
    const auto &r2d = results[0];
    const auto &rlrg = results[1];
    const auto &rwlrg = results[2];
    const auto &rclrg = results[3];

    for (std::uint32_t i : {3u, 7u, 11u, 15u, 20u}) {
        t.row({Table::integer(i),
               Table::num(r2d.perInputThroughput[i] * f2d, 3),
               Table::num(rlrg.perInputThroughput[i] * flrg, 3),
               Table::num(rwlrg.perInputThroughput[i] * fwlrg, 3),
               Table::num(rclrg.perInputThroughput[i] * fclrg, 3)});
    }
    return t;
}

// ---------------------------------------------------------------------
// Figure 12: TSV pitch sensitivity
// ---------------------------------------------------------------------

Table
fig12(const ExperimentOptions &)
{
    Table t("Fig 12: frequency and area vs TSV pitch, 64-radix "
            "4-channel 4-layer CLRG (2D reference: 1.69 GHz, "
            "0.672 mm^2)");
    t.header({"Pitch(um)", "Freq(GHz)", "Area(mm^2)"});
    for (double pitch = 0.4; pitch <= 5.01; pitch += 0.4) {
        phys::TechParams tech = phys::TechParams::nm32();
        tech.tsvPitchUm = pitch;
        phys::PhysModel m(tech);
        auto rep = m.evaluate(specHiRise(4, ArbScheme::Clrg));
        t.row({Table::num(pitch, 1), Table::num(rep.freqGhz, 3),
               Table::num(rep.areaMm2, 3)});
    }
    return t;
}

// ---------------------------------------------------------------------
// Extensions
// ---------------------------------------------------------------------

Table
cornerInterLayer(const ExperimentOptions &opt)
{
    Table t("Corner case (section VI-B): inter-layer-only traffic, "
            "four inputs sharing one L2LC -> distinct outputs");
    t.header({"Scheme", "Accepted flits/cycle", "Cap (flits/cycle)"});
    auto make = [] {
        return std::make_shared<traffic::InterLayerOnly>(16, 4, 0, 2);
    };
    std::vector<ArbScheme> arbs{ArbScheme::LayerLrg, ArbScheme::Wlrg,
                                ArbScheme::Clrg};
    auto results = parallelMap(arbs, [&](const ArbScheme &arb) {
        return sim::runAtLoadCached(specHiRise(4, arb),
                                    opt.simConfig(), make, 1.0);
    });
    for (std::size_t i = 0; i < arbs.size(); ++i) {
        t.row({toString(arbs[i]),
               Table::num(results[i].acceptedFlitsPerCycle, 3),
               Table::num(0.8, 3)});
    }
    return t;
}

Table
ablateClassCount(const ExperimentOptions &opt)
{
    Table t("Ablation: CLRG class count vs hotspot fairness "
            "(local-layer latency / remote-layer latency; 1.0 = "
            "perfectly level)");
    t.header({"Classes", "Local/remote latency ratio",
              "Avg latency (cycles)"});

    SimConfig cfg = opt.simConfig();
    double load = 0.8 * (0.8 / 4.0) / 63.0;
    std::vector<std::uint32_t> classCounts{2, 3, 4, 8};
    auto results =
        parallelMap(classCounts, [&](const std::uint32_t &classes) {
            SwitchSpec spec = specHiRise(4, ArbScheme::Clrg);
            spec.clrgMaxCount = classes - 1;
            return sim::runAtLoadCached(spec, cfg, hotspot(64, 63),
                                        load);
        });
    for (std::size_t j = 0; j < classCounts.size(); ++j) {
        std::uint32_t classes = classCounts[j];
        const sim::SimResult &r = results[j];
        double local = 0, remote = 0;
        int nl = 0, nr = 0;
        for (int i = 0; i < 63; ++i) {
            if (r.perInputLatency[i] <= 0)
                continue;
            if (i >= 48) {
                local += r.perInputLatency[i];
                ++nl;
            } else {
                remote += r.perInputLatency[i];
                ++nr;
            }
        }
        t.row({Table::integer(classes),
               Table::num((local / nl) / (remote / nr), 2),
               Table::num(r.avgLatencyCycles, 1)});
    }
    return t;
}

Table
ablateChannelAlloc(const ExperimentOptions &opt)
{
    Table t("Ablation: channel-allocation policy (64-radix 4-channel "
            "CLRG)");
    t.header({"Policy", "UR sat (flits/cycle)", "Freq (GHz)",
              "UR sat (Tbps)"});
    phys::PhysModel m;
    std::vector<ChannelAlloc> allocs{ChannelAlloc::InputBinned,
                                     ChannelAlloc::OutputBinned,
                                     ChannelAlloc::Priority};
    auto flitRates = parallelMap(allocs, [&](const ChannelAlloc &a) {
        SwitchSpec spec = specHiRise(4, ArbScheme::Clrg);
        spec.alloc = a;
        return sim::saturationFlitsPerCycle(spec, opt.simConfig(),
                                            uniform(64));
    });
    for (std::size_t i = 0; i < allocs.size(); ++i) {
        SwitchSpec spec = specHiRise(4, ArbScheme::Clrg);
        spec.alloc = allocs[i];
        double freq = m.evaluate(spec).freqGhz;
        t.row({toString(allocs[i]), Table::num(flitRates[i], 2),
               Table::num(freq, 2),
               Table::num(sim::toTbps(flitRates[i], freq, 128), 2)});
    }
    return t;
}

Table
headlineClaims(const ExperimentOptions &opt)
{
    Table t("Headline claims (abstract): Hi-Rise 4-channel CLRG vs "
            "2D, 64-radix");
    t.header({"Metric", "Paper", "Measured"});
    phys::PhysModel m;
    auto hr = m.evaluate(specHiRise(4, ArbScheme::Clrg));
    auto flat = m.evaluate(spec2d());

    // Four independent measurements; fan out through the pool.
    // Zero-load latency is in ns (cycle counts match; clocks differ).
    std::vector<std::function<double()>> jobs{
        [&] {
            return uniformSaturationTbps(
                specHiRise(4, ArbScheme::Clrg), opt);
        },
        [&] { return uniformSaturationTbps(spec2d(), opt); },
        [&] {
            return sim::runAtLoadCached(specHiRise(4, ArbScheme::Clrg),
                                        opt.simConfig(), uniform(64),
                                        0.01)
                       .avgLatencyCycles /
                   hr.freqGhz;
        },
        [&] {
            return sim::runAtLoadCached(spec2d(), opt.simConfig(),
                                        uniform(64), 0.01)
                       .avgLatencyCycles /
                   flat.freqGhz;
        }};
    auto vals = parallelMap(
        jobs, [](const std::function<double()> &f) { return f(); });
    double hr_tput = vals[0];
    double flat_tput = vals[1];
    double lat_hr = vals[2];
    double lat_2d = vals[3];

    PaperHeadline p;
    t.row({"Throughput (Tbps)", Table::num(p.throughputTbps, 2),
           Table::num(hr_tput, 2)});
    t.row({"Throughput gain (%)", Table::num(p.throughputGainPct, 0),
           Table::num(100.0 * (hr_tput / flat_tput - 1.0), 1)});
    t.row({"Area reduction (%)", Table::num(p.areaReductionPct, 0),
           Table::num(100.0 * (1.0 - hr.areaMm2 / flat.areaMm2), 1)});
    t.row({"Latency reduction (%)",
           Table::num(p.latencyReductionPct, 0),
           Table::num(100.0 * (1.0 - lat_hr / lat_2d), 1)});
    t.row({"Energy reduction (%)", Table::num(p.energyReductionPct, 0),
           Table::num(100.0 * (1.0 - hr.energyPerTransPj /
                                         flat.energyPerTransPj),
                      1)});
    return t;
}

} // namespace hirise::harness
