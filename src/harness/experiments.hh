/**
 * @file
 * Experiment runners: one function per paper table/figure, shared by
 * the bench binaries, the examples, and the regression tests. Each
 * returns a Table whose rows interleave the paper's published values
 * with our measured ones.
 */

#ifndef HIRISE_HARNESS_EXPERIMENTS_HH
#define HIRISE_HARNESS_EXPERIMENTS_HH

#include <vector>

#include "common/spec.hh"
#include "common/table.hh"
#include "phys/model.hh"
#include "sim/sweep.hh"

namespace hirise::harness {

/** Knobs for experiment duration (quick mode for CI/tests). */
struct ExperimentOptions
{
    bool quick = false;
    std::uint64_t seed = 1;
    /** Run on the dense per-cycle reference core instead of the
     *  event-driven core (--dense). Results are bit-identical either
     *  way; this exists for A/B perf comparison and belt-and-braces
     *  validation of published numbers. */
    bool dense = false;

    sim::SimConfig
    simConfig() const
    {
        sim::SimConfig cfg;
        cfg.warmupCycles = quick ? 2000 : 10000;
        cfg.measureCycles = quick ? 8000 : 50000;
        cfg.seed = seed;
        cfg.denseStepping = dense;
        return cfg;
    }
};

/** The five standard 64-radix switch configurations of Table IV. */
SwitchSpec spec2d(std::uint32_t radix = 64);
SwitchSpec specFolded(std::uint32_t radix = 64,
                      std::uint32_t layers = 4);
SwitchSpec specHiRise(std::uint32_t channels,
                      ArbScheme arb = ArbScheme::LayerLrg,
                      std::uint32_t radix = 64,
                      std::uint32_t layers = 4);

/** Measured uniform-random saturation throughput in Tbps (simulated
 *  flits/cycle at saturation x modeled frequency x flit width). */
double uniformSaturationTbps(const SwitchSpec &spec,
                             const ExperimentOptions &opt);

// -- Tables -----------------------------------------------------------
Table table1(const ExperimentOptions &opt);  //!< 2D vs folded
Table table4(const ExperimentOptions &opt);  //!< channel multiplicity
Table table5(const ExperimentOptions &opt);  //!< arbitration variants
Table table6(const ExperimentOptions &opt);  //!< application speedups

// -- Figures ----------------------------------------------------------
Table fig9a(const ExperimentOptions &opt); //!< frequency vs radix
Table fig9b(const ExperimentOptions &opt); //!< frequency vs layers
Table fig9c(const ExperimentOptions &opt); //!< energy vs radix
Table fig10(const ExperimentOptions &opt); //!< latency vs load, UR
Table fig11a(const ExperimentOptions &opt); //!< hotspot per-input lat.
Table fig11b(const ExperimentOptions &opt); //!< UR throughput vs load
Table fig11c(const ExperimentOptions &opt); //!< adversarial throughput
Table fig12(const ExperimentOptions &opt); //!< TSV pitch sensitivity

// -- Extensions beyond the paper's figures ----------------------------
/** Section VI-B pathological inter-layer corner case. */
Table cornerInterLayer(const ExperimentOptions &opt);
/** Ablation: CLRG class-count sensitivity under hotspot. */
Table ablateClassCount(const ExperimentOptions &opt);
/** Ablation: channel-allocation policies under UR and hotspot. */
Table ablateChannelAlloc(const ExperimentOptions &opt);
/** Headline abstract claims, recomputed. */
Table headlineClaims(const ExperimentOptions &opt);
/** Ablation: VC count and buffer depth sensitivity. */
Table ablateBuffers(const ExperimentOptions &opt);
/** Error bars: saturation throughput across seeds. */
Table seedSensitivity(const ExperimentOptions &opt);
/** Extension: throughput degradation under L2LC (TSV) failures. */
Table faultTolerance(const ExperimentOptions &opt);
/** Extension: closed-loop throughput vs. fault-schedule channel
 *  failures, cross-checked against the degraded MWM fluid bound. */
Table degradation(const ExperimentOptions &opt);
/** Companion curve family: avg/p99 packet latency for the same
 *  failed-channel scenarios across sub-saturation offered loads
 *  (E-A6 extension, EXPERIMENTS.md). */
Table degradationLatency(const ExperimentOptions &opt);
/** Section VI-E: kilo-core mesh of Hi-Rise switches vs 2D routers. */
Table kiloCore(const ExperimentOptions &opt);
/** Section VI-E discussion: energy/latency vs mesh and flattened
 *  butterfly on a 64-core chip. */
Table discussion(const ExperimentOptions &opt);
/** Section VI-E discussion: system speedup over a flattened-
 *  butterfly interconnect (paper ~13%). */
Table discussionSpeedup(const ExperimentOptions &opt);
/** Scheduler matrix (flat 2D crossbar): every single-stage scheduler
 *  (LRG, iSLIP, PIM, wavefront) x every analytic traffic pattern,
 *  throughput reported against the offline MWM fluid bound. */
Table schedThroughput(const ExperimentOptions &opt);
Table schedLatency(const ExperimentOptions &opt);
Table schedFairness(const ExperimentOptions &opt);

} // namespace hirise::harness

#endif // HIRISE_HARNESS_EXPERIMENTS_HH
