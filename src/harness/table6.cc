/**
 * @file
 * Table VI runner: application-workload speedups of Hi-Rise (CLRG)
 * over the 2D Swizzle-Switch on the 64-core system.
 */

#include "harness/experiments.hh"

#include "cmp/system.hh"
#include "common/parallel.hh"
#include "harness/paper_data.hh"
#include "phys/model.hh"

namespace hirise::harness {

namespace {

double
runMixIpc(const SwitchSpec &spec, const cmp::Mix &mix,
          const ExperimentOptions &opt)
{
    phys::PhysModel model;
    cmp::SystemConfig cfg;
    cfg.switchFreqGhz = model.evaluate(spec).freqGhz;
    cfg.seed = opt.seed;
    auto per_core = cmp::assignMix(mix, cfg.numTiles);
    cmp::CmpSystem sys(spec, cfg, std::move(per_core));
    std::uint64_t warmup = opt.quick ? 5000 : 20000;
    std::uint64_t cycles = opt.quick ? 30000 : 150000;
    return sys.run(warmup, cycles).totalIpc;
}

} // namespace

Table
table6(const ExperimentOptions &opt)
{
    Table t("Table VI: workload speedup of Hi-Rise (4-channel CLRG) "
            "over 2D, 64-core system ((p)aper vs (m)easured)");
    t.header({"Mix", "avg MPKI", "Speedup(p)", "Speedup(m)",
              "IPC 2D", "IPC Hi-Rise"});

    const auto &mixes = cmp::paperMixes();
    // One task per (mix, design) system simulation.
    struct Cell
    {
        std::size_t mix;
        bool hirise;
    };
    std::vector<Cell> cells;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        cells.push_back({i, false});
        cells.push_back({i, true});
    }
    auto ipcs = parallelMap(cells, [&](const Cell &c) {
        return runMixIpc(c.hirise ? specHiRise(4, ArbScheme::Clrg)
                                  : spec2d(),
                         mixes[c.mix], opt);
    });
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        double ipc_2d = ipcs[2 * i];
        double ipc_hr = ipcs[2 * i + 1];
        t.row({mixes[i].name, Table::num(mixes[i].paperAvgMpki, 1),
               Table::num(kPaperTable6[i].speedup, 2),
               Table::num(ipc_hr / ipc_2d, 2), Table::num(ipc_2d, 1),
               Table::num(ipc_hr, 1)});
    }
    return t;
}

} // namespace hirise::harness
