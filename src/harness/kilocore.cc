/**
 * @file
 * Section VI-E study: a kilo-core-scale 2D mesh of 3D Hi-Rise
 * switches (Fig 13) versus a mesh of flat 2D Swizzle-Switch routers
 * at equal concentration (48 nodes/router, 768 nodes total on a 4x4
 * mesh). XY dimension-ordered routing between routers; the Hi-Rise
 * routers additionally provide adaptive Z (layer) routing and one
 * mesh port per layer per direction.
 */

#include "harness/experiments.hh"

#include "common/parallel.hh"
#include "noc/mesh.hh"
#include "phys/model.hh"

namespace hirise::harness {

Table
kiloCore(const ExperimentOptions &opt)
{
    Table t("Section VI-E: 4x4 mesh of switches, 768 nodes, uniform "
            "random (latency ns / accepted packets-per-ns; 'sat' = "
            "offered load not sustained)");
    t.header({"Load(p/node/ns)", "HiRise-mesh lat", "HiRise-mesh "
              "acc", "2D-mesh lat", "2D-mesh acc"});

    noc::MeshConfig hr;
    hr.width = 4;
    hr.height = 4;
    hr.router.topo = Topology::HiRise;
    hr.router.radix = 64;
    hr.router.layers = 4;
    hr.router.channels = 4;
    hr.router.arb = ArbScheme::Clrg;

    noc::MeshConfig flat;
    flat.width = 4;
    flat.height = 4;
    flat.router.topo = Topology::Flat2D;
    flat.router.radix = 52; // 48 local + 4 mesh ports
    flat.router.arb = ArbScheme::Lrg;

    phys::PhysModel model;
    double f_hr = model.evaluate(hr.router).freqGhz;
    double f_flat = model.evaluate(flat.router).freqGhz;

    net::Cycle warm = opt.quick ? 1000 : 4000;
    net::Cycle meas = opt.quick ? 4000 : 16000;

    auto cell = [](const noc::MeshResult &r, double f,
                   std::vector<std::string> &row) {
        bool sat = r.acceptedPktsPerCycle <
                   0.95 * r.offeredPktsPerCycle;
        row.push_back(sat ? "sat"
                          : Table::num(r.avgLatencyCycles / f, 2));
        row.push_back(Table::num(r.acceptedPktsPerCycle * f, 1));
    };

    // Both mesh simulations of every load point fan out through the
    // campaign pool; rows assemble in load order afterwards.
    struct Cell
    {
        double loadPns;
        bool hirise;
    };
    std::vector<Cell> cells;
    for (double load_pns = 0.005; load_pns <= 0.0551;
         load_pns += 0.005) {
        cells.push_back({load_pns, true});
        cells.push_back({load_pns, false});
    }
    auto results = parallelMap(cells, [&](const Cell &c) {
        noc::MeshConfig mc = c.hirise ? hr : flat;
        mc.seed = opt.seed;
        noc::MeshNoc m(mc);
        double f = c.hirise ? f_hr : f_flat;
        return m.run(c.loadPns / f, warm, meas);
    });
    for (std::size_t i = 0; i < cells.size(); i += 2) {
        std::vector<std::string> row{Table::num(cells[i].loadPns, 3)};
        cell(results[i], f_hr, row);
        cell(results[i + 1], f_flat, row);
        t.row(row);
    }
    return t;
}

} // namespace hirise::harness
