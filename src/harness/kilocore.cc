/**
 * @file
 * Section VI-E study: a kilo-core-scale 2D mesh of 3D Hi-Rise
 * switches (Fig 13) versus a mesh of flat 2D Swizzle-Switch routers
 * at equal concentration (48 nodes/router, 768 nodes total on a 4x4
 * mesh). XY dimension-ordered routing between routers; the Hi-Rise
 * routers additionally provide adaptive Z (layer) routing and one
 * mesh port per layer per direction.
 */

#include "harness/experiments.hh"

#include "noc/mesh.hh"
#include "phys/model.hh"

namespace hirise::harness {

Table
kiloCore(const ExperimentOptions &opt)
{
    Table t("Section VI-E: 4x4 mesh of switches, 768 nodes, uniform "
            "random (latency ns / accepted packets-per-ns; 'sat' = "
            "offered load not sustained)");
    t.header({"Load(p/node/ns)", "HiRise-mesh lat", "HiRise-mesh "
              "acc", "2D-mesh lat", "2D-mesh acc"});

    noc::MeshConfig hr;
    hr.width = 4;
    hr.height = 4;
    hr.router.topo = Topology::HiRise;
    hr.router.radix = 64;
    hr.router.layers = 4;
    hr.router.channels = 4;
    hr.router.arb = ArbScheme::Clrg;

    noc::MeshConfig flat;
    flat.width = 4;
    flat.height = 4;
    flat.router.topo = Topology::Flat2D;
    flat.router.radix = 52; // 48 local + 4 mesh ports
    flat.router.arb = ArbScheme::Lrg;

    phys::PhysModel model;
    double f_hr = model.evaluate(hr.router).freqGhz;
    double f_flat = model.evaluate(flat.router).freqGhz;

    net::Cycle warm = opt.quick ? 1000 : 4000;
    net::Cycle meas = opt.quick ? 4000 : 16000;

    auto cell = [](const noc::MeshResult &r, double f,
                   std::vector<std::string> &row) {
        bool sat = r.acceptedPktsPerCycle <
                   0.95 * r.offeredPktsPerCycle;
        row.push_back(sat ? "sat"
                          : Table::num(r.avgLatencyCycles / f, 2));
        row.push_back(Table::num(r.acceptedPktsPerCycle * f, 1));
    };

    for (double load_pns = 0.005; load_pns <= 0.0551;
         load_pns += 0.005) {
        std::vector<std::string> row{Table::num(load_pns, 3)};
        noc::MeshConfig hr_run = hr;
        hr_run.seed = opt.seed;
        noc::MeshNoc m1(hr_run);
        cell(m1.run(load_pns / f_hr, warm, meas), f_hr, row);

        noc::MeshConfig flat_run = flat;
        flat_run.seed = opt.seed;
        noc::MeshNoc m2(flat_run);
        cell(m2.run(load_pns / f_flat, warm, meas), f_flat, row);
        t.row(row);
    }
    return t;
}

} // namespace hirise::harness
