/**
 * @file
 * Methodology ablations beyond the paper's figures: buffer
 * architecture sensitivity and seed sensitivity (error bars) for the
 * headline throughput numbers.
 */

#include "harness/experiments.hh"

#include <cmath>

#include "phys/model.hh"
#include "traffic/pattern.hh"

namespace hirise::harness {

Table
ablateBuffers(const ExperimentOptions &opt)
{
    Table t("Ablation: VC count x buffer depth (paper section V uses "
            "4 VCs x 4 flits) - UR saturation in flits/cycle");
    t.header({"VCs", "Depth", "2D", "HiRise c4 CLRG"});

    auto uniform = [] {
        return std::make_shared<traffic::UniformRandom>(64);
    };
    for (std::uint32_t vcs : {1u, 2u, 4u, 8u}) {
        for (std::uint32_t depth : {2u, 4u, 8u}) {
            sim::SimConfig cfg = opt.simConfig();
            cfg.numVcs = vcs;
            cfg.vcDepth = depth;
            double flat = sim::saturationFlitsPerCycle(
                spec2d(), cfg, uniform);
            double hr = sim::saturationFlitsPerCycle(
                specHiRise(4, ArbScheme::Clrg), cfg, uniform);
            t.row({Table::integer(vcs), Table::integer(depth),
                   Table::num(flat, 2), Table::num(hr, 2)});
        }
    }
    return t;
}

Table
seedSensitivity(const ExperimentOptions &opt)
{
    Table t("Seed sensitivity: UR saturation throughput (Tbps), "
            "mean +- stddev over 5 seeds");
    t.header({"Design", "Mean", "Stddev", "Paper"});

    struct Entry
    {
        const char *label;
        SwitchSpec spec;
        double paper;
    };
    const Entry entries[] = {
        {"2D", spec2d(), 9.24},
        {"3D Folded", specFolded(), 8.86},
        {"3D 4-Ch CLRG", specHiRise(4, ArbScheme::Clrg), 10.65},
        {"3D 2-Ch CLRG", specHiRise(2, ArbScheme::Clrg), 7.65},
        {"3D 1-Ch CLRG", specHiRise(1, ArbScheme::Clrg), 4.27},
    };
    for (const auto &e : entries) {
        RunningStat s;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            ExperimentOptions o = opt;
            o.seed = seed;
            s.add(uniformSaturationTbps(e.spec, o));
        }
        t.row({e.label, Table::num(s.mean(), 2),
               Table::num(std::sqrt(s.variance()), 3),
               Table::num(e.paper, 2)});
    }
    return t;
}

} // namespace hirise::harness
