/**
 * @file
 * Methodology ablations beyond the paper's figures: buffer
 * architecture sensitivity and seed sensitivity (error bars) for the
 * headline throughput numbers.
 */

#include "harness/experiments.hh"

#include <cmath>

#include "common/parallel.hh"
#include "phys/model.hh"
#include "traffic/pattern.hh"

namespace hirise::harness {

Table
ablateBuffers(const ExperimentOptions &opt)
{
    Table t("Ablation: VC count x buffer depth (paper section V uses "
            "4 VCs x 4 flits) - UR saturation in flits/cycle");
    t.header({"VCs", "Depth", "2D", "HiRise c4 CLRG"});

    auto uniform = [] {
        return std::make_shared<traffic::UniformRandom>(64);
    };
    struct Cell
    {
        std::uint32_t vcs, depth;
    };
    std::vector<Cell> cells;
    for (std::uint32_t vcs : {1u, 2u, 4u, 8u})
        for (std::uint32_t depth : {2u, 4u, 8u})
            cells.push_back({vcs, depth});
    // Both designs for one buffer shape form one task; the 24
    // simulations fan out through the campaign pool.
    auto rates = parallelMap(cells, [&](const Cell &c) {
        sim::SimConfig cfg = opt.simConfig();
        cfg.numVcs = c.vcs;
        cfg.vcDepth = c.depth;
        double flat =
            sim::saturationFlitsPerCycle(spec2d(), cfg, uniform);
        double hr = sim::saturationFlitsPerCycle(
            specHiRise(4, ArbScheme::Clrg), cfg, uniform);
        return std::pair<double, double>{flat, hr};
    });
    for (std::size_t i = 0; i < cells.size(); ++i) {
        t.row({Table::integer(cells[i].vcs),
               Table::integer(cells[i].depth),
               Table::num(rates[i].first, 2),
               Table::num(rates[i].second, 2)});
    }
    return t;
}

Table
seedSensitivity(const ExperimentOptions &opt)
{
    Table t("Seed sensitivity: UR saturation throughput (Tbps), "
            "mean +- stddev over 5 seeds");
    t.header({"Design", "Mean", "Stddev", "Paper"});

    struct Entry
    {
        const char *label;
        SwitchSpec spec;
        double paper;
    };
    const Entry entries[] = {
        {"2D", spec2d(), 9.24},
        {"3D Folded", specFolded(), 8.86},
        {"3D 4-Ch CLRG", specHiRise(4, ArbScheme::Clrg), 10.65},
        {"3D 2-Ch CLRG", specHiRise(2, ArbScheme::Clrg), 7.65},
        {"3D 1-Ch CLRG", specHiRise(1, ArbScheme::Clrg), 4.27},
    };
    // One design's five seeds are one point family at full load, so
    // each design's cache misses run as a single multi-replica batch
    // (sim::BatchSim); every lane is bit-identical to the serial
    // per-seed run it replaces, keeping the published statistics.
    // Aggregation stays in seed order.
    std::vector<std::size_t> idx(std::size(entries));
    for (std::size_t e = 0; e < idx.size(); ++e)
        idx[e] = e;
    auto perDesign = parallelMap(idx, [&](const std::size_t &e) {
        phys::PhysModel model;
        auto rep = model.evaluate(entries[e].spec);
        const std::uint32_t radix = entries[e].spec.radix;
        auto make = [radix] {
            return std::make_shared<traffic::UniformRandom>(radix);
        };
        std::vector<sim::RunPoint> pts;
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            pts.push_back({1.0, seed});
        auto res = sim::runPointsCached(entries[e].spec,
                                        opt.simConfig(), make, pts);
        std::vector<double> tbps;
        for (const auto &r : res) {
            tbps.push_back(sim::toTbps(r.acceptedFlitsPerCycle,
                                       rep.freqGhz,
                                       entries[e].spec.flitBits));
        }
        return tbps;
    });
    for (std::size_t e = 0; e < std::size(entries); ++e) {
        RunningStat s;
        for (double v : perDesign[e])
            s.add(v);
        t.row({entries[e].label, Table::num(s.mean(), 2),
               Table::num(std::sqrt(s.variance()), 3),
               Table::num(entries[e].paper, 2)});
    }
    return t;
}

} // namespace hirise::harness
