/**
 * @file
 * Scheduler-matrix experiment family: every single-stage crossbar
 * scheduler (LRG, iSLIP at 1 and 4 iterations, PIM, wavefront) runs
 * across every analytic traffic pattern and a load grid, reporting
 * throughput against the offline maximum-weight-matching fluid bound
 * (sim/mwm_bound.hh) plus latency and Jain fairness. This is the
 * extension counterpart of Table V for the flat 2D datapath: the
 * paper only studies LRG-family arbitration, so the matrix quantifies
 * how much headroom iterative and randomized matching leave on the
 * table for a 3D-integration-friendly single-cycle arbiter.
 */

#include "harness/experiments.hh"

#include <memory>
#include <vector>

#include "sim/mwm_bound.hh"
#include "traffic/pattern.hh"

namespace hirise::harness {

namespace {

constexpr std::uint32_t kSchedRadix = 32;

struct SchemeEntry
{
    const char *label;
    SwitchSpec spec;
};

std::vector<SchemeEntry>
schedSchemes()
{
    SwitchSpec base = spec2d(kSchedRadix);
    std::vector<SchemeEntry> out;
    out.push_back({"LRG", base});

    SwitchSpec s = base;
    s.arb = ArbScheme::Islip;
    s.schedIters = 1;
    out.push_back({"iSLIP/1", s});
    s.schedIters = 4;
    out.push_back({"iSLIP/4", s});

    s = base;
    s.arb = ArbScheme::Pim;
    s.schedIters = 2;
    out.push_back({"PIM/2", s});

    s = base;
    s.arb = ArbScheme::Wavefront;
    out.push_back({"WF", s});
    return out;
}

struct PatternEntry
{
    const char *label;
    sim::PatternFactory make;
};

std::vector<PatternEntry>
schedPatterns()
{
    const std::uint32_t r = kSchedRadix;
    return {
        {"uniform",
         [r] { return std::make_shared<traffic::UniformRandom>(r); }},
        {"hotspot",
         [r] {
             return std::make_shared<traffic::Hotspot>(r, r - 1);
         }},
        {"transpose",
         [r] { return std::make_shared<traffic::Transpose>(r); }},
        {"bit-comp",
         [r] { return std::make_shared<traffic::BitComplement>(r); }},
        {"bursty",
         [r] { return std::make_shared<traffic::Bursty>(r, 8.0); }},
    };
}

std::vector<double>
schedLoads(const ExperimentOptions &opt)
{
    if (opt.quick)
        return {0.3, 0.7, 1.0};
    return {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
}

/** results[pattern][load][scheme], each (scheme, pattern) family
 *  batched through sim::runPointsCached so the campaign cache and
 *  BatchSim lanes see the same access pattern as the figure suites. */
std::vector<std::vector<std::vector<sim::SimResult>>>
runSchedMatrix(const ExperimentOptions &opt,
               const std::vector<SchemeEntry> &schemes,
               const std::vector<PatternEntry> &patterns,
               const std::vector<double> &loads)
{
    std::vector<std::vector<std::vector<sim::SimResult>>> res(
        patterns.size(),
        std::vector<std::vector<sim::SimResult>>(
            loads.size(),
            std::vector<sim::SimResult>(schemes.size())));
    std::vector<sim::RunPoint> pts;
    for (double load : loads)
        pts.push_back({load, opt.simConfig().seed});
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            auto r = sim::runPointsCached(schemes[s].spec,
                                          opt.simConfig(),
                                          patterns[p].make, pts);
            for (std::size_t l = 0; l < loads.size(); ++l)
                res[p][l][s] = std::move(r[l]);
        }
    }
    return res;
}

} // namespace

Table
schedThroughput(const ExperimentOptions &opt)
{
    auto schemes = schedSchemes();
    auto patterns = schedPatterns();
    auto loads = schedLoads(opt);
    auto res = runSchedMatrix(opt, schemes, patterns, loads);

    Table t("Scheduler matrix: accepted flits/cycle vs offered load "
            "(flat 2D, radix 32), with the offline MWM fluid bound");
    std::vector<std::string> hdr{"Pattern", "Load", "MWM bound"};
    for (const auto &s : schemes)
        hdr.push_back(s.label);
    t.header(hdr);

    const std::uint32_t plen = opt.simConfig().packetLen;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        auto proto = patterns[p].make();
        for (std::size_t l = 0; l < loads.size(); ++l) {
            std::vector<std::string> row{
                patterns[p].label, Table::num(loads[l], 1),
                Table::num(sim::mwmAcceptedFlitsBound(
                               kSchedRadix, plen, *proto, loads[l]),
                           2)};
            for (std::size_t s = 0; s < schemes.size(); ++s)
                row.push_back(Table::num(
                    res[p][l][s].acceptedFlitsPerCycle, 2));
            t.row(row);
        }
    }
    return t;
}

Table
schedLatency(const ExperimentOptions &opt)
{
    auto schemes = schedSchemes();
    auto patterns = schedPatterns();
    auto loads = schedLoads(opt);
    auto res = runSchedMatrix(opt, schemes, patterns, loads);

    Table t("Scheduler matrix: mean packet latency (cycles) vs "
            "offered load (flat 2D, radix 32)");
    std::vector<std::string> hdr{"Pattern", "Load"};
    for (const auto &s : schemes)
        hdr.push_back(s.label);
    t.header(hdr);

    for (std::size_t p = 0; p < patterns.size(); ++p) {
        for (std::size_t l = 0; l < loads.size(); ++l) {
            std::vector<std::string> row{patterns[p].label,
                                         Table::num(loads[l], 1)};
            for (std::size_t s = 0; s < schemes.size(); ++s)
                row.push_back(Table::num(
                    res[p][l][s].avgLatencyCycles, 1));
            t.row(row);
        }
    }
    return t;
}

Table
schedFairness(const ExperimentOptions &opt)
{
    auto schemes = schedSchemes();
    auto patterns = schedPatterns();
    auto loads = schedLoads(opt);
    auto res = runSchedMatrix(opt, schemes, patterns, loads);

    Table t("Scheduler matrix: Jain fairness index vs offered load "
            "(flat 2D, radix 32)");
    std::vector<std::string> hdr{"Pattern", "Load"};
    for (const auto &s : schemes)
        hdr.push_back(s.label);
    t.header(hdr);

    for (std::size_t p = 0; p < patterns.size(); ++p) {
        for (std::size_t l = 0; l < loads.size(); ++l) {
            std::vector<std::string> row{patterns[p].label,
                                         Table::num(loads[l], 1)};
            for (std::size_t s = 0; s < schemes.size(); ++s)
                row.push_back(
                    Table::num(res[p][l][s].fairness, 3));
            t.row(row);
        }
    }
    return t;
}

} // namespace hirise::harness
