#include "harness/bench_main.hh"

#include <cstring>

#include "common/logging.hh"

namespace hirise::harness {

int
benchMain(int argc, char **argv,
          const std::vector<NamedExperiment> &experiments)
{
    ExperimentOptions opt;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            fatal("unknown argument '%s' (use --quick, --csv <dir>, "
                  "--seed <n>)",
                  argv[i]);
        }
    }

    for (const auto &e : experiments) {
        Table t = e.fn(opt);
        t.print();
        if (!csv_dir.empty())
            t.writeCsv(csv_dir + "/" + e.name + ".csv");
    }
    return 0;
}

} // namespace hirise::harness
