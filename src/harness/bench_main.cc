#include "harness/bench_main.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/sim_cache.hh"

namespace hirise::harness {

int
benchMain(int argc, char **argv,
          const std::vector<NamedExperiment> &experiments)
{
    ExperimentOptions opt;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            ThreadPool::setGlobalThreads(static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10)));
        } else {
            fatal("unknown argument '%s' (use --quick, --csv <dir>, "
                  "--seed <n>, --threads <n>)",
                  argv[i]);
        }
    }

    for (const auto &e : experiments) {
        Table t = e.fn(opt);
        t.print();
        if (!csv_dir.empty())
            t.writeCsv(csv_dir + "/" + e.name + ".csv");
    }

    // Campaign-cache accounting, e.g. for the CI warm-cache check:
    // printed when the disk tier is live or on explicit request.
    auto &cache = sim::SimCache::global();
    if (cache.diskEnabled() ||
        std::getenv("HIRISE_SIMCACHE_STATS") != nullptr) {
        auto s = cache.stats();
        std::printf("simcache: hits=%llu misses=%llu disk_hits=%llu "
                    "stores=%llu hit_rate=%.1f%%\n",
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.diskHits),
                    static_cast<unsigned long long>(s.stores),
                    100.0 * s.hitRate());
    }
    return 0;
}

} // namespace hirise::harness
