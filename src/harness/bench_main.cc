#include "harness/bench_main.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/sim_cache.hh"
#include "sim/sweep.hh"

namespace hirise::harness {

namespace {

std::uint64_t
wallMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

int
benchMain(int argc, char **argv,
          const std::vector<NamedExperiment> &experiments)
{
    ExperimentOptions opt;
    std::string csv_dir;
    std::string trace_path;
    std::string trace_chrome_path;
    std::string metrics_path;
    std::string metrics_csv_path;
    std::size_t trace_capacity = obs::CycleTracer::kDefaultCapacity;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--dense") == 0) {
            opt.dense = true;
        } else if (std::strcmp(argv[i], "--csv") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            ThreadPool::setGlobalThreads(static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10)));
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-chrome") == 0 &&
                   i + 1 < argc) {
            trace_chrome_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-capacity") == 0 &&
                   i + 1 < argc) {
            trace_capacity = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--metrics") == 0 &&
                   i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics-csv") == 0 &&
                   i + 1 < argc) {
            metrics_csv_path = argv[++i];
        } else if (std::strcmp(argv[i], "--replicas") == 0 &&
                   i + 1 < argc) {
            // Replica lanes per batched simulation (0/1 = scalar);
            // overrides the HIRISE_BATCH environment default.
            sim::setBatchReplicas(static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10)));
        } else {
            fatal("unknown argument '%s' (use --quick, --csv <dir>, "
                  "--seed <n>, --threads <n>, --replicas <n>, "
                  "--trace <file>, --trace-chrome <file>, "
                  "--trace-capacity <n>, --metrics <file>, "
                  "--metrics-csv <file>)",
                  argv[i]);
        }
    }

    bool want_trace = !trace_path.empty() || !trace_chrome_path.empty();
    bool want_metrics =
        !metrics_path.empty() || !metrics_csv_path.empty();
    if ((want_trace || want_metrics) && !obs::compiledIn())
        warn("observability requested but this build has "
             "HIRISE_TRACE=OFF; outputs will be empty");
    auto &tracer = obs::CycleTracer::global();
    if (want_trace)
        tracer.enable(trace_capacity);
    else if (want_metrics)
        obs::setEnabled(true); // metrics without the event ring

    auto &registry = obs::MetricsRegistry::global();
    for (const auto &e : experiments) {
        std::uint32_t name_id = 0;
        if (obs::on()) [[unlikely]] {
            name_id = tracer.internName(e.name);
            tracer.recordAt(wallMicros(), obs::Ev::ExpBegin, name_id);
        }
        auto t0 = std::chrono::steady_clock::now();

        Table t = e.fn(opt);

        double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (obs::on()) [[unlikely]] {
            tracer.recordAt(wallMicros(), obs::Ev::ExpEnd, name_id);
            registry.gauge("harness." + e.name + ".wall_ms")
                .set(wall_ms);
            registry.gauge("pool.queue_depth")
                .set(static_cast<double>(
                    ThreadPool::global().pendingTasks()));
        }
        t.print();
        if (!csv_dir.empty())
            t.writeCsv(csv_dir + "/" + e.name + ".csv");
    }

    // Campaign-cache accounting, e.g. for the CI warm-cache check:
    // printed when the disk tier is live or on explicit request.
    auto &cache = sim::SimCache::global();
    auto s = cache.stats();
    if (cache.diskEnabled() ||
        std::getenv("HIRISE_SIMCACHE_STATS") != nullptr) {
        std::printf("simcache: hits=%llu misses=%llu disk_hits=%llu "
                    "stores=%llu hit_rate=%.1f%%\n",
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.diskHits),
                    static_cast<unsigned long long>(s.stores),
                    100.0 * s.hitRate());
    }

    if (want_metrics) {
        registry.gauge("simcache.hits")
            .set(static_cast<double>(s.hits));
        registry.gauge("simcache.misses")
            .set(static_cast<double>(s.misses));
        registry.gauge("simcache.disk_hits")
            .set(static_cast<double>(s.diskHits));
        registry.gauge("simcache.stores")
            .set(static_cast<double>(s.stores));
        if (!metrics_path.empty() &&
            !registry.writeJsonFile(metrics_path))
            warn("cannot write metrics JSON to '%s'",
                 metrics_path.c_str());
        if (!metrics_csv_path.empty() &&
            !registry.writeCsvFile(metrics_csv_path))
            warn("cannot write metrics CSV to '%s'",
                 metrics_csv_path.c_str());
    }
    if (!trace_path.empty() && !tracer.exportJsonl(trace_path))
        warn("cannot write trace JSONL to '%s'", trace_path.c_str());
    if (!trace_chrome_path.empty() &&
        !tracer.exportChrome(trace_chrome_path))
        warn("cannot write Chrome trace to '%s'",
             trace_chrome_path.c_str());
    return 0;
}

} // namespace hirise::harness
