/**
 * @file
 * Shared main() for the per-table/per-figure bench binaries.
 * Supports:
 *   --quick                shorter simulations (CI-friendly)
 *   --dense                dense per-cycle stepping (A/B reference)
 *   --csv <dir>            also write each table as CSV into <dir>
 *   --seed <n>             change the simulation seed
 *   --threads <n>          size the global worker pool
 *   --trace <file>         record cycle events, export JSONL
 *   --trace-chrome <file>  also export Chrome trace_event JSON
 *   --trace-capacity <n>   ring size in events (default 1M)
 *   --metrics <file>       export the metrics registry as JSON
 *   --metrics-csv <file>   export the metrics registry as CSV
 */

#ifndef HIRISE_HARNESS_BENCH_MAIN_HH
#define HIRISE_HARNESS_BENCH_MAIN_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiments.hh"

namespace hirise::harness {

using ExperimentFn = std::function<Table(const ExperimentOptions &)>;

struct NamedExperiment
{
    std::string name; //!< used for the CSV file name
    ExperimentFn fn;
};

/** Parse flags, run every experiment, print (and optionally CSV). */
int benchMain(int argc, char **argv,
              const std::vector<NamedExperiment> &experiments);

} // namespace hirise::harness

#endif // HIRISE_HARNESS_BENCH_MAIN_HH
