/**
 * @file
 * Extension: dynamic-fault degradation study. Closed-loop throughput
 * of the 4-channel Hi-Rise switch as L2LCs are taken down by a
 * FaultSchedule (the full simulator this time, not the bare-fabric
 * drive of fault.cc), each point cross-checked against the degraded
 * MWM fluid bound for the same surviving-channel matrix. Two traffic
 * regimes: uniform-random, where same-layer routes keep the channel
 * stage from binding (the bound stays at the port cap and measured
 * throughput falls below it from head-of-line blocking on dead
 * pairs), and the section VI-B inter-layer stress pattern, where the
 * failed pair's surviving channels are the bottleneck and the bound
 * degrades linearly with them.
 */

#include "harness/experiments.hh"

#include <array>

#include "common/parallel.hh"
#include "common/random.hh"
#include "sim/fault.hh"
#include "sim/mwm_bound.hh"
#include "sim/network_sim.hh"
#include "sim/sim_cache.hh"
#include "traffic/pattern.hh"

namespace hirise::harness {

namespace {

struct DegradedPoint
{
    std::string label;
    std::shared_ptr<traffic::TrafficPattern> pattern;
    sim::FaultSchedule sched;
    std::vector<std::uint32_t> surv; //!< (s * L + d) -> survivors
};

std::pair<double, double>
runPoint(const SwitchSpec &spec, const sim::SimConfig &cfg,
         const DegradedPoint &pt)
{
    std::uint64_t key = sim::SimCache::key(
        spec, cfg, pt.pattern->descriptor(),
        pt.sched.empty() ? std::string{} : pt.sched.descriptor());
    sim::SimResult res;
    if (!sim::SimCache::global().lookup(key, &res)) {
        sim::NetworkSim ns(spec, cfg, pt.pattern);
        if (!pt.sched.empty())
            ns.setFaultSchedule(pt.sched);
        res = ns.run();
        sim::SimCache::global().store(key, res);
    }
    const std::uint32_t L = spec.layers;
    double bound = sim::mwmDegradedFlitsBound(
        spec, cfg.packetLen, *pt.pattern, cfg.injectionRate,
        [&](std::uint32_t s, std::uint32_t d) {
            return pt.surv[std::size_t(s) * L + d];
        });
    return {res.acceptedFlitsPerCycle, bound};
}

/** The shared degradation scenario family: UR with 0..36 channels
 *  failed anywhere (fixed pseudo-random order, so row k fails a
 *  superset of row k-1's channels) plus the section VI-B inter-layer
 *  stress with 0..C channels failed on the loaded (1 -> 3) pair. */
std::vector<DegradedPoint>
degradedPoints(const SwitchSpec &spec)
{
    const std::uint32_t L = spec.layers;
    const std::uint32_t C = spec.channels;

    std::vector<std::array<std::uint32_t, 3>> order;
    for (std::uint32_t s = 0; s < L; ++s)
        for (std::uint32_t d = 0; d < L; ++d)
            for (std::uint32_t k = 0; s != d && k < C; ++k)
                order.push_back({s, d, k});
    Rng pick(1234);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[pick.below(i)]);

    std::vector<DegradedPoint> points;
    for (std::uint32_t fails : {0u, 4u, 8u, 16u, 24u, 36u}) {
        DegradedPoint pt;
        pt.label = "UR, " + std::to_string(fails) + " anywhere";
        pt.pattern =
            std::make_shared<traffic::UniformRandom>(spec.radix);
        pt.surv.assign(std::size_t(L) * L, C);
        for (std::uint32_t i = 0; i < fails; ++i) {
            auto [s, d, k] = order[i];
            pt.sched.events.push_back(
                {0, sim::FaultEvent::Kind::FailChannel, s, d, k});
            --pt.surv[std::size_t(s) * L + d];
        }
        points.push_back(std::move(pt));
    }
    // Section VI-B stress: all demand rides the (1 -> 3) pair, so its
    // surviving channels are the binding constraint end to end.
    for (std::uint32_t fails = 0; fails <= C; ++fails) {
        DegradedPoint pt;
        pt.label =
            "inter-layer, " + std::to_string(fails) + " on (1,3)";
        pt.pattern = std::make_shared<traffic::InterLayerOnly>(
            spec.portsPerLayer(), C, 1, 3);
        pt.surv.assign(std::size_t(L) * L, C);
        for (std::uint32_t k = 0; k < fails; ++k) {
            pt.sched.events.push_back(
                {0, sim::FaultEvent::Kind::FailChannel, 1, 3, k});
            --pt.surv[std::size_t(1) * L + 3];
        }
        points.push_back(std::move(pt));
    }
    return points;
}

} // namespace

Table
degradation(const ExperimentOptions &opt)
{
    SwitchSpec spec = specHiRise(4, ArbScheme::Clrg);
    sim::SimConfig cfg = opt.simConfig();
    cfg.injectionRate = 1.0;

    std::vector<DegradedPoint> points = degradedPoints(spec);

    auto measured =
        parallelMap(points, [&](const DegradedPoint &pt) {
            return runPoint(spec, cfg, pt);
        });

    Table t("Extension: closed-loop saturation of the 64-radix "
            "4-channel CLRG switch vs L2LCs failed at cycle 0, "
            "against the degraded MWM fluid bound for the same "
            "surviving-channel matrix (48 cross-layer channels "
            "total; the inter-layer rows stress one pair)");
    t.header({"Scenario", "Flits/cycle", "MWM bound", "% of bound"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        auto [flits, bound] = measured[i];
        t.row({points[i].label, Table::num(flits, 2),
               Table::num(bound, 2),
               bound > 0.0
                   ? Table::num(100.0 * flits / bound, 1) + "%"
                   : "-"});
    }
    return t;
}

Table
degradationLatency(const ExperimentOptions &opt)
{
    SwitchSpec spec = specHiRise(4, ArbScheme::Clrg);
    // The healthy 4-channel CLRG switch saturates near 0.13
    // packets/input/cycle under UR (32 flits/cycle, see
    // degradation()); these loads walk up to ~60% of that, so the
    // healthy rows stay open-loop while degraded rows cross their
    // shrunken capacity and earn the saturation mark.
    const std::vector<double> loads = {0.02, 0.05, 0.08};

    std::vector<DegradedPoint> points = degradedPoints(spec);

    // Flatten (scenario x load) for one parallelMap; results fold
    // back row-major below.
    struct Cell
    {
        const DegradedPoint *pt;
        double load;
    };
    std::vector<Cell> cells;
    for (const DegradedPoint &pt : points)
        for (double load : loads)
            cells.push_back({&pt, load});

    auto measured = parallelMap(cells, [&](const Cell &cell) {
        sim::SimConfig cfg = opt.simConfig();
        cfg.injectionRate = cell.load;
        const DegradedPoint &pt = *cell.pt;
        std::uint64_t key = sim::SimCache::key(
            spec, cfg, pt.pattern->descriptor(),
            pt.sched.empty() ? std::string{}
                             : pt.sched.descriptor());
        sim::SimResult res;
        if (!sim::SimCache::global().lookup(key, &res)) {
            sim::NetworkSim ns(spec, cfg, pt.pattern);
            if (!pt.sched.empty())
                ns.setFaultSchedule(pt.sched);
            res = ns.run();
            sim::SimCache::global().store(key, res);
        }
        return res;
    });

    Table t("Extension: packet latency of the 64-radix 4-channel "
            "CLRG switch vs L2LCs failed at cycle 0, per offered "
            "load (packets/input/cycle). A trailing * marks a "
            "saturated point: the load exceeds the degraded "
            "capacity, so the delivered-packet latency is "
            "right-censored and reads as a lower bound");
    std::vector<std::string> hdr{"Scenario"};
    for (double load : loads) {
        hdr.push_back("avg@" + Table::num(load, 2));
        hdr.push_back("p99@" + Table::num(load, 2));
    }
    t.header(hdr);

    for (std::size_t i = 0; i < points.size(); ++i) {
        std::vector<std::string> row{points[i].label};
        for (std::size_t j = 0; j < loads.size(); ++j) {
            const sim::SimResult &r =
                measured[i * loads.size() + j];
            // Saturation heuristic: a right-censored population of
            // the same order as the delivered one means the window
            // closed with the switch drowning, not draining.
            bool sat =
                r.inFlightAtMeasureEnd >= r.packetsDelivered / 4;
            std::string mark = sat ? "*" : "";
            row.push_back(Table::num(r.avgLatencyCycles, 1) + mark);
            row.push_back(Table::num(r.p99LatencyCycles, 1) + mark);
        }
        t.row(row);
    }
    return t;
}

} // namespace hirise::harness
