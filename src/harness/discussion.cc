/**
 * @file
 * Discussion-section comparison (paper VI-E): Hi-Rise and the flat 2D
 * Swizzle-Switch versus the low-radix mesh and flattened-butterfly
 * networks, on a 64-core chip. Energy uses the floorplan model
 * (phys/floorplan.hh); hop counts and link lengths are measured by
 * cycle simulation of each topology.
 */

#include "harness/experiments.hh"

#include <cmath>

#include "cmp/graph_transport.hh"
#include "cmp/system.hh"
#include "noc/graph_noc.hh"
#include "phys/floorplan.hh"

namespace hirise::harness {

Table
discussion(const ExperimentOptions &opt)
{
    Table t("Section VI-E discussion: 64-core network comparison "
            "(energy per 128-bit flit end-to-end; paper quotes: 2D "
            "Swizzle 33% better than mesh, 28% better than FB; "
            "Hi-Rise 38% better than 2D, ~58% better than FB)");
    t.header({"Network", "Routers", "Avg hops", "Avg link mm",
              "pJ/flit", "Latency (ns, low load)"});

    phys::SystemEnergyModel energy;
    net::Cycle warm = opt.quick ? 1000 : 4000;
    net::Cycle meas = opt.quick ? 5000 : 20000;
    const double core_ghz = 2.0; // low-radix routers run at core clock

    // -- routed baselines ---------------------------------------------
    // 8x8 mesh of 5-port routers, 1 mm hops (1 mm^2 tiles).
    auto mesh = std::make_shared<noc::LowRadixMesh>(8, 1, 1.0);
    // 4x4 flattened butterfly, concentration 4, 2 mm tile groups.
    auto fb = std::make_shared<noc::FlattenedButterfly>(4, 4, 4, 2.0);

    SwitchSpec mesh_router;
    mesh_router.topo = Topology::Flat2D;
    mesh_router.radix = mesh->radix();
    mesh_router.arb = ArbScheme::Lrg;

    SwitchSpec fb_router = mesh_router;
    fb_router.radix = fb->radix();

    auto routed = [&](std::shared_ptr<noc::Topology> topo,
                      const SwitchSpec &router, const char *label) {
        noc::GraphNoc sim(topo, 4, 4, opt.seed);
        auto r = sim.run(0.02, warm, meas); // well below saturation
        double pj = energy.routedPjPerFlit(router, r.avgRouterHops,
                                           r.avgLinkMm,
                                           topo->concentration());
        t.row({label,
               Table::integer(topo->numRouters()),
               Table::num(r.avgRouterHops, 2),
               Table::num(r.avgLinkMm, 2), Table::num(pj, 0),
               Table::num(r.avgLatencyCycles / core_ghz, 2)});
        return pj;
    };
    double pj_mesh = routed(mesh, mesh_router, "low-radix mesh 8x8");
    double pj_fb = routed(fb, fb_router, "flattened butterfly 4x4");

    // -- centralized switches -----------------------------------------
    auto central = [&](const SwitchSpec &spec, const char *label) {
        double pj = energy.centralPjPerFlit(spec);
        auto rep = energy.physModel().evaluate(spec);
        auto r = sim::runAtLoad(
            spec, opt.simConfig(),
            [radix = spec.radix] {
                return std::make_shared<traffic::UniformRandom>(radix);
            },
            0.02);
        t.row({label, "1", "1.00", "-", Table::num(pj, 0),
               Table::num(r.avgLatencyCycles / rep.freqGhz, 2)});
        return pj;
    };
    double pj_2d = central(spec2d(), "central 2D Swizzle-Switch");
    double pj_hr = central(specHiRise(4, ArbScheme::Clrg),
                           "central Hi-Rise (CLRG)");

    t.row({"", "", "", "", "", ""});
    auto pct = [](double better, double worse) {
        return Table::num(100.0 * (1.0 - better / worse), 0) + "%";
    };
    t.row({"2D vs mesh (paper 33%)", "", "", "",
           pct(pj_2d, pj_mesh), ""});
    t.row({"2D vs FB (paper 28%)", "", "", "", pct(pj_2d, pj_fb),
           ""});
    t.row({"Hi-Rise vs 2D (paper 38%)", "", "", "",
           pct(pj_hr, pj_2d), ""});
    t.row({"Hi-Rise vs FB (paper ~58%)", "", "", "",
           pct(pj_hr, pj_fb), ""});
    return t;
}

Table
discussionSpeedup(const ExperimentOptions &opt)
{
    Table t("Section VI-E discussion: 64-core system speedup of "
            "Hi-Rise (CLRG) over a flattened-butterfly interconnect "
            "(paper quote: ~13%)");
    t.header({"Mix", "IPC FB", "IPC Hi-Rise", "Speedup"});

    phys::PhysModel model;
    std::uint64_t warmup = opt.quick ? 5000 : 20000;
    std::uint64_t cycles = opt.quick ? 30000 : 120000;

    auto run_central = [&](const cmp::Mix &mix) {
        cmp::SystemConfig cfg;
        cfg.switchFreqGhz =
            model.evaluate(specHiRise(4, ArbScheme::Clrg)).freqGhz;
        cfg.seed = opt.seed;
        cmp::CmpSystem sys(specHiRise(4, ArbScheme::Clrg), cfg,
                           cmp::assignMix(mix, cfg.numTiles));
        return sys.run(warmup, cycles).totalIpc;
    };
    auto run_fb = [&](const cmp::Mix &mix) {
        cmp::SystemConfig cfg;
        cfg.switchFreqGhz = 2.0; // FB routers run at the core clock
        cfg.seed = opt.seed;
        cmp::CmpSystem::TransportFactory make =
            [&](cmp::Transport::DeliverFn deliver) {
                return std::make_unique<cmp::GraphTransport>(
                    std::make_shared<noc::FlattenedButterfly>(4, 4, 4,
                                                              2.0),
                    std::move(deliver), 4, opt.seed);
            };
        cmp::CmpSystem sys(make, cfg,
                           cmp::assignMix(mix, cfg.numTiles));
        return sys.run(warmup, cycles).totalIpc;
    };

    double geo = 1.0;
    int n = 0;
    for (const auto &mix : cmp::paperMixes()) {
        // The network-bound upper mixes carry the paper's claim.
        double fb = run_fb(mix);
        double hr = run_central(mix);
        t.row({mix.name, Table::num(fb, 1), Table::num(hr, 1),
               Table::num(hr / fb, 2)});
        geo *= hr / fb;
        ++n;
    }
    t.row({"geomean", "", "",
           Table::num(std::pow(geo, 1.0 / n), 2)});
    return t;
}

} // namespace hirise::harness
