#include "check/lockstep.hh"

#include "fabric/hirise.hh"

namespace hirise::check {

LockstepFabric::LockstepFabric(const SwitchSpec &spec, Mutation mut)
    : Fabric(spec), opt_(fabric::makeFabric(spec)), ref_(spec, mut),
      reqScratch_(spec.radix)
{}

void
LockstepFabric::recordMismatch(const std::string &what)
{
    if (mismatched_)
        return;
    mismatched_ = true;
    mismatchCycle_ = cycle_;
    detail_ = "cycle " + std::to_string(cycle_) + ": " + what;
}

void
LockstepFabric::compare(std::span<const std::uint32_t> req,
                        const BitVec &opt_grant,
                        const std::vector<bool> &ref_grant)
{
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        if (opt_grant[i] != ref_grant[i]) {
            recordMismatch(
                "grant[" + std::to_string(i) + "] optimized=" +
                std::to_string(opt_grant[i]) + " oracle=" +
                std::to_string(ref_grant[i]) + " (request " +
                std::to_string(req[i]) + ")");
            return;
        }
    }
    for (std::uint32_t o = 0; o < spec_.radix; ++o) {
        if (opt_->outputHolder(o) != ref_.outputHolder(o)) {
            recordMismatch(
                "holder of output " + std::to_string(o) +
                " optimized=" + std::to_string(opt_->outputHolder(o)) +
                " oracle=" + std::to_string(ref_.outputHolder(o)));
            return;
        }
    }
    if (auto *hr = dynamic_cast<fabric::HiRiseFabric *>(opt_.get())) {
        for (std::uint32_t s = 0; s < spec_.layers; ++s) {
            for (std::uint32_t d = 0; d < spec_.layers; ++d) {
                if (s == d)
                    continue;
                for (std::uint32_t k = 0; k < spec_.channels; ++k) {
                    if (hr->channelBusy(s, d, k) !=
                        ref_.channelBusy(s, d, k)) {
                        recordMismatch(
                            "busy state of channel (" +
                            std::to_string(s) + "," +
                            std::to_string(d) + "," +
                            std::to_string(k) + ") diverged");
                        return;
                    }
                }
            }
        }
    }
}

const BitVec &
LockstepFabric::arbitrate(std::span<const std::uint32_t> req)
{
    const BitVec &g = opt_->arbitrate(req);
    reqScratch_.assign(req.begin(), req.end());
    auto rg = ref_.arbitrate(reqScratch_);
    if (!mismatched_)
        compare(req, g, rg);
    ++cycle_;
    grant_.copyFrom(g);
    return grant_;
}

const BitVec &
LockstepFabric::arbitrateActive(std::span<const std::uint32_t> req,
                                std::span<const std::uint32_t> active)
{
    // The optimized side takes the sparse path under test; the oracle
    // always sees the full request vector, so lockstep additionally
    // checks arbitrateActive == arbitrate equivalence.
    const BitVec &g = opt_->arbitrateActive(req, active);
    reqScratch_.assign(req.begin(), req.end());
    auto rg = ref_.arbitrate(reqScratch_);
    if (!mismatched_)
        compare(req, g, rg);
    ++cycle_;
    grant_.copyFrom(g);
    return grant_;
}

void
LockstepFabric::advanceIdle(std::uint64_t cycles)
{
    // The oracle keeps no per-call stats, so only the optimized side
    // needs the idle accounting; the arbitration-cycle counter tracks
    // skipped cycles so mismatchCycle() stays a sim-cycle index
    // regardless of stepping mode.
    opt_->advanceIdle(cycles);
    cycle_ += cycles;
}

void
LockstepFabric::release(std::uint32_t input, std::uint32_t output)
{
    opt_->release(input, output);
    // After a grant mismatch the two sides hold different connections;
    // releasing blindly on the oracle would panic mid-fuzz.
    if (ref_.outputHolder(output) == input)
        ref_.release(input, output);
    else
        sim_assert(mismatched_,
                   "oracle holder diverged without a recorded mismatch");
}

bool
LockstepFabric::outputBusy(std::uint32_t output) const
{
    return opt_->outputBusy(output);
}

std::uint32_t
LockstepFabric::outputHolder(std::uint32_t output) const
{
    return opt_->outputHolder(output);
}

bool
LockstepFabric::supportsChannelFaults() const
{
    return opt_->supportsChannelFaults();
}

std::uint32_t
LockstepFabric::heldChannelId(std::uint32_t output) const
{
    return opt_->heldChannelId(output);
}

void
LockstepFabric::failChannel(std::uint32_t src_layer,
                            std::uint32_t dst_layer, std::uint32_t k,
                            std::vector<fabric::BrokenConn> *broken)
{
    sim_assert(opt_->supportsChannelFaults(),
               "failChannel on a non-HiRise fabric");
    std::vector<fabric::BrokenConn> opt_broken;
    opt_->failChannel(src_layer, dst_layer, k, &opt_broken);
    std::vector<RefBrokenConn> ref_broken;
    ref_.failChannel(src_layer, dst_layer, k, &ref_broken);
    if (!mismatched_) {
        // Both sides must tear down exactly the same victims; a
        // divergence here means held-channel state already differed.
        bool same = opt_broken.size() == ref_broken.size();
        for (std::size_t i = 0; same && i < opt_broken.size(); ++i)
            same = opt_broken[i].input == ref_broken[i].input &&
                   opt_broken[i].output == ref_broken[i].output;
        if (!same)
            recordMismatch("forced-break victim sets diverged on "
                           "channel (" + std::to_string(src_layer) +
                           "," + std::to_string(dst_layer) + "," +
                           std::to_string(k) + ")");
    }
    // The run continues on the optimized side's answers.
    if (broken)
        for (const auto &b : opt_broken)
            broken->push_back(b);
}

void
LockstepFabric::recoverChannel(std::uint32_t src_layer,
                               std::uint32_t dst_layer,
                               std::uint32_t k)
{
    opt_->recoverChannel(src_layer, dst_layer, k);
    ref_.recoverChannel(src_layer, dst_layer, k);
}

} // namespace hirise::check
