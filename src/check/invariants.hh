/**
 * @file
 * Runtime invariant checks for the simulation core, compiled in under
 * the HIRISE_CHECK build option (-DHIRISE_CHECK=ON defines
 * HIRISE_CHECK_ENABLED globally). Call sites in src/sim and src/fabric
 * are wrapped in #ifdef HIRISE_CHECK_ENABLED, so default builds do not
 * even include this header and carry zero overhead.
 *
 * The checks encode the algebraic structure of input-queued switch
 * scheduling: every per-cycle grant set is a partial permutation
 * matrix (conflict-free matching of inputs to outputs), flits are
 * conserved end to end, VC buffers respect their depth and packet
 * ownership rules, and CLRG class counters stay thermometer-encodable.
 * Violations are simulator bugs, so every check panic()s via
 * sim_assert.
 */

#ifndef HIRISE_CHECK_INVARIANTS_HH
#define HIRISE_CHECK_INVARIANTS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "arb/class_counter.hh"
#include "common/bitvec.hh"
#include "common/logging.hh"
#include "net/input_port.hh"

namespace hirise::check {

constexpr std::uint32_t kNoReq = ~0u;

/**
 * The grant set of one arbitration cycle must be a partial matching:
 * every granted input actually requested, its requested output is in
 * range, and the fabric now records that input as the output's holder
 * (i.e. no two grants collapsed onto one output).
 *
 * @param holderOf callable mapping output id -> holding input id (or
 *                 kNoReq); fabrics pass a lambda over their private
 *                 holder table.
 */
template <typename HolderFn>
inline void
verifyGrantMatching(std::span<const std::uint32_t> req,
                    const BitVec &grant, std::uint32_t radix,
                    HolderFn holderOf)
{
    sim_assert(grant.size() == radix, "grant vector size %u != radix %u",
               grant.size(), radix);
    grant.forEachSet([&](std::uint32_t i) {
        sim_assert(req[i] != kNoReq,
                   "granted input %u made no request", i);
        sim_assert(req[i] < radix,
                   "granted input %u requested bad output %u", i,
                   req[i]);
        sim_assert(holderOf(req[i]) == i,
                   "granted input %u does not hold output %u", i,
                   req[i]);
    });
}

/**
 * The held-connection set must also be a partial matching: no input
 * holds two outputs (each holder id appears at most once across the
 * holder table) and every holder id is a real input.
 */
template <typename HolderFn>
inline void
verifyHolderInjective(std::uint32_t radix, HolderFn holderOf)
{
    std::vector<bool> holds(radix, false);
    for (std::uint32_t o = 0; o < radix; ++o) {
        std::uint32_t h = holderOf(o);
        if (h == kNoReq)
            continue;
        sim_assert(h < radix, "output %u held by bad input %u", o, h);
        sim_assert(!holds[h], "input %u holds two outputs", h);
        holds[h] = true;
    }
}

/**
 * Flit conservation: every injected flit is either still inside the
 * switch (source queue or VC buffer), has been delivered, or was
 * dropped by a fault-forced connection break. Checked once per cycle
 * at the simulator level.
 */
inline void
verifyFlitConservation(std::uint64_t injected_flits,
                       std::uint64_t delivered_flits,
                       std::uint64_t backlog_flits,
                       std::uint64_t dropped_flits = 0)
{
    sim_assert(injected_flits ==
                   delivered_flits + backlog_flits + dropped_flits,
               "flit conservation violated: injected %llu != "
               "delivered %llu + backlog %llu + dropped %llu",
               static_cast<unsigned long long>(injected_flits),
               static_cast<unsigned long long>(delivered_flits),
               static_cast<unsigned long long>(backlog_flits),
               static_cast<unsigned long long>(dropped_flits));
}

/**
 * VC buffer consistency for one input port: no FIFO exceeds its depth,
 * an idle (non-busy) VC is empty (packets never interleave within a
 * VC), and a ready head flit really is a packet head.
 */
inline void
verifyVcState(const net::InputPort &port, std::uint32_t vc_depth)
{
    for (const auto &vc : port.vcs()) {
        sim_assert(vc.size() <= vc_depth,
                   "VC holds %zu flits, depth is %u", vc.size(),
                   vc_depth);
        sim_assert(vc.busy() || vc.empty(),
                   "idle VC still holds %zu flits", vc.size());
        if (vc.headReady())
            sim_assert(vc.front().head, "ready VC front is not a head");
    }
}

/**
 * CLRG counter-bank bounds: every usage count must stay within
 * [0, maxCount], i.e. remain representable by the hardware thermometer
 * encoding. The divide-by-2 saturation rule guarantees this; a count
 * above maxCount means a missed halving.
 */
inline void
verifyClassCounterBounds(const arb::ClassCounterBank &bank)
{
    for (std::uint32_t i = 0; i < bank.numInputs(); ++i) {
        sim_assert(bank.classOf(i) <= bank.maxCount(),
                   "class counter %u = %u exceeds maxCount %u", i,
                   bank.classOf(i), bank.maxCount());
    }
}

} // namespace hirise::check

#endif // HIRISE_CHECK_INVARIANTS_HH
