/**
 * @file
 * Glue between the oracle and the optimized simulator: an adapter
 * exposing RefFabric through the fabric::Fabric interface (so a
 * NetworkSim can run entirely on the oracle), and a lockstep fabric
 * that drives the optimized implementation and the oracle side by
 * side, comparing per-cycle grant matrices and held state and
 * recording the first divergence.
 */

#ifndef HIRISE_CHECK_LOCKSTEP_HH
#define HIRISE_CHECK_LOCKSTEP_HH

#include <memory>
#include <string>

#include "check/oracle.hh"
#include "fabric/fabric.hh"

namespace hirise::check {

/** The oracle behind the optimized Fabric interface. */
class RefFabricAdapter : public fabric::Fabric
{
  public:
    explicit RefFabricAdapter(const SwitchSpec &spec,
                              Mutation mut = Mutation::None)
        : Fabric(spec), ref_(spec, mut), reqScratch_(spec.radix)
    {}

    const BitVec &
    arbitrate(std::span<const std::uint32_t> req) override
    {
        reqScratch_.assign(req.begin(), req.end());
        auto g = ref_.arbitrate(reqScratch_);
        grant_.clear();
        for (std::uint32_t i = 0; i < spec_.radix; ++i)
            if (g[i])
                grant_.set(i);
        return grant_;
    }

    void
    release(std::uint32_t input, std::uint32_t output) override
    {
        ref_.release(input, output);
    }
    bool
    outputBusy(std::uint32_t output) const override
    {
        return ref_.outputBusy(output);
    }
    std::uint32_t
    outputHolder(std::uint32_t output) const override
    {
        return ref_.outputHolder(output);
    }

    bool
    supportsChannelFaults() const override
    {
        return ref_.hasChannels();
    }

    void
    failChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                std::uint32_t chan,
                std::vector<fabric::BrokenConn> *broken =
                    nullptr) override
    {
        std::vector<RefBrokenConn> rb;
        ref_.failChannel(src_layer, dst_layer, chan,
                         broken ? &rb : nullptr);
        if (broken)
            for (const auto &b : rb)
                broken->push_back({b.input, b.output});
    }

    void
    recoverChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                   std::uint32_t chan) override
    {
        ref_.recoverChannel(src_layer, dst_layer, chan);
    }

    std::uint32_t
    heldChannelId(std::uint32_t output) const override
    {
        return ref_.heldChannelId(output);
    }

    RefFabric &ref() { return ref_; }

  private:
    RefFabric ref_;
    std::vector<std::uint32_t> reqScratch_;
};

/**
 * Optimized fabric and oracle in lockstep. Every arbitrate() runs
 * both, compares the grant sets and all externally visible connection
 * state, and remembers the first mismatch (the run continues on the
 * optimized side's answers so the simulation still terminates).
 */
class LockstepFabric : public fabric::Fabric
{
  public:
    explicit LockstepFabric(const SwitchSpec &spec,
                            Mutation mut = Mutation::None);

    const BitVec &
    arbitrate(std::span<const std::uint32_t> req) override;
    const BitVec &
    arbitrateActive(std::span<const std::uint32_t> req,
                    std::span<const std::uint32_t> active) override;
    void release(std::uint32_t input, std::uint32_t output) override;
    void advanceIdle(std::uint64_t cycles) override;
    bool outputBusy(std::uint32_t output) const override;
    std::uint32_t outputHolder(std::uint32_t output) const override;

    bool supportsChannelFaults() const override;
    /** Fail an L2LC on both sides (HiRise only), cross-checking that
     *  both report the same forced-break victims. */
    void failChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                     std::uint32_t k,
                     std::vector<fabric::BrokenConn> *broken =
                         nullptr) override;
    void recoverChannel(std::uint32_t src_layer,
                        std::uint32_t dst_layer,
                        std::uint32_t k) override;
    std::uint32_t heldChannelId(std::uint32_t output) const override;

    bool mismatched() const { return mismatched_; }
    /** Arbitration-cycle index (0-based) of the first divergence. */
    std::uint64_t mismatchCycle() const { return mismatchCycle_; }
    const std::string &mismatchDetail() const { return detail_; }

  private:
    void compare(std::span<const std::uint32_t> req,
                 const BitVec &opt_grant,
                 const std::vector<bool> &ref_grant);
    void recordMismatch(const std::string &what);

    std::unique_ptr<fabric::Fabric> opt_;
    RefFabric ref_;
    std::vector<std::uint32_t> reqScratch_;

    std::uint64_t cycle_ = 0;
    bool mismatched_ = false;
    std::uint64_t mismatchCycle_ = 0;
    std::string detail_;
};

} // namespace hirise::check

#endif // HIRISE_CHECK_LOCKSTEP_HH
