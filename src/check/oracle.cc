#include "check/oracle.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace hirise::check {

const char *
toString(Mutation m)
{
    switch (m) {
      case Mutation::None: return "none";
      case Mutation::LrgUpdateOffByOne: return "lrg-update-off-by-one";
      case Mutation::ClrgHalveWinnerOnly: return "clrg-halve-winner-only";
      case Mutation::IslipGrantPtrStuck: return "islip-grant-ptr-stuck";
      case Mutation::PimReuseRoundRng: return "pim-reuse-round-rng";
      case Mutation::WavefrontStuckPriority:
        return "wavefront-stuck-priority";
      case Mutation::IsolationThresholdOffByOne:
        return "isolation-threshold-off-by-one";
    }
    return "?";
}

RefFabric::RefFabric(const SwitchSpec &spec, Mutation mut)
    : spec_(spec), mut_(mut), flat_(spec.topo != Topology::HiRise),
      ppl_(spec.portsPerLayer()), nlay_(spec.layers),
      chan_(spec.channels), ports_(spec.incomingChannels() + 1),
      holder_(spec.radix, kRefNone), heldChan_(spec.radix, kRefNone)
{
    spec_.validate();
    if (flat_) {
        if (spec.arb == ArbScheme::Lrg)
            colArb_.assign(spec.radix,
                           RefMatrixArbiter(spec.radix, mut_));
        islipGrant_.assign(spec.radix, 0);
        islipAccept_.assign(spec.radix, 0);
        pimKey_ = counterKey(spec.schedSeed, 0);
        return;
    }
    colArb_.assign(spec.radix, RefMatrixArbiter(ppl_, mut_));
    chanArb_.assign(std::size_t(nlay_) * nlay_ * chan_,
                    RefMatrixArbiter(ppl_, mut_));
    chanBusy_.assign(chanArb_.size(), false);
    chanFailed_.assign(chanArb_.size(), false);
    subLrg_.assign(spec.radix, RefMatrixArbiter(ports_, mut_));
    if (spec.arb == ArbScheme::Wlrg)
        subWins_.assign(spec.radix,
                        std::vector<std::uint32_t>(ports_, 0));
    if (spec.arb == ArbScheme::Clrg)
        subCounters_.assign(
            spec.radix,
            RefClassCounterBank(spec.radix, spec.clrgMaxCount, mut_));
}

std::uint32_t
RefFabric::subPort(std::uint32_t d, std::uint32_t s,
                   std::uint32_t k) const
{
    std::uint32_t s_rank = s < d ? s : s - 1;
    return s_rank * chan_ + k;
}

void
RefFabric::subPortOrigin(std::uint32_t d, std::uint32_t port,
                         std::uint32_t &s, std::uint32_t &k) const
{
    std::uint32_t s_rank = port / chan_;
    k = port % chan_;
    s = s_rank < d ? s_rank : s_rank + 1;
}

std::uint32_t
RefFabric::channelFor(std::uint32_t input, std::uint32_t output) const
{
    std::uint32_t k0;
    switch (spec_.alloc) {
      case ChannelAlloc::InputBinned:
        k0 = localIdx(input) % chan_;
        break;
      case ChannelAlloc::OutputBinned:
        k0 = localIdx(output) % chan_;
        break;
      default:
        return kRefNone;
    }
    std::uint32_t s = layerOf(input), d = layerOf(output);
    for (std::uint32_t i = 0; i < chan_; ++i) {
        std::uint32_t k = (k0 + i) % chan_;
        if (!chanFailed_[chanId(s, d, k)])
            return k;
    }
    return kRefNone;
}

void
RefFabric::failChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                       std::uint32_t k,
                       std::vector<RefBrokenConn> *broken)
{
    sim_assert(!flat_, "only HiRise has L2LCs");
    sim_assert(src_layer != dst_layer && src_layer < nlay_ &&
                   dst_layer < nlay_ && k < chan_,
               "bad channel (%u,%u,%u)", src_layer, dst_layer, k);
    std::uint32_t id = chanId(src_layer, dst_layer, k);
    if (chanFailed_[id])
        return;
    chanFailed_[id] = true;
    if (!chanBusy_[id])
        return;
    // Forced break: the in-flight connection pinning the channel is
    // torn down so the simulator can drop its packet.
    bool found = false;
    for (std::uint32_t lo = 0; lo < ppl_; ++lo) {
        std::uint32_t o = dst_layer * ppl_ + lo;
        if (heldChan_[o] != id)
            continue;
        if (broken)
            broken->push_back({holder_[o], o});
        holder_[o] = kRefNone;
        heldChan_[o] = kRefNone;
        found = true;
        break;
    }
    sim_assert(found, "busy channel %u pinned by no output", id);
    chanBusy_[id] = false;
}

void
RefFabric::recoverChannel(std::uint32_t src_layer,
                          std::uint32_t dst_layer, std::uint32_t k)
{
    sim_assert(!flat_, "only HiRise has L2LCs");
    sim_assert(src_layer != dst_layer && src_layer < nlay_ &&
                   dst_layer < nlay_ && k < chan_,
               "bad channel (%u,%u,%u)", src_layer, dst_layer, k);
    chanFailed_[chanId(src_layer, dst_layer, k)] = false;
}

void
RefFabric::release(std::uint32_t input, std::uint32_t output)
{
    sim_assert(output < spec_.radix && holder_[output] == input,
               "release of unheld connection %u->%u", input, output);
    holder_[output] = kRefNone;
    if (!flat_ && heldChan_[output] != kRefNone) {
        chanBusy_[heldChan_[output]] = false;
        heldChan_[output] = kRefNone;
    }
}

std::vector<bool>
RefFabric::arbitrate(const std::vector<std::uint32_t> &req)
{
    sim_assert(req.size() == spec_.radix, "bad request vector");
    return flat_ ? arbitrateFlat(req) : arbitrateHiRise(req);
}

void
RefFabric::collectFlat(const std::vector<std::uint32_t> &req,
                       std::vector<std::vector<bool>> &want,
                       std::vector<bool> &pending) const
{
    const std::uint32_t n = spec_.radix;
    want.assign(n, std::vector<bool>(n, false));
    pending.assign(n, false);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t o = req[i];
        if (o == kRefNone || holder_[o] != kRefNone)
            continue; // idle input, or busy output: request loses
        want[o][i] = true;
        pending[o] = true;
    }
}

std::vector<bool>
RefFabric::islipFlat(const std::vector<std::uint32_t> &req)
{
    const std::uint32_t n = spec_.radix;
    std::vector<bool> grant(n, false);
    std::vector<std::vector<bool>> want;
    std::vector<bool> pending;
    collectFlat(req, want, pending);
    std::vector<bool> inputFree(n, true);

    for (std::uint32_t it = 0; it < spec_.schedIters; ++it) {
        // Grant phase: each pending column offers to the first free
        // requestor at or circularly after its grant pointer.
        std::vector<std::uint32_t> grantTo(n, kRefNone);
        bool anyGrant = false;
        for (std::uint32_t o = 0; o < n; ++o) {
            if (!pending[o])
                continue;
            for (std::uint32_t k = 0; k < n; ++k) {
                std::uint32_t i = (islipGrant_[o] + k) % n;
                if (want[o][i] && inputFree[i]) {
                    grantTo[o] = i;
                    anyGrant = true;
                    break;
                }
            }
        }
        if (!anyGrant)
            break;
        // Accept phase: each input takes the granting column
        // circularly closest to its accept pointer. Pointers move one
        // past the match on first-iteration accepts only.
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!inputFree[i])
                continue;
            std::uint32_t best = kRefNone, bestDist = 0;
            for (std::uint32_t o = 0; o < n; ++o) {
                if (grantTo[o] != i)
                    continue;
                std::uint32_t d = (o + n - islipAccept_[i]) % n;
                if (best == kRefNone || d < bestDist) {
                    best = o;
                    bestDist = d;
                }
            }
            if (best == kRefNone)
                continue;
            holder_[best] = i;
            grant[i] = true;
            inputFree[i] = false;
            pending[best] = false;
            if (it == 0) {
                if (mut_ != Mutation::IslipGrantPtrStuck)
                    islipGrant_[best] = (i + 1) % n; // seeded bug:
                                                    // pointer stuck
                islipAccept_[i] = (best + 1) % n;
            }
        }
    }
    return grant;
}

std::vector<bool>
RefFabric::pimFlat(const std::vector<std::uint32_t> &req)
{
    const std::uint32_t n = spec_.radix;
    std::vector<bool> grant(n, false);
    std::vector<std::vector<bool>> want;
    std::vector<bool> pending;
    collectFlat(req, want, pending);
    std::vector<bool> inputFree(n, true);

    for (std::uint32_t r = 0; r < spec_.schedIters; ++r) {
        // Grant phase, ascending columns: one draw per column with
        // free requestors (even a single candidate consumes a draw —
        // the tick stream must be a function of the request history
        // alone so it matches the optimized scheduler's).
        std::vector<std::vector<std::uint32_t>> grantsOf(n);
        std::uint64_t lastGrantDraw = 0;
        bool anyGrant = false;
        for (std::uint32_t o = 0; o < n; ++o) {
            if (!pending[o])
                continue;
            std::vector<std::uint32_t> cands;
            for (std::uint32_t i = 0; i < n; ++i) {
                if (want[o][i] && inputFree[i])
                    cands.push_back(i);
            }
            if (cands.empty())
                continue;
            std::uint64_t draw = counterDrawKeyed(pimKey_, pimTick_++);
            lastGrantDraw = draw;
            auto idx = static_cast<std::uint32_t>(
                counterBelow(draw, cands.size()));
            grantsOf[cands[idx]].push_back(o);
            anyGrant = true;
        }
        if (!anyGrant)
            break;
        // Accept phase, ascending inputs: one draw per granted input.
        for (std::uint32_t i = 0; i < n; ++i) {
            if (grantsOf[i].empty())
                continue;
            std::uint64_t draw;
            if (mut_ == Mutation::PimReuseRoundRng) {
                draw = lastGrantDraw; // seeded bug: no fresh tick
            } else {
                draw = counterDrawKeyed(pimKey_, pimTick_++);
            }
            auto idx = static_cast<std::uint32_t>(
                counterBelow(draw, grantsOf[i].size()));
            std::uint32_t o = grantsOf[i][idx];
            holder_[o] = i;
            grant[i] = true;
            inputFree[i] = false;
            pending[o] = false;
        }
    }
    return grant;
}

std::vector<bool>
RefFabric::wavefrontFlat(const std::vector<std::uint32_t> &req)
{
    const std::uint32_t n = spec_.radix;
    std::vector<bool> grant(n, false);
    std::vector<std::vector<bool>> want;
    std::vector<bool> pending;
    collectFlat(req, want, pending);
    std::vector<bool> inputFree(n, true);

    for (std::uint32_t k = 0; k < n; ++k) {
        std::uint32_t diag = (wfPrio_ + k) % n;
        for (std::uint32_t o = 0; o < n; ++o) {
            if (!pending[o])
                continue;
            std::uint32_t i = (diag + n - o) % n;
            if (want[o][i] && inputFree[i]) {
                holder_[o] = i;
                grant[i] = true;
                inputFree[i] = false;
                pending[o] = false;
            }
        }
    }
    if (mut_ != Mutation::WavefrontStuckPriority)
        wfPrio_ = (wfPrio_ + 1) % n; // seeded bug: diagonal stuck
    return grant;
}

std::vector<bool>
RefFabric::arbitrateFlat(const std::vector<std::uint32_t> &req)
{
    const std::uint32_t n = spec_.radix;
    if (spec_.arb != ArbScheme::Lrg) {
        // Stateful schedulers only run on cycles with >= 1 request —
        // the same gate the optimized fabric applies, and the set of
        // cycles the event-driven core actually arbitrates.
        bool anyReq = false;
        for (std::uint32_t i = 0; i < n && !anyReq; ++i)
            anyReq = req[i] != kRefNone;
        if (!anyReq)
            return std::vector<bool>(n, false);
        switch (spec_.arb) {
          case ArbScheme::Islip: return islipFlat(req);
          case ArbScheme::Pim: return pimFlat(req);
          case ArbScheme::Wavefront: return wavefrontFlat(req);
          default:
            panic("bad flat scheme %s", toString(spec_.arb));
        }
    }
    std::vector<bool> grant(n, false);
    for (std::uint32_t o = 0; o < n; ++o) {
        if (holder_[o] != kRefNone)
            continue;
        std::vector<bool> want(n, false);
        bool any = false;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (req[i] == o) {
                want[i] = true;
                any = true;
            }
        }
        if (!any)
            continue;
        std::uint32_t w = colArb_[o].pick(want);
        if (w == kRefNone) {
            // Only reachable when a seeded mutation corrupted the
            // priority relation into a cycle; the missing grant is
            // itself the divergence the harness detects.
            sim_assert(mut_ != Mutation::None,
                       "contended column granted nothing");
            continue;
        }
        colArb_[o].update(w);
        holder_[o] = w;
        grant[w] = true;
    }
    return grant;
}

std::uint32_t
RefFabric::subArbitrate(std::uint32_t o, const std::vector<SubReq> &reqs)
{
    std::vector<bool> mask(ports_, false);
    if (spec_.arb == ArbScheme::Clrg) {
        // Coarse class priority first, LRG tie-break within the best
        // class; LRG updated on every grant (paper III-B4).
        std::uint32_t best = kRefNone;
        for (const auto &r : reqs) {
            if (r.valid)
                best = std::min(
                    best, subCounters_[o].classOf(r.primaryInput));
        }
        for (std::uint32_t p = 0; p < ports_; ++p) {
            if (reqs[p].valid &&
                subCounters_[o].classOf(reqs[p].primaryInput) == best)
                mask[p] = true;
        }
        std::uint32_t w = subLrg_[o].pick(mask);
        if (w == kRefNone) {
            sim_assert(mut_ != Mutation::None,
                       "class mask had a requestor");
            return kRefNone;
        }
        subLrg_[o].update(w);
        subCounters_[o].onWin(reqs[w].primaryInput);
        return w;
    }

    for (std::uint32_t p = 0; p < ports_; ++p)
        mask[p] = reqs[p].valid;
    std::uint32_t w = subLrg_[o].pick(mask);
    if (w == kRefNone) {
        sim_assert(mut_ != Mutation::None,
                   "sub-block pick with valid requests");
        return kRefNone;
    }
    if (spec_.arb == ArbScheme::Wlrg) {
        // Freeze the demotion until the port won once per requestor
        // it represented (paper III-B3).
        if (++subWins_[o][w] >= reqs[w].weight) {
            subLrg_[o].update(w);
            subWins_[o][w] = 0;
        }
        return w;
    }
    subLrg_[o].update(w);
    return w;
}

std::vector<bool>
RefFabric::arbitrateHiRise(const std::vector<std::uint32_t> &req)
{
    const std::uint32_t n = spec_.radix;
    std::vector<bool> grant(n, false);

    // Per-cycle column state, freshly allocated (the oracle is meant
    // to be obvious, not fast).
    struct Col
    {
        std::vector<bool> mask;
        bool active = false;
        std::uint32_t winner = kRefNone;
        std::uint32_t weight = 0;
        std::uint32_t winnerDst = 0;
    };
    std::vector<Col> inter(n);
    std::vector<Col> chanCol(chanArb_.size());
    for (auto &c : inter)
        c.mask.assign(ppl_, false);
    for (auto &c : chanCol)
        c.mask.assign(ppl_, false);

    // ---- collect requests into phase-1 columns ----------------------
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t o = req[i];
        if (o == kRefNone)
            continue;
        sim_assert(o < n, "request to bad output %u", o);
        std::uint32_t s = layerOf(i);
        std::uint32_t d = layerOf(o);

        if (d == s) {
            // The intermediate-output column is occupied only when
            // the output is held through it (same-layer holder, no
            // channel involved).
            if (holder_[o] != kRefNone && heldChan_[o] == kRefNone &&
                layerOf(holder_[o]) == d)
                continue;
            inter[o].active = true;
            inter[o].mask[localIdx(i)] = true;
            ++inter[o].weight;
            continue;
        }

        if (spec_.alloc == ChannelAlloc::Priority) {
            // Pool request: interest on every channel of (s, d); the
            // walk in phase 1 serializes the choice. The requestor
            // count lives on channel 0's column.
            for (std::uint32_t k = 0; k < chan_; ++k) {
                auto &col = chanCol[chanId(s, d, k)];
                col.active = true;
                col.mask[localIdx(i)] = true;
            }
            ++chanCol[chanId(s, d, 0)].weight;
            continue;
        }

        std::uint32_t k = channelFor(i, o);
        if (k == kRefNone)
            continue; // every channel to that layer has failed
        std::uint32_t id = chanId(s, d, k);
        if (chanBusy_[id])
            continue; // channel mid-transfer: retry next cycle
        auto &col = chanCol[id];
        col.active = true;
        col.mask[localIdx(i)] = true;
        ++col.weight;
    }

    // ---- phase 1: local-switch columns pick (no update yet) ---------
    for (std::uint32_t o = 0; o < n; ++o) {
        if (inter[o].active) {
            inter[o].winner = colArb_[o].pick(inter[o].mask);
            inter[o].winnerDst = o;
        }
    }
    if (spec_.alloc != ChannelAlloc::Priority) {
        for (std::uint32_t id = 0; id < chanCol.size(); ++id) {
            if (chanCol[id].active)
                chanCol[id].winner = chanArb_[id].pick(chanCol[id].mask);
        }
    } else {
        // Priority allocation: per layer pair, free channels pick in
        // order from the remaining requestor pool.
        for (std::uint32_t s = 0; s < nlay_; ++s) {
            for (std::uint32_t d = 0; d < nlay_; ++d) {
                if (s == d)
                    continue;
                auto &pool = chanCol[chanId(s, d, 0)];
                if (!pool.active)
                    continue;
                std::vector<bool> remaining = pool.mask;
                for (std::uint32_t k = 0; k < chan_; ++k) {
                    std::uint32_t id = chanId(s, d, k);
                    if (chanBusy_[id] || chanFailed_[id])
                        continue;
                    std::uint32_t w = chanArb_[id].pick(remaining);
                    if (w == kRefNone)
                        break;
                    chanCol[id].winner = w;
                    chanCol[id].weight = pool.weight;
                    remaining[w] = false;
                }
            }
        }
    }

    // Channel winners carry their request vector to one sub-block.
    for (std::uint32_t id = 0; id < chanCol.size(); ++id) {
        auto &col = chanCol[id];
        if (col.winner == kRefNone)
            continue;
        std::uint32_t s = id / (nlay_ * chan_);
        col.winnerDst = req[s * ppl_ + col.winner];
    }

    // ---- phase 2: sub-block per final output, ascending -------------
    for (std::uint32_t o = 0; o < n; ++o) {
        if (holder_[o] != kRefNone)
            continue;
        std::uint32_t d = layerOf(o);
        std::vector<SubReq> reqs(ports_);
        bool any = false;
        for (std::uint32_t s = 0; s < nlay_; ++s) {
            if (s == d)
                continue;
            for (std::uint32_t k = 0; k < chan_; ++k) {
                const auto &col = chanCol[chanId(s, d, k)];
                if (col.winner == kRefNone || col.winnerDst != o)
                    continue;
                auto &r = reqs[subPort(d, s, k)];
                r.valid = true;
                r.primaryInput = s * ppl_ + col.winner;
                r.weight = std::max(1u, col.weight);
                any = true;
            }
        }
        if (inter[o].winner != kRefNone) {
            auto &r = reqs[ports_ - 1];
            r.valid = true;
            r.primaryInput = d * ppl_ + inter[o].winner;
            r.weight = std::max(1u, inter[o].weight);
            any = true;
        }
        if (!any)
            continue;

        std::uint32_t p = subArbitrate(o, reqs);
        if (p == kRefNone)
            continue; // mutated oracle: divergence, not a grant
        std::uint32_t winner_in = reqs[p].primaryInput;
        holder_[o] = winner_in;
        grant[winner_in] = true;

        if (p + 1 == ports_) {
            // Local path: back-propagate the LRG update.
            heldChan_[o] = kRefNone;
            colArb_[o].update(localIdx(winner_in));
        } else {
            std::uint32_t s, k;
            subPortOrigin(d, p, s, k);
            std::uint32_t id = chanId(s, d, k);
            heldChan_[o] = id;
            chanBusy_[id] = true;
            chanArb_[id].update(localIdx(winner_in));
        }
    }
    return grant;
}

} // namespace hirise::check
