#include "check/fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "check/lockstep.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "fabric/fabric.hh"
#include "fabric/hirise.hh"
#include "sim/batch_sim.hh"
#include "traffic/pattern.hh"

namespace hirise::check {

const char *
toString(PatternKind p)
{
    switch (p) {
      case PatternKind::Uniform: return "uniform";
      case PatternKind::Hotspot: return "hotspot";
      case PatternKind::Transpose: return "transpose";
      case PatternKind::BitComplement: return "bit-complement";
      case PatternKind::Bursty: return "bursty";
    }
    return "?";
}

namespace {

const char *
codeName(Topology t)
{
    switch (t) {
      case Topology::Flat2D: return "Topology::Flat2D";
      case Topology::Folded3D: return "Topology::Folded3D";
      case Topology::HiRise: return "Topology::HiRise";
    }
    return "?";
}

const char *
codeName(ArbScheme a)
{
    switch (a) {
      case ArbScheme::Lrg: return "ArbScheme::Lrg";
      case ArbScheme::LayerLrg: return "ArbScheme::LayerLrg";
      case ArbScheme::Wlrg: return "ArbScheme::Wlrg";
      case ArbScheme::Clrg: return "ArbScheme::Clrg";
      case ArbScheme::Islip: return "ArbScheme::Islip";
      case ArbScheme::Pim: return "ArbScheme::Pim";
      case ArbScheme::Wavefront: return "ArbScheme::Wavefront";
    }
    return "?";
}

const char *
codeName(ChannelAlloc a)
{
    switch (a) {
      case ChannelAlloc::InputBinned:
        return "ChannelAlloc::InputBinned";
      case ChannelAlloc::OutputBinned:
        return "ChannelAlloc::OutputBinned";
      case ChannelAlloc::Priority: return "ChannelAlloc::Priority";
    }
    return "?";
}

const char *
codeName(PatternKind p)
{
    switch (p) {
      case PatternKind::Uniform: return "check::PatternKind::Uniform";
      case PatternKind::Hotspot: return "check::PatternKind::Hotspot";
      case PatternKind::Transpose:
        return "check::PatternKind::Transpose";
      case PatternKind::BitComplement:
        return "check::PatternKind::BitComplement";
      case PatternKind::Bursty: return "check::PatternKind::Bursty";
    }
    return "?";
}

const char *
codeName(Mutation m)
{
    switch (m) {
      case Mutation::None: return "check::Mutation::None";
      case Mutation::LrgUpdateOffByOne:
        return "check::Mutation::LrgUpdateOffByOne";
      case Mutation::ClrgHalveWinnerOnly:
        return "check::Mutation::ClrgHalveWinnerOnly";
      case Mutation::IslipGrantPtrStuck:
        return "check::Mutation::IslipGrantPtrStuck";
      case Mutation::PimReuseRoundRng:
        return "check::Mutation::PimReuseRoundRng";
      case Mutation::WavefrontStuckPriority:
        return "check::Mutation::WavefrontStuckPriority";
      case Mutation::IsolationThresholdOffByOne:
        return "check::Mutation::IsolationThresholdOffByOne";
    }
    return "?";
}

const char *
codeName(sim::FaultEvent::Kind k)
{
    switch (k) {
      case sim::FaultEvent::Kind::FailChannel:
        return "sim::FaultEvent::Kind::FailChannel";
      case sim::FaultEvent::Kind::RecoverChannel:
        return "sim::FaultEvent::Kind::RecoverChannel";
      case sim::FaultEvent::Kind::FailLayer:
        return "sim::FaultEvent::Kind::FailLayer";
      case sim::FaultEvent::Kind::RecoverLayer:
        return "sim::FaultEvent::Kind::RecoverLayer";
    }
    return "?";
}

std::string
fmtDouble(double x)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

/** Fresh pattern per run: Bursty keeps per-input state, so the two
 *  differential runs must never share one instance. */
std::shared_ptr<traffic::TrafficPattern>
makePattern(const DiffConfig &c)
{
    const std::uint32_t r = c.spec.radix;
    switch (c.pattern) {
      case PatternKind::Uniform:
        return std::make_shared<traffic::UniformRandom>(r);
      case PatternKind::Hotspot:
        return std::make_shared<traffic::Hotspot>(r, c.hotOutput);
      case PatternKind::Transpose:
        return std::make_shared<traffic::Transpose>(r);
      case PatternKind::BitComplement:
        return std::make_shared<traffic::BitComplement>(r);
      case PatternKind::Bursty:
        return std::make_shared<traffic::Bursty>(r, c.meanBurstLen);
    }
    panic("unknown pattern kind");
}

bool
sameResult(const sim::SimResult &a, const sim::SimResult &b,
           std::string *why)
{
    auto num = [&](const char *name, double x, double y) {
        if (x == y)
            return true;
        *why = std::string(name) + " " + fmtDouble(x) + " vs " +
               fmtDouble(y);
        return false;
    };
    if (!num("offeredFlitsPerCycle", a.offeredFlitsPerCycle,
             b.offeredFlitsPerCycle) ||
        !num("acceptedFlitsPerCycle", a.acceptedFlitsPerCycle,
             b.acceptedFlitsPerCycle) ||
        !num("avgLatencyCycles", a.avgLatencyCycles,
             b.avgLatencyCycles) ||
        !num("p99LatencyCycles", a.p99LatencyCycles,
             b.p99LatencyCycles) ||
        !num("avgQueueingCycles", a.avgQueueingCycles,
             b.avgQueueingCycles) ||
        !num("fairness", a.fairness, b.fairness)) {
        return false;
    }
    if (a.packetsDelivered != b.packetsDelivered) {
        *why = "packetsDelivered " +
               std::to_string(a.packetsDelivered) + " vs " +
               std::to_string(b.packetsDelivered);
        return false;
    }
    if (a.inFlightAtMeasureEnd != b.inFlightAtMeasureEnd) {
        *why = "inFlightAtMeasureEnd " +
               std::to_string(a.inFlightAtMeasureEnd) + " vs " +
               std::to_string(b.inFlightAtMeasureEnd);
        return false;
    }
    if (a.latencyOverflowPackets != b.latencyOverflowPackets) {
        *why = "latencyOverflowPackets " +
               std::to_string(a.latencyOverflowPackets) + " vs " +
               std::to_string(b.latencyOverflowPackets);
        return false;
    }
    if (a.packetsDropped != b.packetsDropped) {
        *why = "packetsDropped " + std::to_string(a.packetsDropped) +
               " vs " + std::to_string(b.packetsDropped);
        return false;
    }
    if (a.perInputLatency.size() != b.perInputLatency.size() ||
        a.perInputThroughput.size() != b.perInputThroughput.size()) {
        *why = "per-input vector sizes differ";
        return false;
    }
    for (std::size_t i = 0; i < a.perInputLatency.size(); ++i) {
        if (!num(("perInputLatency[" + std::to_string(i) + "]").c_str(),
                 a.perInputLatency[i], b.perInputLatency[i]))
            return false;
        if (!num(("perInputThroughput[" + std::to_string(i) +
                  "]").c_str(),
                 a.perInputThroughput[i], b.perInputThroughput[i]))
            return false;
    }
    return true;
}

} // namespace

bool
isValid(const DiffConfig &c)
{
    const SwitchSpec &s = c.spec;
    if (s.radix < 2 || s.flitBits == 0)
        return false;
    if (s.schedIters < 1 || s.schedIters > 8)
        return false;
    if (s.topo == Topology::Flat2D) {
        if (s.arb != ArbScheme::Lrg && s.arb != ArbScheme::Islip &&
            s.arb != ArbScheme::Pim && s.arb != ArbScheme::Wavefront)
            return false;
    } else {
        if (s.layers < 2)
            return false;
        if (s.topo == Topology::Folded3D && s.arb != ArbScheme::Lrg)
            return false;
        if (s.topo == Topology::HiRise) {
            if (s.channels < 1 ||
                (s.arb != ArbScheme::LayerLrg &&
                 s.arb != ArbScheme::Wlrg && s.arb != ArbScheme::Clrg))
                return false;
            if (s.alloc == ChannelAlloc::InputBinned &&
                s.channels > s.portsPerLayer())
                return false;
            if (s.clrgMaxCount < 1)
                return false;
        }
    }
    if (c.cfg.numVcs < 1 || c.cfg.vcDepth < 1 || c.cfg.packetLen < 1)
        return false;
    if (c.cfg.measureCycles < 1)
        return false;
    if (!(c.cfg.injectionRate > 0.0) || c.cfg.injectionRate > 1.0)
        return false;
    if (c.pattern == PatternKind::Hotspot && c.hotOutput >= s.radix)
        return false;
    if (c.pattern == PatternKind::Bursty && !(c.meanBurstLen >= 1.0))
        return false;
    if (c.batchReplicas == 1 || c.batchReplicas > 8)
        return false; // 0 = off, else 2..8 lanes
    if (!c.faults.empty() && s.topo != Topology::HiRise)
        return false;
    for (const auto &f : c.faults) {
        if (f.srcLayer >= s.layers || f.dstLayer >= s.layers ||
            f.srcLayer == f.dstLayer || f.chan >= s.channels)
            return false;
    }
    // Non-fatal twin of FaultSchedule::validate.
    const sim::FaultSchedule &fs = c.faultSchedule;
    if (!fs.empty() && s.topo != Topology::HiRise)
        return false;
    if (fs.windowCycles == 0 || fs.maxErrorsPerWindow == 0)
        return false;
    for (const auto &e : fs.events) {
        const bool layer_kind =
            e.kind == sim::FaultEvent::Kind::FailLayer ||
            e.kind == sim::FaultEvent::Kind::RecoverLayer;
        if (e.src >= s.layers)
            return false;
        if (!layer_kind && (e.dst >= s.layers || e.src == e.dst ||
                            e.chan >= s.channels))
            return false;
    }
    for (const auto &fl : fs.flaky) {
        if (fl.src >= s.layers || fl.dst >= s.layers ||
            fl.src == fl.dst || fl.chan >= s.channels)
            return false;
        if (!(fl.errorRate > 0.0) || fl.errorRate > 1.0)
            return false;
    }
    return true;
}

std::string
describe(const DiffConfig &c)
{
    std::ostringstream os;
    os << c.spec.name() << " " << toString(c.pattern);
    if (c.pattern == PatternKind::Hotspot)
        os << "(" << c.hotOutput << ")";
    os << " rate=" << c.cfg.injectionRate
       << " vcs=" << c.cfg.numVcs << "x" << c.cfg.vcDepth
       << " len=" << c.cfg.packetLen
       << " warm=" << c.cfg.warmupCycles
       << " meas=" << c.cfg.measureCycles
       << " seed=" << c.cfg.seed
       << " mode=" << (c.cfg.denseStepping ? "dense" : "event")
       << " tier=" << simd::tierName(c.tier);
    if (!c.faults.empty())
        os << " faults=" << c.faults.size();
    if (!c.faultSchedule.empty())
        os << " sched=" << c.faultSchedule.events.size() << "ev/"
           << c.faultSchedule.flaky.size() << "fl";
    if (c.batchReplicas >= 2)
        os << " batch=" << c.batchReplicas;
    if (c.mutation != Mutation::None)
        os << " mutation=" << toString(c.mutation);
    return os.str();
}

DiffOutcome
runDifferential(const DiffConfig &c)
{
    DiffOutcome out;

    // Pin the config's SIMD tier for the whole differential (clamped
    // to what this build/host supports). The store is process-global,
    // so concurrent differentials with different tiers can flip it
    // mid-run — benign by design: every tier is bit-identical, so a
    // mid-run flip that changes any result is itself a real kernel
    // divergence the comparison passes will catch.
    simd::forceTier(c.tier);

    // Pass 1: optimized fabric with the oracle riding shotgun,
    // compared cycle by cycle.
    auto lockstep = std::make_unique<LockstepFabric>(c.spec, c.mutation);
    auto *ls = lockstep.get();
    for (const auto &f : c.faults)
        ls->failChannel(f.srcLayer, f.dstLayer, f.chan);
    sim::NetworkSim opt_sim(c.spec, c.cfg, makePattern(c),
                            std::move(lockstep));
    opt_sim.setFaultSchedule(c.faultSchedule);
    sim::SimResult opt_res = opt_sim.run();
    if (ls->mismatched()) {
        out.ok = false;
        out.mismatchCycle = ls->mismatchCycle();
        out.detail = "lockstep: " + ls->mismatchDetail();
        return out;
    }

    // Pass 2: the whole simulation end to end on the pure oracle; the
    // final SimResult must be bit-exact.
    auto ref_fab = std::make_unique<RefFabricAdapter>(c.spec, c.mutation);
    for (const auto &f : c.faults)
        ref_fab->ref().failChannel(f.srcLayer, f.dstLayer, f.chan);
    sim::NetworkSim ref_sim(c.spec, c.cfg, makePattern(c),
                            std::move(ref_fab));
    // The isolation-threshold mutation perturbs the pure-oracle
    // replay's schedule only: pass 1's single FaultManager feeds both
    // lockstep sides, so a flag shared there could never diverge.
    sim::FaultSchedule ref_sched = c.faultSchedule;
    if (c.mutation == Mutation::IsolationThresholdOffByOne)
        ref_sched.mutIsolationOffByOne = true;
    ref_sim.setFaultSchedule(ref_sched);
    sim::SimResult ref_res = ref_sim.run();

    std::string why;
    if (!sameResult(opt_res, ref_res, &why)) {
        out.ok = false;
        out.mismatchCycle = c.cfg.warmupCycles + c.cfg.measureCycles;
        out.detail = "SimResult diverged: " + why;
        return out;
    }

    // Pass 3: the optimized fabric again in the opposite stepping
    // mode; the event-driven and dense cores must agree bit-exactly.
    // Skipped under an oracle mutation (it perturbs only the ref side,
    // so this pass would compare two unmutated runs regardless).
    if (c.mutation == Mutation::None) {
        DiffConfig flip = c;
        flip.cfg.denseStepping = !c.cfg.denseStepping;
        auto alt_fab = fabric::makeFabric(flip.spec);
        if (auto *hr =
                dynamic_cast<fabric::HiRiseFabric *>(alt_fab.get())) {
            for (const auto &f : flip.faults)
                hr->failChannel(f.srcLayer, f.dstLayer, f.chan);
        }
        sim::NetworkSim alt_sim(flip.spec, flip.cfg, makePattern(flip),
                                std::move(alt_fab));
        alt_sim.setFaultSchedule(flip.faultSchedule);
        sim::SimResult alt_res = alt_sim.run();
        if (!sameResult(opt_res, alt_res, &why)) {
            out.ok = false;
            out.mismatchCycle =
                c.cfg.warmupCycles + c.cfg.measureCycles;
            out.detail = std::string("stepping-mode divergence (") +
                         (c.cfg.denseStepping ? "dense" : "event") +
                         " vs " +
                         (flip.cfg.denseStepping ? "dense" : "event") +
                         "): " + why;
            return out;
        }
    }

    // Pass 4: the batched multi-replica engine. Lane 0 reruns this
    // config's exact point, the other lanes sharded seeds; every lane
    // must be bit-identical to its own scalar run (faults included).
    // Skipped under a mutation (BatchSim has no oracle hook) and while
    // a tracer is armed (batching is disabled there by design).
    if (c.mutation == Mutation::None && c.batchReplicas >= 2 &&
        sim::BatchSim::usable()) {
        auto faulted = [&c] {
            auto f = fabric::makeFabric(c.spec);
            if (auto *hr =
                    dynamic_cast<fabric::HiRiseFabric *>(f.get())) {
                for (const auto &fa : c.faults)
                    hr->failChannel(fa.srcLayer, fa.dstLayer, fa.chan);
            }
            return f;
        };
        std::vector<sim::BatchPoint> pts;
        std::vector<std::shared_ptr<traffic::TrafficPattern>> pats;
        for (std::uint32_t j = 0; j < c.batchReplicas; ++j) {
            pts.push_back({c.cfg.injectionRate,
                           j == 0 ? c.cfg.seed
                                  : shardSeed(c.cfg.seed, j)});
            pats.push_back(makePattern(c));
        }
        sim::BatchSim batch(c.spec, c.cfg, std::move(pats), pts,
                            faulted);
        batch.setFaultSchedule(c.faultSchedule);
        std::vector<sim::SimResult> lanes = batch.run();
        for (std::uint32_t j = 0; j < c.batchReplicas; ++j) {
            sim::SimConfig scfg = c.cfg;
            scfg.seed = pts[j].seed;
            sim::NetworkSim scalar(c.spec, scfg, makePattern(c),
                                   faulted());
            scalar.setFaultSchedule(c.faultSchedule);
            if (!sameResult(lanes[j], scalar.run(), &why)) {
                out.ok = false;
                out.mismatchCycle =
                    c.cfg.warmupCycles + c.cfg.measureCycles;
                out.detail = "batch lane " + std::to_string(j) + "/" +
                             std::to_string(c.batchReplicas) +
                             " diverged from scalar: " + why;
                return out;
            }
        }
    }
    return out;
}

DiffConfig
sampleConfig(Rng &rng)
{
    auto u32 = [&](std::uint32_t lo, std::uint32_t hi) {
        return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
    };

    DiffConfig c;
    // Flat2D gets a larger share than its one-scheme days: the four
    // crossbar schedulers all live there.
    std::uint32_t topo_pick = u32(0, 9);
    if (topo_pick < 4) {
        c.spec.topo = Topology::Flat2D;
        static constexpr ArbScheme kFlat[] = {
            ArbScheme::Lrg, ArbScheme::Islip, ArbScheme::Pim,
            ArbScheme::Wavefront};
        c.spec.arb = kFlat[u32(0, 3)];
        c.spec.radix = u32(2, 40);
        c.spec.layers = 1;
        c.spec.channels = 1;
        if (c.spec.arb == ArbScheme::Islip)
            c.spec.schedIters = u32(1, 4);
        if (c.spec.arb == ArbScheme::Pim) {
            c.spec.schedIters = u32(1, 3);
            c.spec.schedSeed = rng.next();
        }
    } else if (topo_pick < 5) {
        c.spec.topo = Topology::Folded3D;
        c.spec.arb = ArbScheme::Lrg;
        c.spec.radix = u32(2, 40);
        c.spec.layers = u32(2, 4);
        c.spec.channels = 1;
    } else {
        c.spec.topo = Topology::HiRise;
        std::uint32_t layers = u32(2, 4);
        std::uint32_t ppl = u32(2, 8);
        // Deltas up to layers-1 keep portsPerLayer() == ppl while
        // still exercising uneven splits (including empty top layers).
        c.spec.layers = layers;
        c.spec.radix = layers * ppl - u32(0, layers - 1);
        c.spec.channels = u32(1, std::min<std::uint32_t>(4, ppl));
        static constexpr ArbScheme kArbs[] = {
            ArbScheme::LayerLrg, ArbScheme::Wlrg, ArbScheme::Clrg};
        c.spec.arb = kArbs[u32(0, 2)];
        static constexpr ChannelAlloc kAllocs[] = {
            ChannelAlloc::InputBinned, ChannelAlloc::OutputBinned,
            ChannelAlloc::Priority};
        c.spec.alloc = kAllocs[u32(0, 2)];
        c.spec.clrgMaxCount = u32(1, 3);
    }

    c.cfg.numVcs = u32(1, 4);
    c.cfg.vcDepth = u32(1, 4);
    c.cfg.packetLen = u32(1, 4);
    // ~10% of configs run at exactly rate 1.0 so the scalar saturation
    // fast path (virtual source queues) gets differential coverage
    // against the oracle and the opposite stepping mode.
    c.cfg.injectionRate =
        u32(0, 9) == 0 ? 1.0 : 0.05 + 0.85 * rng.uniform();
    c.cfg.warmupCycles = u32(0, 100);
    c.cfg.measureCycles = u32(50, 400);
    c.cfg.seed = rng.next();
    c.cfg.denseStepping = rng.below(2) == 1;
    // Tier axis: sampled over all compiled tiers; forceTier clamps to
    // the host's best at run time, so configs replay anywhere.
    static constexpr simd::Tier kTiers[] = {
        simd::Tier::Scalar, simd::Tier::Avx2, simd::Tier::Avx512};
    c.tier = kTiers[u32(0, 2)];

    switch (u32(0, 9)) {
      case 4:
      case 5:
        c.pattern = PatternKind::Hotspot;
        c.hotOutput = u32(0, c.spec.radix - 1);
        break;
      case 6:
        c.pattern = PatternKind::Transpose;
        break;
      case 7:
        c.pattern = PatternKind::BitComplement;
        break;
      case 8:
      case 9:
        c.pattern = PatternKind::Bursty;
        c.meanBurstLen = static_cast<double>(u32(1, 8));
        break;
      default:
        c.pattern = PatternKind::Uniform;
        break;
    }

    // ~30% of configs add the batched-engine pass with 2-4 lanes.
    if (u32(0, 9) < 3)
        c.batchReplicas = u32(2, 4);

    if (c.spec.topo == Topology::HiRise && u32(0, 9) < 3) {
        std::uint32_t pool =
            c.spec.layers * (c.spec.layers - 1) * c.spec.channels;
        std::uint32_t want =
            u32(1, std::max<std::uint32_t>(1, pool / 2));
        for (std::uint32_t tries = 0;
             tries < 8 * want && c.faults.size() < want; ++tries) {
            FaultSpec f;
            f.srcLayer = u32(0, c.spec.layers - 1);
            f.dstLayer = u32(0, c.spec.layers - 1);
            f.chan = u32(0, c.spec.channels - 1);
            if (f.srcLayer == f.dstLayer)
                continue;
            bool dup = false;
            for (const auto &g : c.faults)
                dup |= g.srcLayer == f.srcLayer &&
                       g.dstLayer == f.dstLayer && g.chan == f.chan;
            if (!dup)
                c.faults.push_back(f);
        }
    }

    // Dynamic fault-schedule axis: ~40% of HiRise configs get mid-run
    // fail/recover events and/or flaky links. Error rates and window
    // thresholds are deliberately aggressive so isolation (and the
    // isolation-threshold mutation smoke) trips within the short fuzz
    // runs.
    if (c.spec.topo == Topology::HiRise && u32(0, 9) < 4) {
        sim::FaultSchedule &fs = c.faultSchedule;
        const net::Cycle total =
            c.cfg.warmupCycles + c.cfg.measureCycles;
        auto chan_at = [&](std::uint32_t &s, std::uint32_t &d,
                           std::uint32_t &k) {
            s = u32(0, c.spec.layers - 1);
            do {
                d = u32(0, c.spec.layers - 1);
            } while (d == s);
            k = u32(0, c.spec.channels - 1);
        };
        const std::uint32_t nev = u32(0, 3);
        for (std::uint32_t e = 0; e < nev; ++e) {
            std::uint32_t s, d, k;
            chan_at(s, d, k);
            sim::FaultEvent ev;
            ev.cycle = u32(0, static_cast<std::uint32_t>(total) - 1);
            ev.kind = sim::FaultEvent::Kind::FailChannel;
            ev.src = s;
            ev.dst = d;
            ev.chan = k;
            fs.events.push_back(ev);
            if (u32(0, 1)) {
                ev.cycle = u32(static_cast<std::uint32_t>(ev.cycle),
                               static_cast<std::uint32_t>(total));
                ev.kind = sim::FaultEvent::Kind::RecoverChannel;
                fs.events.push_back(ev);
            }
        }
        if (u32(0, 4) == 0) {
            // Whole-layer loss; usually repaired a little later.
            sim::FaultEvent ev;
            ev.cycle = u32(0, static_cast<std::uint32_t>(total) - 1);
            ev.kind = sim::FaultEvent::Kind::FailLayer;
            ev.src = u32(0, c.spec.layers - 1);
            fs.events.push_back(ev);
            if (u32(0, 2)) {
                ev.cycle = u32(static_cast<std::uint32_t>(ev.cycle),
                               static_cast<std::uint32_t>(total));
                ev.kind = sim::FaultEvent::Kind::RecoverLayer;
                fs.events.push_back(ev);
            }
        }
        const std::uint32_t nfl = u32(1, 3);
        for (std::uint32_t f = 0; f < nfl; ++f) {
            sim::FlakyLink fl;
            chan_at(fl.src, fl.dst, fl.chan);
            fl.errorRate = 0.2 + 0.8 * rng.uniform();
            bool dup = false;
            for (const auto &g : fs.flaky)
                dup |= g.src == fl.src && g.dst == fl.dst &&
                       g.chan == fl.chan;
            if (!dup)
                fs.flaky.push_back(fl);
        }
        fs.maxErrorsPerWindow = u32(1, 3);
        fs.windowCycles = 32u << u32(0, 2); // 32 / 64 / 128
        fs.recoveryCycles = u32(0, 1) ? 0 : u32(16, 256);
        fs.seedSalt = rng.next();
    }

    sim_assert(isValid(c), "sampled an invalid config");
    return c;
}

DiffConfig
shrink(const DiffConfig &failing)
{
    auto fails = [](const DiffConfig &c) {
        return isValid(c) && !runDifferential(c).ok;
    };

    DiffConfig best = failing;
    int budget = 300; // differential runs, not candidates
    bool improved = true;
    while (improved && budget > 0) {
        improved = false;
        std::vector<DiffConfig> cands;
        auto add = [&](auto &&tweak) {
            DiffConfig d = best;
            if (tweak(d))
                cands.push_back(std::move(d));
        };

        add([](DiffConfig &d) {
            if (d.cfg.warmupCycles == 0)
                return false;
            d.cfg.warmupCycles = 0;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.cfg.measureCycles <= 1)
                return false;
            d.cfg.measureCycles /= 2;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.cfg.measureCycles <= 1)
                return false;
            --d.cfg.measureCycles;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.faults.empty())
                return false;
            d.faults.clear();
            return true;
        });
        for (std::size_t i = 0; i < best.faults.size(); ++i) {
            add([i](DiffConfig &d) {
                if (d.faults.size() <= 1)
                    return false;
                d.faults.erase(d.faults.begin() +
                               static_cast<std::ptrdiff_t>(i));
                return true;
            });
        }
        add([](DiffConfig &d) {
            if (d.faultSchedule.empty())
                return false;
            d.faultSchedule = sim::FaultSchedule{};
            return true;
        });
        add([](DiffConfig &d) {
            if (d.faultSchedule.events.empty())
                return false;
            d.faultSchedule.events.clear();
            return true;
        });
        add([](DiffConfig &d) {
            if (d.faultSchedule.flaky.empty())
                return false;
            d.faultSchedule.flaky.clear();
            return true;
        });
        for (std::size_t i = 0; i < best.faultSchedule.events.size();
             ++i) {
            add([i](DiffConfig &d) {
                d.faultSchedule.events.erase(
                    d.faultSchedule.events.begin() +
                    static_cast<std::ptrdiff_t>(i));
                return true;
            });
        }
        for (std::size_t i = 0; i < best.faultSchedule.flaky.size();
             ++i) {
            add([i](DiffConfig &d) {
                d.faultSchedule.flaky.erase(
                    d.faultSchedule.flaky.begin() +
                    static_cast<std::ptrdiff_t>(i));
                return true;
            });
        }
        add([](DiffConfig &d) {
            if (d.faultSchedule.recoveryCycles == 0)
                return false;
            d.faultSchedule.recoveryCycles = 0;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.batchReplicas == 0)
                return false;
            d.batchReplicas = 0; // does it still fail without pass 4?
            return true;
        });
        add([](DiffConfig &d) {
            if (d.batchReplicas <= 2)
                return false;
            --d.batchReplicas;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.tier == simd::Tier::Scalar)
                return false;
            d.tier = simd::Tier::Scalar;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.tier != simd::Tier::Avx512)
                return false;
            d.tier = simd::Tier::Avx2;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.pattern == PatternKind::Uniform)
                return false;
            d.pattern = PatternKind::Uniform;
            d.hotOutput = 0;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.cfg.packetLen == 1)
                return false;
            d.cfg.packetLen = 1;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.cfg.numVcs == 1)
                return false;
            d.cfg.numVcs = 1;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.cfg.vcDepth == 1)
                return false;
            d.cfg.vcDepth = 1;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.channels <= 1)
                return false;
            --d.spec.channels;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.topo == Topology::Flat2D || d.spec.layers <= 2)
                return false;
            --d.spec.layers;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.radix <= 2)
                return false;
            d.spec.radix = std::max<std::uint32_t>(2, d.spec.radix / 2);
            d.hotOutput = std::min(d.hotOutput, d.spec.radix - 1);
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.radix <= 2)
                return false;
            --d.spec.radix;
            d.hotOutput = std::min(d.hotOutput, d.spec.radix - 1);
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.clrgMaxCount <= 1)
                return false;
            d.spec.clrgMaxCount = 1;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.schedIters <= 1)
                return false;
            d.spec.schedIters = 1;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.schedSeed == 0)
                return false;
            d.spec.schedSeed = 0;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.alloc == ChannelAlloc::InputBinned)
                return false;
            d.spec.alloc = ChannelAlloc::InputBinned;
            return true;
        });
        add([](DiffConfig &d) {
            if (d.spec.topo != Topology::HiRise ||
                d.spec.arb == ArbScheme::LayerLrg)
                return false;
            d.spec.arb = ArbScheme::LayerLrg;
            return true;
        });

        for (auto &d : cands) {
            if (budget <= 0)
                break;
            --budget;
            if (fails(d)) {
                best = std::move(d);
                improved = true;
                break;
            }
        }
    }
    return best;
}

std::string
toGtestRepro(const DiffConfig &c)
{
    std::ostringstream os;
    os << "TEST(FuzzRepro, Mismatch)\n"
       << "{\n"
       << "    using namespace hirise;\n"
       << "    check::DiffConfig c;\n"
       << "    c.spec.topo = " << codeName(c.spec.topo) << ";\n"
       << "    c.spec.radix = " << c.spec.radix << ";\n"
       << "    c.spec.layers = " << c.spec.layers << ";\n"
       << "    c.spec.channels = " << c.spec.channels << ";\n"
       << "    c.spec.arb = " << codeName(c.spec.arb) << ";\n"
       << "    c.spec.alloc = " << codeName(c.spec.alloc) << ";\n"
       << "    c.spec.clrgMaxCount = " << c.spec.clrgMaxCount << ";\n"
       << "    c.spec.schedIters = " << c.spec.schedIters << ";\n"
       << "    c.spec.schedSeed = " << c.spec.schedSeed << "ull;\n"
       << "    c.cfg.numVcs = " << c.cfg.numVcs << ";\n"
       << "    c.cfg.vcDepth = " << c.cfg.vcDepth << ";\n"
       << "    c.cfg.packetLen = " << c.cfg.packetLen << ";\n"
       << "    c.cfg.injectionRate = " << fmtDouble(c.cfg.injectionRate)
       << ";\n"
       << "    c.cfg.warmupCycles = " << c.cfg.warmupCycles << ";\n"
       << "    c.cfg.measureCycles = " << c.cfg.measureCycles << ";\n"
       << "    c.cfg.seed = " << c.cfg.seed << "ull;\n"
       << "    c.cfg.denseStepping = "
       << (c.cfg.denseStepping ? "true" : "false") << ";\n"
       << "    c.pattern = " << codeName(c.pattern) << ";\n";
    if (c.pattern == PatternKind::Hotspot)
        os << "    c.hotOutput = " << c.hotOutput << ";\n";
    if (c.pattern == PatternKind::Bursty)
        os << "    c.meanBurstLen = " << fmtDouble(c.meanBurstLen)
           << ";\n";
    if (c.batchReplicas >= 2)
        os << "    c.batchReplicas = " << c.batchReplicas << ";\n";
    if (c.tier != simd::Tier::Scalar) {
        os << "    c.tier = simd::Tier::"
           << (c.tier == simd::Tier::Avx512 ? "Avx512" : "Avx2")
           << ";\n";
    }
    if (!c.faults.empty()) {
        os << "    c.faults = {";
        for (std::size_t i = 0; i < c.faults.size(); ++i) {
            if (i)
                os << ", ";
            os << "{" << c.faults[i].srcLayer << ", "
               << c.faults[i].dstLayer << ", " << c.faults[i].chan
               << "}";
        }
        os << "};\n";
    }
    if (!c.faultSchedule.empty()) {
        const sim::FaultSchedule &fs = c.faultSchedule;
        for (const auto &e : fs.events) {
            os << "    c.faultSchedule.events.push_back({"
               << e.cycle << ", " << codeName(e.kind) << ", " << e.src
               << ", " << e.dst << ", " << e.chan << "});\n";
        }
        for (const auto &fl : fs.flaky) {
            os << "    c.faultSchedule.flaky.push_back({" << fl.src
               << ", " << fl.dst << ", " << fl.chan << ", "
               << fmtDouble(fl.errorRate) << "});\n";
        }
        os << "    c.faultSchedule.maxErrorsPerWindow = "
           << fs.maxErrorsPerWindow << ";\n"
           << "    c.faultSchedule.windowCycles = " << fs.windowCycles
           << ";\n"
           << "    c.faultSchedule.recoveryCycles = "
           << fs.recoveryCycles << ";\n"
           << "    c.faultSchedule.seedSalt = " << fs.seedSalt
           << "ull;\n";
    }
    if (c.mutation != Mutation::None)
        os << "    c.mutation = " << codeName(c.mutation) << ";\n";
    os << "    auto out = check::runDifferential(c);\n"
       << "    EXPECT_TRUE(out.ok) << out.detail;\n"
       << "}\n";
    return os.str();
}

FuzzReport
runFuzz(const FuzzOptions &opt)
{
    Rng rng(opt.seed);
    FuzzReport rep;

    // Configs are sampled sequentially from the single Rng stream
    // (the sequence never depends on execution), then each batch's
    // differential runs fan out through the pool. The reported
    // mismatch is the first failing index in sample order, so the
    // report matches the old one-at-a-time loop.
    constexpr std::uint64_t kBatch = 32;
    std::uint64_t done = 0;
    std::uint64_t lastReport = 0;
    while (done < opt.configs) {
        std::uint64_t n = std::min(kBatch, opt.configs - done);
        std::vector<DiffConfig> batch;
        batch.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            DiffConfig c = sampleConfig(rng);
            c.mutation = opt.mutation;
            if (opt.verbose)
                inform("config %llu: %s",
                       static_cast<unsigned long long>(done + i),
                       describe(c).c_str());
            batch.push_back(std::move(c));
        }
        std::vector<DiffOutcome> outs = parallelMap(
            batch,
            [](const DiffConfig &c) { return runDifferential(c); },
            opt.threads);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (!outs[i].ok) {
                rep.configsRun = done + i + 1;
                rep.mismatchFound = true;
                rep.failing =
                    opt.shrinkOnFailure ? shrink(batch[i]) : batch[i];
                rep.outcome = runDifferential(rep.failing);
                rep.repro = toGtestRepro(rep.failing);
                return rep;
            }
        }
        done += n;
        rep.configsRun = done;
        if (!opt.verbose && done - lastReport >= 100) {
            lastReport = done;
            inform("fuzz: %llu/%llu configs clean",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(opt.configs));
        }
    }
    return rep;
}

} // namespace hirise::check
