/**
 * @file
 * Differential-testing oracle for the switch fabrics: a deliberately
 * naive, allocation-happy O(radix^2) reimplementation of matrix-LRG
 * arbitration, the CLRG class counters, and the Flat2D / Hi-Rise
 * two-phase grant path (including all channel-allocation modes and
 * L2LC fault masks).
 *
 * The oracle shares only SwitchSpec with the optimized code -- no
 * BitVec, no MatrixArbiter, no fabric classes -- so a bug in the
 * word-parallel hot path cannot be mirrored here by construction.
 * Everything is std::vector<bool> matrices and per-cycle fresh
 * allocations: slow, obvious, and easy to audit against the paper.
 *
 * Mutation: the oracle can be built with one deliberately seeded bug
 * (see Mutation below). The fuzzer's mutation smoke test proves the
 * differential harness actually detects arbiter bugs by enabling one
 * and requiring a mismatch.
 */

#ifndef HIRISE_CHECK_ORACLE_HH
#define HIRISE_CHECK_ORACLE_HH

#include <cstdint>
#include <vector>

#include "common/spec.hh"

namespace hirise::check {

constexpr std::uint32_t kRefNone = ~0u;

/** Deliberately seeded oracle bugs for the mutation smoke test. */
enum class Mutation
{
    None,
    /** Off-by-one loop bound in the matrix-arbiter priority update:
     *  the last port's row/column is never rewritten, so it is not
     *  promoted above a freshly demoted winner. */
    LrgUpdateOffByOne,
    /** CLRG saturation halves only the winner's counter instead of
     *  the whole bank, so relative class order is corrupted. */
    ClrgHalveWinnerOnly,
    /** iSLIP grant pointer never advances past an accepted grant, so
     *  a column keeps favoring the same input under contention. */
    IslipGrantPtrStuck,
    /** PIM accept draws reuse the round's last grant draw instead of
     *  consuming fresh ticks, shifting every later draw in the
     *  stream. */
    PimReuseRoundRng,
    /** Wavefront priority diagonal never rotates, so the allocator
     *  degenerates to a fixed-priority sweep. */
    WavefrontStuckPriority,
    /** Flaky-link auto-isolation trips at count == maxErrorsPerWindow
     *  instead of strictly above it (sim/fault.hh's
     *  FaultSchedule::mutIsolationOffByOne, applied to the pure-
     *  oracle replay only), so the mutant isolates one error early
     *  and its drop/throughput ledger diverges. */
    IsolationThresholdOffByOne,
};

const char *toString(Mutation m);

/** Victim of a forced channel break (oracle-side twin of
 *  fabric::BrokenConn; the oracle deliberately shares no headers with
 *  the optimized fabric code). */
struct RefBrokenConn
{
    std::uint32_t input = kRefNone;
    std::uint32_t output = kRefNone;
};

/**
 * Textbook matrix arbiter: a full n x n bool matrix, O(n^2) pick.
 * Row i column j true means i outranks j.
 */
class RefMatrixArbiter
{
  public:
    explicit RefMatrixArbiter(std::uint32_t n,
                              Mutation mut = Mutation::None)
        : n_(n), mut_(mut),
          outranks_(n, std::vector<bool>(n, false))
    {
        for (std::uint32_t i = 0; i < n_; ++i)
            for (std::uint32_t j = i + 1; j < n_; ++j)
                outranks_[i][j] = true;
    }

    std::uint32_t size() const { return n_; }

    /** Requestor outranked by no other requestor, or kRefNone. */
    std::uint32_t
    pick(const std::vector<bool> &req) const
    {
        for (std::uint32_t i = 0; i < n_; ++i) {
            if (!req[i])
                continue;
            bool wins = true;
            for (std::uint32_t j = 0; j < n_; ++j) {
                if (j != i && req[j] && outranks_[j][i]) {
                    wins = false;
                    break;
                }
            }
            if (wins)
                return i;
        }
        return kRefNone;
    }

    /** Demote @p winner below everyone. */
    void
    update(std::uint32_t winner)
    {
        std::uint32_t limit = n_;
        if (mut_ == Mutation::LrgUpdateOffByOne && n_ > 1)
            --limit; // seeded bug: last port's bits never rewritten
        for (std::uint32_t j = 0; j < limit; ++j) {
            if (j == winner)
                continue;
            outranks_[winner][j] = false;
            outranks_[j][winner] = true;
        }
    }

  private:
    std::uint32_t n_;
    Mutation mut_;
    std::vector<std::vector<bool>> outranks_;
};

/** Naive CLRG usage-counter bank (halve-then-increment on saturation). */
class RefClassCounterBank
{
  public:
    RefClassCounterBank(std::uint32_t num_inputs, std::uint32_t max_count,
                        Mutation mut = Mutation::None)
        : maxCount_(max_count), mut_(mut), count_(num_inputs, 0)
    {}

    std::uint32_t classOf(std::uint32_t input) const
    {
        return count_[input];
    }

    void
    onWin(std::uint32_t input)
    {
        if (count_[input] == maxCount_) {
            if (mut_ == Mutation::ClrgHalveWinnerOnly) {
                count_[input] /= 2; // seeded bug: bank not halved
            } else {
                for (auto &c : count_)
                    c /= 2;
            }
        }
        ++count_[input];
    }

  private:
    std::uint32_t maxCount_;
    Mutation mut_;
    std::vector<std::uint32_t> count_;
};

/**
 * Reference switch fabric covering every Topology x ArbScheme x
 * ChannelAlloc combination, with the same externally observable
 * contract as fabric::Fabric (arbitrate / release / holder queries /
 * failChannel) but an independent naive implementation. Grant-for-
 * grant equivalence with the optimized fabrics is enforced by
 * tests/check_test.cc and tools/fuzz_sim.
 */
class RefFabric
{
  public:
    explicit RefFabric(const SwitchSpec &spec,
                       Mutation mut = Mutation::None);

    const SwitchSpec &spec() const { return spec_; }

    /** One arbitration cycle; grant[i] == input i won end to end. */
    std::vector<bool> arbitrate(const std::vector<std::uint32_t> &req);

    void release(std::uint32_t input, std::uint32_t output);
    bool outputBusy(std::uint32_t o) const
    {
        return holder_[o] != kRefNone;
    }
    std::uint32_t outputHolder(std::uint32_t o) const
    {
        return holder_[o];
    }

    bool hasChannels() const { return !flat_; }

    /** Fail L2LC (s, d, k). A connection holding the channel
     *  mid-packet is forcibly broken and its victim appended to
     *  @p broken (when non-null). Idempotent on a failed channel. */
    void failChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                     std::uint32_t k,
                     std::vector<RefBrokenConn> *broken = nullptr);
    /** Return a failed channel to service (idempotent). */
    void recoverChannel(std::uint32_t src_layer,
                        std::uint32_t dst_layer, std::uint32_t k);
    /** Flat channel id held by @p o's connection, or kRefNone. */
    std::uint32_t heldChannelId(std::uint32_t o) const
    {
        return heldChan_[o];
    }
    bool channelBusy(std::uint32_t s, std::uint32_t d,
                     std::uint32_t k) const
    {
        return chanBusy_[chanId(s, d, k)];
    }
    bool channelFailed(std::uint32_t s, std::uint32_t d,
                       std::uint32_t k) const
    {
        return chanFailed_[chanId(s, d, k)];
    }

  private:
    struct SubReq
    {
        bool valid = false;
        std::uint32_t primaryInput = 0;
        std::uint32_t weight = 1;
    };

    std::uint32_t layerOf(std::uint32_t port) const
    {
        return port / ppl_;
    }
    std::uint32_t localIdx(std::uint32_t port) const
    {
        return port % ppl_;
    }
    std::uint32_t
    chanId(std::uint32_t s, std::uint32_t d, std::uint32_t k) const
    {
        return (s * nlay_ + d) * chan_ + k;
    }
    std::uint32_t subPort(std::uint32_t d, std::uint32_t s,
                          std::uint32_t k) const;
    void subPortOrigin(std::uint32_t d, std::uint32_t port,
                       std::uint32_t &s, std::uint32_t &k) const;
    std::uint32_t channelFor(std::uint32_t input,
                             std::uint32_t output) const;

    std::vector<bool>
    arbitrateFlat(const std::vector<std::uint32_t> &req);
    /** Naive twins of the arb::CrossbarScheduler strategies; their
     *  decision orders track scheduler.cc op for op (same pointer
     *  rules, same draw sequence) from independent plain-vector
     *  code. Called only when >= 1 input requests — the same gate
     *  the optimized fabric applies — so per-call state stays
     *  aligned across stepping modes. */
    std::vector<bool>
    islipFlat(const std::vector<std::uint32_t> &req);
    std::vector<bool>
    pimFlat(const std::vector<std::uint32_t> &req);
    std::vector<bool>
    wavefrontFlat(const std::vector<std::uint32_t> &req);
    /** Requestor matrix over free outputs; shared by the naive flat
     *  schedulers. want[o][i], pending[o] = column o has requestors. */
    void collectFlat(const std::vector<std::uint32_t> &req,
                     std::vector<std::vector<bool>> &want,
                     std::vector<bool> &pending) const;
    std::vector<bool>
    arbitrateHiRise(const std::vector<std::uint32_t> &req);
    /** Final-stage sub-block arbitration for output @p o, replicating
     *  the configured scheme; commits priority-state updates. */
    std::uint32_t subArbitrate(std::uint32_t o,
                               const std::vector<SubReq> &reqs);

    SwitchSpec spec_;
    Mutation mut_;
    bool flat_;           //!< Flat2D / Folded3D single-stage datapath
    std::uint32_t ppl_, nlay_, chan_, ports_;

    /** Flat: per-output column LRG over all inputs.
     *  HiRise: per-intermediate-output column LRG over one layer. */
    std::vector<RefMatrixArbiter> colArb_;
    std::vector<RefMatrixArbiter> chanArb_;      //!< per chanId
    std::vector<RefMatrixArbiter> subLrg_;       //!< per output
    std::vector<std::vector<std::uint32_t>> subWins_; //!< WLRG holds
    std::vector<RefClassCounterBank> subCounters_;    //!< CLRG banks

    std::vector<std::uint32_t> holder_;
    std::vector<std::uint32_t> heldChan_;
    std::vector<bool> chanBusy_;
    std::vector<bool> chanFailed_;

    // -- naive flat-scheduler state (Islip / Pim / Wavefront) --------
    std::vector<std::uint32_t> islipGrant_;  //!< per output column
    std::vector<std::uint32_t> islipAccept_; //!< per input
    std::uint64_t pimKey_ = 0;               //!< counter-RNG key
    std::uint64_t pimTick_ = 0;              //!< next draw index
    std::uint32_t wfPrio_ = 0;               //!< priority diagonal
};

} // namespace hirise::check

#endif // HIRISE_CHECK_ORACLE_HH
