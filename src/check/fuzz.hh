/**
 * @file
 * Config-fuzzing harness for the simulation core. Samples random
 * SwitchSpec x traffic x seed x fault-set x stepping-mode
 * configurations, runs the optimized simulator and the naive oracle
 * in lockstep (per-cycle grant matrices), a second pure-oracle
 * end-to-end run (bit-exact SimResult), and a third run of the
 * optimized fabric in the opposite stepping mode (dense vs
 * event-driven, also bit-exact), and on any mismatch greedily shrinks
 * the configuration to a minimal reproducer printed as a
 * ready-to-paste gtest case.
 */

#ifndef HIRISE_CHECK_FUZZ_HH
#define HIRISE_CHECK_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "common/spec.hh"
#include "sim/network_sim.hh"

namespace hirise::check {

/** Traffic patterns the fuzzer draws from (all stateless-per-run). */
enum class PatternKind
{
    Uniform,
    Hotspot,
    Transpose,
    BitComplement,
    Bursty,
};

const char *toString(PatternKind p);

/** One failed L2LC (HiRise only). */
struct FaultSpec
{
    std::uint32_t srcLayer = 0;
    std::uint32_t dstLayer = 1;
    std::uint32_t chan = 0;
};

/** Everything needed to reproduce one differential run exactly. */
struct DiffConfig
{
    SwitchSpec spec;
    sim::SimConfig cfg;
    PatternKind pattern = PatternKind::Uniform;
    std::uint32_t hotOutput = 0; //!< Hotspot only
    double meanBurstLen = 4.0;   //!< Bursty only
    std::vector<FaultSpec> faults;
    /** Dynamic fault axis (HiRise only): mid-run fail/recover events
     *  and flaky links with auto-isolation, attached to every pass
     *  via setFaultSchedule. The
     *  Mutation::IsolationThresholdOffByOne mutation flips the
     *  schedule's mutIsolationOffByOne flag on the pure-oracle pass
     *  only (both passes share one FaultManager stream otherwise, so
     *  a shared flag could never diverge). */
    sim::FaultSchedule faultSchedule;
    Mutation mutation = Mutation::None;
    /** When >= 2 (and the mutation is off), a fourth pass runs this
     *  many replica lanes through sim::BatchSim — lane 0 on the
     *  config's own seed, lanes j > 0 on shardSeed(seed, j) — and
     *  every lane must match its independent scalar run bit-exactly.
     *  0 disables the pass. */
    std::uint32_t batchReplicas = 0;
    /** SIMD dispatch tier forced for the differential runs (clamped
     *  to the best tier the build and host support, so sampled
     *  configs replay anywhere). Every tier must be bit-identical;
     *  shrinking steps toward Scalar. */
    simd::Tier tier = simd::Tier::Scalar;
};

/** Non-fatal counterpart of SwitchSpec::validate() plus fuzz-side
 *  sanity (pattern/fault ranges); shrink candidates that break it are
 *  discarded instead of exiting the process. */
bool isValid(const DiffConfig &c);

/** One-line human-readable summary of a config. */
std::string describe(const DiffConfig &c);

struct DiffOutcome
{
    bool ok = true;
    /** Arbitration cycle of the first lockstep divergence, or the
     *  total cycle count for an end-of-run SimResult divergence. */
    std::uint64_t mismatchCycle = 0;
    std::string detail;
};

/**
 * Run @p c three ways: the optimized fabric in lockstep with the
 * oracle (compared every cycle), the whole simulation on the pure
 * oracle (final SimResult compared bit-exactly), and — when the
 * mutation is off, so the first pass defines a trusted result — the
 * optimized fabric again in the opposite stepping mode
 * (c.cfg.denseStepping flipped), whose SimResult must also match
 * bit-exactly. When @p c.batchReplicas >= 2 (mutation off), a fourth
 * pass runs that many lanes through the batched engine and compares
 * each against its own scalar run bit-exactly.
 */
DiffOutcome runDifferential(const DiffConfig &c);

/** Draw one random (valid) configuration. */
DiffConfig sampleConfig(Rng &rng);

/** Greedily minimize @p failing while runDifferential still fails. */
DiffConfig shrink(const DiffConfig &failing);

/** Render @p c as a ready-to-paste gtest test case. */
std::string toGtestRepro(const DiffConfig &c);

struct FuzzOptions
{
    std::uint64_t configs = 200;
    std::uint64_t seed = 1;
    Mutation mutation = Mutation::None;
    bool shrinkOnFailure = true;
    bool verbose = false;
    /** parallelMap max_threads for the differential runs: 0 = the
     *  shared campaign pool, 1 = serial. Configs are always sampled
     *  sequentially from one Rng stream, so the config sequence and
     *  the first reported mismatch are thread-count invariant. */
    unsigned threads = 0;
};

struct FuzzReport
{
    std::uint64_t configsRun = 0;
    bool mismatchFound = false;
    DiffConfig failing;  //!< shrunk when FuzzOptions::shrinkOnFailure
    DiffOutcome outcome; //!< outcome of @ref failing
    std::string repro;   //!< gtest case reproducing @ref failing
};

/** Sample-and-check loop; stops at the first mismatch. */
FuzzReport runFuzz(const FuzzOptions &opt);

} // namespace hirise::check

#endif // HIRISE_CHECK_FUZZ_HH
