/**
 * @file
 * Floorplan-level network energy model for the discussion-section
 * comparison (paper VI-E): energy per flit moved end to end through
 * (a) a central flat 2D Swizzle-Switch, (b) a central 3D Hi-Rise
 * switch, (c) a low-radix mesh, and (d) a flattened butterfly, on a
 * 64-core chip.
 *
 * Assumptions (documented here because the paper inherits its
 * numbers from Sewell et al. [12] without spelling them out):
 *  - each core tile is tileAreaMm2 of silicon; the 2D chip is a
 *    square of all tiles, the 3D chip folds the tiles over the
 *    switch's layer count, shrinking the footprint and therefore
 *    every global wire;
 *  - a centralized switch sits mid-die; the average core<->switch
 *    link is centralLinkFactor x chip edge, traversed once on
 *    injection and once on ejection;
 *  - routed topologies pay per traversed router: the router crossbar
 *    energy (from the calibrated PhysModel) plus an input-buffer
 *    write+read at bufferPjPerBit (central Swizzle-Switches are
 *    unbuffered inside, which is exactly the paper's efficiency
 *    argument);
 *  - links are repeated global wires at the technology's wire cap.
 */

#ifndef HIRISE_PHYS_FLOORPLAN_HH
#define HIRISE_PHYS_FLOORPLAN_HH

#include "common/spec.hh"
#include "phys/model.hh"

namespace hirise::phys {

struct FloorplanParams
{
    std::uint32_t nodes = 64;
    double tileAreaMm2 = 1.0;
    /** Average core<->central-switch wire, fraction of chip edge. */
    double centralLinkFactor = 0.375;
    /** Buffered-router input buffer energy (write + read), pJ/bit. */
    double bufferPjPerBit = 0.15;
};

class SystemEnergyModel
{
  public:
    explicit SystemEnergyModel(FloorplanParams fp = {},
                               TechParams tech = TechParams::nm32())
        : fp_(fp), model_(tech)
    {}

    const FloorplanParams &params() const { return fp_; }

    /** Edge (mm) of the square die holding the tiles, folded over
     *  @p layers for 3D stacks. */
    double chipEdgeMm(std::uint32_t layers) const;

    /** Wire energy of one flit over one mm of repeated global link. */
    double linkPjPerMm(std::uint32_t flit_bits) const;

    /** Energy of one flit through a centralized switch, including
     *  the two global links. 3D specs use the folded footprint. */
    double centralPjPerFlit(const SwitchSpec &spec) const;

    /** Energy of one flit through a routed (buffered) topology given
     *  measured average router hops and link millimetres, plus the
     *  injection/ejection wires from the node to its router (half
     *  the router group's edge on each side). */
    double routedPjPerFlit(const SwitchSpec &router_spec,
                           double avg_router_hops,
                           double avg_link_mm,
                           std::uint32_t concentration) const;

    const PhysModel &physModel() const { return model_; }

  private:
    FloorplanParams fp_;
    PhysModel model_;
};

} // namespace hirise::phys

#endif // HIRISE_PHYS_FLOORPLAN_HH
