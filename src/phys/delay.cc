#include "phys/delay.hh"

namespace hirise::phys {

double
busCapFf(const TechParams &tech, std::uint32_t n_xp, double xp_side_um,
         double xp_cap_ff)
{
    double len = static_cast<double>(n_xp) * xp_side_um;
    return len * tech.wireCapPerUm +
           static_cast<double>(n_xp) * xp_cap_ff;
}

double
busDelayPs(const TechParams &tech, double driver_res_ohm,
           std::uint32_t n_xp, double xp_side_um, double xp_cap_ff,
           double extra_cap_ff)
{
    double len = static_cast<double>(n_xp) * xp_side_um;
    double c_tot = busCapFf(tech, n_xp, xp_side_um, xp_cap_ff) +
                   extra_cap_ff;
    double r_wire = len * tech.wireResPerUm;
    // fF * ohm = 1e-15 s * 1e0 -> convert to ps via 1e-3.
    double t_drv = 0.69 * driver_res_ohm * c_tot * 1e-3;
    double t_wire = 0.38 * r_wire * c_tot * 1e-3;
    return t_drv + t_wire;
}

} // namespace hirise::phys
