/**
 * @file
 * Elmore-RC delay primitives for crossbar bus segments.
 */

#ifndef HIRISE_PHYS_DELAY_HH
#define HIRISE_PHYS_DELAY_HH

#include <cstdint>

#include "phys/tech.hh"

namespace hirise::phys {

/**
 * Delay (ps) of a driver charging/discharging a distributed-RC bus
 * that crosses @p n_xp crosspoints of side @p xp_side_um, each adding
 * @p xp_cap_ff of device load, plus @p extra_cap_ff of lumped load at
 * the far end (e.g. TSV parasitics).
 *
 * t = 0.69 * Rdrv * Ctot + 0.38 * Rwire * Cwire-distributed
 * (standard Elmore coefficients for a step driver into a distributed
 * line; see Bakoglu).
 */
double busDelayPs(const TechParams &tech, double driver_res_ohm,
                  std::uint32_t n_xp, double xp_side_um,
                  double xp_cap_ff, double extra_cap_ff = 0.0);

/** Total capacitance (fF) of the same bus, for the energy model. */
double busCapFf(const TechParams &tech, std::uint32_t n_xp,
                double xp_side_um, double xp_cap_ff);

} // namespace hirise::phys

#endif // HIRISE_PHYS_DELAY_HH
