#include "phys/floorplan.hh"

#include <cmath>

namespace hirise::phys {

double
SystemEnergyModel::chipEdgeMm(std::uint32_t layers) const
{
    double area =
        fp_.nodes * fp_.tileAreaMm2 / static_cast<double>(layers);
    return std::sqrt(area);
}

double
SystemEnergyModel::linkPjPerMm(std::uint32_t flit_bits) const
{
    // fF/um * 1000 um * bits * V^2 -> pJ (1e-3 per fF at 1 V).
    const TechParams &t = model_.tech();
    return t.wireCapPerUm * 1000.0 * flit_bits * t.vddV * t.vddV *
           1e-3;
}

double
SystemEnergyModel::centralPjPerFlit(const SwitchSpec &spec) const
{
    auto rep = model_.evaluate(spec);
    std::uint32_t layers =
        spec.topo == Topology::Flat2D ? 1 : spec.layers;
    double avg_link =
        fp_.centralLinkFactor * chipEdgeMm(layers);
    return rep.energyPerTransPj +
           2.0 * avg_link * linkPjPerMm(spec.flitBits);
}

double
SystemEnergyModel::routedPjPerFlit(const SwitchSpec &router_spec,
                                   double avg_router_hops,
                                   double avg_link_mm,
                                   std::uint32_t concentration) const
{
    auto rep = model_.evaluate(router_spec);
    double buffer_pj =
        fp_.bufferPjPerBit * router_spec.flitBits;
    // Node <-> router attach wires: half the router group's edge on
    // the way in and again on the way out.
    double group_edge =
        std::sqrt(fp_.tileAreaMm2 * concentration);
    double attach_mm = group_edge; // 2 x half edge
    return avg_router_hops * (rep.energyPerTransPj + buffer_pj) +
           (avg_link_mm + attach_mm) *
               linkPjPerMm(router_spec.flitBits);
}

} // namespace hirise::phys
