/**
 * @file
 * Technology parameters for the analytical circuit model.
 *
 * The paper evaluates Hi-Rise with SPICE netlists in a commercial 32 nm
 * SOI process, verified against 2D Swizzle-Switch silicon. We do not
 * have that process kit, so this module provides a physically
 * structured Elmore-RC model whose constants are calibrated against the
 * paper's published anchor points (Tables I/IV/V, Figs 9/12); see
 * DESIGN.md section 2. All lengths in micrometers, capacitance in fF,
 * resistance in ohms, time in ps, energy in pJ.
 */

#ifndef HIRISE_PHYS_TECH_HH
#define HIRISE_PHYS_TECH_HH

#include <cstdint>

namespace hirise::phys {

/**
 * Process + circuit constants. Defaults model the paper's 32 nm SOI
 * setup (1 V, 27 C, typical corner) with the Tezzaron-style TSV from
 * Table II (0.8 um pitch, 0.2 fF feed-through, 1.5 ohm).
 */
struct TechParams
{
    // -- Geometry ---------------------------------------------------
    /** Signal-to-signal pitch on the crossbar metals. The paper double-
     *  pitches wires to cut coupling, so this is 2x the raw pitch. */
    double signalPitchUm = 0.2;
    /** Metal layers stacked per routing direction (paper: two). */
    std::uint32_t metalLayersPerDir = 2;

    // -- Wires ------------------------------------------------------
    double wireCapPerUm = 0.20;  //!< fF/um, double-pitched mid metal
    double wireResPerUm = 0.365; //!< ohm/um

    // -- Crosspoint loading (per crosspoint, per bit line) ----------
    double xpInputCapFf = 0.8;   //!< gate load on the input bus
    double xpOutputCapFf = 1.44; //!< drain/junction load on the output bus

    // -- Drivers / sensing -------------------------------------------
    double driverResOhm = 1180.0;   //!< input bus driver
    double pulldownResOhm = 1180.0; //!< output bus pull-down

    /** Fixed per-cycle overhead of a flat (single-stage) switch:
     *  sense-amp + latch + precharge margin + clock skew. */
    double fixed2dPs = 156.0;
    /** Fixed overhead of Hi-Rise phase 1 (no output latch: intermediate
     *  outputs feed phase 2 directly, Fig 8). */
    double fixedPhase1Ps = 75.0;
    /** Fixed overhead of Hi-Rise phase 2 (sense-amp + latch + margin). */
    double fixedPhase2Ps = 110.5;

    /** Extra phase-2 delay of the CLRG crosspoint (class counter read,
     *  Mux1/Mux2 and priority-select muxes, Fig 7). */
    double clrgMuxDelayPs = 8.5;
    /** Extra phase-1 delay of the priority-based channel allocator
     *  (serialized arbitration across L2LCs, section III-A). */
    double prioAllocDelayPs = 35.0;

    // -- TSVs ---------------------------------------------------------
    double tsvPitchUm = 0.8;
    double tsvFeedThroughFf = 0.2;
    double tsvResOhm = 1.5;
    /** Effective added capacitance per layer crossing including landing
     *  pads and redistribution routing, at the nominal 0.8 um pitch. */
    double tsvEffCapFf = 15.0;
    /** Pitch dependence of the effective TSV capacitance (fF per um of
     *  pitch beyond nominal): larger TSVs have larger parasitics. */
    double tsvCapPerPitchUm = 16.25;

    /** Per-TSV silicon area cost (keep-out + routing), calibrated as
     *  max(0, a + b*pitch + c*pitch^2) in um^2; reproduces the Table
     *  I/IV area deltas at 0.8 um and the Fig 12 area trend. */
    double tsvAreaA = -0.522;
    double tsvAreaB = 3.98;
    double tsvAreaC = 1.178;

    // -- Energy -------------------------------------------------------
    double vddV = 1.0;
    /** Activity/reuse factor: the output lines are exercised both in
     *  the arbitration phase and the data phase; input lines toggle
     *  with < 1 activity. Lumped multiplier on path capacitance. */
    double energyActivity = 1.0448;
    /** Activity on TSV/redistribution segments (switch only when the
     *  crossing actually toggles). */
    double tsvEnergyActivity = 0.5;
    /** Fixed clock + control energy per transaction (pJ). */
    double energyFixedPj = 8.0;
    /** Added energy of CLRG class counters + muxes per transaction. */
    double clrgEnergyPj = 2.0;

    /** The paper's 32 nm setup. */
    static TechParams nm32() { return TechParams{}; }
};

} // namespace hirise::phys

#endif // HIRISE_PHYS_TECH_HH
