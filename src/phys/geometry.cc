#include "phys/geometry.hh"

#include <algorithm>

namespace hirise::phys {

double
xpSideUm(const SwitchSpec &spec, const TechParams &tech)
{
    double tracks = static_cast<double>(spec.flitBits) /
                    static_cast<double>(tech.metalLayersPerDir);
    return tracks * tech.signalPitchUm;
}

std::uint32_t
localRows(const SwitchSpec &spec)
{
    return spec.portsPerLayer();
}

std::uint32_t
localCols(const SwitchSpec &spec)
{
    return spec.portsPerLayer() + spec.incomingChannels();
}

std::uint32_t
subBlockRows(const SwitchSpec &spec)
{
    return spec.incomingChannels() + 1;
}

std::uint32_t
subBlocksPerLayer(const SwitchSpec &spec)
{
    return spec.portsPerLayer();
}

std::uint64_t
totalCrosspoints(const SwitchSpec &spec)
{
    switch (spec.topo) {
      case Topology::Flat2D:
      case Topology::Folded3D:
        // The folded switch is still a full N x N matrix, merely
        // redistributed over layers (paper section II-B).
        return std::uint64_t(spec.radix) * spec.radix;
      case Topology::HiRise: {
        std::uint64_t local = std::uint64_t(localRows(spec)) *
                              localCols(spec);
        std::uint64_t inter = std::uint64_t(subBlocksPerLayer(spec)) *
                              subBlockRows(spec);
        return (local + inter) * spec.layers;
      }
    }
    return 0;
}

std::uint64_t
tsvCount(const SwitchSpec &spec)
{
    switch (spec.topo) {
      case Topology::Flat2D:
        return 0;
      case Topology::Folded3D:
        // Every one of the N output buses must reach every layer.
        return std::uint64_t(spec.radix) * spec.flitBits;
      case Topology::HiRise:
        // L layers, each with c*(L-1) outgoing vertical channels.
        return std::uint64_t(spec.layers) * spec.channels *
               (spec.layers - 1) * spec.flitBits;
    }
    return 0;
}

double
tsvAreaUm2(const TechParams &tech, double pitch_um)
{
    double a = tech.tsvAreaA + tech.tsvAreaB * pitch_um +
               tech.tsvAreaC * pitch_um * pitch_um;
    return std::max(0.0, a);
}

double
areaMm2(const SwitchSpec &spec, const TechParams &tech)
{
    double side = xpSideUm(spec, tech);
    double xp_um2 = side * side;
    double total_um2 =
        static_cast<double>(totalCrosspoints(spec)) * xp_um2;
    total_um2 += static_cast<double>(tsvCount(spec)) *
                 tsvAreaUm2(tech, tech.tsvPitchUm);
    return total_um2 * 1e-6;
}

} // namespace hirise::phys
