/**
 * @file
 * Top-level physical model: area / frequency / energy / TSV count for
 * any SwitchSpec. See DESIGN.md section 4.3 and tech.hh for the
 * calibration story.
 */

#ifndef HIRISE_PHYS_MODEL_HH
#define HIRISE_PHYS_MODEL_HH

#include <cstdint>

#include "common/spec.hh"
#include "phys/tech.hh"

namespace hirise::phys {

/** Scalar implementation-cost outputs for one switch configuration. */
struct PhysReport
{
    double areaMm2 = 0.0;
    double freqGhz = 0.0;
    double cycleTimePs = 0.0;
    double energyPerTransPj = 0.0; //!< one flitBits-wide transaction
    std::uint64_t numTsvs = 0;

    /**
     * Peak bandwidth if the switch moved one flit per output per
     * cycle; actual throughput multiplies this by the simulated
     * saturation utilization.
     */
    double peakTbps(std::uint32_t radix, std::uint32_t flit_bits) const;
};

/**
 * Analytical circuit model of the three switch datapaths.
 *
 * Delay composition (buffered Elmore segments, ps):
 *  - Flat2D:   fixed + inBus(N) + outBus(N)
 *  - Folded3D: Flat2D with (L-1) TSV landings loading every output bus
 *  - HiRise:   phase1 [local switch inBus + outBus + TSV chain + route
 *              across the destination inter-layer switch] +
 *              phase2 [sub-block column + CLRG mux if enabled]
 */
class PhysModel
{
  public:
    explicit PhysModel(TechParams tech = TechParams::nm32())
        : tech_(tech)
    {}

    const TechParams &tech() const { return tech_; }

    PhysReport evaluate(const SwitchSpec &spec) const;

    /** Cycle time in ps (validated spec). */
    double cycleTimePs(const SwitchSpec &spec) const;

    /** Energy per flitBits-wide transaction, pJ. */
    double energyPerTransPj(const SwitchSpec &spec) const;

  private:
    double flat2dCyclePs(const SwitchSpec &spec) const;
    double foldedCyclePs(const SwitchSpec &spec) const;
    double hiRiseCyclePs(const SwitchSpec &spec) const;

    /** Effective TSV cap per layer crossing at the configured pitch. */
    double tsvCapFf() const;

    TechParams tech_;
};

} // namespace hirise::phys

#endif // HIRISE_PHYS_MODEL_HH
