#include "phys/model.hh"

#include "phys/delay.hh"
#include "phys/geometry.hh"

namespace hirise::phys {

double
PhysReport::peakTbps(std::uint32_t radix, std::uint32_t flit_bits) const
{
    return freqGhz * 1e9 * static_cast<double>(radix) *
           static_cast<double>(flit_bits) * 1e-12;
}

double
PhysModel::tsvCapFf() const
{
    return tech_.tsvEffCapFf +
           tech_.tsvCapPerPitchUm * (tech_.tsvPitchUm - 0.8);
}

double
PhysModel::flat2dCyclePs(const SwitchSpec &spec) const
{
    double side = xpSideUm(spec, tech_);
    double t_in = busDelayPs(tech_, tech_.driverResOhm, spec.radix, side,
                             tech_.xpInputCapFf);
    double t_out = busDelayPs(tech_, tech_.pulldownResOhm, spec.radix,
                              side, tech_.xpOutputCapFf);
    return tech_.fixed2dPs + t_in + t_out;
}

double
PhysModel::foldedCyclePs(const SwitchSpec &spec) const
{
    // Logically the same N x N matrix; each output bus additionally
    // crosses L-1 layer boundaries (TSV landings + redistribution).
    double side = xpSideUm(spec, tech_);
    double extra = static_cast<double>(spec.layers - 1) * tsvCapFf();
    double t_in = busDelayPs(tech_, tech_.driverResOhm, spec.radix, side,
                             tech_.xpInputCapFf);
    double t_out = busDelayPs(tech_, tech_.pulldownResOhm, spec.radix,
                              side, tech_.xpOutputCapFf, extra);
    // Series TSV resistance is tiny (1.5 ohm) but modeled for
    // completeness: it sees roughly the downstream redistribution cap.
    double t_tsv_r = 0.69 * static_cast<double>(spec.layers - 1) *
                     tech_.tsvResOhm * tsvCapFf() * 1e-3;
    return tech_.fixed2dPs + t_in + t_out + t_tsv_r;
}

double
PhysModel::hiRiseCyclePs(const SwitchSpec &spec) const
{
    double side = xpSideUm(spec, tech_);

    // Phase 1: local switch evaluates and transmits to the inter-layer
    // switch inputs (paper Fig 8). Input bus spans all local columns;
    // the granted output column spans all local rows; then the L2LC
    // descends the (worst-case L-1) TSV chain and runs across the
    // destination layer's N/L sub-blocks.
    double t_in = busDelayPs(tech_, tech_.driverResOhm, localCols(spec),
                             side, tech_.xpInputCapFf);
    double t_col = busDelayPs(tech_, tech_.pulldownResOhm,
                              localRows(spec), side,
                              tech_.xpOutputCapFf);
    double chain_cap = static_cast<double>(spec.layers - 1) * tsvCapFf();
    double t_tsv = 0.69 * tech_.driverResOhm * chain_cap * 1e-3 +
                   0.69 * static_cast<double>(spec.layers - 1) *
                       tech_.tsvResOhm * chain_cap * 1e-3;
    double t_route = busDelayPs(tech_, tech_.driverResOhm,
                                subBlocksPerLayer(spec), side,
                                tech_.xpInputCapFf);
    double p1 = tech_.fixedPhase1Ps + t_in + t_col + t_tsv + t_route;
    if (spec.alloc == ChannelAlloc::Priority)
        p1 += tech_.prioAllocDelayPs;

    // Phase 2: the inter-layer sub-block column evaluates.
    double t_sub = busDelayPs(tech_, tech_.pulldownResOhm,
                              subBlockRows(spec), side,
                              tech_.xpOutputCapFf);
    double p2 = tech_.fixedPhase2Ps + t_sub;
    if (spec.arb == ArbScheme::Clrg)
        p2 += tech_.clrgMuxDelayPs;

    return p1 + p2;
}

double
PhysModel::cycleTimePs(const SwitchSpec &spec) const
{
    switch (spec.topo) {
      case Topology::Flat2D: return flat2dCyclePs(spec);
      case Topology::Folded3D: return foldedCyclePs(spec);
      case Topology::HiRise: return hiRiseCyclePs(spec);
    }
    panic("unreachable topology");
}

double
PhysModel::energyPerTransPj(const SwitchSpec &spec) const
{
    double side = xpSideUm(spec, tech_);
    double v2 = tech_.vddV * tech_.vddV;
    double bits = static_cast<double>(spec.flitBits);

    double path_ff = 0.0; // per-bit switched capacitance on the path
    double tsv_ff = 0.0;  // per-bit TSV/redistribution capacitance
    double extra_pj = 0.0;

    switch (spec.topo) {
      case Topology::Flat2D:
        path_ff = busCapFf(tech_, spec.radix, side, tech_.xpInputCapFf) +
                  busCapFf(tech_, spec.radix, side, tech_.xpOutputCapFf);
        break;
      case Topology::Folded3D:
        path_ff = busCapFf(tech_, spec.radix, side, tech_.xpInputCapFf) +
                  busCapFf(tech_, spec.radix, side, tech_.xpOutputCapFf);
        tsv_ff = static_cast<double>(spec.layers - 1) * tsvCapFf();
        break;
      case Topology::HiRise: {
        double c_in = busCapFf(tech_, localCols(spec), side,
                               tech_.xpInputCapFf);
        double c_col = busCapFf(tech_, localRows(spec), side,
                                tech_.xpOutputCapFf);
        double c_sub = busCapFf(tech_, subBlockRows(spec), side,
                                tech_.xpOutputCapFf);
        // Same-layer transactions take the dedicated intermediate-
        // output route (~half the inter-layer switch width); cross-
        // layer ones run the full shared L2LC bus plus TSVs.
        double c_route_local = busCapFf(
            tech_, (subBlocksPerLayer(spec) + 1) / 2, side,
            tech_.xpInputCapFf);
        double c_route_cross = busCapFf(tech_, subBlocksPerLayer(spec),
                                        side, tech_.xpInputCapFf);
        double layers = static_cast<double>(spec.layers);
        double p_local = 1.0 / layers;
        double common = c_in + c_col + c_sub;
        path_ff = common + p_local * c_route_local +
                  (1.0 - p_local) * c_route_cross;
        // Average layer distance of cross-layer traffic is (L+1)/3.
        double avg_cross = (layers + 1.0) / 3.0;
        tsv_ff = (1.0 - p_local) * avg_cross * tsvCapFf();
        if (spec.arb == ArbScheme::Clrg)
            extra_pj += tech_.clrgEnergyPj;
        break;
      }
    }

    double e = bits * v2 *
               (tech_.energyActivity * path_ff +
                tech_.tsvEnergyActivity * tsv_ff) *
               1e-3; // fF * V^2 -> pJ with the 1e-3 scale
    return e + tech_.energyFixedPj + extra_pj;
}

PhysReport
PhysModel::evaluate(const SwitchSpec &spec) const
{
    spec.validate();
    PhysReport r;
    r.areaMm2 = areaMm2(spec, tech_);
    r.cycleTimePs = cycleTimePs(spec);
    r.freqGhz = 1000.0 / r.cycleTimePs;
    r.energyPerTransPj = energyPerTransPj(spec);
    r.numTsvs = tsvCount(spec);
    return r;
}

} // namespace hirise::phys
