/**
 * @file
 * Crosspoint-grid geometry: block dimensions, crosspoint counts, and
 * TSV counts for each topology. The crossbar is wire-pitch limited
 * (paper section IV-D): a crosspoint is as wide as the stacked,
 * double-pitched output bus and as tall as the input bus.
 */

#ifndef HIRISE_PHYS_GEOMETRY_HH
#define HIRISE_PHYS_GEOMETRY_HH

#include <cstdint>

#include "common/spec.hh"
#include "phys/tech.hh"

namespace hirise::phys {

/**
 * Side length of one crosspoint in um: bus bits divided over the
 * stacked metal layers, at double pitch. For 128-bit flits in 32 nm
 * this is 128/2 * 0.2 um = 12.8 um (matches the paper's areas).
 */
double xpSideUm(const SwitchSpec &spec, const TechParams &tech);

/** Rows (inputs) of the Hi-Rise local switch on one layer. */
std::uint32_t localRows(const SwitchSpec &spec);

/** Columns (intermediate outputs + outgoing L2LCs) of the local
 *  switch: N/L + c*(L-1). */
std::uint32_t localCols(const SwitchSpec &spec);

/** Crosspoints in one inter-layer sub-block: c*(L-1) L2LCs + 1 local
 *  intermediate output. */
std::uint32_t subBlockRows(const SwitchSpec &spec);

/** Number of sub-blocks per layer (= final outputs per layer). */
std::uint32_t subBlocksPerLayer(const SwitchSpec &spec);

/** Total crosspoints summed over all layers. */
std::uint64_t totalCrosspoints(const SwitchSpec &spec);

/**
 * Number of TSVs, using the paper's accounting (vertical signal lines
 * times bus width): folded = N * flitBits; Hi-Rise = L * c * (L-1) *
 * flitBits; 2D = 0. Matches Table I / Table IV exactly.
 */
std::uint64_t tsvCount(const SwitchSpec &spec);

/** Silicon area cost of one TSV (keep-out + routing), um^2. */
double tsvAreaUm2(const TechParams &tech, double pitch_um);

/** Total switch area in mm^2 (all layers), including TSV overhead. */
double areaMm2(const SwitchSpec &spec, const TechParams &tech);

} // namespace hirise::phys

#endif // HIRISE_PHYS_GEOMETRY_HH
