/**
 * @file
 * Generic cycle-level simulator for router-graph topologies (the
 * low-radix mesh and flattened-butterfly baselines of the paper's
 * discussion section). Routers are input-queued crossbars with LRG
 * output arbitration and the same connection-held timing as the rest
 * of this repository: one arbitration cycle, then one flit per cycle,
 * with virtual cut-through hand-off between routers.
 */

#ifndef HIRISE_NOC_GRAPH_NOC_HH
#define HIRISE_NOC_GRAPH_NOC_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "arb/matrix_arbiter.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "net/packet.hh"
#include "noc/topology.hh"

namespace hirise::noc {

struct GraphResult
{
    double offeredPktsPerCycle = 0.0;
    double acceptedPktsPerCycle = 0.0;
    double avgLatencyCycles = 0.0;
    double avgRouterHops = 0.0; //!< routers traversed per packet
    double avgLinkMm = 0.0;     //!< inter-router wire traversed/packet
    std::uint64_t delivered = 0;
};

class GraphNoc
{
  public:
    GraphNoc(std::shared_ptr<Topology> topo,
             std::uint32_t packet_len = 4,
             std::uint32_t fifo_pkts = 4, std::uint64_t seed = 1);

    /** Uniform-random open-loop run. */
    GraphResult run(double rate, net::Cycle warmup,
                    net::Cycle measure);

    void step();

    const Topology &topology() const { return *topo_; }

    // -- closed-loop API (CMP transport) ------------------------------
    /** Deliver callback for tagged packets ejected at their node. */
    void
    setDeliverFn(std::function<void(std::uint64_t)> fn)
    {
        deliverFn_ = std::move(fn);
    }

    /** Enqueue a tagged packet of explicit length at a source node;
     *  the tag is handed to the deliver callback at ejection. */
    void sendTagged(std::uint32_t src_node, std::uint32_t dst_node,
                    std::uint32_t len_flits, std::uint64_t tag);

    std::uint64_t packetsDelivered() const { return delivered_; }

  private:
    struct QPkt
    {
        std::uint32_t dstNode;
        std::uint16_t hops;
        std::uint16_t lenFlits;
        float linkMm = 0.0f; //!< wire length accumulated so far
        net::Cycle genCycle;
        std::uint64_t tag = 0;
    };

    struct Conn
    {
        bool active = false;
        bool justGranted = false;
        std::uint32_t flitsLeft = 0;
        std::uint32_t output = 0;
        QPkt pkt{};
    };

    struct Router
    {
        std::vector<std::deque<QPkt>> fifo; //!< per input port
        std::vector<std::uint32_t> reserved;
        std::vector<arb::MatrixArbiter> outArb;
        std::vector<std::uint32_t> outHolder; //!< input or kNone
        std::vector<Conn> conn;
    };

    static constexpr std::uint32_t kNone = ~0u;

    std::uint32_t routePort(std::uint32_t router,
                            const QPkt &pkt) const;

    std::shared_ptr<Topology> topo_;
    std::uint32_t packetLen_;
    std::uint32_t fifoPkts_;
    std::vector<Router> routers_;
    std::vector<std::deque<QPkt>> source_; //!< per node
    std::function<void(std::uint64_t)> deliverFn_;
    Rng rng_;

    net::Cycle cycle_ = 0;
    bool measuring_ = false;
    std::uint64_t measInjected_ = 0;
    std::uint64_t delivered_ = 0;
    RunningStat latency_;
    RunningStat hops_;
    RunningStat linkMm_;
};

} // namespace hirise::noc

#endif // HIRISE_NOC_GRAPH_NOC_HH
