#include "noc/mesh.hh"

#include "common/logging.hh"

namespace hirise::noc {

void
MeshConfig::validate() const
{
    router.validate();
    if (width < 2 || height < 2)
        fatal("mesh needs at least 2x2 routers");
    if (router.radix % layers() != 0)
        fatal("router radix %u must divide evenly over %u layers",
              router.radix, layers());
    if (portsPerLayer() <= NumDirections)
        fatal("router needs more than %u ports per layer",
              NumDirections);
    if (inputFifoPkts < 1)
        fatal("input FIFOs need at least one packet slot");
}

MeshNoc::MeshNoc(const MeshConfig &cfg)
    : cfg_(cfg), nRouters_(cfg.width * cfg.height), rng_(cfg.seed)
{
    cfg_.validate();
    routers_.resize(nRouters_);
    for (auto &r : routers_) {
        r.fabric = fabric::makeFabric(cfg_.router);
        r.fifo.resize(cfg_.router.radix);
        r.reserved.assign(cfg_.router.radix, 0);
        r.conn.resize(cfg_.router.radix);
    }
    source_.resize(cfg_.totalNodes());
}

NodeAddr
MeshNoc::nodeAddr(std::uint32_t node) const
{
    std::uint32_t per_router = cfg_.localPerRouter();
    std::uint32_t router = node / per_router;
    std::uint32_t within = node % per_router;
    NodeAddr a;
    a.rx = router % cfg_.width;
    a.ry = router / cfg_.width;
    a.layer = within / cfg_.localPerLayer();
    a.slot = within % cfg_.localPerLayer();
    return a;
}

std::uint32_t
MeshNoc::nodeId(const NodeAddr &a) const
{
    std::uint32_t router = a.ry * cfg_.width + a.rx;
    return router * cfg_.localPerRouter() +
           a.layer * cfg_.localPerLayer() + a.slot;
}

std::uint32_t
MeshNoc::localPort(const NodeAddr &a) const
{
    return a.layer * cfg_.portsPerLayer() + a.slot;
}

std::uint32_t
MeshNoc::meshPort(Direction d, std::uint32_t layer) const
{
    return layer * cfg_.portsPerLayer() + cfg_.localPerLayer() + d;
}

bool
MeshNoc::isMeshPort(std::uint32_t port, Direction &d,
                    std::uint32_t &layer) const
{
    std::uint32_t within = port % cfg_.portsPerLayer();
    if (within < cfg_.localPerLayer())
        return false;
    layer = port / cfg_.portsPerLayer();
    d = static_cast<Direction>(within - cfg_.localPerLayer());
    return true;
}

bool
MeshNoc::xyRoute(std::uint32_t rx, std::uint32_t ry, std::uint32_t dx,
                 std::uint32_t dy, Direction &out)
{
    if (rx < dx) {
        out = East;
        return true;
    }
    if (rx > dx) {
        out = West;
        return true;
    }
    if (ry < dy) {
        out = South;
        return true;
    }
    if (ry > dy) {
        out = North;
        return true;
    }
    return false;
}

bool
MeshNoc::downstream(std::uint32_t router, std::uint32_t out_port,
                    std::uint32_t &n_router,
                    std::uint32_t &n_port) const
{
    Direction d;
    std::uint32_t layer;
    if (!isMeshPort(out_port, d, layer))
        return false;
    std::uint32_t rx = router % cfg_.width;
    std::uint32_t ry = router / cfg_.width;
    switch (d) {
      case North:
        if (ry == 0)
            return false;
        --ry;
        break;
      case South:
        if (ry + 1 == cfg_.height)
            return false;
        ++ry;
        break;
      case East:
        if (rx + 1 == cfg_.width)
            return false;
        ++rx;
        break;
      case West:
        if (rx == 0)
            return false;
        --rx;
        break;
      default:
        return false;
    }
    static constexpr Direction kOpposite[NumDirections] = {
        South, West, North, East};
    n_router = routerIdx(rx, ry);
    n_port = meshPort(kOpposite[d], layer);
    return true;
}

std::uint32_t
MeshNoc::route(std::uint32_t router, std::uint32_t /*in_port*/,
               const QPkt &pkt) const
{
    NodeAddr dst = nodeAddr(pkt.dstNode);
    std::uint32_t rx = router % cfg_.width;
    std::uint32_t ry = router / cfg_.width;

    Direction dir;
    if (!xyRoute(rx, ry, dst.rx, dst.ry, dir)) {
        // Destination router: eject on the node's local port. The
        // switch's internal Z routing reaches any layer directly.
        return localPort(dst);
    }

    // Adaptive Z: among the per-layer mesh ports of the required
    // direction, prefer the destination's layer, then the least
    // congested port whose downstream FIFO can accept the packet.
    std::uint32_t best = kNoPort;
    std::uint64_t best_score = ~0ull;
    for (std::uint32_t layer = 0; layer < cfg_.layers(); ++layer) {
        std::uint32_t out = meshPort(dir, layer);
        std::uint32_t n_router, n_port;
        if (!downstream(router, out, n_router, n_port))
            continue;
        const Router &nr = routers_[n_router];
        std::uint64_t occupancy =
            nr.fifo[n_port].size() + nr.reserved[n_port];
        if (occupancy >= cfg_.inputFifoPkts)
            continue; // no credit: virtual cut-through blocks here
        std::uint64_t score = occupancy * 2 +
                              (layer == dst.layer ? 0 : 1);
        if (score < best_score) {
            best_score = score;
            best = out;
        }
    }
    return best;
}

void
MeshNoc::step()
{
    const std::uint32_t radix = cfg_.router.radix;
    const std::uint32_t nodes = cfg_.totalNodes();

    // 1. Move node-injected packets into their local input FIFOs.
    for (std::uint32_t n = 0; n < nodes; ++n) {
        if (source_[n].empty())
            continue;
        NodeAddr a = nodeAddr(n);
        Router &r = routers_[routerIdx(a.rx, a.ry)];
        std::uint32_t port = localPort(a);
        if (r.fifo[port].size() + r.reserved[port] <
            cfg_.inputFifoPkts) {
            r.fifo[port].push_back(source_[n].front());
            source_[n].pop_front();
        }
    }

    // 2. Arbitration at every router.
    for (std::uint32_t ri = 0; ri < nRouters_; ++ri) {
        Router &r = routers_[ri];
        std::vector<std::uint32_t> req(radix, fabric::kNoRequest);
        std::vector<std::uint32_t> out_for(radix, kNoPort);
        for (std::uint32_t in = 0; in < radix; ++in) {
            if (r.conn[in].active || r.fifo[in].empty())
                continue;
            std::uint32_t out = route(ri, in, r.fifo[in].front());
            if (out == kNoPort || r.fabric->outputBusy(out))
                continue;
            req[in] = out;
            out_for[in] = out;
        }
        const auto &grant = r.fabric->arbitrate(req);
        for (std::uint32_t in = 0; in < radix; ++in) {
            if (!grant[in])
                continue;
            auto &c = r.conn[in];
            c.active = true;
            c.justGranted = true;
            c.flitsLeft = cfg_.packetLen;
            c.output = out_for[in];
            c.pkt = r.fifo[in].front();
            r.fifo[in].pop_front();
            // Reserve the downstream slot (virtual cut-through).
            std::uint32_t n_router, n_port;
            if (downstream(ri, c.output, n_router, n_port))
                ++routers_[n_router].reserved[n_port];
        }
    }

    // 3. Flit transfer + hand-off.
    for (std::uint32_t ri = 0; ri < nRouters_; ++ri) {
        Router &r = routers_[ri];
        for (std::uint32_t in = 0; in < radix; ++in) {
            auto &c = r.conn[in];
            if (!c.active)
                continue;
            if (c.justGranted) {
                c.justGranted = false;
                continue;
            }
            if (--c.flitsLeft > 0)
                continue;
            r.fabric->release(in, c.output);
            c.active = false;
            std::uint32_t n_router, n_port;
            if (downstream(ri, c.output, n_router, n_port)) {
                Router &nr = routers_[n_router];
                sim_assert(nr.reserved[n_port] > 0,
                           "hand-off without reservation");
                --nr.reserved[n_port];
                QPkt pkt = c.pkt;
                ++pkt.hops;
                nr.fifo[n_port].push_back(pkt);
            } else {
                // Local ejection: the packet reached its node.
                ++measDelivered_;
                if (measuring_) {
                    latency_.add(static_cast<double>(
                        cycle_ - c.pkt.genCycle));
                    hops_.add(static_cast<double>(c.pkt.hops + 1));
                }
            }
        }
    }

    ++cycle_;
}

MeshResult
MeshNoc::run(double rate, net::Cycle warmup, net::Cycle measure)
{
    const std::uint32_t nodes = cfg_.totalNodes();
    std::uint64_t delivered_at_meas = 0;

    auto inject = [&]() {
        for (std::uint32_t n = 0; n < nodes; ++n) {
            if (!rng_.bernoulli(rate))
                continue;
            QPkt p;
            std::uint32_t d = static_cast<std::uint32_t>(
                rng_.below(nodes - 1));
            p.dstNode = d >= n ? d + 1 : d;
            p.hops = 0;
            p.genCycle = cycle_;
            source_[n].push_back(p);
            ++injected_;
            if (measuring_)
                ++measInjected_;
        }
    };

    for (net::Cycle t = 0; t < warmup; ++t) {
        inject();
        step();
    }
    measuring_ = true;
    delivered_at_meas = measDelivered_;
    for (net::Cycle t = 0; t < measure; ++t) {
        inject();
        step();
    }
    measuring_ = false;

    MeshResult r;
    double window = static_cast<double>(measure);
    r.offeredPktsPerCycle =
        static_cast<double>(measInjected_) / window;
    r.acceptedPktsPerCycle =
        static_cast<double>(measDelivered_ - delivered_at_meas) /
        window;
    r.avgLatencyCycles = latency_.mean();
    r.avgHops = hops_.mean();
    r.delivered = latency_.count();
    return r;
}

} // namespace hirise::noc
