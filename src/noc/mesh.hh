/**
 * @file
 * Kilo-core NoC topology from paper section VI-E / Fig 13: a 2D mesh
 * whose routers are 3D Hi-Rise switches (or flat 2D Swizzle-Switches
 * for comparison). Routing is XY dimension-ordered between switches;
 * the 3D switch provides adaptive Z (layer) routing internally, since
 * any input can reach the mesh port of the chosen direction on any
 * layer in a single traversal.
 *
 * Each router of radix N with L layers exposes, per layer, N/L ports:
 * the first N/L - 4 are concentrated local node ports and the last 4
 * are the mesh ports (one per direction, so each direction has L
 * parallel ports, one per layer). Packets advance with virtual
 * cut-through: a switch connection is only granted when the
 * downstream input FIFO has a free packet slot, which together with
 * XY ordering keeps the network deadlock-free.
 */

#ifndef HIRISE_NOC_MESH_HH
#define HIRISE_NOC_MESH_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/spec.hh"
#include "common/stats.hh"
#include "fabric/fabric.hh"
#include "net/packet.hh"

namespace hirise::noc {

/** Mesh directions, also the order of per-layer mesh ports. */
enum Direction : std::uint32_t
{
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    NumDirections = 4
};

struct MeshConfig
{
    std::uint32_t width = 4;     //!< switches per row
    std::uint32_t height = 4;    //!< switches per column
    SwitchSpec router;           //!< per-router switch configuration
    std::uint32_t packetLen = 4; //!< flits
    std::uint32_t inputFifoPkts = 4; //!< packet slots per router input
    std::uint64_t seed = 1;

    std::uint32_t layers() const
    {
        return router.topo == Topology::Flat2D ? 1 : router.layers;
    }
    std::uint32_t
    portsPerLayer() const
    {
        return router.radix / layers();
    }
    /** Concentrated node ports per layer (per router). */
    std::uint32_t
    localPerLayer() const
    {
        return portsPerLayer() - NumDirections;
    }
    std::uint32_t
    localPerRouter() const
    {
        return localPerLayer() * layers();
    }
    /** Total cores attached to the mesh. */
    std::uint32_t
    totalNodes() const
    {
        return localPerRouter() * width * height;
    }

    void validate() const;
};

/** Global node address <-> (router, layer, slot) mapping helpers. */
struct NodeAddr
{
    std::uint32_t rx, ry;   //!< router coordinates
    std::uint32_t layer;    //!< silicon layer within the router
    std::uint32_t slot;     //!< local port slot within the layer
};

struct MeshResult
{
    double offeredPktsPerCycle = 0.0;
    double acceptedPktsPerCycle = 0.0;
    double avgLatencyCycles = 0.0;
    double avgHops = 0.0;
    std::uint64_t delivered = 0;
};

/**
 * Cycle-level mesh simulator. Traffic is uniform random over all
 * nodes (the standard kilo-core load study); the injection process
 * is open-loop with unbounded source queues.
 */
class MeshNoc
{
  public:
    explicit MeshNoc(const MeshConfig &cfg);

    /** Run warmup + measure cycles at the given injection rate
     *  (packets/node/cycle). */
    MeshResult run(double rate, net::Cycle warmup, net::Cycle measure);

    void step();

    // -- address arithmetic (public for tests) ------------------------
    NodeAddr nodeAddr(std::uint32_t node) const;
    std::uint32_t nodeId(const NodeAddr &a) const;
    /** Router-local port index of a local node. */
    std::uint32_t localPort(const NodeAddr &a) const;
    /** Router-local port index of mesh port (dir, layer). */
    std::uint32_t meshPort(Direction d, std::uint32_t layer) const;
    /** Is this router port a mesh port (returns direction) ? */
    bool isMeshPort(std::uint32_t port, Direction &d,
                    std::uint32_t &layer) const;

    /** XY next-hop direction at router (rx,ry) toward (dx,dy);
     *  returns false when already at the destination router. */
    static bool xyRoute(std::uint32_t rx, std::uint32_t ry,
                        std::uint32_t dx, std::uint32_t dy,
                        Direction &out);

    std::uint32_t numRouters() const { return nRouters_; }

  private:
    struct InFlight
    {
        std::uint32_t dstNode;
        std::uint16_t hops;
        net::Cycle genCycle;
    };

    /** One queued packet at a router input or node source. */
    struct QPkt
    {
        std::uint32_t dstNode;
        std::uint16_t hops;
        net::Cycle genCycle;
    };

    struct Router
    {
        std::unique_ptr<fabric::Fabric> fabric;
        /** Per input port: FIFO + reservation count (VCT credits). */
        std::vector<std::deque<QPkt>> fifo;
        std::vector<std::uint32_t> reserved;
        /** Active connections: input -> remaining flits + context. */
        struct Conn
        {
            bool active = false;
            bool justGranted = false;
            std::uint32_t flitsLeft = 0;
            std::uint32_t output = 0;
            QPkt pkt{};
        };
        std::vector<Conn> conn;
    };

    std::uint32_t routerIdx(std::uint32_t rx, std::uint32_t ry) const
    {
        return ry * cfg_.width + rx;
    }

    /** Downstream (router, input port) fed by this router's mesh
     *  output port; false for edge ports with no neighbour. */
    bool downstream(std::uint32_t router, std::uint32_t out_port,
                    std::uint32_t &n_router,
                    std::uint32_t &n_port) const;

    /** Choose the output port at @p router for a packet to
     *  @p dst_node arriving on @p in_port: local ejection port or an
     *  adaptively layer-selected mesh port. Returns kNoPort if every
     *  candidate is blocked. */
    static constexpr std::uint32_t kNoPort = ~0u;
    std::uint32_t route(std::uint32_t router, std::uint32_t in_port,
                        const QPkt &pkt) const;

    MeshConfig cfg_;
    std::uint32_t nRouters_;
    std::vector<Router> routers_;
    std::vector<std::deque<QPkt>> source_; //!< per node
    Rng rng_;

    net::Cycle cycle_ = 0;
    bool measuring_ = false;
    std::uint64_t injected_ = 0;
    std::uint64_t measInjected_ = 0;
    std::uint64_t measDelivered_ = 0;
    RunningStat latency_;
    RunningStat hops_;
};

} // namespace hirise::noc

#endif // HIRISE_NOC_MESH_HH
