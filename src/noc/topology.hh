/**
 * @file
 * Comparison topologies for the paper's discussion section (VI-E):
 * a 2D mesh of low-radix routers and a flattened butterfly, the two
 * networks the Swizzle-Switch line of work (and therefore Hi-Rise)
 * is measured against. Both are deterministic-routing, router-graph
 * topologies consumed by GraphNoc.
 */

#ifndef HIRISE_NOC_TOPOLOGY_HH
#define HIRISE_NOC_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <string>

namespace hirise::noc {

/** An inter-router or router-node connection endpoint. */
struct PortRef
{
    std::uint32_t router = 0;
    std::uint32_t port = 0;
    bool valid = false;
};

/**
 * A router-graph topology with deterministic routing. Port indices
 * 0..concentration-1 of every router are node (injection/ejection)
 * ports; the rest are inter-router ports.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    virtual std::string name() const = 0;
    virtual std::uint32_t numRouters() const = 0;
    /** Ports per router (node ports + inter-router ports). */
    virtual std::uint32_t radix() const = 0;
    virtual std::uint32_t concentration() const = 0;

    std::uint32_t
    numNodes() const
    {
        return numRouters() * concentration();
    }

    /** Router + port a node attaches to. */
    PortRef
    attach(std::uint32_t node) const
    {
        PortRef p;
        p.router = node / concentration();
        p.port = node % concentration();
        p.valid = true;
        return p;
    }

    /** The far end of an inter-router port; invalid for node ports
     *  or unused edge ports. */
    virtual PortRef link(std::uint32_t router,
                         std::uint32_t port) const = 0;

    /** Deterministic routing: the output port at @p router for a
     *  packet headed to @p dst_router (== ejection port handled by
     *  caller when dst_router == router). */
    virtual std::uint32_t route(std::uint32_t router,
                                std::uint32_t dst_router) const = 0;

    /** Physical length (mm) of the wire behind an inter-router
     *  port, for the energy model. */
    virtual double linkLengthMm(std::uint32_t router,
                                std::uint32_t port) const = 0;
};

/**
 * k x k mesh with one low-radix (concentration + 4)-port router per
 * tile group; XY dimension-ordered routing. The classic baseline the
 * paper's introduction argues does not scale.
 */
class LowRadixMesh : public Topology
{
  public:
    /**
     * @param k              routers per edge
     * @param concentration  nodes per router
     * @param tile_mm        router-to-router hop length (mm)
     */
    LowRadixMesh(std::uint32_t k, std::uint32_t concentration,
                 double tile_mm);

    std::string name() const override { return "mesh"; }
    std::uint32_t numRouters() const override { return k_ * k_; }
    std::uint32_t radix() const override { return conc_ + 4; }
    std::uint32_t concentration() const override { return conc_; }
    PortRef link(std::uint32_t router,
                 std::uint32_t port) const override;
    std::uint32_t route(std::uint32_t router,
                        std::uint32_t dst_router) const override;
    double
    linkLengthMm(std::uint32_t, std::uint32_t) const override
    {
        return tileMm_;
    }

  private:
    std::uint32_t k_, conc_;
    double tileMm_;
};

/**
 * Flattened butterfly (Kim et al. [20]): routers on an r x c grid,
 * each directly linked to every other router in its row and column;
 * routing takes at most one row hop plus one column hop.
 */
class FlattenedButterfly : public Topology
{
  public:
    FlattenedButterfly(std::uint32_t rows, std::uint32_t cols,
                       std::uint32_t concentration, double tile_mm);

    std::string name() const override { return "flattened-butterfly"; }
    std::uint32_t numRouters() const override { return rows_ * cols_; }
    std::uint32_t
    radix() const override
    {
        return conc_ + (rows_ - 1) + (cols_ - 1);
    }
    std::uint32_t concentration() const override { return conc_; }
    PortRef link(std::uint32_t router,
                 std::uint32_t port) const override;
    std::uint32_t route(std::uint32_t router,
                        std::uint32_t dst_router) const override;
    double linkLengthMm(std::uint32_t router,
                        std::uint32_t port) const override;

  private:
    /** Row-direction ports come first after the node ports, ordered
     *  by ascending destination column (skipping self); then the
     *  column-direction ports by ascending destination row. */
    std::uint32_t rowPort(std::uint32_t router,
                          std::uint32_t dst_col) const;
    std::uint32_t colPort(std::uint32_t router,
                          std::uint32_t dst_row) const;

    std::uint32_t rows_, cols_, conc_;
    double tileMm_;
};

} // namespace hirise::noc

#endif // HIRISE_NOC_TOPOLOGY_HH
