#include "noc/topology.hh"

#include "common/logging.hh"

namespace hirise::noc {

// ---------------------------------------------------------------------
// LowRadixMesh
// ---------------------------------------------------------------------

namespace {

/** Mesh inter-router port order after the node ports: N, E, S, W. */
enum MeshDir : std::uint32_t
{
    MN = 0,
    ME = 1,
    MS = 2,
    MW = 3
};

} // namespace

LowRadixMesh::LowRadixMesh(std::uint32_t k, std::uint32_t concentration,
                           double tile_mm)
    : k_(k), conc_(concentration), tileMm_(tile_mm)
{
    sim_assert(k >= 2 && concentration >= 1, "bad mesh shape");
}

PortRef
LowRadixMesh::link(std::uint32_t router, std::uint32_t port) const
{
    PortRef out;
    if (port < conc_)
        return out; // node port
    std::uint32_t d = port - conc_;
    std::uint32_t x = router % k_, y = router / k_;
    switch (d) {
      case MN:
        if (y == 0)
            return out;
        --y;
        break;
      case ME:
        if (x + 1 == k_)
            return out;
        ++x;
        break;
      case MS:
        if (y + 1 == k_)
            return out;
        ++y;
        break;
      case MW:
        if (x == 0)
            return out;
        --x;
        break;
      default:
        return out;
    }
    static constexpr std::uint32_t kOpp[4] = {MS, MW, MN, ME};
    out.router = y * k_ + x;
    out.port = conc_ + kOpp[d];
    out.valid = true;
    return out;
}

std::uint32_t
LowRadixMesh::route(std::uint32_t router,
                    std::uint32_t dst_router) const
{
    std::uint32_t x = router % k_, y = router / k_;
    std::uint32_t dx = dst_router % k_, dy = dst_router / k_;
    if (x < dx)
        return conc_ + ME;
    if (x > dx)
        return conc_ + MW;
    if (y < dy)
        return conc_ + MS;
    sim_assert(y > dy, "route called at destination router");
    return conc_ + MN;
}

// ---------------------------------------------------------------------
// FlattenedButterfly
// ---------------------------------------------------------------------

FlattenedButterfly::FlattenedButterfly(std::uint32_t rows,
                                       std::uint32_t cols,
                                       std::uint32_t concentration,
                                       double tile_mm)
    : rows_(rows), cols_(cols), conc_(concentration), tileMm_(tile_mm)
{
    sim_assert(rows >= 2 && cols >= 2 && concentration >= 1,
               "bad flattened-butterfly shape");
}

std::uint32_t
FlattenedButterfly::rowPort(std::uint32_t router,
                            std::uint32_t dst_col) const
{
    std::uint32_t col = router % cols_;
    sim_assert(dst_col != col, "no self row port");
    std::uint32_t rank = dst_col < col ? dst_col : dst_col - 1;
    return conc_ + rank;
}

std::uint32_t
FlattenedButterfly::colPort(std::uint32_t router,
                            std::uint32_t dst_row) const
{
    std::uint32_t row = router / cols_;
    sim_assert(dst_row != row, "no self column port");
    std::uint32_t rank = dst_row < row ? dst_row : dst_row - 1;
    return conc_ + (cols_ - 1) + rank;
}

PortRef
FlattenedButterfly::link(std::uint32_t router,
                         std::uint32_t port) const
{
    PortRef out;
    if (port < conc_)
        return out;
    std::uint32_t row = router / cols_, col = router % cols_;
    std::uint32_t d = port - conc_;
    if (d < cols_ - 1) {
        // Row link to another column.
        std::uint32_t dst_col = d < col ? d : d + 1;
        out.router = row * cols_ + dst_col;
        out.port = rowPort(out.router, col);
    } else {
        std::uint32_t r = d - (cols_ - 1);
        if (r >= rows_ - 1)
            return out;
        std::uint32_t dst_row = r < row ? r : r + 1;
        out.router = dst_row * cols_ + col;
        out.port = colPort(out.router, row);
    }
    out.valid = true;
    return out;
}

std::uint32_t
FlattenedButterfly::route(std::uint32_t router,
                          std::uint32_t dst_router) const
{
    std::uint32_t col = router % cols_;
    std::uint32_t dst_row = dst_router / cols_;
    std::uint32_t dst_col = dst_router % cols_;
    // Row dimension first, then column: at most two hops.
    if (dst_col != col)
        return rowPort(router, dst_col);
    std::uint32_t row = router / cols_;
    sim_assert(dst_row != row, "route called at destination router");
    return colPort(router, dst_row);
}

double
FlattenedButterfly::linkLengthMm(std::uint32_t router,
                                 std::uint32_t port) const
{
    PortRef far = link(router, port);
    if (!far.valid)
        return 0.0;
    std::uint32_t row = router / cols_, col = router % cols_;
    std::uint32_t frow = far.router / cols_, fcol = far.router % cols_;
    std::uint32_t span = frow > row ? frow - row : row - frow;
    span += fcol > col ? fcol - col : col - fcol;
    return span * tileMm_;
}

} // namespace hirise::noc
