#include "noc/graph_noc.hh"

#include "common/logging.hh"

namespace hirise::noc {

GraphNoc::GraphNoc(std::shared_ptr<Topology> topo,
                   std::uint32_t packet_len, std::uint32_t fifo_pkts,
                   std::uint64_t seed)
    : topo_(std::move(topo)), packetLen_(packet_len),
      fifoPkts_(fifo_pkts), rng_(seed)
{
    const std::uint32_t radix = topo_->radix();
    routers_.resize(topo_->numRouters());
    for (auto &r : routers_) {
        r.fifo.resize(radix);
        r.reserved.assign(radix, 0);
        r.outArb.assign(radix, arb::MatrixArbiter(radix));
        r.outHolder.assign(radix, kNone);
        r.conn.resize(radix);
    }
    source_.resize(topo_->numNodes());
}

void
GraphNoc::sendTagged(std::uint32_t src_node, std::uint32_t dst_node,
                     std::uint32_t len_flits, std::uint64_t tag)
{
    sim_assert(src_node < source_.size() &&
                   dst_node < topo_->numNodes() &&
                   src_node != dst_node,
               "bad tagged send %u -> %u", src_node, dst_node);
    QPkt p;
    p.dstNode = dst_node;
    p.hops = 0;
    p.lenFlits = static_cast<std::uint16_t>(len_flits);
    p.genCycle = cycle_;
    p.tag = tag;
    source_[src_node].push_back(p);
}

std::uint32_t
GraphNoc::routePort(std::uint32_t router, const QPkt &pkt) const
{
    PortRef dst = topo_->attach(pkt.dstNode);
    if (dst.router == router)
        return dst.port; // ejection
    return topo_->route(router, dst.router);
}

void
GraphNoc::step()
{
    const std::uint32_t radix = topo_->radix();
    const std::uint32_t conc = topo_->concentration();
    const std::uint32_t nodes = topo_->numNodes();

    // 1. Node injection into the attach port's FIFO.
    for (std::uint32_t n = 0; n < nodes; ++n) {
        if (source_[n].empty())
            continue;
        PortRef at = topo_->attach(n);
        Router &r = routers_[at.router];
        if (r.fifo[at.port].size() + r.reserved[at.port] <
            fifoPkts_) {
            r.fifo[at.port].push_back(source_[n].front());
            source_[n].pop_front();
        }
    }

    // 2. Per-router arbitration (one winner per free output).
    for (std::uint32_t ri = 0; ri < routers_.size(); ++ri) {
        Router &r = routers_[ri];
        // Gather requests per output.
        std::vector<std::vector<bool>> want(radix);
        for (std::uint32_t in = 0; in < radix; ++in) {
            if (r.conn[in].active || r.fifo[in].empty())
                continue;
            std::uint32_t out = routePort(ri, r.fifo[in].front());
            if (r.outHolder[out] != kNone)
                continue; // output mid-transfer
            if (out >= conc) {
                // Inter-router hop: need a downstream credit.
                PortRef far = topo_->link(ri, out);
                sim_assert(far.valid, "routing into a dead port");
                const Router &nr = routers_[far.router];
                if (nr.fifo[far.port].size() +
                        nr.reserved[far.port] >=
                    fifoPkts_)
                    continue;
            }
            if (want[out].empty())
                want[out].assign(radix, false);
            want[out][in] = true;
        }
        for (std::uint32_t out = 0; out < radix; ++out) {
            if (want[out].empty())
                continue;
            std::uint32_t w = r.outArb[out].pick(want[out]);
            if (w == arb::MatrixArbiter::kNone)
                continue;
            r.outArb[out].update(w);
            r.outHolder[out] = w;
            auto &c = r.conn[w];
            c.active = true;
            c.justGranted = true;
            c.pkt = r.fifo[w].front();
            r.fifo[w].pop_front();
            c.flitsLeft = c.pkt.lenFlits;
            c.output = out;
            if (out >= conc) {
                PortRef far = topo_->link(ri, out);
                ++routers_[far.router].reserved[far.port];
            }
        }
    }

    // 3. Flit transfer and hand-off.
    for (std::uint32_t ri = 0; ri < routers_.size(); ++ri) {
        Router &r = routers_[ri];
        for (std::uint32_t in = 0; in < radix; ++in) {
            auto &c = r.conn[in];
            if (!c.active)
                continue;
            if (c.justGranted) {
                c.justGranted = false;
                continue;
            }
            if (--c.flitsLeft > 0)
                continue;
            r.outHolder[c.output] = kNone;
            c.active = false;
            if (c.output >= conc) {
                PortRef far = topo_->link(ri, c.output);
                Router &nr = routers_[far.router];
                sim_assert(nr.reserved[far.port] > 0,
                           "hand-off without reservation");
                --nr.reserved[far.port];
                QPkt pkt = c.pkt;
                ++pkt.hops;
                pkt.linkMm += static_cast<float>(
                    topo_->linkLengthMm(ri, c.output));
                nr.fifo[far.port].push_back(pkt);
            } else {
                ++delivered_;
                if (measuring_) {
                    latency_.add(static_cast<double>(
                        cycle_ - c.pkt.genCycle));
                    hops_.add(static_cast<double>(c.pkt.hops + 1));
                    linkMm_.add(c.pkt.linkMm);
                }
                if (deliverFn_)
                    deliverFn_(c.pkt.tag);
            }
        }
    }

    ++cycle_;
}

GraphResult
GraphNoc::run(double rate, net::Cycle warmup, net::Cycle measure)
{
    const std::uint32_t nodes = topo_->numNodes();
    auto inject = [&]() {
        for (std::uint32_t n = 0; n < nodes; ++n) {
            if (!rng_.bernoulli(rate))
                continue;
            QPkt p;
            std::uint32_t d = static_cast<std::uint32_t>(
                rng_.below(nodes - 1));
            p.dstNode = d >= n ? d + 1 : d;
            p.hops = 0;
            p.lenFlits = static_cast<std::uint16_t>(packetLen_);
            p.genCycle = cycle_;
            source_[n].push_back(p);
            if (measuring_)
                ++measInjected_;
        }
    };

    for (net::Cycle t = 0; t < warmup; ++t) {
        inject();
        step();
    }
    measuring_ = true;
    std::uint64_t base = delivered_;
    for (net::Cycle t = 0; t < measure; ++t) {
        inject();
        step();
    }
    measuring_ = false;

    GraphResult r;
    double window = static_cast<double>(measure);
    r.offeredPktsPerCycle = double(measInjected_) / window;
    r.acceptedPktsPerCycle = double(delivered_ - base) / window;
    r.avgLatencyCycles = latency_.mean();
    r.avgRouterHops = hops_.mean();
    r.avgLinkMm = linkMm_.mean();
    r.delivered = latency_.count();
    return r;
}

} // namespace hirise::noc
