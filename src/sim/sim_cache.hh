/**
 * @file
 * Content-addressed memoization of SimResult. A simulation run is a
 * pure function of (SwitchSpec, SimConfig, traffic pattern, seed);
 * campaign workloads (figure suites, bisections, repeated table
 * builds) re-evaluate the same points constantly, so results are
 * keyed by a stable FNV-1a hash of that tuple and served from
 *
 *  - an in-memory LRU tier (always on, bounded entry count), and
 *  - an optional on-disk tier of versioned binary records under a
 *    cache directory (HIRISE_SIMCACHE_DIR for the global cache), so
 *    a *second process run* of the same figure suite is served from
 *    cache too.
 *
 * Records embed a schema/kernel version tag (kSimCacheVersion): bump
 * it whenever simulator semantics change and every stale record is
 * treated as a miss and overwritten. Keys additionally include the
 * pattern's descriptor() string, which must uniquely encode the
 * pattern's full parameterization.
 */

#ifndef HIRISE_SIM_SIM_CACHE_HH
#define HIRISE_SIM_SIM_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/spec.hh"
#include "sim/network_sim.hh"

namespace hirise::sim {

/** Bump when NetworkSim / fabric / pattern semantics change: any
 *  difference in the produced SimResult for the same key must
 *  invalidate existing disk records. v2: SimResult gained
 *  inFlightAtMeasureEnd / latencyOverflowPackets (disk layout and
 *  result contents changed). v3: keys hash the scheduler fields
 *  (SwitchSpec::schedIters/schedSeed) so scheduler configs never
 *  collide. v4: SimResult gained packetsDropped (disk layout
 *  changed) and keys hash the fault-schedule descriptor so faulted
 *  runs never collide with fault-free ones. */
constexpr std::uint32_t kSimCacheVersion = 4;

class SimCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;     //!< memory + disk hits
        std::uint64_t misses = 0;
        std::uint64_t diskHits = 0; //!< subset of hits served from disk
        std::uint64_t stores = 0;

        double
        hitRate() const
        {
            std::uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };

    /**
     * @param capacity  max entries in the in-memory LRU tier
     * @param disk_dir  directory for the on-disk tier ("" = disabled)
     * @param version   record version tag (tests override to exercise
     *                  invalidation; production uses kSimCacheVersion)
     * @param disk_cap_bytes  soft size cap for the disk tier (0 =
     *                  unbounded); see evictDisk()
     */
    explicit SimCache(std::size_t capacity = 4096,
                      std::string disk_dir = {},
                      std::uint32_t version = kSimCacheVersion,
                      std::uint64_t disk_cap_bytes = 0);

    /** Stable content hash of one simulation point. Includes every
     *  SwitchSpec and SimConfig field (seed included) plus the
     *  pattern descriptor and, when non-empty, the fault-schedule
     *  descriptor (FaultSchedule::descriptor()), salted with the
     *  cache version. */
    static std::uint64_t key(const SwitchSpec &spec,
                             const SimConfig &cfg,
                             std::string_view pattern_desc,
                             std::string_view fault_desc = {});

    /** True (and *out filled) when @p key is cached in either tier;
     *  disk hits are promoted into the memory tier. */
    bool lookup(std::uint64_t key, SimResult *out);

    /** Insert into the memory tier and, when enabled, persist a disk
     *  record (atomic temp-file + rename). */
    void store(std::uint64_t key, const SimResult &r);

    Stats stats() const;
    void resetStats();

    bool diskEnabled() const { return !diskDir_.empty(); }
    const std::string &diskDir() const { return diskDir_; }
    std::uint64_t diskCapBytes() const { return diskCapBytes_; }
    std::size_t size() const;

    /**
     * Size-cap eviction pass over the disk tier, safe against
     * concurrent daemons and batch harnesses sharing the directory:
     *
     *  - the pass runs under an exclusive flock(2) on <dir>/.lock,
     *    while every record publish holds a shared lock, so a record
     *    is never deleted between its temp write and its rename;
     *  - flock evaporates with the owning process, so a crash mid-
     *    pass can never wedge the directory (no stale-lockfile
     *    deadlock), and a partial pass just leaves extra records;
     *  - stale *.tmp.* files (crashed writers) older than a few
     *    minutes are garbage-collected;
     *  - records are deleted oldest-mtime-first until the tier is
     *    under ~80% of the cap (hysteresis so back-to-back stores do
     *    not rescan every time).
     *
     * store() triggers this automatically every few disk writes when
     * a cap is set. @p wait selects a blocking lock (tests / explicit
     * maintenance); the store()-driven passes use a non-blocking
     * attempt and simply skip when another process is already
     * evicting. Returns false when the lock was busy (wait=false) or
     * the tier is disabled/uncapped.
     */
    bool evictDisk(bool wait);

    /** Process-wide cache: capacity from HIRISE_SIMCACHE_CAP (default
     *  4096), disk tier iff HIRISE_SIMCACHE_DIR is set, disk cap from
     *  HIRISE_SIMCACHE_DISK_CAP (bytes, 0/unset = unbounded). */
    static SimCache &global();

  private:
    std::string recordPath(std::uint64_t key) const;
    bool readDisk(std::uint64_t key, SimResult *out) const;
    void writeDisk(std::uint64_t key, const SimResult &r);
    void insertLocked(std::uint64_t key, const SimResult &r);

    using LruList = std::list<std::pair<std::uint64_t, SimResult>>;

    mutable std::mutex mu_;
    std::size_t capacity_;
    std::string diskDir_;
    std::uint32_t version_;
    std::uint64_t diskCapBytes_ = 0;
    /** Disk writes since the last store()-driven eviction attempt;
     *  relaxed counter, approximate pacing is fine. */
    std::atomic<std::uint32_t> storesSinceEvict_{0};
    LruList lru_; //!< front = most recently used
    std::unordered_map<std::uint64_t, LruList::iterator> index_;
    Stats stats_;
};

} // namespace hirise::sim

#endif // HIRISE_SIM_SIM_CACHE_HH
