#include "sim/network_sim.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

#ifdef HIRISE_CHECK_ENABLED
#include "check/invariants.hh"
#endif

namespace hirise::sim {

namespace {

/** Registry handles resolved once per process; every bump is behind
 *  the obs::on() guard, so the disabled path never touches them. */
struct SimMetrics
{
    obs::Counter &injected;
    obs::Counter &delivered;
    obs::Counter &flits;
    obs::Counter &inFlightCensored;

    static SimMetrics &
    get()
    {
        static SimMetrics m{
            obs::MetricsRegistry::global().counter(
                "sim.packets_injected"),
            obs::MetricsRegistry::global().counter(
                "sim.packets_delivered"),
            obs::MetricsRegistry::global().counter(
                "sim.flits_delivered"),
            obs::MetricsRegistry::global().counter(
                "sim.in_flight_at_measure_end"),
        };
        return m;
    }
};

/** Traced bodies live cold and out-of-line so the untraced hot loop
 *  pays only the obs::on() test+branch at each site. */
[[gnu::cold]] [[gnu::noinline]] void
recordInject(std::uint32_t src, std::uint32_t dst, std::uint64_t id)
{
    SimMetrics::get().injected.inc();
    obs::CycleTracer::global().record(obs::Ev::Inject, src, dst, 0, id);
}

/** Traced virtual-injection cycle: emit the exact per-packet Inject
 *  events the legacy queued path would (ascending input order, ids
 *  first_id, first_id+1, ...), so traced and untraced runs stay
 *  byte-identical whichever saturation path is live. */
[[gnu::cold]] [[gnu::noinline]] void
recordInjectCycleVirtual(traffic::TrafficPattern &pat,
                         const BitVec &part, net::Cycle cycle,
                         std::uint64_t seed, net::PacketId first_id)
{
    net::PacketId id = first_id;
    part.forEachSet([&](std::uint32_t i) {
        recordInject(i, pat.destAt(i, cycle, seed), id++);
    });
}

[[gnu::cold]] [[gnu::noinline]] void
recordGrant(std::uint32_t in, std::uint32_t out, std::uint32_t vc,
            std::uint64_t packet)
{
    obs::CycleTracer::global().record(obs::Ev::Grant, in, out, vc,
                                      packet);
}

[[gnu::cold]] [[gnu::noinline]] void
recordRelease(std::uint32_t in, std::uint32_t out,
              std::uint32_t packet_len, std::uint64_t packet)
{
    SimMetrics::get().delivered.inc();
    SimMetrics::get().flits.inc(packet_len);
    obs::CycleTracer::global().record(obs::Ev::Release, in, out, 0,
                                      packet);
}

/** Min-heap order on (cycle, input): ties pop in ascending input
 *  order, matching the dense core's per-cycle input scan. */
struct EvLater
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return a.cycle != b.cycle ? a.cycle > b.cycle
                                  : a.input > b.input;
    }
};

} // namespace

NetworkSim::NetworkSim(const SwitchSpec &spec, const SimConfig &cfg,
                       std::shared_ptr<traffic::TrafficPattern> pattern)
    : NetworkSim(spec, cfg, std::move(pattern),
                 fabric::makeFabric(spec))
{}

NetworkSim::NetworkSim(const SwitchSpec &spec, const SimConfig &cfg,
                       std::shared_ptr<traffic::TrafficPattern> pattern,
                       std::unique_ptr<fabric::Fabric> fabric)
    : spec_(spec), cfg_(cfg), pattern_(std::move(pattern)),
      fabric_(std::move(fabric)), event_(!cfg.denseStepping),
      memoryless_(pattern_->memoryless()),
      injHeapOn_(!cfg.denseStepping && pattern_->memoryless() &&
                 cfg.injectionRate <= kInjHeapMaxRate),
      reqScratch_(spec.radix, fabric::kNoRequest),
      candVcScratch_(spec.radix, net::InputPort::kNoVc),
      dstFreeScratch_(spec.radix), connectedPorts_(spec.radix),
      eligibleInputs_(spec.radix), fillPending_(spec.radix),
      perInputLatency_(spec.radix), perInputPackets_(spec.radix, 0)
{
    sim_assert(fabric_ != nullptr, "NetworkSim needs a fabric");
    ports_.assign(spec.radix,
                  net::InputPort(cfg.numVcs, cfg.vcDepth));
    dstFreeScratch_.fill(); // no output is held at reset
    activeReq_.reserve(spec.radix);
    satOn_ = memoryless_ &&
             VirtualSourceQueues::saturates(cfg_.injectionRate) &&
             !cfg_.legacySatQueues && !legacySatQueuesPinned();
    if (satOn_) {
        satQ_.init(*pattern_, spec_.radix, cfg_.packetLen, cfg_.seed);
        satPart_.resize(spec_.radix);
        for (std::uint32_t i = 0; i < spec_.radix; ++i) {
            if (satQ_.participates(i))
                satPart_.set(i);
        }
    }
    if (injHeapOn_) {
        injHeap_.reserve(spec.radix);
        for (std::uint32_t i = 0; i < spec_.radix; ++i) {
            if (pattern_->participates(i))
                scheduleNextInjection(i, 0);
        }
    }
    if (cfg_.trace && !obs::CycleTracer::global().enabled())
        obs::CycleTracer::global().enable();
}

void
NetworkSim::setFaultSchedule(const FaultSchedule &sched)
{
    sim_assert(cycle_ == 0,
               "fault schedule must be attached before stepping");
    if (sched.empty())
        return; // inert: zero hot-path cost
    sim_assert(fabric_->supportsChannelFaults(),
               "fabric '%s' cannot take channel faults",
               toString(spec_.topo));
    faultMgr_ = FaultManager(sched, spec_, cfg_.seed);
    faultsOn_ = true;
    brokenScratch_.reserve(spec_.radix);
}

void
NetworkSim::injectPacket(std::uint32_t i, std::uint32_t dst)
{
    net::Packet p;
    p.id = nextId_++;
    p.src = i;
    p.dst = dst;
    sim_assert(p.dst < spec_.radix, "pattern dst out of range");
    p.lenFlits = static_cast<std::uint16_t>(cfg_.packetLen);
    p.genCycle = cycle_;
    ports_[i].sourceQueue().push_back(p);
    fillPending_.set(i);
    ++injected_;
    if (measuring_) {
        measFlitsOffered_ += p.lenFlits;
        ++measPacketsInjected_;
    }
    if (obs::on()) [[unlikely]]
        recordInject(i, p.dst, p.id);
}

void
NetworkSim::injectDenseCycle()
{
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        if (pattern_->injectAt(i, cycle_, cfg_.injectionRate,
                               cfg_.seed)) {
            injectPacket(i,
                         pattern_->destAt(i, cycle_, cfg_.seed));
        }
    }
}

void
NetworkSim::heapPush(InjEvent ev)
{
    injHeap_.push_back(ev);
    std::push_heap(injHeap_.begin(), injHeap_.end(), EvLater{});
}

void
NetworkSim::scheduleNextInjection(std::uint32_t i, net::Cycle from)
{
    const net::Cycle limit = from + kInjectScanChunk;
    net::Cycle next = pattern_->nextInjectionFrom(
        i, from, cfg_.injectionRate, cfg_.seed, limit);
    // next == limit means no hit inside the chunk: the entry acts as
    // a probe (injectAt is re-evaluated on pop and the scan resumes).
    heapPush({next, i});
}

void
NetworkSim::injectEventCycle()
{
    // Due events pop in ascending input order, so packet ids are
    // assigned exactly as the dense core's per-cycle input scan does.
    while (!injHeap_.empty() && injHeap_.front().cycle <= cycle_) {
        sim_assert(injHeap_.front().cycle == cycle_,
                   "missed injection event");
        std::pop_heap(injHeap_.begin(), injHeap_.end(), EvLater{});
        const std::uint32_t i = injHeap_.back().input;
        injHeap_.pop_back();
        if (pattern_->injectAt(i, cycle_, cfg_.injectionRate,
                               cfg_.seed)) {
            injectPacket(i, pattern_->destAt(i, cycle_, cfg_.seed));
            scheduleNextInjection(i, cycle_ + 1);
        } else {
            // Probe entry: rescan forward from here.
            scheduleNextInjection(i, cycle_);
        }
    }
}

void
NetworkSim::injectVirtualCycle()
{
    // Saturation fast path: every participating input injects exactly
    // one packet this cycle (every Bernoulli draw passes at load >=
    // 1), so the whole cycle's injection collapses to an accounting
    // bump — the packets stay virtual (sim/virtual_queue.hh) until
    // fillVirtualPhase() streams them into VCs. Ids are consistent
    // with the legacy per-cycle scan: ascending input order, one id
    // per participant.
    const std::uint32_t p = satQ_.participants();
    if (obs::on()) [[unlikely]]
        recordInjectCycleVirtual(*pattern_, satPart_, cycle_,
                                 cfg_.seed, nextId_);
    nextId_ += p;
    injected_ += p;
    if (measuring_) {
        measFlitsOffered_ += std::uint64_t(p) * cfg_.packetLen;
        measPacketsInjected_ += p;
    }
}

void
NetworkSim::fillPhase()
{
    // Only inputs with source-queue backlog can move a flit; an
    // in-flight fill implies a non-empty queue (the packet leaves the
    // queue only with its last flit). Resetting the current bit
    // inside forEachSet is safe (iteration copies each word).
    fillPending_.forEachSet([&](std::uint32_t i) {
        net::InputPort &port = ports_[i];
        port.fillCycle();
        if (!port.connected() && port.anyVcOccupied())
            eligibleInputs_.set(i);
        if (port.sourceQueue().empty())
            fillPending_.reset(i);
    });
}

void
NetworkSim::fillVirtualPhase()
{
    // fillPhase over the virtual queues: at saturation a queue is
    // never empty at fill time (a packet was injected this very
    // cycle), so every participating input attempts a fill, and a
    // consumed head is re-derived from the counter streams — one
    // destAt hash per packet that actually leaves the queue (bounded
    // by delivery throughput), not per injected packet. fillPending_
    // stays clear: the real source queues stay empty on this path.
    satPart_.forEachSet([&](std::uint32_t i) {
        net::InputPort &port = ports_[i];
        if (port.fillFrom(satQ_.head(i)))
            satQ_.advance(i, *pattern_);
        if (!port.connected() && port.anyVcOccupied())
            eligibleInputs_.set(i);
    });
}

void
NetworkSim::applyGrant(std::uint32_t i)
{
    auto &req = reqScratch_;
    auto &cand_vc = candVcScratch_;
    sim_assert(req[i] != fabric::kNoRequest,
               "grant to non-requesting input %u", i);
    if (measuring_) {
        const net::Flit &head = ports_[i].vcs()[cand_vc[i]].front();
        queueing_.add(static_cast<double>(cycle_ - head.genCycle));
    }
    if (obs::on()) [[unlikely]]
        recordGrant(i, req[i], cand_vc[i],
                    ports_[i].vcs()[cand_vc[i]].front().packet);
    ports_[i].connect(cand_vc[i], req[i], cfg_.packetLen,
                      ports_[i].vcs()[cand_vc[i]].front().genCycle);
    connectedPorts_.set(i);
    eligibleInputs_.reset(i);
    dstFreeScratch_.reset(req[i]);
}

void
NetworkSim::arbitrateCycle()
{
    // Dense reference: rebuild output availability from the fabric
    // and offer every non-connected input a candidate pick.
    auto &req = reqScratch_;
    auto &cand_vc = candVcScratch_;
    dstFreeScratch_.clear();
    for (std::uint32_t o = 0; o < spec_.radix; ++o) {
        if (!fabric_->outputBusy(o))
            dstFreeScratch_.set(o);
    }
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        req[i] = fabric::kNoRequest;
        cand_vc[i] = net::InputPort::kNoVc;
        if (ports_[i].connected())
            continue; // the input bus is transferring data
        std::uint32_t v = ports_[i].pickCandidateVc(&dstFreeScratch_);
        if (v == net::InputPort::kNoVc)
            continue;
        cand_vc[i] = v;
        req[i] = ports_[i].vcDest(v);
    }

    const BitVec &grant = fabric_->arbitrate(req);
#ifdef HIRISE_CHECK_ENABLED
    check::verifyGrantMatching(
        std::span<const std::uint32_t>(req), grant, spec_.radix,
        [this](std::uint32_t o) { return fabric_->outputHolder(o); });
#endif
    grant.forEachSet([&](std::uint32_t i) { applyGrant(i); });
}

void
NetworkSim::arbitrateCycleActive()
{
    // Event mode: only eligible inputs (non-connected with an occupied
    // VC) can request, and a non-connected occupied VC always has a
    // ready head, so skipping the rest is pick-state-neutral:
    // pickCandidateVc leaves its round-robin pointer untouched when no
    // VC is head-ready. dstFreeScratch_ is maintained incrementally
    // (grant clears, release sets) instead of rebuilt per cycle.
    auto &req = reqScratch_;
    auto &cand_vc = candVcScratch_;
    activeReq_.clear();
    eligibleInputs_.forEachSet([&](std::uint32_t i) {
        std::uint32_t v = ports_[i].pickCandidateVc(&dstFreeScratch_);
        if (v == net::InputPort::kNoVc)
            return;
        cand_vc[i] = v;
        req[i] = ports_[i].vcDest(v);
        activeReq_.push_back(i);
    });
    if (activeReq_.empty()) {
        // An all-kNoRequest arbitrate() is state-neutral in every
        // fabric; skip it and account the idle call for stats parity.
        fabric_->advanceIdle(1);
        return;
    }

    // eligibleInputs_.forEachSet walks ascending, so activeReq_ is the
    // ascending enumeration the sparse fabric path requires.
    const BitVec &grant = fabric_->arbitrateActive(req, activeReq_);
#ifdef HIRISE_CHECK_ENABLED
    check::verifyGrantMatching(
        std::span<const std::uint32_t>(req), grant, spec_.radix,
        [this](std::uint32_t o) { return fabric_->outputHolder(o); });
#endif
    grant.forEachSet([&](std::uint32_t i) { applyGrant(i); });
    // Sparse reset keeps req/cand_vc all-idle between cycles without
    // an O(radix) wipe.
    for (std::uint32_t i : activeReq_) {
        req[i] = fabric::kNoRequest;
        cand_vc[i] = net::InputPort::kNoVc;
    }
}

void
NetworkSim::transferCycle()
{
    // Resetting the current bit inside forEachSet is safe: iteration
    // walks a copy of each word.
    connectedPorts_.forEachSet([&](std::uint32_t i) {
        net::InputPort &port = ports_[i];
        sim_assert(port.connected(), "stale connected bit %u", i);
        if (port.consumeJustConnected())
            return; // grant cycle: the buses carried the arbitration
        net::VirtualChannel &vc = port.vcs()[port.connVc()];
        if (vc.empty())
            return; // bubble: flit not yet streamed in from source
        net::Flit f = vc.popFlit();
        std::uint32_t out = port.connOutput();
        sim_assert(f.dst == out, "flit routed to wrong output");
        ++flitsDelivered_;
        if (measuring_)
            ++measFlitsDelivered_;
        if (faultsOn_) {
            // Flaky-link error draw, attributed to the L2LC this
            // flit crossed (read before a tail flit releases it).
            faultMgr_.onFlitTransfer(cycle_,
                                     fabric_->heldChannelId(out));
        }
        bool done = port.transferOne();
        if (done) {
            sim_assert(f.tail, "connection ended mid-packet");
            fabric_->release(i, out);
            connectedPorts_.reset(i);
            dstFreeScratch_.set(out);
            if (port.anyVcOccupied())
                eligibleInputs_.set(i);
            ++delivered_;
            if (measuring_) {
                double lat = static_cast<double>(cycle_ - f.genCycle);
                latency_.add(lat);
                latencyHist_.add(lat);
                perInputLatency_[f.src].add(lat);
                ++perInputPackets_[f.src];
                if (f.genCycle >= measureStart_)
                    ++measPacketsCompleted_;
            }
            if (obs::on()) [[unlikely]]
                recordRelease(i, out, cfg_.packetLen, f.packet);
        }
    });
    if (faultsOn_) {
        // Isolations tripped by this cycle's error draws apply after
        // the transfer walk (never mid-iteration).
        brokenScratch_.clear();
        faultMgr_.applyPending(cycle_, *fabric_, brokenScratch_);
        if (!brokenScratch_.empty())
            handleBroken(brokenScratch_);
    }
}

void
NetworkSim::handleBroken(
    const std::vector<fabric::BrokenConn> &broken)
{
    for (const auto &bc : broken) {
        const std::uint32_t i = bc.input;
        net::InputPort &port = ports_[i];
        sim_assert(port.connected() && port.connOutput() == bc.output,
                   "broken connection %u->%u does not match port "
                   "state",
                   bc.input, bc.output);
        ++packetsDropped_;
        if (measuring_ && port.connGenCycle() >= measureStart_)
            ++measPacketsDropped_;
        std::uint32_t flits_dropped = 0;
        bool pop_source = false;
        port.breakConnection(flits_dropped, pop_source);
        droppedFlits_ += flits_dropped;
        if (pop_source) {
            // The dropped packet was still streaming from the (real
            // or virtual) source queue head; retire it there too.
            if (satOn_) {
                satQ_.advance(i, *pattern_);
            } else {
                port.sourceQueue().pop_front();
                if (port.sourceQueue().empty())
                    fillPending_.reset(i);
            }
        }
        connectedPorts_.reset(i);
        dstFreeScratch_.set(bc.output);
        if (port.anyVcOccupied())
            eligibleInputs_.set(i);
        else
            eligibleInputs_.reset(i);
    }
}

bool
NetworkSim::canFastForward() const
{
    // Quiescent: no queued packet, no buffered flit, no connection.
    // With the injection heap live the next state change is its head
    // event, so whole idle spans can be skipped. Without it (stateful
    // pattern, or high-rate polling) the next injection time is
    // unknown, so every cycle must be stepped.
    return injHeapOn_ && eligibleInputs_.none() &&
           connectedPorts_.none() && fillPending_.none();
}

void
NetworkSim::stepOnce()
{
    if (obs::on()) [[unlikely]]
        obs::setTraceCycle(cycle_);
    if (faultsOn_) {
        // Topology changes land at cycle start, before injection, so
        // the whole cycle sees the new channel set.
        brokenScratch_.clear();
        faultMgr_.beginCycle(cycle_, *fabric_, brokenScratch_);
        if (!brokenScratch_.empty())
            handleBroken(brokenScratch_);
    }
    if (satOn_) {
        // Saturation fast path: inject by accounting, fill from the
        // virtual queue heads (works in both stepping modes — at load
        // >= 1 injHeapOn_ is always false, so the legacy path would
        // per-cycle poll here in either mode too).
        injectVirtualCycle();
        fillVirtualPhase();
    } else {
        if (injHeapOn_)
            injectEventCycle();
        else
            injectDenseCycle(); // stateful / high-rate: per-cycle polls
        fillPhase();
    }
    if (event_)
        arbitrateCycleActive();
    else
        arbitrateCycle();
    transferCycle();
    ++cycle_;
#ifdef HIRISE_CHECK_ENABLED
    checkInvariants();
#endif
}

void
NetworkSim::stepTo(net::Cycle bound)
{
    sim_assert(cycle_ < bound, "stepTo must advance");
    if (event_ && canFastForward()) {
        net::Cycle next =
            injHeap_.empty()
                ? bound
                : std::min(bound, injHeap_.front().cycle);
        // Never jump a scheduled fault event or pending unisolation:
        // those cycles must be stepped so beginCycle applies them on
        // time (fabric state changes even in quiescent spans).
        if (faultsOn_)
            next = std::min(next, faultMgr_.nextEventCycle());
        if (next > cycle_) {
            // Nothing can happen before `next`; account the skipped
            // request-free arbitration cycles for stats parity.
            fabric_->advanceIdle(next - cycle_);
            cycle_ = next;
            if (cycle_ >= bound)
                return;
        }
    }
    stepOnce();
}

#ifdef HIRISE_CHECK_ENABLED
void
NetworkSim::checkInvariants() const
{
    check::verifyFlitConservation(injected_ * cfg_.packetLen,
                                  flitsDelivered_, backlogFlits(),
                                  droppedFlits_);
    auto holder = [this](std::uint32_t o) {
        return fabric_->outputHolder(o);
    };
    check::verifyHolderInjective(spec_.radix, holder);
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        check::verifyVcState(ports_[i], cfg_.vcDepth);
        sim_assert(connectedPorts_.test(i) == ports_[i].connected(),
                   "connectedPorts_ bit %u out of sync", i);
        sim_assert(fillPending_.test(i) ==
                       !ports_[i].sourceQueue().empty(),
                   "fillPending_ bit %u out of sync", i);
        sim_assert(eligibleInputs_.test(i) ==
                       (!ports_[i].connected() &&
                        ports_[i].anyVcOccupied()),
                   "eligibleInputs_ bit %u out of sync", i);
        // A connected port and the fabric's holder table must agree:
        // the connection-held matrix switch has exactly one grantee
        // per output bus.
        if (ports_[i].connected()) {
            sim_assert(fabric_->outputHolder(ports_[i].connOutput()) ==
                           i,
                       "connected port %u does not hold output %u", i,
                       ports_[i].connOutput());
        }
    }
    if (event_) {
        // Incrementally maintained output availability must match the
        // fabric's ground truth (dense mode rebuilds it per cycle).
        for (std::uint32_t o = 0; o < spec_.radix; ++o) {
            sim_assert(dstFreeScratch_.test(o) == !fabric_->outputBusy(o),
                       "dstFreeScratch_ bit %u out of sync", o);
        }
    }
}
#endif

std::uint64_t
NetworkSim::backlogFlits() const
{
    std::uint64_t n = 0;
    for (const auto &p : ports_)
        n += p.backlogFlits();
    if (satOn_) {
        // Virtual queue contents: packets gen [head, cycle_) are
        // injected but unconsumed. InputPort::backlogFlits() already
        // discounted the head's partially streamed flits.
        satPart_.forEachSet([&](std::uint32_t i) {
            n += satQ_.pendingFlitsBehindHead(i, cycle_,
                                              cfg_.packetLen);
        });
    }
    return n;
}

void
NetworkSim::advanceTo(net::Cycle target)
{
    // Boundaries are absolute, so this is restartable anywhere: a
    // restored simulator continues from cycle_ and flips the
    // measurement window at exactly the same cycles as an
    // uninterrupted run.
    while (cycle_ < target) {
        if (!measuring_ && cycle_ >= warmEnd() && cycle_ < runEnd()) {
            measuring_ = true;
            measureStart_ = warmEnd();
        }
        net::Cycle bound = target;
        if (cycle_ < warmEnd())
            bound = std::min(bound, warmEnd());
        else if (cycle_ < runEnd())
            bound = std::min(bound, runEnd());
        stepTo(bound);
        if (measuring_ && cycle_ >= runEnd())
            measuring_ = false;
    }
}

SimResult
NetworkSim::run()
{
    advanceTo(runEnd());
    sim_assert(!measuring_, "measurement window still open");

    double window = static_cast<double>(runEnd() - warmEnd());
    SimResult r;
    r.offeredFlitsPerCycle =
        static_cast<double>(measFlitsOffered_) / window;
    r.acceptedFlitsPerCycle =
        static_cast<double>(measFlitsDelivered_) / window;
    r.avgLatencyCycles = latency_.mean();
    r.avgQueueingCycles = queueing_.mean();
    r.p99LatencyCycles = latencyHist_.quantile(0.99);
    r.packetsDelivered = latency_.count();
    r.packetsDropped = packetsDropped_;
    sim_assert(measPacketsCompleted_ + measPacketsDropped_ <=
                   measPacketsInjected_,
               "more window packets completed+dropped than injected");
    r.inFlightAtMeasureEnd = measPacketsInjected_ -
                             measPacketsCompleted_ -
                             measPacketsDropped_;
    r.latencyOverflowPackets = latencyHist_.overflowCount();
    if (obs::on()) [[unlikely]] {
        SimMetrics::get().inFlightCensored.inc(
            r.inFlightAtMeasureEnd);
    }

    r.perInputLatency.resize(spec_.radix, 0.0);
    r.perInputThroughput.resize(spec_.radix, 0.0);
    std::vector<double> active_tput;
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        r.perInputLatency[i] = perInputLatency_[i].mean();
        r.perInputThroughput[i] =
            static_cast<double>(perInputPackets_[i]) / window;
        if (pattern_->participates(i))
            active_tput.push_back(r.perInputThroughput[i]);
    }
    r.fairness = jainFairness(active_tput);

    sim_assert(delivered_ <= injected_, "conservation violated");
    return r;
}

std::uint64_t
NetworkSim::configKey() const
{
    // FNV-1a over a canonical configuration string: everything the
    // restoring process must have reconstructed identically for a
    // snapshot's state to make sense.
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "spec:%d/%u/%u/%u/%u/%d/%d/%u/%u/%llu;"
        "cfg:%u/%u/%u/%.17g/%llu/%llu/%llu;",
        static_cast<int>(spec_.topo), spec_.radix, spec_.layers,
        spec_.channels, spec_.flitBits, static_cast<int>(spec_.arb),
        static_cast<int>(spec_.alloc), spec_.clrgMaxCount,
        spec_.schedIters,
        static_cast<unsigned long long>(spec_.schedSeed), cfg_.numVcs,
        cfg_.vcDepth, cfg_.packetLen, cfg_.injectionRate,
        static_cast<unsigned long long>(cfg_.warmupCycles),
        static_cast<unsigned long long>(cfg_.measureCycles),
        static_cast<unsigned long long>(cfg_.seed));
    std::string s = buf;
    s += "pat:" + pattern_->descriptor() + ";";
    if (faultsOn_)
        s += faultMgr_.schedule().descriptor();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
NetworkSim::save(snap::Writer &w) const
{
    w.u64(cycle_);
    w.u64(nextId_);
    w.u64(injected_);
    w.u64(delivered_);
    w.u64(flitsDelivered_);
    w.u64(droppedFlits_);
    w.u64(packetsDropped_);
    w.b(measuring_);
    w.u64(measureStart_);
    w.u64(measFlitsDelivered_);
    w.u64(measFlitsOffered_);
    w.u64(measPacketsInjected_);
    w.u64(measPacketsCompleted_);
    w.u64(measPacketsDropped_);
    latency_.save(w);
    queueing_.save(w);
    latencyHist_.save(w);
    for (const auto &st : perInputLatency_)
        st.save(w);
    w.vec(perInputPackets_);
    for (const auto &p : ports_)
        p.save(w);
    if (satOn_)
        satQ_.save(w);
    fabric_->save(w);
    faultMgr_.save(w);
    pattern_->save(w);
    // Derived structures (eligible/connected/fill bitsets, output
    // availability, the injection heap) are rebuilt on load; the
    // per-cycle request scratch is all-idle between cycles.
}

void
NetworkSim::load(snap::Reader &r)
{
    cycle_ = r.u64();
    nextId_ = r.u64();
    injected_ = r.u64();
    delivered_ = r.u64();
    flitsDelivered_ = r.u64();
    droppedFlits_ = r.u64();
    packetsDropped_ = r.u64();
    measuring_ = r.b();
    measureStart_ = r.u64();
    measFlitsDelivered_ = r.u64();
    measFlitsOffered_ = r.u64();
    measPacketsInjected_ = r.u64();
    measPacketsCompleted_ = r.u64();
    measPacketsDropped_ = r.u64();
    latency_.load(r);
    queueing_.load(r);
    latencyHist_.load(r);
    for (auto &st : perInputLatency_)
        st.load(r);
    r.vec(perInputPackets_);
    for (auto &p : ports_)
        p.load(r);
    if (satOn_)
        satQ_.load(r);
    fabric_->load(r);
    faultMgr_.load(r);
    pattern_->load(r);
    rebuildDerived();
}

void
NetworkSim::rebuildDerived()
{
    connectedPorts_.clear();
    eligibleInputs_.clear();
    fillPending_.clear();
    dstFreeScratch_.clear();
    for (std::uint32_t o = 0; o < spec_.radix; ++o) {
        if (!fabric_->outputBusy(o))
            dstFreeScratch_.set(o);
    }
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        const net::InputPort &p = ports_[i];
        if (p.connected())
            connectedPorts_.set(i);
        else if (p.anyVcOccupied())
            eligibleInputs_.set(i);
        if (!p.sourceQueue().empty())
            fillPending_.set(i);
    }
    if (injHeapOn_) {
        // Injection events are pure functions of the counter streams;
        // rescheduling from the restored cycle reproduces the exact
        // injection cycles the saved heap encoded (probe-chunk
        // alignment may differ, which is outcome-neutral: probes
        // re-evaluate injectAt on pop).
        injHeap_.clear();
        for (std::uint32_t i = 0; i < spec_.radix; ++i) {
            if (pattern_->participates(i))
                scheduleNextInjection(i, cycle_);
        }
    }
#ifdef HIRISE_CHECK_ENABLED
    checkInvariants();
#endif
}

bool
NetworkSim::saveSnapshotFile(const std::string &path) const
{
    snap::Writer w;
    save(w);
    return w.writeFile(path, configKey());
}

bool
NetworkSim::loadSnapshotFile(const std::string &path)
{
    snap::Reader r;
    if (!r.readFile(path, configKey()))
        return false;
    load(r);
    sim_assert(r.done(), "snapshot payload not fully consumed");
    return true;
}

} // namespace hirise::sim
