#include "sim/network_sim.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

#ifdef HIRISE_CHECK_ENABLED
#include "check/invariants.hh"
#endif

namespace hirise::sim {

namespace {

/** Registry handles resolved once per process; every bump is behind
 *  the obs::on() guard, so the disabled path never touches them. */
struct SimMetrics
{
    obs::Counter &injected;
    obs::Counter &delivered;
    obs::Counter &flits;
    obs::Counter &inFlightCensored;

    static SimMetrics &
    get()
    {
        static SimMetrics m{
            obs::MetricsRegistry::global().counter(
                "sim.packets_injected"),
            obs::MetricsRegistry::global().counter(
                "sim.packets_delivered"),
            obs::MetricsRegistry::global().counter(
                "sim.flits_delivered"),
            obs::MetricsRegistry::global().counter(
                "sim.in_flight_at_measure_end"),
        };
        return m;
    }
};

/** Traced bodies live cold and out-of-line so the untraced hot loop
 *  pays only the obs::on() test+branch at each site. */
[[gnu::cold]] [[gnu::noinline]] void
recordInject(std::uint32_t src, std::uint32_t dst, std::uint64_t id)
{
    SimMetrics::get().injected.inc();
    obs::CycleTracer::global().record(obs::Ev::Inject, src, dst, 0, id);
}

[[gnu::cold]] [[gnu::noinline]] void
recordGrant(std::uint32_t in, std::uint32_t out, std::uint32_t vc,
            std::uint64_t packet)
{
    obs::CycleTracer::global().record(obs::Ev::Grant, in, out, vc,
                                      packet);
}

[[gnu::cold]] [[gnu::noinline]] void
recordRelease(std::uint32_t in, std::uint32_t out,
              std::uint32_t packet_len, std::uint64_t packet)
{
    SimMetrics::get().delivered.inc();
    SimMetrics::get().flits.inc(packet_len);
    obs::CycleTracer::global().record(obs::Ev::Release, in, out, 0,
                                      packet);
}

} // namespace

NetworkSim::NetworkSim(const SwitchSpec &spec, const SimConfig &cfg,
                       std::shared_ptr<traffic::TrafficPattern> pattern)
    : NetworkSim(spec, cfg, std::move(pattern),
                 fabric::makeFabric(spec))
{}

NetworkSim::NetworkSim(const SwitchSpec &spec, const SimConfig &cfg,
                       std::shared_ptr<traffic::TrafficPattern> pattern,
                       std::unique_ptr<fabric::Fabric> fabric)
    : spec_(spec), cfg_(cfg), pattern_(std::move(pattern)),
      fabric_(std::move(fabric)), rng_(cfg.seed),
      reqScratch_(spec.radix, fabric::kNoRequest),
      candVcScratch_(spec.radix, net::InputPort::kNoVc),
      dstFreeScratch_(spec.radix), connectedPorts_(spec.radix),
      perInputLatency_(spec.radix), perInputPackets_(spec.radix, 0)
{
    sim_assert(fabric_ != nullptr, "NetworkSim needs a fabric");
    ports_.assign(spec.radix,
                  net::InputPort(cfg.numVcs, cfg.vcDepth));
    if (cfg_.trace && !obs::CycleTracer::global().enabled())
        obs::CycleTracer::global().enable();
}

void
NetworkSim::injectCycle()
{
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        if (pattern_->inject(i, cfg_.injectionRate, rng_)) {
            net::Packet p;
            p.id = nextId_++;
            p.src = i;
            p.dst = pattern_->dest(i, rng_);
            sim_assert(p.dst < spec_.radix, "pattern dst out of range");
            p.lenFlits = static_cast<std::uint16_t>(cfg_.packetLen);
            p.genCycle = cycle_;
            ports_[i].sourceQueue().push_back(p);
            ++injected_;
            if (measuring_) {
                measFlitsOffered_ += p.lenFlits;
                ++measPacketsInjected_;
            }
            if (obs::on()) [[unlikely]]
                recordInject(i, p.dst, p.id);
        }
        ports_[i].fillCycle();
    }
}

void
NetworkSim::arbitrateCycle()
{
    auto &req = reqScratch_;
    auto &cand_vc = candVcScratch_;
    dstFreeScratch_.clear();
    for (std::uint32_t o = 0; o < spec_.radix; ++o) {
        if (!fabric_->outputBusy(o))
            dstFreeScratch_.set(o);
    }
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        req[i] = fabric::kNoRequest;
        cand_vc[i] = net::InputPort::kNoVc;
        if (ports_[i].connected())
            continue; // the input bus is transferring data
        std::uint32_t v = ports_[i].pickCandidateVc(&dstFreeScratch_);
        if (v == net::InputPort::kNoVc)
            continue;
        cand_vc[i] = v;
        req[i] = ports_[i].vcDest(v);
    }

    const BitVec &grant = fabric_->arbitrate(req);
#ifdef HIRISE_CHECK_ENABLED
    check::verifyGrantMatching(
        std::span<const std::uint32_t>(req), grant, spec_.radix,
        [this](std::uint32_t o) { return fabric_->outputHolder(o); });
#endif
    grant.forEachSet([&](std::uint32_t i) {
        sim_assert(req[i] != fabric::kNoRequest,
                   "grant to non-requesting input %u", i);
        if (measuring_) {
            const net::Flit &head =
                ports_[i].vcs()[cand_vc[i]].front();
            queueing_.add(
                static_cast<double>(cycle_ - head.genCycle));
        }
        if (obs::on()) [[unlikely]]
            recordGrant(i, req[i], cand_vc[i],
                        ports_[i].vcs()[cand_vc[i]].front().packet);
        ports_[i].connect(cand_vc[i], req[i], cfg_.packetLen);
        connectedPorts_.set(i);
    });
}

void
NetworkSim::transferCycle()
{
    // Resetting the current bit inside forEachSet is safe: iteration
    // walks a copy of each word.
    connectedPorts_.forEachSet([&](std::uint32_t i) {
        net::InputPort &port = ports_[i];
        sim_assert(port.connected(), "stale connected bit %u", i);
        if (port.consumeJustConnected())
            return; // grant cycle: the buses carried the arbitration
        net::VirtualChannel &vc = port.vcs()[port.connVc()];
        if (vc.empty())
            return; // bubble: flit not yet streamed in from source
        net::Flit f = vc.popFlit();
        std::uint32_t out = port.connOutput();
        sim_assert(f.dst == out, "flit routed to wrong output");
        ++flitsDelivered_;
        if (measuring_)
            ++measFlitsDelivered_;
        bool done = port.transferOne();
        if (done) {
            sim_assert(f.tail, "connection ended mid-packet");
            fabric_->release(i, out);
            connectedPorts_.reset(i);
            ++delivered_;
            if (measuring_) {
                double lat = static_cast<double>(cycle_ - f.genCycle);
                latency_.add(lat);
                latencyHist_.add(lat);
                perInputLatency_[f.src].add(lat);
                ++perInputPackets_[f.src];
                if (f.genCycle >= measureStart_)
                    ++measPacketsCompleted_;
            }
            if (obs::on()) [[unlikely]]
                recordRelease(i, out, cfg_.packetLen, f.packet);
        }
    });
}

void
NetworkSim::step()
{
    if (obs::on()) [[unlikely]]
        obs::setTraceCycle(cycle_);
    injectCycle();
    arbitrateCycle();
    transferCycle();
    ++cycle_;
#ifdef HIRISE_CHECK_ENABLED
    checkInvariants();
#endif
}

#ifdef HIRISE_CHECK_ENABLED
void
NetworkSim::checkInvariants() const
{
    check::verifyFlitConservation(injected_ * cfg_.packetLen,
                                  flitsDelivered_, backlogFlits());
    auto holder = [this](std::uint32_t o) {
        return fabric_->outputHolder(o);
    };
    check::verifyHolderInjective(spec_.radix, holder);
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        check::verifyVcState(ports_[i], cfg_.vcDepth);
        sim_assert(connectedPorts_.test(i) == ports_[i].connected(),
                   "connectedPorts_ bit %u out of sync", i);
        // A connected port and the fabric's holder table must agree:
        // the connection-held matrix switch has exactly one grantee
        // per output bus.
        if (ports_[i].connected()) {
            sim_assert(fabric_->outputHolder(ports_[i].connOutput()) ==
                           i,
                       "connected port %u does not hold output %u", i,
                       ports_[i].connOutput());
        }
    }
}
#endif

std::uint64_t
NetworkSim::backlogFlits() const
{
    std::uint64_t n = 0;
    for (const auto &p : ports_)
        n += p.backlogFlits();
    return n;
}

SimResult
NetworkSim::run()
{
    for (net::Cycle t = 0; t < cfg_.warmupCycles; ++t)
        step();
    measuring_ = true;
    measureStart_ = cycle_;
    for (net::Cycle t = 0; t < cfg_.measureCycles; ++t)
        step();
    measuring_ = false;

    double window = static_cast<double>(cycle_ - measureStart_);
    SimResult r;
    r.offeredFlitsPerCycle =
        static_cast<double>(measFlitsOffered_) / window;
    r.acceptedFlitsPerCycle =
        static_cast<double>(measFlitsDelivered_) / window;
    r.avgLatencyCycles = latency_.mean();
    r.avgQueueingCycles = queueing_.mean();
    r.p99LatencyCycles = latencyHist_.quantile(0.99);
    r.packetsDelivered = latency_.count();
    sim_assert(measPacketsCompleted_ <= measPacketsInjected_,
               "more window packets completed than injected");
    r.inFlightAtMeasureEnd =
        measPacketsInjected_ - measPacketsCompleted_;
    r.latencyOverflowPackets = latencyHist_.overflowCount();
    if (obs::on()) [[unlikely]] {
        SimMetrics::get().inFlightCensored.inc(
            r.inFlightAtMeasureEnd);
    }

    r.perInputLatency.resize(spec_.radix, 0.0);
    r.perInputThroughput.resize(spec_.radix, 0.0);
    std::vector<double> active_tput;
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        r.perInputLatency[i] = perInputLatency_[i].mean();
        r.perInputThroughput[i] =
            static_cast<double>(perInputPackets_[i]) / window;
        if (pattern_->participates(i))
            active_tput.push_back(r.perInputThroughput[i]);
    }
    r.fairness = jainFairness(active_tput);

    sim_assert(delivered_ <= injected_, "conservation violated");
    return r;
}

} // namespace hirise::sim
