/**
 * @file
 * Dynamic fault events: mid-run TSV-channel failure/recovery, whole-
 * layer loss, and flaky links whose CRC-detected error rate triggers
 * automatic isolation (and, after a recovery window, unisolation).
 *
 * A FaultSchedule is pure configuration — a deterministic script of
 * timed events plus flaky-link error processes — and a FaultManager is
 * the per-run state machine that applies it to a fabric. Error draws
 * are counter-based (pure functions of (seed ^ salt, chanId, cycle)),
 * so dense, event-driven, and batched replicas agree bit for bit, and
 * event-mode idle fast-forward composes: transfers only happen on
 * stepped cycles, and scheduled events/unisolations are exposed via
 * nextEventCycle() so the fast-forward clamp never jumps one.
 *
 * Failure reasons are tracked per channel as a bitmask (scheduled
 * event vs. isolation) so overlapping causes compose: a channel
 * returns to service only when every reason clears.
 */

#ifndef HIRISE_SIM_FAULT_HH
#define HIRISE_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "common/spec.hh"
#include "fabric/fabric.hh"
#include "net/packet.hh"

namespace hirise::sim {

/** One scheduled topology change, applied at the start of @c cycle
 *  (before injection/arbitration of that cycle). */
struct FaultEvent
{
    enum class Kind : std::uint8_t
    {
        FailChannel,    //!< (src, dst, chan) goes down
        RecoverChannel, //!< (src, dst, chan) scheduled repair
        FailLayer,      //!< every L2LC touching layer @c src goes down
        RecoverLayer,   //!< scheduled repair of layer @c src's L2LCs
    };

    net::Cycle cycle = 0;
    Kind kind = Kind::FailChannel;
    std::uint32_t src = 0;  //!< src layer; the layer for *Layer kinds
    std::uint32_t dst = 0;  //!< dst layer (channel kinds only)
    std::uint32_t chan = 0; //!< channel k (channel kinds only)
};

/** A link whose flits suffer CRC-detected (and corrected) errors with
 *  probability @c errorRate per transferred flit. Errors never corrupt
 *  data in this model; their only simulated effect is the isolation
 *  threshold below. */
struct FlakyLink
{
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t chan = 0;
    double errorRate = 0.0;
};

/**
 * Deterministic fault script for one run. Part of a simulation's
 * configuration: it feeds the SimCache key and the snapshot config
 * key via descriptor(), and two runs with equal schedules (and equal
 * everything else) are bit-identical.
 */
struct FaultSchedule
{
    std::vector<FaultEvent> events; //!< applied in stable cycle order
    std::vector<FlakyLink> flaky;

    /** Isolate a flaky link when its detected errors within one
     *  windowCycles-aligned window *exceed* this count. */
    std::uint32_t maxErrorsPerWindow = 3;
    net::Cycle windowCycles = 64;
    /** Cycles an isolated link stays out of service before automatic
     *  unisolation; 0 keeps it isolated forever. */
    net::Cycle recoveryCycles = 0;
    /** Mixed into the error-draw stream key so fault randomness never
     *  collides with traffic lanes of the same seed. */
    std::uint64_t seedSalt = 0;

    /** Test-only seeded mutation (check/oracle.hh
     *  Mutation::IsolationThresholdOffByOne): trip isolation at
     *  count == maxErrorsPerWindow instead of count > it. */
    bool mutIsolationOffByOne = false;

    bool
    empty() const
    {
        return events.empty() && flaky.empty();
    }

    /** Fatal on out-of-range layers/channels, self-loops, or a
     *  non-positive error rate / zero window. */
    void validate(const SwitchSpec &spec) const;

    /** Canonical string form for cache/snapshot keys. */
    std::string descriptor() const;
};

/**
 * Per-run fault state machine. The simulator calls, in cycle order:
 *   beginCycle(c)      — at the start of cycle c, before injection
 *   onFlitTransfer(c)  — once per flit crossing an L2LC in cycle c
 *   applyPending(c)    — after the transfer walk of cycle c
 * and tears down any BrokenConn victims the fabric reports. A default-
 * constructed manager is inert (active() == false) and free to call.
 */
class FaultManager
{
  public:
    static constexpr net::Cycle kNever = ~net::Cycle(0);
    static constexpr std::uint32_t kNoFlaky = ~0u;

    FaultManager() = default;
    FaultManager(const FaultSchedule &sched, const SwitchSpec &spec,
                 std::uint64_t seed);

    bool active() const { return nchan_ != 0; }
    const FaultSchedule &schedule() const { return sched_; }

    /** Apply events and unisolations due at @p cycle. Victims of
     *  forced connection breaks are appended to @p broken. */
    void beginCycle(net::Cycle cycle, fabric::Fabric &fab,
                    std::vector<fabric::BrokenConn> &broken);

    /** Earliest cycle > the last beginCycle at which a scheduled
     *  event or pending unisolation is due; kNever if none. The
     *  event-mode idle fast-forward clamps to this so no fault cycle
     *  is jumped over. */
    net::Cycle nextEventCycle() const;

    /** Flaky-link error draw for one flit crossing @p chan_id at
     *  @p cycle (pass fabric::kNoRequest for same-layer transfers —
     *  it is ignored). Queues an isolation when the window threshold
     *  trips; the fabric is not touched until applyPending(). */
    void onFlitTransfer(net::Cycle cycle, std::uint32_t chan_id);

    /** Isolate the channels queued by this cycle's onFlitTransfer
     *  calls, breaking their connections (appended to @p broken). */
    void applyPending(net::Cycle cycle, fabric::Fabric &fab,
                      std::vector<fabric::BrokenConn> &broken);

    // -- introspection (tests, reports) ------------------------------
    /** Failure-reason bitmask of @p chan_id (0 == in service). */
    std::uint8_t reason(std::uint32_t chan_id) const
    {
        return reason_[chan_id];
    }
    bool isolated(std::uint32_t chan_id) const
    {
        return (reason_[chan_id] & kReasonIsolated) != 0;
    }
    std::uint64_t totalLinkErrors() const { return totalErrors_; }
    std::uint64_t totalIsolations() const { return isolations_; }
    std::uint64_t totalUnisolations() const { return unisolations_; }

    static constexpr std::uint8_t kReasonEvent = 1;    //!< scheduled
    static constexpr std::uint8_t kReasonIsolated = 2; //!< threshold

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    void setFailed(std::uint32_t id, std::uint8_t bit,
                   fabric::Fabric &fab,
                   std::vector<fabric::BrokenConn> *broken);
    void clearFailed(std::uint32_t id, std::uint8_t bit,
                     fabric::Fabric &fab);

    // -- configuration (reconstructed, never snapshotted) ------------
    FaultSchedule sched_; //!< events stably sorted by cycle
    std::uint32_t nlay_ = 0;
    std::uint32_t chan_ = 0;
    std::uint32_t nchan_ = 0; //!< layers^2 * channels (0 == inert)
    std::vector<std::uint32_t> flakyOf_;  //!< chanId -> flaky index
    std::vector<std::uint64_t> flakyKey_; //!< counter stream key
    /** Precomputed bernoulliThreshold(errorRate) per flaky link. */
    std::vector<std::uint64_t> errThresh_;

    // -- state (snapshotted) -----------------------------------------
    std::uint64_t nextEvt_ = 0; //!< first unapplied sched_.events idx
    std::vector<std::uint8_t> reason_;    //!< per chanId
    std::vector<net::Cycle> unisolateAt_; //!< per chanId; kNever
    std::vector<std::uint64_t> winIdx_;   //!< per flaky: window index
    std::vector<std::uint32_t> winCount_; //!< per flaky: errors in it
    std::uint32_t numIsolated_ = 0;
    std::uint64_t totalErrors_ = 0;
    std::uint64_t isolations_ = 0;
    std::uint64_t unisolations_ = 0;
    /** Channels tripped this cycle; drained by applyPending within
     *  the same cycle, so it is empty at snapshot boundaries. */
    std::vector<std::uint32_t> pending_;
};

} // namespace hirise::sim

#endif // HIRISE_SIM_FAULT_HH
