#include "sim/fault.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/random.hh"
#include "obs/trace.hh"

namespace hirise::sim {

namespace {

/** Stream-key domain separator: fault draws must never collide with
 *  traffic lanes (pattern.hh keys lane = src * kLaneDomains + domain
 *  on the plain seed), so the seed is scrambled with a fixed tag and
 *  the schedule's salt before keying on chanId. */
constexpr std::uint64_t kFaultSeedTag = 0x666c616b794c6e6bull;

const char *
kindName(FaultEvent::Kind k)
{
    switch (k) {
      case FaultEvent::Kind::FailChannel:
        return "fail";
      case FaultEvent::Kind::RecoverChannel:
        return "recover";
      case FaultEvent::Kind::FailLayer:
        return "fail_layer";
      case FaultEvent::Kind::RecoverLayer:
        return "recover_layer";
    }
    return "?";
}

[[gnu::cold]] [[gnu::noinline]] void
recordFaultEv(obs::Ev ev, std::uint32_t chan_id, std::uint32_t b = 0)
{
    obs::CycleTracer::global().record(ev, chan_id, b);
}

} // namespace

void
FaultSchedule::validate(const SwitchSpec &spec) const
{
    auto check_chan = [&](std::uint32_t s, std::uint32_t d,
                          std::uint32_t k, const char *what) {
        if (s >= spec.layers || d >= spec.layers || s == d ||
            k >= spec.channels) {
            fatal("%s targets bad channel (%u,%u,%u) for %u layers x "
                  "%u channels",
                  what, s, d, k, spec.layers, spec.channels);
        }
    };
    for (const auto &ev : events) {
        switch (ev.kind) {
          case FaultEvent::Kind::FailChannel:
          case FaultEvent::Kind::RecoverChannel:
            check_chan(ev.src, ev.dst, ev.chan, "fault event");
            break;
          case FaultEvent::Kind::FailLayer:
          case FaultEvent::Kind::RecoverLayer:
            if (ev.src >= spec.layers)
                fatal("layer fault targets bad layer %u of %u",
                      ev.src, spec.layers);
            break;
        }
    }
    for (const auto &f : flaky) {
        check_chan(f.src, f.dst, f.chan, "flaky link");
        if (!(f.errorRate > 0.0) || f.errorRate > 1.0)
            fatal("flaky link (%u,%u,%u) has bad error rate %g",
                  f.src, f.dst, f.chan, f.errorRate);
    }
    if (!flaky.empty() && windowCycles == 0)
        fatal("flaky links need a nonzero error window");
}

std::string
FaultSchedule::descriptor() const
{
    std::string s = "flt:v1;ev=";
    char buf[128];
    for (const auto &ev : events) {
        std::snprintf(buf, sizeof(buf), "%s@%llu:%u>%u.%u,",
                      kindName(ev.kind),
                      static_cast<unsigned long long>(ev.cycle),
                      ev.src, ev.dst, ev.chan);
        s += buf;
    }
    s += ";flaky=";
    for (const auto &f : flaky) {
        std::snprintf(buf, sizeof(buf), "%u>%u.%u@%.17g,", f.src,
                      f.dst, f.chan, f.errorRate);
        s += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  ";win=%llu;max=%u;rec=%llu;salt=%llu;mut=%d",
                  static_cast<unsigned long long>(windowCycles),
                  maxErrorsPerWindow,
                  static_cast<unsigned long long>(recoveryCycles),
                  static_cast<unsigned long long>(seedSalt),
                  mutIsolationOffByOne ? 1 : 0);
    s += buf;
    return s;
}

FaultManager::FaultManager(const FaultSchedule &sched,
                           const SwitchSpec &spec, std::uint64_t seed)
    : sched_(sched), nlay_(spec.layers), chan_(spec.channels),
      nchan_(spec.layers * spec.layers * spec.channels)
{
    sched_.validate(spec);
    // Same-cycle events apply in schedule order (stable sort).
    std::stable_sort(sched_.events.begin(), sched_.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
    reason_.assign(nchan_, 0);
    unisolateAt_.assign(nchan_, kNever);
    flakyOf_.assign(nchan_, kNoFlaky);
    flakyKey_.resize(sched_.flaky.size());
    errThresh_.resize(sched_.flaky.size());
    winIdx_.assign(sched_.flaky.size(), 0);
    winCount_.assign(sched_.flaky.size(), 0);
    const std::uint64_t fault_seed =
        splitmix64(seed ^ kFaultSeedTag ^ sched_.seedSalt);
    for (std::uint32_t i = 0; i < sched_.flaky.size(); ++i) {
        const auto &f = sched_.flaky[i];
        std::uint32_t id = (f.src * nlay_ + f.dst) * chan_ + f.chan;
        sim_assert(flakyOf_[id] == kNoFlaky,
                   "duplicate flaky link on channel %u", id);
        flakyOf_[id] = i;
        flakyKey_[i] = counterKey(fault_seed, id);
        errThresh_[i] = bernoulliThreshold(f.errorRate);
    }
    pending_.reserve(sched_.flaky.size());
}

void
FaultManager::setFailed(std::uint32_t id, std::uint8_t bit,
                        fabric::Fabric &fab,
                        std::vector<fabric::BrokenConn> *broken)
{
    const bool was = reason_[id] != 0;
    reason_[id] = static_cast<std::uint8_t>(reason_[id] | bit);
    if (!was) {
        fab.failChannel(id / (nlay_ * chan_), (id / chan_) % nlay_,
                        id % chan_, broken);
    }
}

void
FaultManager::clearFailed(std::uint32_t id, std::uint8_t bit,
                          fabric::Fabric &fab)
{
    if (!(reason_[id] & bit))
        return;
    reason_[id] = static_cast<std::uint8_t>(reason_[id] & ~bit);
    if (!reason_[id]) {
        fab.recoverChannel(id / (nlay_ * chan_), (id / chan_) % nlay_,
                           id % chan_);
    }
}

void
FaultManager::beginCycle(net::Cycle cycle, fabric::Fabric &fab,
                         std::vector<fabric::BrokenConn> &broken)
{
    while (nextEvt_ < sched_.events.size() &&
           sched_.events[nextEvt_].cycle <= cycle) {
        const FaultEvent &ev = sched_.events[nextEvt_];
        // A skipped event means a fast-forward jumped its cycle; the
        // stepTo clamp on nextEventCycle() must prevent that.
        sim_assert(ev.cycle == cycle,
                   "fault event at cycle %llu applied late (now %llu)",
                   static_cast<unsigned long long>(ev.cycle),
                   static_cast<unsigned long long>(cycle));
        switch (ev.kind) {
          case FaultEvent::Kind::FailChannel: {
            std::uint32_t id =
                (ev.src * nlay_ + ev.dst) * chan_ + ev.chan;
            setFailed(id, kReasonEvent, fab, &broken);
            if (obs::on()) [[unlikely]]
                recordFaultEv(obs::Ev::ChanFail, id);
            break;
          }
          case FaultEvent::Kind::RecoverChannel: {
            std::uint32_t id =
                (ev.src * nlay_ + ev.dst) * chan_ + ev.chan;
            clearFailed(id, kReasonEvent, fab);
            if (obs::on()) [[unlikely]]
                recordFaultEv(obs::Ev::ChanRecover, id);
            break;
          }
          case FaultEvent::Kind::FailLayer:
          case FaultEvent::Kind::RecoverLayer: {
            const bool failing =
                ev.kind == FaultEvent::Kind::FailLayer;
            for (std::uint32_t other = 0; other < nlay_; ++other) {
                if (other == ev.src)
                    continue;
                for (std::uint32_t k = 0; k < chan_; ++k) {
                    std::uint32_t out =
                        (ev.src * nlay_ + other) * chan_ + k;
                    std::uint32_t in =
                        (other * nlay_ + ev.src) * chan_ + k;
                    if (failing) {
                        setFailed(out, kReasonEvent, fab, &broken);
                        setFailed(in, kReasonEvent, fab, &broken);
                    } else {
                        clearFailed(out, kReasonEvent, fab);
                        clearFailed(in, kReasonEvent, fab);
                    }
                    if (obs::on()) [[unlikely]] {
                        auto t = failing ? obs::Ev::ChanFail
                                         : obs::Ev::ChanRecover;
                        recordFaultEv(t, out);
                        recordFaultEv(t, in);
                    }
                }
            }
            break;
          }
        }
        ++nextEvt_;
    }

    if (numIsolated_ == 0)
        return;
    for (std::uint32_t id = 0; id < nchan_; ++id) {
        if (unisolateAt_[id] > cycle)
            continue;
        unisolateAt_[id] = kNever;
        clearFailed(id, kReasonIsolated, fab);
        --numIsolated_;
        ++unisolations_;
        if (obs::on()) [[unlikely]]
            recordFaultEv(obs::Ev::Unisolate, id);
    }
}

net::Cycle
FaultManager::nextEventCycle() const
{
    net::Cycle next = kNever;
    if (nextEvt_ < sched_.events.size())
        next = sched_.events[nextEvt_].cycle;
    if (numIsolated_ != 0) {
        for (std::uint32_t id = 0; id < nchan_; ++id)
            next = std::min(next, unisolateAt_[id]);
    }
    return next;
}

void
FaultManager::onFlitTransfer(net::Cycle cycle, std::uint32_t chan_id)
{
    if (!active() || chan_id == fabric::kNoRequest)
        return; // inert manager, or same-layer transfer (no L2LC)
    const std::uint32_t fi = flakyOf_[chan_id];
    if (fi == kNoFlaky)
        return;
    // One flit per channel per cycle, so (key, cycle) ticks are
    // unique — the draw stream agrees across stepping modes.
    const std::uint64_t draw = counterDrawKeyed(flakyKey_[fi], cycle);
    if ((draw >> 11) >= errThresh_[fi])
        return;
    ++totalErrors_;
    if (obs::on()) [[unlikely]]
        recordFaultEv(obs::Ev::LinkError, chan_id);
    // Errors bucket into absolute windows (cycle / windowCycles), so
    // skipped idle cycles never shift the count.
    const std::uint64_t widx = cycle / sched_.windowCycles;
    if (winIdx_[fi] != widx) {
        winIdx_[fi] = widx;
        winCount_[fi] = 0;
    }
    ++winCount_[fi];
    // Isolate when the window count *exceeds* the threshold. The
    // seeded off-by-one mutation trips one error early (>=), which
    // the fuzzer's pure-oracle pass must detect.
    const std::uint32_t trip =
        sched_.maxErrorsPerWindow + (sched_.mutIsolationOffByOne ? 0 : 1);
    if (winCount_[fi] == trip)
        pending_.push_back(chan_id);
}

void
FaultManager::applyPending(net::Cycle cycle, fabric::Fabric &fab,
                           std::vector<fabric::BrokenConn> &broken)
{
    for (std::uint32_t id : pending_) {
        const std::uint32_t fi = flakyOf_[id];
        if (obs::on()) [[unlikely]]
            recordFaultEv(obs::Ev::Isolate, id, winCount_[fi]);
        setFailed(id, kReasonIsolated, fab, &broken);
        if (sched_.recoveryCycles != 0)
            unisolateAt_[id] = cycle + sched_.recoveryCycles;
        ++numIsolated_;
        ++isolations_;
    }
    pending_.clear();
}

void
FaultManager::save(snap::Writer &w) const
{
    sim_assert(pending_.empty(),
               "snapshot taken mid-cycle (pending isolations)");
    w.u64(nextEvt_);
    w.vec(reason_);
    w.vec(unisolateAt_);
    w.vec(winIdx_);
    w.vec(winCount_);
    w.u32(numIsolated_);
    w.u64(totalErrors_);
    w.u64(isolations_);
    w.u64(unisolations_);
}

void
FaultManager::load(snap::Reader &r)
{
    nextEvt_ = r.u64();
    r.vec(reason_);
    r.vec(unisolateAt_);
    r.vec(winIdx_);
    r.vec(winCount_);
    numIsolated_ = r.u32();
    totalErrors_ = r.u64();
    isolations_ = r.u64();
    unisolations_ = r.u64();
    pending_.clear();
}

} // namespace hirise::sim
