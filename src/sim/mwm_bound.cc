#include "sim/mwm_bound.hh"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/logging.hh"

namespace hirise::sim {

namespace {

/** Dense-graph Edmonds-Karp on double capacities. Node count here is
 *  2 * radix + 2 (<= ~515), so the O(V * E^2) worst case is irrelevant
 *  — this runs once per (pattern, load) experiment point. */
class MaxFlow
{
  public:
    explicit MaxFlow(std::uint32_t n) : n_(n), cap_(std::size_t(n) * n) {}

    void
    addCap(std::uint32_t u, std::uint32_t v, double c)
    {
        cap_[std::size_t(u) * n_ + v] += c;
    }

    double
    run(std::uint32_t s, std::uint32_t t)
    {
        constexpr double kEps = 1e-12;
        double total = 0.0;
        std::vector<std::uint32_t> prev(n_);
        for (;;) {
            std::fill(prev.begin(), prev.end(), kNo);
            prev[s] = s;
            std::queue<std::uint32_t> q;
            q.push(s);
            while (!q.empty() && prev[t] == kNo) {
                std::uint32_t u = q.front();
                q.pop();
                for (std::uint32_t v = 0; v < n_; ++v) {
                    if (prev[v] == kNo &&
                        cap_[std::size_t(u) * n_ + v] > kEps) {
                        prev[v] = u;
                        q.push(v);
                    }
                }
            }
            if (prev[t] == kNo)
                return total;
            double aug = std::numeric_limits<double>::infinity();
            for (std::uint32_t v = t; v != s; v = prev[v])
                aug = std::min(
                    aug, cap_[std::size_t(prev[v]) * n_ + v]);
            for (std::uint32_t v = t; v != s; v = prev[v]) {
                cap_[std::size_t(prev[v]) * n_ + v] -= aug;
                cap_[std::size_t(v) * n_ + prev[v]] += aug;
            }
            total += aug;
        }
    }

  private:
    static constexpr std::uint32_t kNo = ~0u;
    std::uint32_t n_;
    std::vector<double> cap_;
};

} // namespace

double
mwmAcceptedFlitsBound(std::uint32_t radix, std::uint32_t packet_len,
                      const traffic::TrafficPattern &pat, double load)
{
    sim_assert(radix >= 2 && packet_len >= 1 && load >= 0.0,
               "bad bound query");
    // Node ids: 0 = source, 1..N inputs, N+1..2N outputs, 2N+1 sink.
    const std::uint32_t N = radix;
    const std::uint32_t src = 0, snk = 2 * N + 1;
    const double cap_pkts = 1.0 / double(packet_len + 1);

    MaxFlow flow(2 * N + 2);
    for (std::uint32_t i = 0; i < N; ++i) {
        if (!pat.participates(i))
            continue;
        // An input offers at most one packet per cycle no matter the
        // requested load, and serves at most cap_pkts.
        double offered = std::min(load, 1.0);
        flow.addCap(src, 1 + i, std::min(offered, cap_pkts));
        for (std::uint32_t o = 0; o < N; ++o) {
            double r = pat.rateTo(i, o);
            if (r < 0.0)
                fatal("pattern %s has no analytic rate matrix",
                      pat.name().c_str());
            if (r > 0.0)
                flow.addCap(1 + i, 1 + N + o, offered * r);
        }
    }
    for (std::uint32_t o = 0; o < N; ++o)
        flow.addCap(1 + N + o, snk, cap_pkts);

    return flow.run(src, snk) * double(packet_len);
}

double
mwmDegradedFlitsBound(
    const SwitchSpec &spec, std::uint32_t packet_len,
    const traffic::TrafficPattern &pat, double load,
    const std::function<std::uint32_t(std::uint32_t, std::uint32_t)>
        &survivors)
{
    sim_assert(spec.topo == Topology::HiRise,
               "degraded bound is defined for the Hi-Rise datapath");
    sim_assert(spec.layers >= 2 && packet_len >= 1 && load >= 0.0,
               "bad degraded bound query");

    // Node ids: 0 = source, 1..N inputs, N+1..2N outputs, then two
    // nodes per ordered layer pair (s, d) modeling the pair's channel
    // stage as an internal edge of capacity survivors(s,d) * cap_pkts,
    // and finally the sink. Same-layer traffic never touches an L2LC,
    // so it keeps the direct input->output edge.
    const std::uint32_t N = spec.radix;
    const std::uint32_t L = spec.layers;
    const std::uint32_t ppl = spec.portsPerLayer();
    const std::uint32_t src = 0;
    const std::uint32_t pair_base = 1 + 2 * N;
    const std::uint32_t snk = pair_base + 2 * L * L;
    const double cap_pkts = 1.0 / double(packet_len + 1);

    auto pair_in = [&](std::uint32_t s, std::uint32_t d) {
        return pair_base + 2 * (s * L + d);
    };

    MaxFlow flow(snk + 1);
    for (std::uint32_t i = 0; i < N; ++i) {
        if (!pat.participates(i))
            continue;
        double offered = std::min(load, 1.0);
        flow.addCap(src, 1 + i, std::min(offered, cap_pkts));
        const std::uint32_t s = i / ppl;
        for (std::uint32_t o = 0; o < N; ++o) {
            double r = pat.rateTo(i, o);
            if (r < 0.0)
                fatal("pattern %s has no analytic rate matrix",
                      pat.name().c_str());
            if (r <= 0.0)
                continue;
            const std::uint32_t d = o / ppl;
            if (s == d) {
                flow.addCap(1 + i, 1 + N + o, offered * r);
            } else {
                // addCap is additive: demand from every input of
                // layer s toward layer d aggregates on this edge.
                // The per-(i, o) split is not re-enforced beyond the
                // pair node, which only relaxes the problem: the
                // result stays an upper bound.
                flow.addCap(1 + i, pair_in(s, d), offered * r);
            }
        }
    }
    for (std::uint32_t s = 0; s < L; ++s) {
        for (std::uint32_t d = 0; d < L; ++d) {
            if (s == d)
                continue;
            flow.addCap(pair_in(s, d), pair_in(s, d) + 1,
                        double(survivors(s, d)) * cap_pkts);
            for (std::uint32_t o = d * ppl;
                 o < std::min((d + 1) * ppl, N); ++o)
                flow.addCap(pair_in(s, d) + 1, 1 + N + o, cap_pkts);
        }
    }
    for (std::uint32_t o = 0; o < N; ++o)
        flow.addCap(1 + N + o, snk, cap_pkts);

    return flow.run(src, snk) * double(packet_len);
}

} // namespace hirise::sim
