#include "sim/batch_sim.hh"

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/simd.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

#ifdef HIRISE_CHECK_ENABLED
#include "check/invariants.hh"
#endif

namespace hirise::sim {

namespace {

/** Same registry names as the scalar simulator, so campaign metrics
 *  aggregate identically whichever engine served a point. */
struct BatchMetrics
{
    obs::Counter &injected;
    obs::Counter &delivered;
    obs::Counter &flits;
    obs::Counter &inFlightCensored;

    static BatchMetrics &
    get()
    {
        static BatchMetrics m{
            obs::MetricsRegistry::global().counter(
                "sim.packets_injected"),
            obs::MetricsRegistry::global().counter(
                "sim.packets_delivered"),
            obs::MetricsRegistry::global().counter(
                "sim.flits_delivered"),
            obs::MetricsRegistry::global().counter(
                "sim.in_flight_at_measure_end"),
        };
        return m;
    }
};

/** Cold out-of-line metric bumps, as in network_sim.cc. The tracer
 *  record() calls are structurally dead here — usable() keeps batched
 *  runs off armed tracers — and no-op if reached. */
[[gnu::cold]] [[gnu::noinline]] void
recordInject(std::uint32_t src, std::uint32_t dst, std::uint64_t id)
{
    BatchMetrics::get().injected.inc();
    obs::CycleTracer::global().record(obs::Ev::Inject, src, dst, 0, id);
}

/** Bulk form for virtual-queue replicas: one bump covers the whole
 *  cycle's injections (same final counter value as n recordInject
 *  calls; the tracer is off whenever a BatchSim exists). */
[[gnu::cold]] [[gnu::noinline]] void
recordInjectBulk(std::uint64_t n)
{
    BatchMetrics::get().injected.inc(n);
}

[[gnu::cold]] [[gnu::noinline]] void
recordGrant(std::uint32_t in, std::uint32_t out, std::uint32_t vc,
            std::uint64_t packet)
{
    obs::CycleTracer::global().record(obs::Ev::Grant, in, out, vc,
                                      packet);
}

[[gnu::cold]] [[gnu::noinline]] void
recordRelease(std::uint32_t in, std::uint32_t out,
              std::uint32_t packet_len, std::uint64_t packet)
{
    BatchMetrics::get().delivered.inc();
    BatchMetrics::get().flits.inc(packet_len);
    obs::CycleTracer::global().record(obs::Ev::Release, in, out, 0,
                                      packet);
}

} // namespace

bool
BatchSim::usable()
{
    return !obs::CycleTracer::global().enabled();
}

BatchSim::BatchSim(const SwitchSpec &spec, const SimConfig &base,
                   std::vector<std::shared_ptr<traffic::TrafficPattern>>
                       patterns,
                   std::vector<BatchPoint> points,
                   const FabricFactory &make_fabric)
    : spec_(spec), base_(base), pts_(std::move(points)),
      R_(static_cast<std::uint32_t>(pts_.size())), N_(spec.radix),
      wpr_((spec.radix + BitVec::kWordBits - 1) / BitVec::kWordBits),
      patterns_(std::move(patterns)),
      dstFree_(std::size_t(R_) * wpr_, 0),
      connected_(std::size_t(R_) * wpr_, 0),
      eligible_(std::size_t(R_) * wpr_, 0),
      fillPend_(std::size_t(R_) * wpr_, 0),
      reqScratch_(spec.radix, fabric::kNoRequest),
      candVcScratch_(spec.radix, net::InputPort::kNoVc)
{
    sim_assert(R_ >= 1, "batch needs at least one replica");
    sim_assert(patterns_.size() == R_,
               "one pattern per replica required (%zu != %u)",
               patterns_.size(), R_);
    sim_assert(!base_.trace, "traced runs must use NetworkSim");
    sim_assert(usable(), "batching is disabled while a tracer is armed");

    ports_.assign(std::size_t(R_) * N_,
                  net::InputPort(base_.numVcs, base_.vcDepth));
    fabrics_.reserve(R_);
    for (std::uint32_t r = 0; r < R_; ++r) {
        fabrics_.push_back(make_fabric ? make_fabric()
                                       : fabric::makeFabric(spec_));
        sim_assert(fabrics_.back() != nullptr,
                   "fabric factory returned null");
        plane(dstFree_, r).fill(); // no output is held at reset
    }
    activeReq_.reserve(N_);

    injKeys_.resize(std::size_t(N_) * R_);
    destKeys_.resize(std::size_t(N_) * R_);
    part_.resize(std::size_t(R_) * N_);
    thr_.resize(R_);
    allMemoryless_ = true;
    for (std::uint32_t r = 0; r < R_; ++r) {
        sim_assert(patterns_[r] != nullptr, "null pattern");
        allMemoryless_ = allMemoryless_ && patterns_[r]->memoryless();
        thr_[r] = bernoulliThreshold(pts_[r].load);
        for (std::uint32_t i = 0; i < N_; ++i) {
            // Replica-major: a replica's keys for four consecutive
            // inputs are contiguous, so a cycle's draws batch four
            // lanes per AVX2 step inside that replica's fused walk.
            injKeys_[std::size_t(r) * N_ + i] = counterKey(
                pts_[r].seed,
                traffic::TrafficPattern::lane(
                    i, traffic::TrafficPattern::kLaneInject));
            destKeys_[std::size_t(r) * N_ + i] = counterKey(
                pts_[r].seed,
                traffic::TrafficPattern::lane(
                    i, traffic::TrafficPattern::kLaneDest));
            part_[std::size_t(r) * N_ + i] =
                patterns_[r]->participates(i) ? 1 : 0;
        }
    }

    satVirt_.assign(R_, 0);
    satQ_.resize(R_);
    const bool legacy_pin =
        base_.legacySatQueues || legacySatQueuesPinned();
    for (std::uint32_t r = 0; r < R_; ++r) {
        if (legacy_pin || !allMemoryless_ ||
            !VirtualSourceQueues::saturates(pts_[r].load))
            continue;
        satVirt_[r] = 1;
        satQ_[r].init(*patterns_[r], N_, base_.packetLen,
                      pts_[r].seed);
    }

    lanes_.resize(R_);
    for (auto &lane : lanes_) {
        lane.perInputLatency.resize(N_);
        lane.perInputPackets.assign(N_, 0);
    }
}

void
BatchSim::setFaultSchedule(const FaultSchedule &sched)
{
    sim_assert(cycle_ == 0,
               "fault schedule must be attached before stepping");
    if (sched.empty())
        return;
    faultMgrs_.clear();
    faultMgrs_.reserve(R_);
    for (std::uint32_t r = 0; r < R_; ++r) {
        sim_assert(fabrics_[r]->supportsChannelFaults(),
                   "fabric '%s' cannot take channel faults",
                   toString(spec_.topo));
        // Each lane's manager draws from its own seed, matching the
        // scalar run NetworkSim(spec, base with points[r]) bit for
        // bit.
        faultMgrs_.emplace_back(sched, spec_, pts_[r].seed);
    }
    faultsOn_ = true;
    brokenScratch_.reserve(N_);
}

void
BatchSim::injectPacket(std::uint32_t r, std::uint32_t i,
                       std::uint32_t dst)
{
    Lane &lane = lanes_[r];
    net::Packet p;
    p.id = lane.nextId++;
    p.src = i;
    p.dst = dst;
    sim_assert(p.dst < N_, "pattern dst out of range");
    p.lenFlits = static_cast<std::uint16_t>(base_.packetLen);
    p.genCycle = cycle_;
    port(r, i).sourceQueue().push_back(p);
    plane(fillPend_, r).set(i);
    ++lane.injected;
    if (measuring_) {
        lane.measFlitsOffered += p.lenFlits;
        ++lane.measPacketsInjected;
    }
    if (obs::on()) [[unlikely]]
        recordInject(i, p.dst, p.id);
}

void
BatchSim::injectStateful(std::uint32_t r)
{
    // Stateful patterns own the injection decision: honour their
    // contract (injectAt exactly once per (src, cycle), cycles
    // strictly increasing per source), exactly as the scalar dense
    // poll does.
    traffic::TrafficPattern &pat = *patterns_[r];
    for (std::uint32_t i = 0; i < N_; ++i) {
        if (pat.injectAt(i, cycle_, pts_[r].load, pts_[r].seed))
            injectPacket(r, i, pat.destAt(i, cycle_, pts_[r].seed));
    }
}

void
BatchSim::injectVirtual(std::uint32_t r)
{
    // Every draw passes this replica's threshold (load >= 1), so each
    // participating input injects exactly one packet this cycle and
    // the whole cycle's injection collapses to accounting: the
    // packets themselves stay virtual (see sim/virtual_queue.hh)
    // until fillVirtual streams them into VCs. This is
    // the saturation-campaign fast path (runAtLoad at load 1.0).
    Lane &lane = lanes_[r];
    const std::uint64_t p = satQ_[r].participants();
    lane.nextId += p;
    lane.injected += p;
    if (measuring_) {
        lane.measFlitsOffered += p * base_.packetLen;
        lane.measPacketsInjected += p;
    }
    if (obs::on()) [[unlikely]]
        recordInjectBulk(p);
}

void
BatchSim::fillVirtual(std::uint32_t r)
{
    // fillPhase over the virtual queues: at saturation a queue can
    // never be empty at fill time (a packet was injected this very
    // cycle), so every participating input attempts a fill, and a
    // consumed head is re-derived from the counter streams — one
    // destAt hash per packet that actually leaves the queue (bounded
    // by delivery throughput), not per injected packet.
    traffic::TrafficPattern &pat = *patterns_[r];
    const char *part = part_.data() + std::size_t(r) * N_;
    VirtualSourceQueues &q = satQ_[r];
    BitSpan elig = plane(eligible_, r);
    for (std::uint32_t i = 0; i < N_; ++i) {
        if (!part[i])
            continue;
        net::InputPort &port_i = port(r, i);
        if (port_i.fillFrom(q.head(i)))
            q.advance(i, pat); // re-derive the next head
        if (!port_i.connected() && port_i.anyVcOccupied())
            elig.set(i);
    }
}

void
BatchSim::injectDrawn(std::uint32_t r)
{
    // Memoryless general case: the inject draw for (input, cycle) is
    // a pure hash of the lane key, so four consecutive inputs' draws
    // batch per step; a quad with at least one passing draw then
    // batches its destination draws the same way (destRow4 is
    // side-effect free, so computing a destination for a lane that
    // does not inject is harmless).
    traffic::TrafficPattern &pat = *patterns_[r];
    const char *part = part_.data() + std::size_t(r) * N_;
    const std::uint64_t *keys = injKeys_.data() + std::size_t(r) * N_;
    const std::uint64_t *dkeys = destKeys_.data() + std::size_t(r) * N_;
    const std::uint64_t thr = thr_[r];
    std::uint64_t d[4];
    std::uint32_t out[4];
    std::uint32_t i = 0;
    for (; i + 4 <= N_; i += 4) {
        simd::counterDraw4(keys + i, cycle_, d);
        unsigned need = 0;
        for (std::uint32_t j = 0; j < 4; ++j) {
            if ((d[j] >> 11) < thr && part[i + j])
                need |= 1u << j;
        }
        if (!need)
            continue;
        pat.destRow4(i, cycle_, pts_[r].seed, dkeys + i, out);
        for (std::uint32_t j = 0; j < 4; ++j) {
            if (need & (1u << j))
                injectPacket(r, i + j, out[j]);
        }
    }
    for (; i < N_; ++i) {
        const std::uint64_t draw = counterDrawKeyed(keys[i], cycle_);
        if ((draw >> 11) < thr && part[i])
            injectPacket(r, i, pat.destAt(i, cycle_, pts_[r].seed));
    }
}

void
BatchSim::fillPhase(std::uint32_t r)
{
    BitSpan pend = plane(fillPend_, r);
    BitSpan elig = plane(eligible_, r);
    pend.forEachSet([&](std::uint32_t i) {
        net::InputPort &p = port(r, i);
        p.fillCycle();
        if (!p.connected() && p.anyVcOccupied())
            elig.set(i);
        if (p.sourceQueue().empty())
            pend.reset(i);
    });
}

void
BatchSim::applyGrant(std::uint32_t r, std::uint32_t i)
{
    auto &req = reqScratch_;
    auto &cand_vc = candVcScratch_;
    sim_assert(req[i] != fabric::kNoRequest,
               "grant to non-requesting input %u", i);
    net::InputPort &p = port(r, i);
    if (measuring_) {
        const net::Flit &head = p.vcs()[cand_vc[i]].front();
        lanes_[r].queueing.add(static_cast<double>(cycle_ -
                                                   head.genCycle));
    }
    if (obs::on()) [[unlikely]]
        recordGrant(i, req[i], cand_vc[i],
                    p.vcs()[cand_vc[i]].front().packet);
    p.connect(cand_vc[i], req[i], base_.packetLen,
              p.vcs()[cand_vc[i]].front().genCycle);
    plane(connected_, r).set(i);
    plane(eligible_, r).reset(i);
    plane(dstFree_, r).reset(req[i]);
}

void
BatchSim::arbitratePhase(std::uint32_t r)
{
    // Mirror of NetworkSim::arbitrateCycleActive over this replica's
    // bit planes: only eligible inputs request, output availability is
    // maintained incrementally, and the request scratch is reset
    // sparsely so the next replica starts from the all-idle state.
    auto &req = reqScratch_;
    auto &cand_vc = candVcScratch_;
    activeReq_.clear();
    const BitVec::Word *dst_free = plane(dstFree_, r).words();
    plane(eligible_, r).forEachSet([&](std::uint32_t i) {
        std::uint32_t v = port(r, i).pickCandidateVcWords(dst_free);
        if (v == net::InputPort::kNoVc)
            return;
        cand_vc[i] = v;
        req[i] = port(r, i).vcDest(v);
        activeReq_.push_back(i);
    });
    if (activeReq_.empty()) {
        fabrics_[r]->advanceIdle(1);
        return;
    }

    const BitVec &grant = fabrics_[r]->arbitrateActive(req, activeReq_);
#ifdef HIRISE_CHECK_ENABLED
    check::verifyGrantMatching(
        std::span<const std::uint32_t>(req), grant, N_,
        [&](std::uint32_t o) { return fabrics_[r]->outputHolder(o); });
#endif
    grant.forEachSet([&](std::uint32_t i) { applyGrant(r, i); });
    for (std::uint32_t i : activeReq_) {
        req[i] = fabric::kNoRequest;
        cand_vc[i] = net::InputPort::kNoVc;
    }
}

void
BatchSim::transferPhase(std::uint32_t r)
{
    Lane &lane = lanes_[r];
    BitSpan conn = plane(connected_, r);
    conn.forEachSet([&](std::uint32_t i) {
        net::InputPort &p = port(r, i);
        sim_assert(p.connected(), "stale connected bit %u", i);
        if (p.consumeJustConnected())
            return; // grant cycle: the buses carried the arbitration
        net::VirtualChannel &vc = p.vcs()[p.connVc()];
        if (vc.empty())
            return; // bubble: flit not yet streamed in from source
        net::Flit f = vc.popFlit();
        std::uint32_t out = p.connOutput();
        sim_assert(f.dst == out, "flit routed to wrong output");
        ++lane.flitsDelivered;
        if (measuring_)
            ++lane.measFlitsDelivered;
        if (faultsOn_) {
            // Flaky-link error draw, attributed to the L2LC this
            // flit crossed (read before a tail flit releases it).
            faultMgrs_[r].onFlitTransfer(
                cycle_, fabrics_[r]->heldChannelId(out));
        }
        bool done = p.transferOne();
        if (done) {
            sim_assert(f.tail, "connection ended mid-packet");
            fabrics_[r]->release(i, out);
            conn.reset(i);
            plane(dstFree_, r).set(out);
            if (p.anyVcOccupied())
                plane(eligible_, r).set(i);
            ++lane.delivered;
            if (measuring_) {
                double lat = static_cast<double>(cycle_ - f.genCycle);
                lane.latency.add(lat);
                lane.latencyHist.add(lat);
                lane.perInputLatency[f.src].add(lat);
                ++lane.perInputPackets[f.src];
                if (f.genCycle >= measureStart_)
                    ++lane.measPacketsCompleted;
            }
            if (obs::on()) [[unlikely]]
                recordRelease(i, out, base_.packetLen, f.packet);
        }
    });
    if (faultsOn_) {
        // Isolations tripped by this cycle's error draws apply after
        // the transfer walk (never mid-iteration).
        brokenScratch_.clear();
        faultMgrs_[r].applyPending(cycle_, *fabrics_[r],
                                   brokenScratch_);
        if (!brokenScratch_.empty())
            handleBroken(r, brokenScratch_);
    }
}

void
BatchSim::handleBroken(std::uint32_t r,
                       const std::vector<fabric::BrokenConn> &broken)
{
    Lane &lane = lanes_[r];
    for (const auto &bc : broken) {
        const std::uint32_t i = bc.input;
        net::InputPort &p = port(r, i);
        sim_assert(p.connected() && p.connOutput() == bc.output,
                   "broken connection %u->%u does not match port "
                   "state",
                   bc.input, bc.output);
        ++lane.packetsDropped;
        if (measuring_ && p.connGenCycle() >= measureStart_)
            ++lane.measPacketsDropped;
        std::uint32_t flits_dropped = 0;
        bool pop_source = false;
        p.breakConnection(flits_dropped, pop_source);
        lane.droppedFlits += flits_dropped;
        if (pop_source) {
            // The dropped packet was still streaming from the (real
            // or virtual) source queue head; retire it there too.
            if (satVirt_[r]) {
                satQ_[r].advance(i, *patterns_[r]);
            } else {
                p.sourceQueue().pop_front();
                if (p.sourceQueue().empty())
                    plane(fillPend_, r).reset(i);
            }
        }
        plane(connected_, r).reset(i);
        plane(dstFree_, r).set(bc.output);
        if (p.anyVcOccupied())
            plane(eligible_, r).set(i);
        else
            plane(eligible_, r).reset(i);
    }
}

void
BatchSim::stepOnce()
{
    if (obs::on()) [[unlikely]]
        obs::setTraceCycle(cycle_);
    // All phases fuse per replica so one cycle walks each replica's
    // ports and planes exactly once — with R replicas the combined
    // working set exceeds cache, and a phase-major order would stream
    // it R times per phase instead. The memoryless injection paths
    // batch their counter draws four consecutive input lanes per AVX2
    // step (the lanes share the cycle, so the key rows are contiguous
    // in the replica-major key arrays).
    for (std::uint32_t r = 0; r < R_; ++r) {
        if (faultsOn_) {
            // Topology changes land at cycle start, before this
            // replica's injection, so its whole cycle sees the new
            // channel set.
            brokenScratch_.clear();
            faultMgrs_[r].beginCycle(cycle_, *fabrics_[r],
                                     brokenScratch_);
            if (!brokenScratch_.empty())
                handleBroken(r, brokenScratch_);
        }
        if (satVirt_[r]) {
            injectVirtual(r);
            fillVirtual(r);
        } else {
            if (!allMemoryless_)
                injectStateful(r);
            else
                injectDrawn(r);
            fillPhase(r);
        }
        arbitratePhase(r);
        transferPhase(r);
    }
    ++cycle_;
#ifdef HIRISE_CHECK_ENABLED
    for (std::uint32_t r = 0; r < R_; ++r)
        checkInvariants(r);
#endif
}

#ifdef HIRISE_CHECK_ENABLED
void
BatchSim::checkInvariants(std::uint32_t r)
{
    std::uint64_t backlog = 0;
    for (std::uint32_t i = 0; i < N_; ++i) {
        backlog += port(r, i).backlogFlits();
        if (satVirt_[r] && part_[std::size_t(r) * N_ + i]) {
            // Virtual queue contents: packets gen [head, cycle_) are
            // injected but unconsumed. backlogFlits() already
            // discounted the head's partially streamed flits.
            backlog += satQ_[r].pendingFlitsBehindHead(
                i, cycle_, base_.packetLen);
        }
    }
    check::verifyFlitConservation(lanes_[r].injected * base_.packetLen,
                                  lanes_[r].flitsDelivered, backlog,
                                  lanes_[r].droppedFlits);
    auto holder = [&](std::uint32_t o) {
        return fabrics_[r]->outputHolder(o);
    };
    check::verifyHolderInjective(N_, holder);
    for (std::uint32_t i = 0; i < N_; ++i) {
        const net::InputPort &p = port(r, i);
        check::verifyVcState(p, base_.vcDepth);
        sim_assert(plane(connected_, r).test(i) == p.connected(),
                   "connected plane bit %u out of sync", i);
        sim_assert(plane(fillPend_, r).test(i) ==
                       !p.sourceQueue().empty(),
                   "fillPend plane bit %u out of sync", i);
        sim_assert(plane(eligible_, r).test(i) ==
                       (!p.connected() && p.anyVcOccupied()),
                   "eligible plane bit %u out of sync", i);
        if (p.connected()) {
            sim_assert(fabrics_[r]->outputHolder(p.connOutput()) == i,
                       "connected port %u does not hold output %u", i,
                       p.connOutput());
        }
    }
    for (std::uint32_t o = 0; o < N_; ++o) {
        sim_assert(plane(dstFree_, r).test(o) ==
                       !fabrics_[r]->outputBusy(o),
                   "dstFree plane bit %u out of sync", o);
    }
}
#endif

void
BatchSim::advanceTo(net::Cycle target)
{
    while (cycle_ < target) {
        if (!measuring_ && cycle_ >= warmEnd() && cycle_ < runEnd()) {
            measuring_ = true;
            measureStart_ = warmEnd();
        }
        stepOnce();
        if (measuring_ && cycle_ >= runEnd())
            measuring_ = false;
    }
}

std::vector<SimResult>
BatchSim::run()
{
    advanceTo(runEnd());
    sim_assert(!measuring_, "measurement window still open");

    const double window = static_cast<double>(runEnd() - warmEnd());
    std::vector<SimResult> results(R_);
    for (std::uint32_t r = 0; r < R_; ++r) {
        Lane &lane = lanes_[r];
        SimResult &res = results[r];
        res.offeredFlitsPerCycle =
            static_cast<double>(lane.measFlitsOffered) / window;
        res.acceptedFlitsPerCycle =
            static_cast<double>(lane.measFlitsDelivered) / window;
        res.avgLatencyCycles = lane.latency.mean();
        res.avgQueueingCycles = lane.queueing.mean();
        res.p99LatencyCycles = lane.latencyHist.quantile(0.99);
        res.packetsDelivered = lane.latency.count();
        res.packetsDropped = lane.packetsDropped;
        sim_assert(lane.measPacketsCompleted + lane.measPacketsDropped <=
                       lane.measPacketsInjected,
                   "more window packets completed than injected");
        res.inFlightAtMeasureEnd = lane.measPacketsInjected -
                                   lane.measPacketsCompleted -
                                   lane.measPacketsDropped;
        res.latencyOverflowPackets = lane.latencyHist.overflowCount();
        if (obs::on()) [[unlikely]] {
            BatchMetrics::get().inFlightCensored.inc(
                res.inFlightAtMeasureEnd);
        }

        res.perInputLatency.resize(N_, 0.0);
        res.perInputThroughput.resize(N_, 0.0);
        std::vector<double> active_tput;
        for (std::uint32_t i = 0; i < N_; ++i) {
            res.perInputLatency[i] = lane.perInputLatency[i].mean();
            res.perInputThroughput[i] =
                static_cast<double>(lane.perInputPackets[i]) / window;
            // Live query, not the part_ snapshot: stateful patterns
            // (trace replay) change participates() as they drain, and
            // the scalar engine evaluates it here, at end of run.
            if (patterns_[r]->participates(i))
                active_tput.push_back(res.perInputThroughput[i]);
        }
        res.fairness = jainFairness(active_tput);

        sim_assert(lane.delivered <= lane.injected,
                   "conservation violated");
    }
    return results;
}

void
BatchSim::Lane::save(snap::Writer &w) const
{
    w.u64(nextId);
    w.u64(injected);
    w.u64(delivered);
    w.u64(flitsDelivered);
    w.u64(droppedFlits);
    w.u64(packetsDropped);
    w.u64(measFlitsDelivered);
    w.u64(measFlitsOffered);
    w.u64(measPacketsInjected);
    w.u64(measPacketsCompleted);
    w.u64(measPacketsDropped);
    latency.save(w);
    queueing.save(w);
    latencyHist.save(w);
    for (const auto &st : perInputLatency)
        st.save(w);
    w.vec(perInputPackets);
}

void
BatchSim::Lane::load(snap::Reader &r)
{
    nextId = r.u64();
    injected = r.u64();
    delivered = r.u64();
    flitsDelivered = r.u64();
    droppedFlits = r.u64();
    packetsDropped = r.u64();
    measFlitsDelivered = r.u64();
    measFlitsOffered = r.u64();
    measPacketsInjected = r.u64();
    measPacketsCompleted = r.u64();
    measPacketsDropped = r.u64();
    latency.load(r);
    queueing.load(r);
    latencyHist.load(r);
    for (auto &st : perInputLatency)
        st.load(r);
    r.vec(perInputPackets);
}

std::uint64_t
BatchSim::configKey() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "spec:%d/%u/%u/%u/%u/%d/%d/%u/%u/%llu;"
        "base:%u/%u/%u/%llu/%llu;R=%u;",
        static_cast<int>(spec_.topo), spec_.radix, spec_.layers,
        spec_.channels, spec_.flitBits, static_cast<int>(spec_.arb),
        static_cast<int>(spec_.alloc), spec_.clrgMaxCount,
        spec_.schedIters,
        static_cast<unsigned long long>(spec_.schedSeed), base_.numVcs,
        base_.vcDepth, base_.packetLen,
        static_cast<unsigned long long>(base_.warmupCycles),
        static_cast<unsigned long long>(base_.measureCycles), R_);
    std::string s = buf;
    for (std::uint32_t r = 0; r < R_; ++r) {
        std::snprintf(buf, sizeof(buf), "pt:%.17g/%llu;", pts_[r].load,
                      static_cast<unsigned long long>(pts_[r].seed));
        s += buf;
        s += "pat:" + patterns_[r]->descriptor() + ";";
    }
    if (faultsOn_)
        s += faultMgrs_[0].schedule().descriptor();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
BatchSim::save(snap::Writer &w) const
{
    w.u64(cycle_);
    w.b(measuring_);
    w.u64(measureStart_);
    for (std::uint32_t r = 0; r < R_; ++r) {
        lanes_[r].save(w);
        for (std::uint32_t i = 0; i < N_; ++i)
            ports_[std::size_t(r) * N_ + i].save(w);
        if (satVirt_[r])
            satQ_[r].save(w);
        fabrics_[r]->save(w);
        if (faultsOn_)
            faultMgrs_[r].save(w);
        patterns_[r]->save(w);
    }
    // Bit planes are derived from port + fabric state; rebuilt on
    // load.
}

void
BatchSim::load(snap::Reader &r)
{
    cycle_ = r.u64();
    measuring_ = r.b();
    measureStart_ = r.u64();
    for (std::uint32_t rep = 0; rep < R_; ++rep) {
        lanes_[rep].load(r);
        for (std::uint32_t i = 0; i < N_; ++i)
            port(rep, i).load(r);
        if (satVirt_[rep])
            satQ_[rep].load(r);
        fabrics_[rep]->load(r);
        if (faultsOn_)
            faultMgrs_[rep].load(r);
        patterns_[rep]->load(r);
    }
    rebuildDerived();
}

void
BatchSim::rebuildDerived()
{
    for (std::uint32_t r = 0; r < R_; ++r) {
        BitSpan free = plane(dstFree_, r);
        BitSpan conn = plane(connected_, r);
        BitSpan elig = plane(eligible_, r);
        BitSpan pend = plane(fillPend_, r);
        for (std::uint32_t o = 0; o < N_; ++o) {
            if (fabrics_[r]->outputBusy(o))
                free.reset(o);
            else
                free.set(o);
        }
        for (std::uint32_t i = 0; i < N_; ++i) {
            const net::InputPort &p = port(r, i);
            if (p.connected())
                conn.set(i);
            else
                conn.reset(i);
            if (!p.connected() && p.anyVcOccupied())
                elig.set(i);
            else
                elig.reset(i);
            if (!p.sourceQueue().empty())
                pend.set(i);
            else
                pend.reset(i);
        }
    }
#ifdef HIRISE_CHECK_ENABLED
    for (std::uint32_t r = 0; r < R_; ++r)
        checkInvariants(r);
#endif
}

bool
BatchSim::saveSnapshotFile(const std::string &path) const
{
    snap::Writer w;
    save(w);
    return w.writeFile(path, configKey());
}

bool
BatchSim::loadSnapshotFile(const std::string &path)
{
    snap::Reader r;
    if (!r.readFile(path, configKey()))
        return false;
    load(r);
    sim_assert(r.done(), "snapshot payload not fully consumed");
    return true;
}

} // namespace hirise::sim
