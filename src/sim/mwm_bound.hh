/**
 * @file
 * Offline MWM fluid throughput bound: the sustained-rate counterpart
 * of the per-cycle maximum-weight matching oracle (arb/mwm.hh). A
 * crossbar schedule is a convex combination of matchings, so the
 * long-run service rate of any online scheduler lies inside the
 * polytope cut out by per-port capacities and the offered per-flow
 * demands. The maximum total rate in that polytope is a max-flow
 * problem over the pattern's analytic rate matrix — an upper bound no
 * measured acceptedFlitsPerCycle may exceed (up to finite-run noise).
 *
 * Port capacity model: a packet of P flits holds its input and output
 * for one arbitration cycle plus P transfer cycles (Swizzle-Switch
 * semantics: a port arbitrates or transfers, never both), so a port
 * serves at most 1/(P+1) packets/cycle = P/(P+1) flits/cycle.
 */

#ifndef HIRISE_SIM_MWM_BOUND_HH
#define HIRISE_SIM_MWM_BOUND_HH

#include <cstdint>
#include <functional>

#include "common/spec.hh"
#include "traffic/pattern.hh"

namespace hirise::sim {

/**
 * Upper bound on SimResult::acceptedFlitsPerCycle (total flits/cycle
 * across the switch) for any scheduler serving @p pat at offered
 * @p load packets/input/cycle with @p packet_len-flit packets.
 * fatal()s if the pattern has no analytic rate matrix.
 */
double mwmAcceptedFlitsBound(std::uint32_t radix,
                             std::uint32_t packet_len,
                             const traffic::TrafficPattern &pat,
                             double load);

/**
 * As above, but for a Hi-Rise switch with a degraded channel set:
 * cross-layer flow from layer s to layer d must additionally pass a
 * capacity of survivors(s, d) * packetLen/(packetLen+1) flits/cycle —
 * the surviving L2LCs of that pair, each serving one connection-held
 * packet per (packet_len + 1) cycles. Same-layer traffic bypasses the
 * channel stage, exactly as in the fabric.
 *
 * The per-pair stage is an *aggregate relaxation*: inside a layer
 * pair the per-(input, output) demand split is not re-enforced, so
 * the value is a valid — if sometimes loose — upper bound on any
 * real schedule, which is all a throughput cross-check needs. With
 * every pair at full capacity it coincides with the undegraded bound
 * whenever the channel stage is not the bottleneck.
 *
 * @param survivors  callback (src_layer, dst_layer) -> number of
 *                   in-service channels (e.g.
 *                   HiRiseFabric::survivingChannels).
 */
double mwmDegradedFlitsBound(
    const SwitchSpec &spec, std::uint32_t packet_len,
    const traffic::TrafficPattern &pat, double load,
    const std::function<std::uint32_t(std::uint32_t, std::uint32_t)>
        &survivors);

} // namespace hirise::sim

#endif // HIRISE_SIM_MWM_BOUND_HH
