/**
 * @file
 * Offline MWM fluid throughput bound: the sustained-rate counterpart
 * of the per-cycle maximum-weight matching oracle (arb/mwm.hh). A
 * crossbar schedule is a convex combination of matchings, so the
 * long-run service rate of any online scheduler lies inside the
 * polytope cut out by per-port capacities and the offered per-flow
 * demands. The maximum total rate in that polytope is a max-flow
 * problem over the pattern's analytic rate matrix — an upper bound no
 * measured acceptedFlitsPerCycle may exceed (up to finite-run noise).
 *
 * Port capacity model: a packet of P flits holds its input and output
 * for one arbitration cycle plus P transfer cycles (Swizzle-Switch
 * semantics: a port arbitrates or transfers, never both), so a port
 * serves at most 1/(P+1) packets/cycle = P/(P+1) flits/cycle.
 */

#ifndef HIRISE_SIM_MWM_BOUND_HH
#define HIRISE_SIM_MWM_BOUND_HH

#include <cstdint>

#include "traffic/pattern.hh"

namespace hirise::sim {

/**
 * Upper bound on SimResult::acceptedFlitsPerCycle (total flits/cycle
 * across the switch) for any scheduler serving @p pat at offered
 * @p load packets/input/cycle with @p packet_len-flit packets.
 * fatal()s if the pattern has no analytic rate matrix.
 */
double mwmAcceptedFlitsBound(std::uint32_t radix,
                             std::uint32_t packet_len,
                             const traffic::TrafficPattern &pat,
                             double load);

} // namespace hirise::sim

#endif // HIRISE_SIM_MWM_BOUND_HH
