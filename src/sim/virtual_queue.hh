/**
 * @file
 * Virtual source queues: the saturated-injection fast path shared by
 * the scalar NetworkSim and the batched BatchSim engines.
 *
 * At offered load >= 1 every Bernoulli draw passes
 * (bernoulliThreshold saturates at 2^53), so each participating input
 * injects exactly one packet per cycle and a source queue's contents
 * become a pure function of the counter streams: input i's k-th
 * packet has genCycle k, id = k * P + rank(i) + 1 (P participating
 * inputs, ranks assigned in ascending input order — exactly the dense
 * per-cycle poll's injection order), and dst = destAt(i, k, seed).
 * Nothing needs to be queued: injection collapses to an accounting
 * bump and only each input's HEAD packet is materialized, re-derived
 * on consumption (one destAt hash per packet that actually leaves the
 * queue, bounded by delivery throughput rather than offered load).
 *
 * Requires a memoryless pattern (injectAt/destAt are pure hashes of
 * (input, cycle, seed)); stateful patterns keep the legacy queued
 * path. Bit-identity with that path is enforced by
 * tests/sat_fastpath_test.cc and tests/batch_test.cc.
 */

#ifndef HIRISE_SIM_VIRTUAL_QUEUE_HH
#define HIRISE_SIM_VIRTUAL_QUEUE_HH

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/random.hh"
#include "common/snapshot.hh"
#include "net/packet.hh"
#include "traffic/pattern.hh"

namespace hirise::sim {

/** HIRISE_LEGACY_SAT_QUEUES=1 pins the legacy queued saturation path
 *  in both engines — the A/B knob for perf work (results are
 *  bit-identical either way). Read once per process. */
inline bool
legacySatQueuesPinned()
{
    static const bool pinned = [] {
        const char *e = std::getenv("HIRISE_LEGACY_SAT_QUEUES");
        return e != nullptr && e[0] == '1';
    }();
    return pinned;
}

class VirtualSourceQueues
{
  public:
    /** True when @p load saturates the injection Bernoulli (every
     *  draw passes, i.e. load >= 1) — the precondition for the
     *  virtual-queue identity. The pattern must also be memoryless;
     *  callers check that separately since BatchSim requires it
     *  across all replicas. */
    static bool
    saturates(double load)
    {
        return bernoulliThreshold(load) == (std::uint64_t(1) << 53);
    }

    /** Build cycle-0 head packets for every participating input of
     *  @p pat. Idempotent: re-init resets to cycle 0. */
    void
    init(traffic::TrafficPattern &pat, std::uint32_t radix,
         std::uint32_t packet_len, std::uint64_t seed)
    {
        seed_ = seed;
        p_ = 0;
        heads_.assign(radix, net::Packet{});
        part_.assign(radix, 0);
        for (std::uint32_t i = 0; i < radix; ++i) {
            if (!pat.participates(i))
                continue;
            net::Packet &head = heads_[i];
            head.id = p_ + 1; // rank'th injection of cycle 0
            head.src = i;
            head.dst = pat.destAt(i, 0, seed);
            head.lenFlits = static_cast<std::uint16_t>(packet_len);
            head.genCycle = 0;
            part_[i] = 1;
            ++p_;
        }
    }

    /** Number of participating inputs (P in the id identity). */
    std::uint32_t participants() const { return p_; }

    bool participates(std::uint32_t i) const { return part_[i] != 0; }

    net::Packet &head(std::uint32_t i) { return heads_[i]; }
    const net::Packet &head(std::uint32_t i) const { return heads_[i]; }

    /** The head fully streamed into a VC: re-derive the next one —
     *  the packet this input injected one cycle later, P ids down the
     *  lane's id sequence. */
    void
    advance(std::uint32_t i, traffic::TrafficPattern &pat)
    {
        net::Packet &head = heads_[i];
        head.genCycle += 1;
        head.id += p_;
        head.dst = pat.destAt(i, head.genCycle, seed_);
    }

    /** Flits injected but not yet streamed out of input @p i's
     *  virtual queue as of @p cycle, excluding the head's own flits
     *  (InputPort::backlogFlits already counts the partially streamed
     *  head): packets with genCycle in [head, cycle) are pending. */
    std::uint64_t
    pendingFlitsBehindHead(std::uint32_t i, std::uint64_t cycle,
                           std::uint32_t packet_len) const
    {
        return (cycle - heads_[i].genCycle) * packet_len;
    }

    /** Only the head packets are state; participation, rank count,
     *  and seed are configuration re-derived by init(). */
    void save(snap::Writer &w) const { w.vec(heads_); }
    void load(snap::Reader &r) { r.vec(heads_); }

  private:
    std::vector<net::Packet> heads_;
    std::vector<std::uint8_t> part_;
    std::uint32_t p_ = 0;
    std::uint64_t seed_ = 0;
};

} // namespace hirise::sim

#endif // HIRISE_SIM_VIRTUAL_QUEUE_HH
