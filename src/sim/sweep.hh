/**
 * @file
 * Load sweeps and saturation-throughput measurement built on
 * NetworkSim; the measurement methodology behind Tables I/IV/V and
 * Figs 10/11.
 */

#ifndef HIRISE_SIM_SWEEP_HH
#define HIRISE_SIM_SWEEP_HH

#include <functional>
#include <vector>

#include "sim/network_sim.hh"

namespace hirise::sim {

/** Factory so every run gets a fresh, independently-seeded pattern. */
using PatternFactory =
    std::function<std::shared_ptr<traffic::TrafficPattern>()>;

struct SweepPoint
{
    double load = 0.0; //!< packets/input/cycle offered
    SimResult result;
};

/** Run one simulation at the given load. */
SimResult runAtLoad(const SwitchSpec &spec, const SimConfig &base,
                    const PatternFactory &make, double load);

/** Simulate each load point in sequence. */
std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads);

/**
 * Saturation throughput in accepted flits/cycle: drive the switch at
 * the maximum offered load (1 packet/input/cycle) and measure the
 * accepted rate, which plateaus at saturation for open-loop traffic.
 */
double saturationFlitsPerCycle(const SwitchSpec &spec,
                               const SimConfig &base,
                               const PatternFactory &make);

/**
 * Saturation offered load (packets/input/cycle): smallest load whose
 * accepted rate falls below 98% of offered, found by bisection. Used
 * for "80% of saturation" style experiments (Fig 11a).
 */
double saturationLoad(const SwitchSpec &spec, const SimConfig &base,
                      const PatternFactory &make, double lo = 0.0,
                      double hi = 1.0, int iters = 12);

/** Convert flits/cycle to Tbps at the given clock and flit width. */
double toTbps(double flits_per_cycle, double freq_ghz,
              std::uint32_t flit_bits);

/** Convert flits/cycle to packets/ns. */
double toPacketsPerNs(double flits_per_cycle, double freq_ghz,
                      std::uint32_t packet_len);

} // namespace hirise::sim

#endif // HIRISE_SIM_SWEEP_HH
