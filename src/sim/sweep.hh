/**
 * @file
 * Load sweeps and saturation-throughput measurement built on
 * NetworkSim; the measurement methodology behind Tables I/IV/V and
 * Figs 10/11.
 *
 * Campaign-scale runs (figure suites, seed sweeps, bisections) go
 * through the shared work-stealing pool (common/thread_pool.hh) and
 * the content-addressed result cache (sim/sim_cache.hh): every
 * evaluation is a pure function of (spec, cfg, pattern, seed), so
 * parallel and cached execution is bit-identical to serial execution.
 */

#ifndef HIRISE_SIM_SWEEP_HH
#define HIRISE_SIM_SWEEP_HH

#include <functional>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/network_sim.hh"
#include "sim/sim_cache.hh"

namespace hirise::sim {

/** Factory so every run gets a fresh, independently-seeded pattern. */
using PatternFactory =
    std::function<std::shared_ptr<traffic::TrafficPattern>()>;

/** Execution knobs threaded through campaign-level entry points. */
struct CampaignOptions
{
    /** Pool for parallel evaluation (null = ThreadPool::global()). */
    ThreadPool *pool = nullptr;
    /** Result cache (null = SimCache::global()). */
    SimCache *cache = nullptr;
    /** Force a serial loop when 1 (parallelMap semantics). */
    unsigned maxThreads = 0;
    /** Derive per-point seeds via shardSeed(base.seed, index) instead
     *  of running every point on the same seed. Off by default so
     *  published experiment numbers stay unchanged. */
    bool shardSeeds = false;
};

struct SweepPoint
{
    double load = 0.0; //!< packets/input/cycle offered
    SimResult result;
};

/** One cached evaluation request for the batched runner: a (load,
 *  seed) point of a common (spec, cfg, pattern) family. */
struct RunPoint
{
    double load = 0.0;
    std::uint64_t seed = 0;
};

/**
 * Replica lanes per batched simulation (sim::BatchSim). Default 8,
 * overridable by the HIRISE_BATCH environment variable at process
 * start and by setBatchReplicas() (the harness --replicas flag).
 * A value of 0 or 1 disables batching: every point runs scalar.
 */
std::uint32_t batchReplicas();
void setBatchReplicas(std::uint32_t replicas);

/**
 * Evaluate many (load, seed) points of one (spec, cfg, pattern)
 * family, memoized through @p opt.cache. Cache misses are grouped
 * into BatchSim runs of up to batchReplicas() lanes; points at or
 * below NetworkSim::kInjHeapMaxRate, singleton groups, and runs under
 * an armed tracer fall back to scalar NetworkSim. Either engine
 * produces bit-identical SimResults (tests/batch_test.cc), so the
 * cache never observes which one served a point. Results are
 * index-ordered and deterministic for any thread count.
 */
std::vector<SimResult>
runPointsCached(const SwitchSpec &spec, const SimConfig &base,
                const PatternFactory &make,
                const std::vector<RunPoint> &pts,
                const CampaignOptions &opt = {});

/** Run one simulation at the given load (always executes). */
SimResult runAtLoad(const SwitchSpec &spec, const SimConfig &base,
                    const PatternFactory &make, double load);

/** As runAtLoad, but memoized: serve from @p cache (null = the global
 *  cache) when the exact (spec, cfg, pattern, seed) point was already
 *  simulated, else run and store. */
SimResult runAtLoadCached(const SwitchSpec &spec, const SimConfig &base,
                          const PatternFactory &make, double load,
                          SimCache *cache = nullptr);

/** Simulate each load point, in parallel through the campaign pool.
 *  Results are index-ordered and bit-identical for any thread count. */
std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads,
          const CampaignOptions &opt);

/** Convenience overload with default campaign options. */
std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads);

/**
 * Saturation throughput in accepted flits/cycle: drive the switch at
 * the maximum offered load (1 packet/input/cycle) and measure the
 * accepted rate, which plateaus at saturation for open-loop traffic.
 */
double saturationFlitsPerCycle(const SwitchSpec &spec,
                               const SimConfig &base,
                               const PatternFactory &make);

/**
 * Saturation offered load (packets/input/cycle): smallest load whose
 * accepted rate falls below 98% of offered, found by bisection. Used
 * for "80% of saturation" style experiments (Fig 11a).
 */
double saturationLoad(const SwitchSpec &spec, const SimConfig &base,
                      const PatternFactory &make, double lo = 0.0,
                      double hi = 1.0, int iters = 12);

/**
 * Speculative bisection: same answer as saturationLoad (bit-exact; the
 * midpoints are produced by the identical 0.5*(lo+hi) recursion), but
 * each round evaluates the full depth-@p spec_depth speculation tree
 * of candidate midpoints in parallel through the pool, then walks the
 * precomputed verdicts. Depth d retires d bisection steps per round
 * at the cost of 2^d - 1 simulations, cutting the critical path from
 * @p iters sequential sims to ceil(iters / d) rounds; with the shared
 * cache, repeated searches are nearly free.
 */
double saturationLoadSpeculative(const SwitchSpec &spec,
                                 const SimConfig &base,
                                 const PatternFactory &make,
                                 double lo = 0.0, double hi = 1.0,
                                 int iters = 12, int spec_depth = 2,
                                 const CampaignOptions &opt = {});

/** Convert flits/cycle to Tbps at the given clock and flit width. */
double toTbps(double flits_per_cycle, double freq_ghz,
              std::uint32_t flit_bits);

/** Convert flits/cycle to packets/ns. */
double toPacketsPerNs(double flits_per_cycle, double freq_ghz,
                      std::uint32_t packet_len);

} // namespace hirise::sim

#endif // HIRISE_SIM_SWEEP_HH
