/**
 * @file
 * Batched multi-replica simulator: R replicas of one SwitchSpec —
 * same topology, VC shape, and run length, but independent
 * (injection-rate, seed) points — stepped in lockstep through
 * structure-of-arrays fabric state.
 *
 * Bit-identity contract: every lane reproduces the scalar
 * NetworkSim run for its (rate, seed) point bit for bit. The engine
 * mirrors the scalar event core's high-rate configuration exactly
 * (per-cycle injection polling, active-set arbitration, incremental
 * output-availability tracking), which stepping_test already proves
 * bit-identical to the dense reference; the counter-based RNG
 * (common/random.hh) makes each replica's draws a pure function of
 * (seed, lane, cycle), so evaluating them four stream lanes at a
 * time (simd::counterDraw4) changes nothing but instruction count.
 * tests/batch_test.cc and the fuzzer's replica axis enforce the
 * contract per lane.
 *
 * Where the batch wins: saturated replicas (the campaign's
 * saturation-search workload) never materialize their source queues —
 * at load >= 1 the queue contents are a pure function of the counter
 * streams, so injection collapses to an accounting bump and only each
 * input's head packet exists, re-derived on consumption (see
 * sim/virtual_queue.hh, shared with NetworkSim's scalar saturation
 * fast path; ~2x per-replica saturation throughput vs the legacy
 * queued path). Below saturation the injection Bernoulli and destination
 * draws hash four consecutive input lanes per AVX2 step. The
 * per-replica bit planes (output-free, connected, eligible,
 * fill-pending) live in one contiguous word buffer per plane kind
 * instead of R scattered simulator objects, and each replica's phases
 * fuse into a single walk of its state per cycle, so the combined
 * working set streams once per cycle, not once per phase.
 */

#ifndef HIRISE_SIM_BATCH_SIM_HH
#define HIRISE_SIM_BATCH_SIM_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/spec.hh"
#include "common/stats.hh"
#include "fabric/fabric.hh"
#include "net/input_port.hh"
#include "net/packet.hh"
#include "sim/network_sim.hh"
#include "sim/virtual_queue.hh"
#include "traffic/pattern.hh"

namespace hirise::sim {

/** One replica lane: the (offered load, seed) point it simulates. */
struct BatchPoint
{
    double load = 0.0;      //!< packets/input/cycle offered
    std::uint64_t seed = 0; //!< counter-RNG base seed
};

/** Per-replica fabric supplier; defaults to fabric::makeFabric(spec).
 *  The fuzzer injects pre-faulted fabrics through this. */
using FabricFactory =
    std::function<std::unique_ptr<fabric::Fabric>()>;

class BatchSim
{
  public:
    /**
     * @param spec      switch configuration shared by every replica
     * @param base      run shape shared by every replica; its
     *                  injectionRate/seed fields are ignored (each
     *                  lane uses its BatchPoint), and trace must be
     *                  off (tracing runs fall back to NetworkSim)
     * @param patterns  one traffic pattern per replica, all built
     *                  from the same factory (stateful patterns must
     *                  never be shared across replicas)
     * @param points    one (load, seed) point per replica
     */
    BatchSim(const SwitchSpec &spec, const SimConfig &base,
             std::vector<std::shared_ptr<traffic::TrafficPattern>>
                 patterns,
             std::vector<BatchPoint> points,
             const FabricFactory &make_fabric = {});

    /** Attach a fault schedule to every replica. Each lane gets its
     *  own FaultManager seeded with the lane's BatchPoint seed, so
     *  lane r's failures, error draws, and isolations reproduce the
     *  scalar NetworkSim run with that seed bit for bit. Must be
     *  called before the first step. */
    void setFaultSchedule(const FaultSchedule &sched);

    /** Warmup + measurement for every lane; results[r] is bit-equal
     *  to NetworkSim(spec, base with points[r]) .run(). Boundaries
     *  are absolute (cycle base.warmupCycles and warmup + measure),
     *  so a restored batch picks up run() mid-flight. */
    std::vector<SimResult> run();

    /** Advance every replica to absolute cycle @p target, flipping
     *  the shared measurement window at the exact run() boundaries. */
    void advanceTo(net::Cycle target);

    std::uint32_t replicas() const { return R_; }
    net::Cycle now() const { return cycle_; }
    const FaultManager &faultManager(std::uint32_t r) const
    {
        return faultMgrs_[r];
    }

    // -- checkpoint/restore ------------------------------------------

    /** Serialize the full batch state (all lanes). load() runs on a
     *  freshly constructed batch with identical spec/config/points/
     *  patterns/schedule; bit planes are rebuilt. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

    /** Content hash of the batch configuration (spec + base config +
     *  every lane's point and pattern descriptor + fault descriptor). */
    std::uint64_t configKey() const;

    /** save()/load() framed through common/snapshot.hh's versioned,
     *  checksummed file format; false on I/O or validation failure. */
    bool saveSnapshotFile(const std::string &path) const;
    bool loadSnapshotFile(const std::string &path);

    /** False while the process-wide cycle tracer is armed: batching
     *  would interleave the replicas' event streams under one
     *  thread's trace cycle, so traced runs stay scalar (results are
     *  bit-identical either way; the trace CI job relies on that). */
    static bool usable();

  private:
    // Per-replica aggregation state, mirroring NetworkSim's
    // measurement members field for field.
    struct Lane
    {
        net::PacketId nextId = 1;
        std::uint64_t injected = 0;
        std::uint64_t delivered = 0;
        std::uint64_t flitsDelivered = 0;
        std::uint64_t droppedFlits = 0;
        std::uint64_t packetsDropped = 0;
        std::uint64_t measFlitsDelivered = 0;
        std::uint64_t measFlitsOffered = 0;
        std::uint64_t measPacketsInjected = 0;
        std::uint64_t measPacketsCompleted = 0;
        std::uint64_t measPacketsDropped = 0;
        RunningStat latency;
        RunningStat queueing;
        Histogram latencyHist{4.0, 4096};
        std::vector<RunningStat> perInputLatency;
        std::vector<std::uint64_t> perInputPackets;

        void save(snap::Writer &w) const;
        void load(snap::Reader &r);
    };

    BitSpan
    plane(std::vector<BitVec::Word> &buf, std::uint32_t r)
    {
        return BitSpan(buf.data() + std::size_t(r) * wpr_, N_);
    }

    net::InputPort &
    port(std::uint32_t r, std::uint32_t i)
    {
        return ports_[std::size_t(r) * N_ + i];
    }

    void stepOnce();
    void injectDrawn(std::uint32_t r);
    void injectStateful(std::uint32_t r);
    void injectVirtual(std::uint32_t r);
    void fillVirtual(std::uint32_t r);
    void injectPacket(std::uint32_t r, std::uint32_t i,
                      std::uint32_t dst);
    void fillPhase(std::uint32_t r);
    void arbitratePhase(std::uint32_t r);
    void applyGrant(std::uint32_t r, std::uint32_t i);
    void transferPhase(std::uint32_t r);
    /** Replica-r mirror of NetworkSim::handleBroken: drop in-flight
     *  packets whose channel failed and resync lane r's bit planes. */
    void handleBroken(std::uint32_t r,
                      const std::vector<fabric::BrokenConn> &broken);
    /** Rebuild every bit plane from restored port + fabric state. */
    void rebuildDerived();
    net::Cycle warmEnd() const { return base_.warmupCycles; }
    net::Cycle runEnd() const
    {
        return base_.warmupCycles + base_.measureCycles;
    }
#ifdef HIRISE_CHECK_ENABLED
    void checkInvariants(std::uint32_t r);
#endif

    SwitchSpec spec_;
    SimConfig base_;
    std::vector<BatchPoint> pts_;
    std::uint32_t R_;
    std::uint32_t N_;   //!< radix
    std::uint32_t wpr_; //!< plane words per replica

    std::vector<std::shared_ptr<traffic::TrafficPattern>> patterns_;
    std::vector<std::unique_ptr<fabric::Fabric>> fabrics_;
    std::vector<net::InputPort> ports_; //!< replica-major, R*N

    // Structure-of-arrays bit planes: R contiguous lanes of wpr_
    // words each (plane(buf, r) views lane r).
    std::vector<BitVec::Word> dstFree_;
    std::vector<BitVec::Word> connected_;
    std::vector<BitVec::Word> eligible_;
    std::vector<BitVec::Word> fillPend_;

    /** Injection-lane stream keys, replica-major (replica r's key for
     *  input i at [r*N + i]): four consecutive inputs of one replica
     *  share a cycle, so their draws batch four lanes per AVX2 step
     *  inside the replica's fused phase walk. */
    std::vector<std::uint64_t> injKeys_;
    /** Destination-lane stream keys, same replica-major layout,
     *  handed to TrafficPattern::destRow4 so patterns with draw-based
     *  destinations hash four source lanes per step too. */
    std::vector<std::uint64_t> destKeys_;
    /** participates(i) per (replica, input), replica-major. */
    std::vector<char> part_;
    std::vector<std::uint64_t> thr_; //!< per-replica inject threshold
    bool allMemoryless_;

    // -- virtual source queues (saturated memoryless replicas) -----
    //
    // Saturated replicas never materialize their source queues: the
    // queue contents are a pure function of the counter streams, so
    // injection is a constant-time accounting bump and only each
    // input's head packet exists, re-derived on consumption. The
    // mechanism (and the id/genCycle identity) lives in
    // sim/virtual_queue.hh, shared with the scalar NetworkSim's
    // saturation fast path; what it buys here is turning the dominant
    // saturation cost — pushing ~N packets per cycle per replica into
    // ring buffers that grow without bound — into
    // ~deliveries-per-cycle counter hashes, and shrinking the replica
    // working set by the whole queue footprint.
    std::vector<char> satVirt_; //!< replica uses virtual queues
    std::vector<VirtualSourceQueues> satQ_; //!< one per replica

    // Per-cycle scratch shared across replicas (each replica's
    // arbitration resets its entries before the next replica runs).
    std::vector<std::uint32_t> reqScratch_;
    std::vector<std::uint32_t> candVcScratch_;
    std::vector<std::uint32_t> activeReq_;

    /** Fault machinery live (non-empty schedule attached). */
    bool faultsOn_ = false;
    std::vector<FaultManager> faultMgrs_; //!< one per replica
    std::vector<fabric::BrokenConn> brokenScratch_;

    net::Cycle cycle_ = 0;
    bool measuring_ = false;
    net::Cycle measureStart_ = 0;
    std::vector<Lane> lanes_;
};

} // namespace hirise::sim

#endif // HIRISE_SIM_BATCH_SIM_HH
