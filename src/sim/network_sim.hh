/**
 * @file
 * Cycle-accurate single-switch network simulator (paper section V):
 * open-loop injection into unbounded source queues, 4 VCs x 4-flit
 * buffers per input, 4-flit packets, connection-held matrix-switch
 * timing (one arbitration cycle, then one flit per data cycle).
 */

#ifndef HIRISE_SIM_NETWORK_SIM_HH
#define HIRISE_SIM_NETWORK_SIM_HH

#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/random.hh"
#include "common/spec.hh"
#include "common/stats.hh"
#include "fabric/fabric.hh"
#include "net/input_port.hh"
#include "net/packet.hh"
#include "sim/fault.hh"
#include "sim/virtual_queue.hh"
#include "traffic/pattern.hh"

namespace hirise::sim {

struct SimConfig
{
    std::uint32_t numVcs = 4;
    std::uint32_t vcDepth = 4;    //!< flits per VC
    std::uint32_t packetLen = 4;  //!< flits per packet
    double injectionRate = 0.1;   //!< packets/input/cycle (active inputs)
    net::Cycle warmupCycles = 10000;
    net::Cycle measureCycles = 50000;
    std::uint64_t seed = 1;
    /** Arm the process-wide cycle tracer for this run (convenience
     *  switch-on; equivalent to obs::CycleTracer::global().enable()).
     *  Never part of the SimCache key: tracing records events but
     *  must not change any simulated outcome. */
    bool trace = false;
    /**
     * Use the dense per-cycle reference core instead of the
     * event-driven core: scan every input every cycle for injection,
     * fill, and arbitration candidates, and rebuild output-free state
     * from the fabric each cycle. Both cores consume the same
     * counter-based RNG streams and produce bit-identical SimResults
     * (enforced by tests/stepping_test.cc and the fuzzer's
     * stepping-mode axis); dense mode exists for A/B validation and
     * perf baselines. Never part of the SimCache key.
     */
    bool denseStepping = false;
    /**
     * Pin the legacy queued saturation path. At load >= 1 a
     * memoryless run normally takes the virtual-source-queue fast
     * path (sim/virtual_queue.hh): injection collapses to an
     * accounting bump and only per-input head packets materialize.
     * Results are bit-identical either way (tests/sat_fastpath_test
     * .cc), so this — like the HIRISE_LEGACY_SAT_QUEUES=1 env pin —
     * is a pure A/B perf knob. Never part of the SimCache key.
     */
    bool legacySatQueues = false;
};

/** Aggregated results over the measurement window. */
struct SimResult
{
    double offeredFlitsPerCycle = 0.0;
    double acceptedFlitsPerCycle = 0.0;
    double avgLatencyCycles = 0.0; //!< packet gen -> tail delivered
    double p99LatencyCycles = 0.0;
    /** Mean cycles from packet creation to winning arbitration
     *  (source queueing + head-of-line + retries); the remainder of
     *  avgLatencyCycles is pure service time. */
    double avgQueueingCycles = 0.0;
    std::uint64_t packetsDelivered = 0;
    /** Packets injected inside the measurement window but still in
     *  flight (source queue, VC, or crossbar) when it closed. Their
     *  latency is right-censored: avgLatencyCycles/p99LatencyCycles
     *  cover delivered packets only, so a large value here means the
     *  latency aggregates are biased low (saturation). See
     *  docs/TESTING.md "Latency censoring". */
    std::uint64_t inFlightAtMeasureEnd = 0;
    /** Delivered-packet latency samples that fell beyond the latency
     *  histogram's last regular bin. Nonzero means p99LatencyCycles
     *  is clamped to the overflow edge and reads ">=", not "=". */
    std::uint64_t latencyOverflowPackets = 0;
    /** Packets dropped over the whole run because a fault forcibly
     *  broke their connection mid-transfer (warmup included). Always
     *  0 without a fault schedule. */
    std::uint64_t packetsDropped = 0;
    /** Mean packet latency per source input (Fig 11a). */
    std::vector<double> perInputLatency;
    /** Delivered packets/cycle per source input (Fig 11c). */
    std::vector<double> perInputThroughput;
    /** Jain fairness index over participating inputs' throughput. */
    double fairness = 1.0;

    double
    acceptedPacketsPerCycle(std::uint32_t packet_len) const
    {
        return acceptedFlitsPerCycle / packet_len;
    }
};

class NetworkSim
{
  public:
    /** Above this per-input injection rate the event heap is skipped
     *  in favour of per-cycle polling (see injHeapOn_): the expected
     *  inter-injection gap is < 1/rate cycles, too short for the
     *  O(log radix) heap churn per injection to pay off. Public so
     *  the campaign layer routes points the same way: at or below
     *  this rate the scalar core's heap + idle fast-forward beats the
     *  batched per-cycle poll, so batching starts above it. */
    static constexpr double kInjHeapMaxRate = 0.125;

    NetworkSim(const SwitchSpec &spec, const SimConfig &cfg,
               std::shared_ptr<traffic::TrafficPattern> pattern);

    /** As above, but with a caller-supplied fabric (an oracle, a
     *  lockstep differential fabric, or a pre-faulted instance). */
    NetworkSim(const SwitchSpec &spec, const SimConfig &cfg,
               std::shared_ptr<traffic::TrafficPattern> pattern,
               std::unique_ptr<fabric::Fabric> fabric);

    /** Attach a fault schedule. Must be called before the first
     *  step (events are relative to cycle 0); requires a fabric with
     *  failable channels. */
    void setFaultSchedule(const FaultSchedule &sched);

    /** Run warmup + measurement; returns the aggregated result.
     *  Boundaries are absolute (warmup ends at cycle
     *  cfg.warmupCycles, measurement at warmup + measure), so a
     *  restored simulator picks up run() mid-flight and produces a
     *  bit-identical SimResult. */
    SimResult run();

    /** Advance to absolute cycle @p target (no-op when already
     *  there), flipping the measurement window on/off at the exact
     *  run() boundaries. run() == advanceTo(end) + aggregation. */
    void advanceTo(net::Cycle target);

    /** Advance exactly one switch cycle (exposed for unit tests).
     *  Identical observable semantics in both stepping modes. */
    void step() { stepTo(cycle_ + 1); }

    net::Cycle now() const { return cycle_; }
    const fabric::Fabric &fabricRef() const { return *fabric_; }
    net::InputPort &port(std::uint32_t i) { return ports_[i]; }
    const FaultManager &faultManager() const { return faultMgr_; }

    /** Flits still inside source queues, VCs, or in flight. */
    std::uint64_t backlogFlits() const;

    std::uint64_t totalInjectedPackets() const { return injected_; }
    std::uint64_t totalDeliveredPackets() const { return delivered_; }
    std::uint64_t totalDeliveredFlits() const { return flitsDelivered_; }
    std::uint64_t totalDroppedPackets() const { return packetsDropped_; }
    std::uint64_t totalDroppedFlits() const { return droppedFlits_; }

    // -- checkpoint/restore ------------------------------------------

    /** Serialize full simulator state (cycle, ports, fabric, fault
     *  manager, pattern state, measurement accumulators). load() runs
     *  on a freshly constructed sim with identical spec/config/
     *  pattern/schedule; derived structures are rebuilt. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

    /** Content hash of the configuration (spec + SimConfig + pattern
     *  descriptor + fault descriptor); embedded in snapshot files so
     *  cross-configuration restores are rejected. */
    std::uint64_t configKey() const;

    /** save()/load() framed through common/snapshot.hh's versioned,
     *  checksummed file format. False on I/O or validation failure
     *  (the sim is untouched on a failed load). */
    bool saveSnapshotFile(const std::string &path) const;
    bool loadSnapshotFile(const std::string &path);

    /** True when this run takes the virtual-source-queue saturation
     *  fast path (load >= 1, memoryless pattern, legacy path not
     *  pinned). Exposed for tests asserting path activation. */
    bool virtualSourceQueuesActive() const { return satOn_; }

  private:
    /** One pending injection event: input @c input next injects (or,
     *  for scan-chunk probes, must be re-scanned) at @c cycle. */
    struct InjEvent
    {
        net::Cycle cycle;
        std::uint32_t input;
    };

    /** Advance at least one cycle, never past @p bound (so warmup /
     *  measurement boundaries stay exact across fast-forwards). */
    void stepTo(net::Cycle bound);
    void stepOnce();

    void injectDenseCycle();
    void injectEventCycle();
    void injectVirtualCycle(); //!< saturation fast path: accounting only
    void injectPacket(std::uint32_t i, std::uint32_t dst);
    void fillPhase();
    void fillVirtualPhase(); //!< fill straight from virtual queue heads
    void arbitrateCycle();       //!< dense reference: full input scan
    void arbitrateCycleActive(); //!< event mode: eligible-set walk
    void applyGrant(std::uint32_t i);
    void transferCycle();

    /** Tear down connections the fabric broke on channel failure:
     *  drop the in-flight packets, charge the dropped-flit ledger,
     *  and resync the incremental port/output sets. */
    void handleBroken(const std::vector<fabric::BrokenConn> &broken);
    /** Rebuild every derived structure (eligible/connected/fill
     *  bitsets, output availability, injection heap) from restored
     *  port + fabric state. */
    void rebuildDerived();
    net::Cycle warmEnd() const { return cfg_.warmupCycles; }
    net::Cycle runEnd() const
    {
        return cfg_.warmupCycles + cfg_.measureCycles;
    }

    void scheduleNextInjection(std::uint32_t i, net::Cycle from);
    void heapPush(InjEvent ev);
    bool canFastForward() const;
#ifdef HIRISE_CHECK_ENABLED
    void checkInvariants() const;
#endif

    SwitchSpec spec_;
    SimConfig cfg_;
    std::shared_ptr<traffic::TrafficPattern> pattern_;
    std::unique_ptr<fabric::Fabric> fabric_;
    std::vector<net::InputPort> ports_;
    /** Event-driven core enabled (== !cfg_.denseStepping). */
    bool event_;
    /** Pattern has no per-input state: injections can be scheduled
     *  ahead as events and idle spans fast-forwarded. */
    bool memoryless_;
    /** Event mode schedules injections through injHeap_. False at
     *  high injection rates, where nearly every (input, cycle) fires
     *  and the heap churn costs more than the per-cycle poll it
     *  replaces; the counter RNG makes both strategies produce the
     *  same injections, so this is a pure perf knob. Implies no idle
     *  fast-forward (the next injection time is then unknown, and at
     *  such rates quiescent spans do not occur anyway). */
    bool injHeapOn_;
    /** Virtual-source-queue saturation fast path live for this run
     *  (load >= 1, memoryless pattern, legacy path not pinned via
     *  cfg_.legacySatQueues or HIRISE_LEGACY_SAT_QUEUES). Source
     *  queues then never materialize: injection is an accounting
     *  bump, fillVirtualPhase() streams from satQ_'s head packets,
     *  and backlogFlits() derives queue depth arithmetically. Both
     *  stepping modes support it (at load >= 1 injHeapOn_ is always
     *  false, so they share the per-cycle injection structure). */
    bool satOn_ = false;
    VirtualSourceQueues satQ_;
    /** Participating inputs of satQ_, for the fast path's fill walk
     *  (ascending order matches the dense injection scan). */
    BitVec satPart_;

    // Per-cycle scratch, preallocated in the constructor and reused
    // every step() so the steady-state loop never touches the heap.
    std::vector<std::uint32_t> reqScratch_;    //!< input -> output
    std::vector<std::uint32_t> candVcScratch_; //!< input -> VC
    /** Free outputs. Dense mode rebuilds it from fabric state every
     *  arbitration; event mode maintains it incrementally (clear on
     *  grant, set on release), which checkInvariants() verifies
     *  against outputBusy(). */
    BitVec dstFreeScratch_;
    /** Inputs currently holding a connection; transferCycle() visits
     *  only these instead of scanning all radix ports (at moderate
     *  load most ports are idle most cycles). */
    BitVec connectedPorts_;
    /** Inputs that could request this cycle: not connected and with at
     *  least one occupied (hence head-ready) VC. Updated at fill,
     *  grant, and release boundaries; the event-mode arbitration walks
     *  only these bits. */
    BitVec eligibleInputs_;
    /** Inputs with a non-empty source queue (covers in-flight fills:
     *  a packet streams out of the queue only after its last flit).
     *  fillPhase() visits only these. */
    BitVec fillPending_;
    /** Min-heap on (cycle, input) of pending injection events, one
     *  outstanding entry per participating input (memoryless event
     *  mode only). Ascending input order at equal cycle keeps packet
     *  ids identical to the dense core's per-cycle input scan. */
    std::vector<InjEvent> injHeap_;
    /** Inputs that submitted a request this cycle, for sparse reset
     *  of reqScratch_/candVcScratch_ (event mode keeps both in their
     *  all-idle state between cycles). */
    std::vector<std::uint32_t> activeReq_;

    /** Cycles scanned per nextInjectionFrom call before conceding a
     *  probe event (bounds single-call latency at very low rates; a
     *  probe re-scans when popped). */
    static constexpr net::Cycle kInjectScanChunk = 1u << 20;

    /** Fault machinery live for this run (non-empty schedule). The
     *  hot path pays one predictable branch per phase when off. */
    bool faultsOn_ = false;
    FaultManager faultMgr_;
    /** Victim scratch for beginCycle/applyPending fault breaks. */
    std::vector<fabric::BrokenConn> brokenScratch_;

    net::Cycle cycle_ = 0;
    net::PacketId nextId_ = 1;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t flitsDelivered_ = 0;
    /** Flits of fault-dropped packets never delivered; completes the
     *  conservation identity injected*len == delivered + backlog +
     *  dropped. */
    std::uint64_t droppedFlits_ = 0;
    std::uint64_t packetsDropped_ = 0;

    // Measurement-window accounting.
    bool measuring_ = false;
    net::Cycle measureStart_ = 0;
    std::uint64_t measFlitsDelivered_ = 0;
    std::uint64_t measFlitsOffered_ = 0;
    /** Packets injected during the window / delivered packets that
     *  were injected during the window; the difference at window
     *  close, net of window-injected drops, is the right-censored
     *  population (inFlightAtMeasureEnd). */
    std::uint64_t measPacketsInjected_ = 0;
    std::uint64_t measPacketsCompleted_ = 0;
    std::uint64_t measPacketsDropped_ = 0;
    RunningStat latency_;
    RunningStat queueing_;
    Histogram latencyHist_{4.0, 4096};
    std::vector<RunningStat> perInputLatency_;
    std::vector<std::uint64_t> perInputPackets_;
};

} // namespace hirise::sim

#endif // HIRISE_SIM_NETWORK_SIM_HH
