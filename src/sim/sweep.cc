#include "sim/sweep.hh"

#include "common/parallel.hh"

namespace hirise::sim {

SimResult
runAtLoad(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, double load)
{
    SimConfig cfg = base;
    cfg.injectionRate = load;
    NetworkSim sim(spec, cfg, make());
    return sim.run();
}

std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads)
{
    // Each point is an independent, self-seeded simulation.
    return parallelMap(loads, [&](const double &l) {
        return SweepPoint{l, runAtLoad(spec, base, make, l)};
    });
}

double
saturationFlitsPerCycle(const SwitchSpec &spec, const SimConfig &base,
                        const PatternFactory &make)
{
    return runAtLoad(spec, base, make, 1.0).acceptedFlitsPerCycle;
}

double
saturationLoad(const SwitchSpec &spec, const SimConfig &base,
               const PatternFactory &make, double lo, double hi,
               int iters)
{
    for (int i = 0; i < iters; ++i) {
        double mid = 0.5 * (lo + hi);
        SimResult r = runAtLoad(spec, base, make, mid);
        if (r.acceptedFlitsPerCycle >= 0.98 * r.offeredFlitsPerCycle)
            lo = mid; // still below saturation
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
toTbps(double flits_per_cycle, double freq_ghz, std::uint32_t flit_bits)
{
    return flits_per_cycle * freq_ghz * 1e9 *
           static_cast<double>(flit_bits) * 1e-12;
}

double
toPacketsPerNs(double flits_per_cycle, double freq_ghz,
               std::uint32_t packet_len)
{
    return flits_per_cycle / static_cast<double>(packet_len) * freq_ghz;
}

} // namespace hirise::sim
