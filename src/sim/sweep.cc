#include "sim/sweep.hh"

#include <algorithm>

#include "common/parallel.hh"
#include "common/random.hh"

namespace hirise::sim {

SimResult
runAtLoad(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, double load)
{
    SimConfig cfg = base;
    cfg.injectionRate = load;
    NetworkSim sim(spec, cfg, make());
    return sim.run();
}

SimResult
runAtLoadCached(const SwitchSpec &spec, const SimConfig &base,
                const PatternFactory &make, double load, SimCache *cache)
{
    SimConfig cfg = base;
    cfg.injectionRate = load;
    auto pattern = make();
    SimCache &c = cache ? *cache : SimCache::global();
    std::uint64_t key = SimCache::key(spec, cfg, pattern->descriptor());
    SimResult r;
    if (c.lookup(key, &r))
        return r;
    NetworkSim sim(spec, cfg, std::move(pattern));
    r = sim.run();
    c.store(key, r);
    return r;
}

std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads,
          const CampaignOptions &opt)
{
    // Each point is an independent, self-seeded simulation; the shard
    // seed (when enabled) depends only on (base seed, index), never on
    // thread count or completion order.
    std::vector<std::size_t> idx(loads.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    return parallelMap(
        idx,
        [&](const std::size_t &i) {
            SimConfig cfg = base;
            if (opt.shardSeeds)
                cfg.seed = shardSeed(base.seed, i);
            return SweepPoint{loads[i], runAtLoadCached(spec, cfg, make,
                                                        loads[i],
                                                        opt.cache)};
        },
        opt.maxThreads, opt.pool);
}

std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads)
{
    return loadSweep(spec, base, make, loads, CampaignOptions{});
}

double
saturationFlitsPerCycle(const SwitchSpec &spec, const SimConfig &base,
                        const PatternFactory &make)
{
    return runAtLoadCached(spec, base, make, 1.0).acceptedFlitsPerCycle;
}

namespace {

bool
belowSaturation(const SimResult &r)
{
    return r.acceptedFlitsPerCycle >= 0.98 * r.offeredFlitsPerCycle;
}

/** Preorder layout (node, left subtree, right subtree) of every
 *  midpoint a depth-@p depth bisection could visit from (lo, hi),
 *  computed by the same 0.5*(lo+hi) recursion as the serial search so
 *  speculative and serial answers are bit-identical. */
void
speculationTree(double lo, double hi, int depth,
                std::vector<double> &out)
{
    if (depth == 0)
        return;
    double mid = 0.5 * (lo + hi);
    out.push_back(mid);
    speculationTree(lo, mid, depth - 1, out); // "above saturation" arm
    speculationTree(mid, hi, depth - 1, out); // "below saturation" arm
}

} // namespace

double
saturationLoad(const SwitchSpec &spec, const SimConfig &base,
               const PatternFactory &make, double lo, double hi,
               int iters)
{
    for (int i = 0; i < iters; ++i) {
        double mid = 0.5 * (lo + hi);
        SimResult r = runAtLoadCached(spec, base, make, mid);
        if (belowSaturation(r))
            lo = mid; // still below saturation
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
saturationLoadSpeculative(const SwitchSpec &spec, const SimConfig &base,
                          const PatternFactory &make, double lo,
                          double hi, int iters, int spec_depth,
                          const CampaignOptions &opt)
{
    spec_depth = std::max(spec_depth, 1);
    std::vector<double> mids;
    for (int done = 0; done < iters;) {
        int d = std::min(spec_depth, iters - done);
        mids.clear();
        speculationTree(lo, hi, d, mids);
        std::vector<char> below = parallelMap(
            mids,
            [&](const double &m) -> char {
                return belowSaturation(
                    runAtLoadCached(spec, base, make, m, opt.cache));
            },
            opt.maxThreads, opt.pool);

        // Walk the verdicts down the preorder tree: a node's left
        // subtree (taken when the midpoint saturates) directly follows
        // it; the right subtree starts one full left-subtree later.
        std::size_t pos = 0;
        for (int level = 0; level < d; ++level) {
            double mid = mids[pos];
            std::size_t leftSize =
                (std::size_t{1} << (d - level - 1)) - 1;
            if (below[pos]) {
                lo = mid;
                pos += 1 + leftSize;
            } else {
                hi = mid;
                pos += 1;
            }
        }
        done += d;
    }
    return 0.5 * (lo + hi);
}

double
toTbps(double flits_per_cycle, double freq_ghz, std::uint32_t flit_bits)
{
    return flits_per_cycle * freq_ghz * 1e9 *
           static_cast<double>(flit_bits) * 1e-12;
}

double
toPacketsPerNs(double flits_per_cycle, double freq_ghz,
               std::uint32_t packet_len)
{
    return flits_per_cycle / static_cast<double>(packet_len) * freq_ghz;
}

} // namespace hirise::sim
