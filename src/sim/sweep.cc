#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/parallel.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/batch_sim.hh"

namespace hirise::sim {

namespace {

std::uint32_t
batchReplicasFromEnv()
{
    if (const char *s = std::getenv("HIRISE_BATCH")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(s, &end, 10);
        if (end != s && *end == '\0' && v <= 64)
            return static_cast<std::uint32_t>(v);
    }
    return 8;
}

std::atomic<std::uint32_t> &
batchReplicasSlot()
{
    static std::atomic<std::uint32_t> slot{batchReplicasFromEnv()};
    return slot;
}

} // namespace

std::uint32_t
batchReplicas()
{
    return batchReplicasSlot().load(std::memory_order_relaxed);
}

void
setBatchReplicas(std::uint32_t replicas)
{
    batchReplicasSlot().store(std::min(replicas, 64u),
                              std::memory_order_relaxed);
}

SimResult
runAtLoad(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, double load)
{
    SimConfig cfg = base;
    cfg.injectionRate = load;
    NetworkSim sim(spec, cfg, make());
    return sim.run();
}

SimResult
runAtLoadCached(const SwitchSpec &spec, const SimConfig &base,
                const PatternFactory &make, double load, SimCache *cache)
{
    SimConfig cfg = base;
    cfg.injectionRate = load;
    auto pattern = make();
    SimCache &c = cache ? *cache : SimCache::global();
    std::uint64_t key = SimCache::key(spec, cfg, pattern->descriptor());
    SimResult r;
    if (c.lookup(key, &r))
        return r;
    NetworkSim sim(spec, cfg, std::move(pattern));
    r = sim.run();
    c.store(key, r);
    return r;
}

std::vector<SimResult>
runPointsCached(const SwitchSpec &spec, const SimConfig &base,
                const PatternFactory &make,
                const std::vector<RunPoint> &pts,
                const CampaignOptions &opt)
{
    SimCache &c = opt.cache ? *opt.cache : SimCache::global();
    std::vector<SimResult> results(pts.size());

    // Per-point config + cache probe. The descriptor is a function of
    // constructor parameters only, so one instance describes every
    // replica built from the same factory.
    const std::string desc = make()->descriptor();
    std::vector<SimConfig> cfgs(pts.size(), base);
    std::vector<std::uint64_t> keys(pts.size());
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        cfgs[i].injectionRate = pts[i].load;
        cfgs[i].seed = pts[i].seed;
        keys[i] = SimCache::key(spec, cfgs[i], desc);
        if (!c.lookup(keys[i], &results[i]))
            misses.push_back(i);
    }
    if (misses.empty())
        return results;

    // Group the misses: batchable points (above the scalar core's
    // heap-mode rate ceiling, batching enabled, no tracer armed) in
    // chunks of up to B lanes, the rest as singleton scalar runs.
    const std::uint32_t B = batchReplicas();
    const bool batching =
        B > 1 && !base.trace && BatchSim::usable();
    std::vector<std::vector<std::size_t>> groups;
    std::vector<std::size_t> open;
    for (std::size_t i : misses) {
        if (batching && pts[i].load > NetworkSim::kInjHeapMaxRate) {
            open.push_back(i);
            if (open.size() == B) {
                groups.push_back(open);
                open.clear();
            }
        } else {
            groups.push_back({i});
        }
    }
    if (!open.empty())
        groups.push_back(open);

    auto eval = [&](const std::vector<std::size_t> &g)
        -> std::vector<SimResult> {
        if (g.size() == 1) {
            NetworkSim sim(spec, cfgs[g[0]], make());
            return {sim.run()};
        }
        std::vector<std::shared_ptr<traffic::TrafficPattern>> pats;
        std::vector<BatchPoint> bpts;
        pats.reserve(g.size());
        bpts.reserve(g.size());
        for (std::size_t i : g) {
            pats.push_back(make());
            bpts.push_back({pts[i].load, pts[i].seed});
        }
        BatchSim sim(spec, base, std::move(pats), std::move(bpts));
        return sim.run();
    };
    std::vector<std::vector<SimResult>> ran =
        parallelMap(groups, eval, opt.maxThreads, opt.pool);

    std::uint64_t batch_runs = 0, batch_lanes = 0, scalar_runs = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &g = groups[gi];
        if (g.size() > 1) {
            ++batch_runs;
            batch_lanes += g.size();
        } else {
            ++scalar_runs;
        }
        for (std::size_t j = 0; j < g.size(); ++j) {
            results[g[j]] = ran[gi][j];
            c.store(keys[g[j]], results[g[j]]);
        }
    }
    if (obs::on()) [[unlikely]] {
        auto &reg = obs::MetricsRegistry::global();
        reg.counter("campaign.batch.runs").inc(batch_runs);
        reg.counter("campaign.batch.lanes").inc(batch_lanes);
        reg.counter("campaign.batch.scalar_runs").inc(scalar_runs);
        reg.gauge("campaign.batch.width").set(double(B));
        if (batch_runs > 0) {
            reg.gauge("campaign.batch.occupancy")
                .set(double(batch_lanes) / double(batch_runs * B));
        }
        reg.gauge("simd.tier")
            .set(double(static_cast<int>(simd::activeTier())));
    }
    return results;
}

std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads,
          const CampaignOptions &opt)
{
    // Each point is an independent, self-seeded simulation; the shard
    // seed (when enabled) depends only on (base seed, index), never on
    // thread count or completion order. Cache misses run through the
    // batched engine in groups (bit-identical to per-point runs).
    std::vector<RunPoint> pts(loads.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        pts[i].load = loads[i];
        pts[i].seed =
            opt.shardSeeds ? shardSeed(base.seed, i) : base.seed;
    }
    std::vector<SimResult> res =
        runPointsCached(spec, base, make, pts, opt);
    std::vector<SweepPoint> out(loads.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = SweepPoint{loads[i], std::move(res[i])};
    return out;
}

std::vector<SweepPoint>
loadSweep(const SwitchSpec &spec, const SimConfig &base,
          const PatternFactory &make, const std::vector<double> &loads)
{
    return loadSweep(spec, base, make, loads, CampaignOptions{});
}

double
saturationFlitsPerCycle(const SwitchSpec &spec, const SimConfig &base,
                        const PatternFactory &make)
{
    return runAtLoadCached(spec, base, make, 1.0).acceptedFlitsPerCycle;
}

namespace {

bool
belowSaturation(const SimResult &r)
{
    return r.acceptedFlitsPerCycle >= 0.98 * r.offeredFlitsPerCycle;
}

/** Preorder layout (node, left subtree, right subtree) of every
 *  midpoint a depth-@p depth bisection could visit from (lo, hi),
 *  computed by the same 0.5*(lo+hi) recursion as the serial search so
 *  speculative and serial answers are bit-identical. */
void
speculationTree(double lo, double hi, int depth,
                std::vector<double> &out)
{
    if (depth == 0)
        return;
    double mid = 0.5 * (lo + hi);
    out.push_back(mid);
    speculationTree(lo, mid, depth - 1, out); // "above saturation" arm
    speculationTree(mid, hi, depth - 1, out); // "below saturation" arm
}

} // namespace

double
saturationLoad(const SwitchSpec &spec, const SimConfig &base,
               const PatternFactory &make, double lo, double hi,
               int iters)
{
    for (int i = 0; i < iters; ++i) {
        double mid = 0.5 * (lo + hi);
        SimResult r = runAtLoadCached(spec, base, make, mid);
        if (belowSaturation(r))
            lo = mid; // still below saturation
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
saturationLoadSpeculative(const SwitchSpec &spec, const SimConfig &base,
                          const PatternFactory &make, double lo,
                          double hi, int iters, int spec_depth,
                          const CampaignOptions &opt)
{
    spec_depth = std::max(spec_depth, 1);
    std::vector<double> mids;
    for (int done = 0; done < iters;) {
        int d = std::min(spec_depth, iters - done);
        mids.clear();
        speculationTree(lo, hi, d, mids);
        // The whole speculation tree is one point family, so its
        // cache misses batch into BatchSim lanes instead of 2^d - 1
        // independent scalar runs.
        std::vector<RunPoint> tree(mids.size());
        for (std::size_t i = 0; i < mids.size(); ++i)
            tree[i] = RunPoint{mids[i], base.seed};
        std::vector<SimResult> evals =
            runPointsCached(spec, base, make, tree, opt);
        std::vector<char> below(mids.size());
        for (std::size_t i = 0; i < mids.size(); ++i)
            below[i] = belowSaturation(evals[i]);

        // Walk the verdicts down the preorder tree: a node's left
        // subtree (taken when the midpoint saturates) directly follows
        // it; the right subtree starts one full left-subtree later.
        std::size_t pos = 0;
        for (int level = 0; level < d; ++level) {
            double mid = mids[pos];
            std::size_t leftSize =
                (std::size_t{1} << (d - level - 1)) - 1;
            if (below[pos]) {
                lo = mid;
                pos += 1 + leftSize;
            } else {
                hi = mid;
                pos += 1;
            }
        }
        done += d;
    }
    return 0.5 * (lo + hi);
}

double
toTbps(double flits_per_cycle, double freq_ghz, std::uint32_t flit_bits)
{
    return flits_per_cycle * freq_ghz * 1e9 *
           static_cast<double>(flit_bits) * 1e-12;
}

double
toPacketsPerNs(double flits_per_cycle, double freq_ghz,
               std::uint32_t packet_len)
{
    return flits_per_cycle / static_cast<double>(packet_len) * freq_ghz;
}

} // namespace hirise::sim
