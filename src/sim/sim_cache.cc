#include "sim/sim_cache.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hirise::sim {

namespace {

constexpr std::uint32_t kMagic = 0x48525343; // "HRSC"

/** Disk writes between store()-driven eviction attempts. */
constexpr std::uint32_t kEvictEvery = 32;

/** A *.tmp.* file this much older than the newest record is a
 *  crashed writer's leftover; the eviction pass deletes it. */
constexpr double kStaleTmpSeconds = 300.0;

/**
 * Scoped flock(2) on <dir>/.lock. Each instance opens its own file
 * descriptor: flock locks belong to the open file description, so a
 * shared fd would make a second lock call from another thread
 * *convert* the first lock instead of contending with it. Separate
 * fds give real mutual exclusion both across processes and across
 * threads of one process (tests/sim_cache_test.cc races two threads
 * through here). The lock dies with the fd — and with the process —
 * so a crash can never leave the directory wedged.
 */
class DirLock
{
  public:
    DirLock(const std::string &dir, int op)
    {
        std::string path = dir + "/.lock";
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                     0644);
        if (fd_ < 0)
            return;
        if (::flock(fd_, op) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~DirLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

class Fnv1a
{
  public:
    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 0x100000001b3ull;
        }
    }

    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    /** Doubles hash via their bit pattern, canonicalized first: the
     *  simulation cannot distinguish -0.0 from 0.0 (sweep arithmetic
     *  like `lo + 0.5 * (hi - lo)` produces either spelling for the
     *  same injection rate), so both must map to one key. NaN has no
     *  canonical bit pattern and never names a valid simulation
     *  point, so it is rejected outright. */
    void
    d(double v)
    {
        sim_assert(!std::isnan(v), "NaN in simulation cache key");
        if (v == 0.0)
            v = 0.0; // -0.0 == 0.0 compares true; store +0.0 bits
        pod(std::bit_cast<std::uint64_t>(v));
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/** Fixed on-disk field order; any layout change requires a
 *  kSimCacheVersion bump. */
struct RecordHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t key;
    std::uint64_t packetsDelivered;
    std::uint64_t inFlightAtMeasureEnd;
    std::uint64_t latencyOverflowPackets;
    std::uint64_t packetsDropped;
    double offered;
    double accepted;
    double avgLatency;
    double p99Latency;
    double avgQueueing;
    double fairness;
    std::uint32_t numPerInputLatency;
    std::uint32_t numPerInputThroughput;
};

} // namespace

SimCache::SimCache(std::size_t capacity, std::string disk_dir,
                   std::uint32_t version,
                   std::uint64_t disk_cap_bytes)
    : capacity_(capacity ? capacity : 1), diskDir_(std::move(disk_dir)),
      version_(version), diskCapBytes_(disk_cap_bytes)
{
    if (!diskDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(diskDir_, ec);
        if (ec) {
            warn("simcache: cannot create '%s' (%s); disk tier off",
                 diskDir_.c_str(), ec.message().c_str());
            diskDir_.clear();
        }
    }
}

std::uint64_t
SimCache::key(const SwitchSpec &spec, const SimConfig &cfg,
              std::string_view pattern_desc,
              std::string_view fault_desc)
{
    Fnv1a h;
    h.pod(kSimCacheVersion);

    h.pod(static_cast<std::uint32_t>(spec.topo));
    h.pod(spec.radix);
    h.pod(spec.layers);
    h.pod(spec.channels);
    h.pod(spec.flitBits);
    h.pod(static_cast<std::uint32_t>(spec.arb));
    h.pod(static_cast<std::uint32_t>(spec.alloc));
    h.pod(spec.clrgMaxCount);
    h.pod(spec.schedIters);
    h.pod(spec.schedSeed);

    h.pod(cfg.numVcs);
    h.pod(cfg.vcDepth);
    h.pod(cfg.packetLen);
    h.d(cfg.injectionRate);
    h.pod(cfg.warmupCycles);
    h.pod(cfg.measureCycles);
    h.pod(cfg.seed);
    // cfg.trace, cfg.denseStepping, and cfg.legacySatQueues are
    // deliberately not hashed: none may change the SimResult (the
    // stepping modes and the virtual-vs-queued saturation paths are
    // bit-identical by construction), so a cached result from one
    // mode is valid for the others.

    h.pod(static_cast<std::uint64_t>(pattern_desc.size()));
    h.bytes(pattern_desc.data(), pattern_desc.size());
    // Fault-free runs hash an empty descriptor, so pre-fault keys for
    // schedule-less points are unchanged in spirit (the version bump
    // invalidates old records anyway).
    h.pod(static_cast<std::uint64_t>(fault_desc.size()));
    h.bytes(fault_desc.data(), fault_desc.size());
    return h.value();
}

bool
SimCache::lookup(std::uint64_t key, SimResult *out)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            *out = it->second->second;
            ++stats_.hits;
            if (obs::on()) [[unlikely]]
                obs::CycleTracer::global().record(obs::Ev::CacheHit, 0,
                                                  0, 0, key);
            return true;
        }
    }
    if (diskEnabled() && readDisk(key, out)) {
        std::lock_guard<std::mutex> lk(mu_);
        insertLocked(key, *out);
        ++stats_.hits;
        ++stats_.diskHits;
        if (obs::on()) [[unlikely]]
            obs::CycleTracer::global().record(obs::Ev::CacheHit, 1, 0,
                                              0, key);
        return true;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    if (obs::on()) [[unlikely]]
        obs::CycleTracer::global().record(obs::Ev::CacheMiss, 0, 0, 0,
                                          key);
    return false;
}

void
SimCache::store(std::uint64_t key, const SimResult &r)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        insertLocked(key, r);
        ++stats_.stores;
    }
    if (diskEnabled())
        writeDisk(key, r);
}

void
SimCache::insertLocked(std::uint64_t key, const SimResult &r)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = r;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, r);
    index_[key] = lru_.begin();
    while (index_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

SimCache::Stats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
SimCache::resetStats()
{
    std::lock_guard<std::mutex> lk(mu_);
    stats_ = Stats{};
}

std::size_t
SimCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return index_.size();
}

std::string
SimCache::recordPath(std::uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.simres",
                  static_cast<unsigned long long>(key));
    return diskDir_ + "/" + name;
}

bool
SimCache::readDisk(std::uint64_t key, SimResult *out) const
{
    std::ifstream f(recordPath(key), std::ios::binary);
    if (!f)
        return false;
    RecordHeader hdr{};
    f.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!f || hdr.magic != kMagic || hdr.version != version_ ||
        hdr.key != key) {
        return false; // stale schema or foreign record: miss
    }
    SimResult r;
    r.offeredFlitsPerCycle = hdr.offered;
    r.acceptedFlitsPerCycle = hdr.accepted;
    r.avgLatencyCycles = hdr.avgLatency;
    r.p99LatencyCycles = hdr.p99Latency;
    r.avgQueueingCycles = hdr.avgQueueing;
    r.fairness = hdr.fairness;
    r.packetsDelivered = hdr.packetsDelivered;
    r.inFlightAtMeasureEnd = hdr.inFlightAtMeasureEnd;
    r.latencyOverflowPackets = hdr.latencyOverflowPackets;
    r.packetsDropped = hdr.packetsDropped;
    r.perInputLatency.resize(hdr.numPerInputLatency);
    r.perInputThroughput.resize(hdr.numPerInputThroughput);
    f.read(reinterpret_cast<char *>(r.perInputLatency.data()),
           static_cast<std::streamsize>(hdr.numPerInputLatency *
                                        sizeof(double)));
    f.read(reinterpret_cast<char *>(r.perInputThroughput.data()),
           static_cast<std::streamsize>(hdr.numPerInputThroughput *
                                        sizeof(double)));
    if (!f)
        return false;
    *out = std::move(r);
    return true;
}

bool
SimCache::evictDisk(bool wait)
{
    if (!diskEnabled() || diskCapBytes_ == 0)
        return false;
    DirLock lock(diskDir_, LOCK_EX | (wait ? 0 : LOCK_NB));
    if (!lock.held())
        return false; // another process is already evicting

    namespace fs = std::filesystem;
    struct Rec
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t size;
    };
    std::vector<Rec> recs;
    std::uint64_t total = 0;
    fs::file_time_type newest{};
    std::error_code ec;
    for (const auto &ent : fs::directory_iterator(diskDir_, ec)) {
        const fs::path &p = ent.path();
        std::string name = p.filename().string();
        fs::file_time_type mt = ent.last_write_time(ec);
        if (ec)
            continue;
        if (name.size() > 7 &&
            name.compare(name.size() - 7, 7, ".simres") == 0) {
            std::uint64_t sz = ent.file_size(ec);
            if (ec)
                continue;
            recs.push_back({p, mt, sz});
            total += sz;
            newest = std::max(newest, mt);
        } else if (name.find(".tmp.") != std::string::npos) {
            // Crashed writer's leftover — but only when clearly old:
            // a live writer holds the shared lock, so we can't be
            // racing one here, yet clock skew across hosts on shared
            // storage still warrants the age margin.
            auto age = std::chrono::duration_cast<
                std::chrono::duration<double>>(
                fs::file_time_type::clock::now() - mt);
            if (age.count() > kStaleTmpSeconds)
                fs::remove(p, ec);
        }
    }
    (void)newest;
    if (total <= diskCapBytes_)
        return true;

    // Oldest-first, down to ~80% of the cap (hysteresis).
    std::sort(recs.begin(), recs.end(),
              [](const Rec &a, const Rec &b) {
                  return a.mtime < b.mtime;
              });
    std::uint64_t target = diskCapBytes_ - diskCapBytes_ / 5;
    for (const Rec &r : recs) {
        if (total <= target)
            break;
        if (fs::remove(r.path, ec))
            total -= r.size;
    }
    return true;
}

void
SimCache::writeDisk(std::uint64_t key, const SimResult &r)
{
    RecordHeader hdr{};
    hdr.magic = kMagic;
    hdr.version = version_;
    hdr.key = key;
    hdr.packetsDelivered = r.packetsDelivered;
    hdr.inFlightAtMeasureEnd = r.inFlightAtMeasureEnd;
    hdr.latencyOverflowPackets = r.latencyOverflowPackets;
    hdr.packetsDropped = r.packetsDropped;
    hdr.offered = r.offeredFlitsPerCycle;
    hdr.accepted = r.acceptedFlitsPerCycle;
    hdr.avgLatency = r.avgLatencyCycles;
    hdr.p99Latency = r.p99LatencyCycles;
    hdr.avgQueueing = r.avgQueueingCycles;
    hdr.fairness = r.fairness;
    hdr.numPerInputLatency =
        static_cast<std::uint32_t>(r.perInputLatency.size());
    hdr.numPerInputThroughput =
        static_cast<std::uint32_t>(r.perInputThroughput.size());

    // Atomic publish: concurrent writers of the same key race
    // harmlessly (identical contents), readers only ever see a
    // complete record. The shared directory lock excludes the
    // eviction pass (exclusive) for the whole temp-write + rename
    // window, so an evictor can never delete the temp file or
    // misjudge the record mid-publish; writers do not exclude each
    // other.
    {
        DirLock lock(diskDir_, LOCK_SH);
        std::string path = recordPath(key);
        std::string tmp =
            path + ".tmp." +
            std::to_string(static_cast<unsigned long long>(
                std::hash<std::thread::id>{}(
                    std::this_thread::get_id())));
        {
            std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
            if (!f)
                return;
            f.write(reinterpret_cast<const char *>(&hdr),
                    sizeof(hdr));
            f.write(reinterpret_cast<const char *>(
                        r.perInputLatency.data()),
                    static_cast<std::streamsize>(
                        r.perInputLatency.size() * sizeof(double)));
            f.write(reinterpret_cast<const char *>(
                        r.perInputThroughput.data()),
                    static_cast<std::streamsize>(
                        r.perInputThroughput.size() *
                        sizeof(double)));
            if (!f)
                return;
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec)
            std::filesystem::remove(tmp, ec);
    }

    // Pace the cap check; runs with the shared lock released (the
    // pass takes the exclusive lock on its own fd).
    if (diskCapBytes_ != 0 &&
        storesSinceEvict_.fetch_add(1, std::memory_order_relaxed) +
                1 >=
            kEvictEvery) {
        storesSinceEvict_.store(0, std::memory_order_relaxed);
        evictDisk(false);
    }
}

namespace {

std::size_t
envCapacity()
{
    if (const char *env = std::getenv("HIRISE_SIMCACHE_CAP")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return 4096;
}

std::string
envDiskDir()
{
    const char *dir = std::getenv("HIRISE_SIMCACHE_DIR");
    return dir ? dir : "";
}

std::uint64_t
envDiskCap()
{
    if (const char *env = std::getenv("HIRISE_SIMCACHE_DISK_CAP")) {
        long long n = std::strtoll(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::uint64_t>(n);
    }
    return 0;
}

} // namespace

SimCache &
SimCache::global()
{
    static SimCache cache(envCapacity(), envDiskDir(),
                          kSimCacheVersion, envDiskCap());
    return cache;
}

} // namespace hirise::sim
