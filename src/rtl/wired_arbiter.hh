/**
 * @file
 * Wire-level model of the Swizzle-Switch arbitration circuit
 * (paper sections II-A and IV, Figs 6-7).
 *
 * The behavioral arbiters in src/arb decide with ordinary control
 * flow; the classes here instead emulate the actual circuit: output
 * data lines are precharged and reused as priority lines, requestors
 * pull down the lines polled by lower-priority contenders, and a
 * sense-amp-enabled latch at each cross-point reads whether its own
 * line survived. A requestor wins exactly when its polled line is
 * still high at the end of the evaluate phase - that is what makes
 * the arbitration single-cycle and area-free.
 *
 * The CLRG variant models Fig 7 exactly: priority lines are grouped
 * per class, Mux1 selects the class counter of the L2LC's winning
 * primary input, the Priority Select Muxes (PSMs) drive '1' onto all
 * lines of lower-priority classes, the port's LRG vector onto its own
 * class group, and '0' onto higher-priority groups, and Mux2 picks
 * which of the per-class lines feeds the sense amp.
 *
 * Equivalence with the behavioral arbiters is asserted by
 * tests/rtl_test.cc over randomized request streams, validating the
 * paper's claim that CLRG "allows for single cycle arbitration and
 * full integration within the switch fabric".
 */

#ifndef HIRISE_RTL_WIRED_ARBITER_HH
#define HIRISE_RTL_WIRED_ARBITER_HH

#include <cstdint>
#include <vector>

#include "arb/sub_block_arbiter.hh"

namespace hirise::rtl {

/**
 * A bank of precharged wires with pull-down (wired-NOR) semantics.
 */
class PriorityLines
{
  public:
    explicit PriorityLines(std::uint32_t n) : high_(n, true) {}

    /** Precharge phase: every line returns high. */
    void
    precharge()
    {
        std::fill(high_.begin(), high_.end(), true);
    }

    /** A cross-point's pull-down transistor discharges line i. */
    void pullDown(std::uint32_t i) { high_[i] = false; }

    /** Sense-amp read at the end of the evaluate phase. */
    bool sense(std::uint32_t i) const { return high_[i]; }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(high_.size());
    }

  private:
    std::vector<bool> high_;
};

/**
 * Wire-level flat LRG column: N requestors, N priority lines, one
 * priority bit per cross-point pair. Circuit-equivalent to
 * arb::MatrixArbiter (asserted by tests).
 */
class WiredLrgColumn
{
  public:
    static constexpr std::uint32_t kNone = ~0u;

    explicit WiredLrgColumn(std::uint32_t n);

    /**
     * One arbitration cycle: precharge, evaluate (requestors pull
     * down the lines of contenders they outrank), sense. Does not
     * update priority state (the connect/update step is separate, as
     * in the hardware where the LRG update is triggered by the win).
     */
    std::uint32_t evaluate(const std::vector<bool> &req);

    /** LRG self-update: the winner's priority bits all clear, and
     *  every other cross-point sets its bit over the winner. */
    void updateLrg(std::uint32_t winner);

  private:
    std::uint32_t n_;
    /** outranks_[i*n+j]: cross-point i holds priority over j. */
    std::vector<bool> outranks_;
    PriorityLines lines_;
};

/**
 * Wire-level CLRG inter-layer sub-block cross-point group (Fig 7):
 * P ports (L2LCs + the local intermediate output), K priority
 * classes, and a thermometer class counter per primary input.
 */
class WiredClrgSubBlock
{
  public:
    static constexpr std::uint32_t kNone = ~0u;

    /**
     * @param ports       cross-points in the sub-block (c*(L-1)+1)
     * @param num_inputs  primary inputs tracked by counters (radix)
     * @param max_count   thermometer saturation (classes-1)
     */
    WiredClrgSubBlock(std::uint32_t ports, std::uint32_t num_inputs,
                      std::uint32_t max_count);

    /**
     * One single-cycle arbitration: returns the winning port (or
     * kNone) and commits the LRG + counter updates, mirroring the
     * connect-and-increment behaviour of the latched cross-point.
     */
    std::uint32_t
    arbitrate(const std::vector<arb::SubBlockRequest> &reqs);

    std::uint32_t classOf(std::uint32_t input) const
    {
        return counter_[input];
    }

  private:
    /** Line index of port p within class group c. */
    std::uint32_t
    line(std::uint32_t cls, std::uint32_t port) const
    {
        return cls * ports_ + port;
    }

    std::uint32_t ports_;
    std::uint32_t classes_;
    std::uint32_t maxCount_;
    /** LRG priority bits between ports. */
    std::vector<bool> outranks_;
    /** Thermometer counters, one per primary input. */
    std::vector<std::uint32_t> counter_;
    /** classes * ports priority lines (class-grouped, Fig 7). */
    PriorityLines lines_;
};

} // namespace hirise::rtl

#endif // HIRISE_RTL_WIRED_ARBITER_HH
