#include "rtl/wired_column.hh"

#include "common/logging.hh"

namespace hirise::rtl {

std::uint32_t
WiredSwitchColumn::arbitrate(const std::vector<bool> &req)
{
    sim_assert(!connected(),
               "the output wires are carrying data this cycle");
    std::uint32_t w = arb_.evaluate(req);
    if (w == WiredLrgColumn::kNone)
        return kNone;
    // The surviving priority line sets the winner's connectivity bit
    // through the sense-amp-enabled latch; the priority vector
    // self-updates at the end of the arbitration phase (II-A).
    connect_[w] = true;
    owner_ = w;
    arb_.updateLrg(w);
    return w;
}

std::uint64_t
WiredSwitchColumn::transfer(const std::vector<std::uint64_t> &in_words)
{
    sim_assert(connected(), "no connectivity bit set");
    sim_assert(in_words.size() == connect_.size(),
               "one input word per crosspoint");
    // Precharge-high lines; the connected crosspoint's pull-downs
    // discharge the zero bits of its input word (active-low sensing
    // modeled away: the sensed word equals the input word).
    std::uint64_t sensed = in_words[owner_];
    for (std::size_t i = 0; i < connect_.size(); ++i) {
        sim_assert(connect_[i] == (i == owner_),
                   "multiple connectivity bits set on one column");
    }
    return sensed;
}

void
WiredSwitchColumn::release()
{
    sim_assert(connected(), "release of idle column");
    connect_[owner_] = false;
    owner_ = kNone;
}

} // namespace hirise::rtl
