/**
 * @file
 * Wire-level model of one complete Swizzle-Switch output column:
 * arbitration AND data transfer over the same physical wires
 * (paper section II-A / Fig 6). This is the mechanism behind the
 * "either arbitrate or transmit data in a single cycle" property:
 * the output data lines double as priority lines during arbitration,
 * and the sense-amp-enabled latch that reads the surviving priority
 * line *is* the connectivity bit that later steers data.
 */

#ifndef HIRISE_RTL_WIRED_COLUMN_HH
#define HIRISE_RTL_WIRED_COLUMN_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "rtl/wired_arbiter.hh"

namespace hirise::rtl {

/**
 * One output column with N crosspoints. Each cycle is either an
 * arbitration cycle (when the column is free and someone requests)
 * or a data cycle (when a connectivity bit is set); never both,
 * because both uses need the same wires.
 */
class WiredSwitchColumn
{
  public:
    static constexpr std::uint32_t kNone = ~0u;

    explicit WiredSwitchColumn(std::uint32_t n)
        : arb_(n), connect_(n, false)
    {}

    /** Is any crosspoint's connectivity bit set? */
    bool connected() const { return owner_ != kNone; }
    std::uint32_t owner() const { return owner_; }

    /**
     * Arbitration cycle: requestors drive the priority lines; the
     * winner's sense-amp latch captures its connectivity bit.
     * Returns the winner (kNone if no requests).
     * @pre the column is idle (the wires are not carrying data).
     */
    std::uint32_t arbitrate(const std::vector<bool> &req);

    /**
     * Data cycle: the connected input's pull-downs drive its word
     * onto the (precharged) output lines. @pre connected().
     */
    std::uint64_t transfer(const std::vector<std::uint64_t> &in_words);

    /** Release: clear the connectivity bit and update the LRG (the
     *  self-updating priority of the Swizzle-Switch). */
    void release();

  private:
    WiredLrgColumn arb_;
    std::vector<bool> connect_; //!< sense-amp-enabled latches
    std::uint32_t owner_ = kNone;
};

} // namespace hirise::rtl

#endif // HIRISE_RTL_WIRED_COLUMN_HH
