#include "rtl/wired_arbiter.hh"

#include "common/logging.hh"

namespace hirise::rtl {

// ---------------------------------------------------------------------
// WiredLrgColumn
// ---------------------------------------------------------------------

WiredLrgColumn::WiredLrgColumn(std::uint32_t n)
    : n_(n), outranks_(std::size_t(n) * n, false), lines_(n)
{
    for (std::uint32_t i = 0; i < n_; ++i)
        for (std::uint32_t j = i + 1; j < n_; ++j)
            outranks_[i * n_ + j] = true;
}

std::uint32_t
WiredLrgColumn::evaluate(const std::vector<bool> &req)
{
    sim_assert(req.size() == n_, "bad request width");
    lines_.precharge();

    // Evaluate: each requesting cross-point discharges the poll line
    // of every contender its priority bit dominates. All pull-downs
    // happen concurrently on the shared wires.
    for (std::uint32_t i = 0; i < n_; ++i) {
        if (!req[i])
            continue;
        for (std::uint32_t j = 0; j < n_; ++j) {
            if (j != i && outranks_[i * n_ + j])
                lines_.pullDown(j);
        }
    }

    // Sense: a requestor whose own line survived is the winner.
    std::uint32_t winner = kNone;
    for (std::uint32_t i = 0; i < n_; ++i) {
        if (req[i] && lines_.sense(i)) {
            sim_assert(winner == kNone,
                       "priority bits must encode a strict order");
            winner = i;
        }
    }
    return winner;
}

void
WiredLrgColumn::updateLrg(std::uint32_t winner)
{
    sim_assert(winner < n_, "winner out of range");
    for (std::uint32_t j = 0; j < n_; ++j) {
        if (j == winner)
            continue;
        outranks_[winner * n_ + j] = false;
        outranks_[j * n_ + winner] = true;
    }
}

// ---------------------------------------------------------------------
// WiredClrgSubBlock
// ---------------------------------------------------------------------

WiredClrgSubBlock::WiredClrgSubBlock(std::uint32_t ports,
                                     std::uint32_t num_inputs,
                                     std::uint32_t max_count)
    : ports_(ports), classes_(max_count + 1), maxCount_(max_count),
      outranks_(std::size_t(ports) * ports, false),
      counter_(num_inputs, 0), lines_(classes_ * ports)
{
    for (std::uint32_t i = 0; i < ports_; ++i)
        for (std::uint32_t j = i + 1; j < ports_; ++j)
            outranks_[i * ports_ + j] = true;
}

std::uint32_t
WiredClrgSubBlock::arbitrate(
    const std::vector<arb::SubBlockRequest> &reqs)
{
    sim_assert(reqs.size() == ports_, "bad request width");
    lines_.precharge();

    // Evaluate phase. For each requesting port, Mux1 selects its
    // primary input's class counter, and the PSMs drive the class
    // groups (Fig 7): '1' (pull-down) on every line of lower-priority
    // classes, the LRG priority vector on its own group, '0' on
    // higher-priority groups.
    for (std::uint32_t p = 0; p < ports_; ++p) {
        if (!reqs[p].valid)
            continue;
        std::uint32_t cls = counter_[reqs[p].primaryInput];
        sim_assert(cls < classes_, "counter beyond saturation");
        for (std::uint32_t lower = cls + 1; lower < classes_;
             ++lower) {
            for (std::uint32_t q = 0; q < ports_; ++q)
                lines_.pullDown(line(lower, q));
        }
        for (std::uint32_t q = 0; q < ports_; ++q) {
            if (q != p && outranks_[p * ports_ + q])
                lines_.pullDown(line(cls, q));
        }
    }

    // Sense phase: Mux2 routes the port's own line within its class
    // group to the sense-amp-enabled latch (the connectivity bit).
    std::uint32_t winner = kNone;
    for (std::uint32_t p = 0; p < ports_; ++p) {
        if (!reqs[p].valid)
            continue;
        std::uint32_t cls = counter_[reqs[p].primaryInput];
        if (lines_.sense(line(cls, p))) {
            sim_assert(winner == kNone,
                       "inhibit network must isolate one winner");
            winner = p;
        }
    }
    if (winner == kNone)
        return kNone;

    // Commit: LRG is updated on every grant (paper III-B4), and the
    // winning primary input's thermometer counter increments, halving
    // the whole bank first on saturation.
    for (std::uint32_t q = 0; q < ports_; ++q) {
        if (q == winner)
            continue;
        outranks_[winner * ports_ + q] = false;
        outranks_[q * ports_ + winner] = true;
    }
    std::uint32_t in = reqs[winner].primaryInput;
    if (counter_[in] == maxCount_) {
        for (auto &c : counter_)
            c >>= 1;
    }
    ++counter_[in];
    return winner;
}

} // namespace hirise::rtl
