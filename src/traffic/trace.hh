/**
 * @file
 * Trace-replay traffic: replays a recorded (cycle, src, dst) schedule
 * through the open-loop simulator. Useful for regression-testing
 * exact arbitration interleavings and for replaying traffic captured
 * from the CMP substrate.
 */

#ifndef HIRISE_TRAFFIC_TRACE_HH
#define HIRISE_TRAFFIC_TRACE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "traffic/pattern.hh"

namespace hirise::traffic {

/** One packet injection in a trace. */
struct TraceRecord
{
    std::uint64_t cycle;
    std::uint32_t src;
    std::uint32_t dst;
};

/**
 * Replays a schedule of injections: a source injects at @p cycle when
 * its next record is due (record cycle <= current cycle; a backlog of
 * same-cycle records drains one per cycle, since the port injects at
 * most one packet per cycle). Records must be sorted by cycle per
 * source (the constructor sorts globally). The injection-rate
 * argument is ignored: the trace is the load. Stateful (records are
 * consumed), so memoryless() is false and the simulator polls it
 * cycle by cycle.
 */
class TraceReplay : public TrafficPattern
{
  public:
    TraceReplay(std::vector<TraceRecord> records, std::uint32_t radix);

    /** Parse a whitespace-separated "cycle src dst" text file;
     *  '#' starts a comment. fatal() on malformed input. */
    static TraceReplay fromFile(const std::string &path,
                                std::uint32_t radix);

    bool injectAt(std::uint32_t src, std::uint64_t cycle, double rate,
                  std::uint64_t seed) override;
    std::uint32_t destAt(std::uint32_t src, std::uint64_t cycle,
                         std::uint64_t seed) override;
    bool memoryless() const override { return false; }
    bool participates(std::uint32_t src) const override;
    std::string name() const override { return "trace-replay"; }

    /** Traces with identical record sets share a descriptor via a
     *  content digest, so memoization never conflates two different
     *  trace files. */
    std::string descriptor() const override;

    /** Injections not yet replayed (for drain checks). */
    std::uint64_t pending() const { return pending_; }

  private:
    std::vector<std::deque<TraceRecord>> perSrc_;
    std::uint64_t pending_ = 0;
    std::uint64_t digest_ = 0; //!< FNV-1a over the sorted records
};

} // namespace hirise::traffic

#endif // HIRISE_TRAFFIC_TRACE_HH
