#include "traffic/pattern.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hirise::traffic {

// ---------------------------------------------------------------------
// Bursty
// ---------------------------------------------------------------------

bool
Bursty::injectAt(std::uint32_t src, std::uint64_t cycle, double rate,
                 std::uint64_t seed)
{
    if (state_[src] > 0) {
        --state_[src];
        return true;
    }
    // Start a new burst with probability chosen so the long-run mean
    // injection equals `rate`: bursts of mean length B injected each
    // cycle need a start probability of rate/B on idle cycles.
    // Solving the renewal equation: p = rate / (B * (1 - rate) + rate)
    // ~= rate/B for small rates; use the exact form.
    double b = meanBurst_;
    double p = rate >= 1.0 ? 1.0 : rate / (b * (1.0 - rate) + rate);
    if (counterBernoulli(
            counterDraw(seed, lane(src, kLaneInject), cycle), p)) {
        // Geometric burst length with mean B (>= 1).
        auto len = 1 + static_cast<std::uint32_t>(counterGeometric(
            counterDraw(seed, lane(src, kLaneBurstLen), cycle),
            1.0 / b));
        burstDst_[src] = static_cast<std::uint32_t>(counterBelow(
            counterDraw(seed, lane(src, kLaneDest), cycle),
            radix_ - 1));
        if (burstDst_[src] >= src)
            ++burstDst_[src];
        state_[src] = len - 1;
        return true;
    }
    return false;
}

std::uint32_t
Bursty::destAt(std::uint32_t src, std::uint64_t, std::uint64_t)
{
    return burstDst_[src];
}

std::string
Bursty::descriptor() const
{
    return "bursty/r" + std::to_string(radix_) + "/b" +
           std::to_string(meanBurst_);
}

// ---------------------------------------------------------------------
// Adversarial
// ---------------------------------------------------------------------

Adversarial::Adversarial(std::vector<std::uint32_t> sources,
                         std::uint32_t dst, std::uint32_t radix)
    : active_(radix, false), numActive_(0), dst_(dst)
{
    for (auto s : sources) {
        sim_assert(s < radix, "source %u out of range", s);
        if (!active_[s]) {
            active_[s] = true;
            ++numActive_;
        }
    }
}

std::string
Adversarial::descriptor() const
{
    std::string d = "adversarial/r" + std::to_string(active_.size()) +
                    "/d" + std::to_string(dst_) + "/s";
    for (std::uint32_t s = 0; s < active_.size(); ++s) {
        if (active_[s])
            d += std::to_string(s) + ".";
    }
    return d;
}

// ---------------------------------------------------------------------
// InterLayerOnly
// ---------------------------------------------------------------------

InterLayerOnly::InterLayerOnly(std::uint32_t ports_per_layer,
                               std::uint32_t channels,
                               std::uint32_t src_layer,
                               std::uint32_t dst_layer)
    : ppl_(ports_per_layer), channels_(channels), srcLayer_(src_layer),
      dstLayer_(dst_layer)
{
    sim_assert(src_layer != dst_layer, "pattern must cross layers");
}

bool
InterLayerOnly::participates(std::uint32_t src) const
{
    // The worst case of section VI-B: the inputs sharing channel 0
    // (input-binned: local index % c == 0) all send cross-layer.
    if (src / ppl_ != srcLayer_)
        return false;
    return (src % ppl_) % channels_ == 0;
}

double
InterLayerOnly::activeFraction() const
{
    // participating inputs: ceil(ppl/channels) on one layer.
    double n = (ppl_ + channels_ - 1) / channels_;
    return n / double(ppl_); // fraction of one layer's inputs
}

std::uint32_t
InterLayerOnly::destAt(std::uint32_t src, std::uint64_t, std::uint64_t)
{
    // Each participating input targets a distinct output on the
    // destination layer so only the shared L2LC is the bottleneck.
    std::uint32_t k = (src % ppl_) / channels_;
    return dstLayer_ * ppl_ + (k % ppl_);
}

double
InterLayerOnly::rateTo(std::uint32_t src, std::uint32_t dst) const
{
    if (!participates(src))
        return 0.0;
    std::uint32_t k = (src % ppl_) / channels_;
    return dst == dstLayer_ * ppl_ + (k % ppl_) ? 1.0 : 0.0;
}

std::string
InterLayerOnly::descriptor() const
{
    return "inter-layer-only/p" + std::to_string(ppl_) + "/c" +
           std::to_string(channels_) + "/" + std::to_string(srcLayer_) +
           "to" + std::to_string(dstLayer_);
}

// ---------------------------------------------------------------------
// Transpose
// ---------------------------------------------------------------------

Transpose::Transpose(std::uint32_t radix) : perm_(radix)
{
    // Matrix-transpose permutation on the nearest square grid;
    // leftovers map to themselves + 1 (mod radix).
    std::uint32_t side = 1;
    while ((side + 1) * (side + 1) <= radix)
        ++side;
    for (std::uint32_t s = 0; s < radix; ++s) {
        if (s < side * side) {
            std::uint32_t r = s / side, c = s % side;
            perm_[s] = c * side + r;
        } else {
            perm_[s] = (s + 1) % radix;
        }
    }
}

} // namespace hirise::traffic
