/**
 * @file
 * Synthetic traffic patterns (paper section V): uniform random,
 * hotspot, bursty, the adversarial pattern of section III-B, the
 * inter-layer-only pathological pattern of section VI-B, and the
 * standard permutation patterns, plus trace replay.
 *
 * Patterns draw from counter-based streams (common/random.hh): every
 * decision is a pure function of (seed, input, cycle), so injection is
 * order-independent across inputs and skippable across cycles. The
 * event-driven simulator core depends on both properties; the dense
 * reference core consumes the exact same streams, which is what makes
 * the two stepping modes bit-identical.
 */

#ifndef HIRISE_TRAFFIC_PATTERN_HH
#define HIRISE_TRAFFIC_PATTERN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/simd.hh"
#include "common/snapshot.hh"

namespace hirise::traffic {

/**
 * A traffic pattern decides which inputs inject and where packets go.
 *
 * Stream-lane layout: each input owns kLaneDomains consecutive lanes
 * of the counter stream space, one per draw purpose, so the draws an
 * input makes at one cycle are mutually independent and independent of
 * every other input's.
 */
class TrafficPattern
{
  public:
    static constexpr std::uint64_t kLaneInject = 0;
    static constexpr std::uint64_t kLaneDest = 1;
    static constexpr std::uint64_t kLaneBurstLen = 2;
    static constexpr std::uint64_t kLaneDomains = 3;

    static constexpr std::uint64_t
    lane(std::uint32_t src, std::uint64_t domain)
    {
        return std::uint64_t(src) * kLaneDomains + domain;
    }

    virtual ~TrafficPattern() = default;

    /**
     * Does @p src generate a new packet at @p cycle under @p rate
     * (packets/input/cycle)? Default: Bernoulli draw on the input's
     * inject lane.
     *
     * Memoryless patterns must make this a pure function of
     * (seed, src, cycle). Stateful patterns (memoryless() == false)
     * may keep per-input state, under the contract that the simulator
     * calls injectAt exactly once per (src, cycle) with cycles
     * strictly increasing per source.
     */
    virtual bool
    injectAt(std::uint32_t src, std::uint64_t cycle, double rate,
             std::uint64_t seed)
    {
        return participates(src) &&
               counterBernoulli(
                   counterDraw(seed, lane(src, kLaneInject), cycle),
                   rate);
    }

    /** Destination for the packet @p src injects at @p cycle. Called
     *  at most once per (src, cycle), only after injectAt returned
     *  true there. */
    virtual std::uint32_t destAt(std::uint32_t src, std::uint64_t cycle,
                                 std::uint64_t seed) = 0;

    /**
     * Batched destination draw for four consecutive sources of one
     * replica of the batched engine (sim::BatchSim):
     * out[j] = destAt(src0 + j, cycle, seed), where
     * keys[j] = counterKey(seed, lane(src0 + j, kLaneDest)) is
     * precomputed by the caller. The default loops destAt and is
     * correct for every pattern; memoryless patterns whose destination
     * is a pure function of the dest-lane draw override it to hash all
     * four lanes per SIMD step. Overrides must stay bit-identical to
     * four destAt calls (tests/batch_test.cc checks every pattern).
     * @pre memoryless() — may be called for (src, cycle) pairs that do
     * not inject, so it must be side-effect free.
     */
    virtual void
    destRow4(std::uint32_t src0, std::uint64_t cycle,
             std::uint64_t seed, const std::uint64_t keys[4],
             std::uint32_t out[4])
    {
        (void)keys;
        for (int j = 0; j < 4; ++j)
            out[j] = destAt(src0 + std::uint32_t(j), cycle, seed);
    }

    /**
     * True when injectAt is the pure per-cycle Bernoulli above (no
     * per-input state), which makes nextInjectionFrom() valid and
     * lets the simulator schedule injections as events instead of
     * polling every input every cycle.
     */
    virtual bool memoryless() const { return true; }

    /**
     * First cycle in [from, limit) where @p src injects, or @p limit
     * when there is none in range. A tight scan over the input's
     * counter stream (one hash + integer threshold compare per cycle),
     * exactly equal to evaluating injectAt cycle by cycle — that
     * equality is what keeps event-driven stepping bit-identical to
     * dense stepping. @pre memoryless().
     */
    std::uint64_t
    nextInjectionFrom(std::uint32_t src, std::uint64_t from,
                      double rate, std::uint64_t seed,
                      std::uint64_t limit) const
    {
        if (!participates(src))
            return limit;
        const std::uint64_t thr = bernoulliThreshold(rate);
        if (thr == 0) // rate 0: no draw can ever pass
            return limit;
        const std::uint64_t key =
            counterKey(seed, lane(src, kLaneInject));
        for (std::uint64_t t = from; t < limit; ++t) {
            if ((counterDrawKeyed(key, t) >> 11) < thr)
                return t;
        }
        return limit;
    }

    /** Inputs outside the pattern never inject (adversarial cases). */
    virtual bool participates(std::uint32_t) const { return true; }

    /**
     * Mean destination distribution: the long-run probability that a
     * packet injected by @p src targets @p dst. Rows of participating
     * sources sum to 1; non-participants' rows are all zero. Feeds
     * the offline MWM fluid throughput bound (sim/mwm_bound.hh).
     * Returns a negative value when the pattern has no analytic rate
     * matrix (trace replay); the bound rejects such patterns.
     */
    virtual double
    rateTo(std::uint32_t /*src*/, std::uint32_t /*dst*/) const
    {
        return -1.0;
    }

    /** Fraction of inputs that inject (for load accounting). */
    virtual double activeFraction() const { return 1.0; }

    virtual std::string name() const = 0;

    /**
     * Canonical, parameter-laden identity string for memoization
     * (sim::SimCache). Two patterns with equal descriptors must
     * produce identical injection/destination sequences for the same
     * seed; every constructor parameter that affects behavior has to
     * appear here.
     */
    virtual std::string descriptor() const { return name(); }

    /** Checkpoint/restore of per-input pattern state. Memoryless
     *  patterns have none (default no-op); stateful ones must save
     *  everything injectAt/destAt depend on. */
    virtual void save(snap::Writer & /*w*/) const {}
    virtual void load(snap::Reader & /*r*/) {}
};

/** Uniform random over all outputs except self. */
class UniformRandom : public TrafficPattern
{
  public:
    explicit UniformRandom(std::uint32_t radix) : radix_(radix) {}
    std::uint32_t
    destAt(std::uint32_t src, std::uint64_t cycle,
           std::uint64_t seed) override
    {
        auto d = static_cast<std::uint32_t>(counterBelow(
            counterDraw(seed, lane(src, kLaneDest), cycle),
            radix_ - 1));
        return d >= src ? d + 1 : d;
    }
    void
    destRow4(std::uint32_t src0, std::uint64_t cycle, std::uint64_t,
             const std::uint64_t keys[4], std::uint32_t out[4]) override
    {
        std::uint64_t d[4];
        simd::counterDraw4(keys, cycle, d);
        for (std::uint32_t j = 0; j < 4; ++j) {
            auto v = static_cast<std::uint32_t>(
                counterBelow(d[j], radix_ - 1));
            out[j] = v >= src0 + j ? v + 1 : v;
        }
    }
    double
    rateTo(std::uint32_t src, std::uint32_t dst) const override
    {
        return src == dst ? 0.0 : 1.0 / double(radix_ - 1);
    }
    std::string name() const override { return "uniform-random"; }
    std::string
    descriptor() const override
    {
        return "uniform-random/r" + std::to_string(radix_);
    }

  private:
    std::uint32_t radix_;
};

/** Every participating input targets one output (paper Fig 11a). */
class Hotspot : public TrafficPattern
{
  public:
    Hotspot(std::uint32_t radix, std::uint32_t hot)
        : radix_(radix), hot_(hot)
    {}
    std::uint32_t
    destAt(std::uint32_t, std::uint64_t, std::uint64_t) override
    {
        return hot_;
    }
    void
    destRow4(std::uint32_t, std::uint64_t, std::uint64_t,
             const std::uint64_t[4], std::uint32_t out[4]) override
    {
        for (int j = 0; j < 4; ++j)
            out[j] = hot_;
    }
    bool
    participates(std::uint32_t src) const override
    {
        return src != hot_; // the hot output's own input stays silent
    }
    double
    activeFraction() const override
    {
        return double(radix_ - 1) / double(radix_);
    }
    double
    rateTo(std::uint32_t src, std::uint32_t dst) const override
    {
        return participates(src) && dst == hot_ ? 1.0 : 0.0;
    }
    std::string name() const override { return "hotspot"; }
    std::string
    descriptor() const override
    {
        return "hotspot/r" + std::to_string(radix_) + "/h" +
               std::to_string(hot_);
    }

  private:
    std::uint32_t radix_;
    std::uint32_t hot_;
};

/**
 * Markov on/off uniform-random traffic: geometric burst and idle
 * period lengths; within a burst the input injects every cycle to a
 * per-burst destination. Mean offered load matches the requested rate.
 *
 * Stateful (per-input burst countdown), so memoryless() is false and
 * the simulator polls it cycle by cycle. The burst-start, length, and
 * destination draws still come from the input's own counter lanes at
 * the burst's start cycle, so inputs remain mutually independent.
 */
class Bursty : public TrafficPattern
{
  public:
    Bursty(std::uint32_t radix, double mean_burst_len)
        : radix_(radix), meanBurst_(mean_burst_len),
          state_(radix), burstDst_(radix, 0)
    {}

    bool injectAt(std::uint32_t src, std::uint64_t cycle, double rate,
                  std::uint64_t seed) override;
    std::uint32_t destAt(std::uint32_t src, std::uint64_t cycle,
                         std::uint64_t seed) override;
    bool memoryless() const override { return false; }
    /** Burst destinations are uniform over non-self, so the mean
     *  rate matrix matches UniformRandom's. */
    double
    rateTo(std::uint32_t src, std::uint32_t dst) const override
    {
        return src == dst ? 0.0 : 1.0 / double(radix_ - 1);
    }
    std::string name() const override { return "bursty"; }
    std::string descriptor() const override;
    void
    save(snap::Writer &w) const override
    {
        w.vec(state_);
        w.vec(burstDst_);
    }
    void
    load(snap::Reader &r) override
    {
        r.vec(state_);
        r.vec(burstDst_);
    }

  private:
    std::uint32_t radix_;
    double meanBurst_;
    std::vector<std::uint32_t> state_; //!< remaining flits in burst
    std::vector<std::uint32_t> burstDst_;
};

/**
 * The paper's adversarial example (III-B2 / Fig 11c): inputs
 * {3,7,11,15} on layer 1 and {20} on layer 2 all request output 63.
 */
class Adversarial : public TrafficPattern
{
  public:
    Adversarial(std::vector<std::uint32_t> sources, std::uint32_t dst,
                std::uint32_t radix);
    std::uint32_t
    destAt(std::uint32_t, std::uint64_t, std::uint64_t) override
    {
        return dst_;
    }
    bool
    participates(std::uint32_t src) const override
    {
        return src < active_.size() && active_[src];
    }
    double
    activeFraction() const override
    {
        return double(numActive_) / double(active_.size());
    }
    double
    rateTo(std::uint32_t src, std::uint32_t dst) const override
    {
        return participates(src) && dst == dst_ ? 1.0 : 0.0;
    }
    std::string name() const override { return "adversarial"; }
    std::string descriptor() const override;

  private:
    std::vector<bool> active_;
    std::uint32_t numActive_;
    std::uint32_t dst_;
};

/**
 * Pathological inter-layer pattern (section VI-B): a group of inputs
 * that share one L2LC all send to distinct outputs on another layer,
 * so throughput is capped by the single vertical channel.
 */
class InterLayerOnly : public TrafficPattern
{
  public:
    /**
     * @param ports_per_layer N/L
     * @param channels       c (inputs 0..c-1 groups share channels)
     * @param src_layer      the sending layer
     * @param dst_layer      the receiving layer
     */
    InterLayerOnly(std::uint32_t ports_per_layer, std::uint32_t channels,
                   std::uint32_t src_layer, std::uint32_t dst_layer);
    std::uint32_t destAt(std::uint32_t src, std::uint64_t cycle,
                         std::uint64_t seed) override;
    bool participates(std::uint32_t src) const override;
    double activeFraction() const override;
    double rateTo(std::uint32_t src, std::uint32_t dst) const override;
    std::string name() const override { return "inter-layer-only"; }
    std::string descriptor() const override;

  private:
    std::uint32_t ppl_, channels_, srcLayer_, dstLayer_;
};

/** Bit-reversal-style permutations for coverage. */
class Transpose : public TrafficPattern
{
  public:
    explicit Transpose(std::uint32_t radix);
    std::uint32_t
    destAt(std::uint32_t src, std::uint64_t, std::uint64_t) override
    {
        return perm_[src];
    }
    double
    rateTo(std::uint32_t src, std::uint32_t dst) const override
    {
        return dst == perm_[src] ? 1.0 : 0.0;
    }
    std::string name() const override { return "transpose"; }
    std::string
    descriptor() const override
    {
        return "transpose/r" + std::to_string(perm_.size());
    }

  private:
    std::vector<std::uint32_t> perm_;
};

class BitComplement : public TrafficPattern
{
  public:
    explicit BitComplement(std::uint32_t radix) : radix_(radix) {}
    std::uint32_t
    destAt(std::uint32_t src, std::uint64_t, std::uint64_t) override
    {
        return (radix_ - 1) - src;
    }
    double
    rateTo(std::uint32_t src, std::uint32_t dst) const override
    {
        return dst == (radix_ - 1) - src ? 1.0 : 0.0;
    }
    std::string name() const override { return "bit-complement"; }
    std::string
    descriptor() const override
    {
        return "bit-complement/r" + std::to_string(radix_);
    }

  private:
    std::uint32_t radix_;
};

} // namespace hirise::traffic

#endif // HIRISE_TRAFFIC_PATTERN_HH
