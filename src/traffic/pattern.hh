/**
 * @file
 * Synthetic traffic patterns (paper section V): uniform random,
 * hotspot, bursty, the adversarial pattern of section III-B, the
 * inter-layer-only pathological pattern of section VI-B, and the
 * standard permutation patterns, plus trace replay.
 */

#ifndef HIRISE_TRAFFIC_PATTERN_HH
#define HIRISE_TRAFFIC_PATTERN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"

namespace hirise::traffic {

/**
 * A traffic pattern decides which inputs inject and where packets go.
 * Patterns may keep per-input state (e.g. burst phases) and must be
 * deterministic given the Rng.
 */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /** Does @p src generate a new packet this cycle at @p rate
     *  (packets/input/cycle)? Default: Bernoulli draw. */
    virtual bool
    inject(std::uint32_t src, double rate, Rng &rng)
    {
        return participates(src) && rng.bernoulli(rate);
    }

    /** Destination for a new packet from @p src. */
    virtual std::uint32_t dest(std::uint32_t src, Rng &rng) = 0;

    /** Inputs outside the pattern never inject (adversarial cases). */
    virtual bool participates(std::uint32_t) const { return true; }

    /** Fraction of inputs that inject (for load accounting). */
    virtual double activeFraction() const { return 1.0; }

    virtual std::string name() const = 0;

    /**
     * Canonical, parameter-laden identity string for memoization
     * (sim::SimCache). Two patterns with equal descriptors must
     * produce identical injection/destination sequences for the same
     * Rng; every constructor parameter that affects behavior has to
     * appear here.
     */
    virtual std::string descriptor() const { return name(); }
};

/** Uniform random over all outputs except self. */
class UniformRandom : public TrafficPattern
{
  public:
    explicit UniformRandom(std::uint32_t radix) : radix_(radix) {}
    std::uint32_t
    dest(std::uint32_t src, Rng &rng) override
    {
        std::uint32_t d = static_cast<std::uint32_t>(
            rng.below(radix_ - 1));
        return d >= src ? d + 1 : d;
    }
    std::string name() const override { return "uniform-random"; }
    std::string
    descriptor() const override
    {
        return "uniform-random/r" + std::to_string(radix_);
    }

  private:
    std::uint32_t radix_;
};

/** Every participating input targets one output (paper Fig 11a). */
class Hotspot : public TrafficPattern
{
  public:
    Hotspot(std::uint32_t radix, std::uint32_t hot)
        : radix_(radix), hot_(hot)
    {}
    std::uint32_t dest(std::uint32_t, Rng &) override { return hot_; }
    bool
    participates(std::uint32_t src) const override
    {
        return src != hot_; // the hot output's own input stays silent
    }
    double
    activeFraction() const override
    {
        return double(radix_ - 1) / double(radix_);
    }
    std::string name() const override { return "hotspot"; }
    std::string
    descriptor() const override
    {
        return "hotspot/r" + std::to_string(radix_) + "/h" +
               std::to_string(hot_);
    }

  private:
    std::uint32_t radix_;
    std::uint32_t hot_;
};

/**
 * Markov on/off uniform-random traffic: geometric burst and idle
 * period lengths; within a burst the input injects every cycle to a
 * per-burst destination. Mean offered load matches the requested rate.
 */
class Bursty : public TrafficPattern
{
  public:
    Bursty(std::uint32_t radix, double mean_burst_len)
        : radix_(radix), meanBurst_(mean_burst_len),
          state_(radix), burstDst_(radix, 0)
    {}

    bool inject(std::uint32_t src, double rate, Rng &rng) override;
    std::uint32_t dest(std::uint32_t src, Rng &rng) override;
    std::string name() const override { return "bursty"; }
    std::string descriptor() const override;

  private:
    std::uint32_t radix_;
    double meanBurst_;
    std::vector<std::uint32_t> state_; //!< remaining flits in burst
    std::vector<std::uint32_t> burstDst_;
};

/**
 * The paper's adversarial example (III-B2 / Fig 11c): inputs
 * {3,7,11,15} on layer 1 and {20} on layer 2 all request output 63.
 */
class Adversarial : public TrafficPattern
{
  public:
    Adversarial(std::vector<std::uint32_t> sources, std::uint32_t dst,
                std::uint32_t radix);
    std::uint32_t dest(std::uint32_t, Rng &) override { return dst_; }
    bool
    participates(std::uint32_t src) const override
    {
        return src < active_.size() && active_[src];
    }
    double
    activeFraction() const override
    {
        return double(numActive_) / double(active_.size());
    }
    std::string name() const override { return "adversarial"; }
    std::string descriptor() const override;

  private:
    std::vector<bool> active_;
    std::uint32_t numActive_;
    std::uint32_t dst_;
};

/**
 * Pathological inter-layer pattern (section VI-B): a group of inputs
 * that share one L2LC all send to distinct outputs on another layer,
 * so throughput is capped by the single vertical channel.
 */
class InterLayerOnly : public TrafficPattern
{
  public:
    /**
     * @param ports_per_layer N/L
     * @param channels       c (inputs 0..c-1 groups share channels)
     * @param src_layer      the sending layer
     * @param dst_layer      the receiving layer
     */
    InterLayerOnly(std::uint32_t ports_per_layer, std::uint32_t channels,
                   std::uint32_t src_layer, std::uint32_t dst_layer);
    std::uint32_t dest(std::uint32_t src, Rng &rng) override;
    bool participates(std::uint32_t src) const override;
    double activeFraction() const override;
    std::string name() const override { return "inter-layer-only"; }
    std::string descriptor() const override;

  private:
    std::uint32_t ppl_, channels_, srcLayer_, dstLayer_;
};

/** Bit-reversal-style permutations for coverage. */
class Transpose : public TrafficPattern
{
  public:
    explicit Transpose(std::uint32_t radix);
    std::uint32_t
    dest(std::uint32_t src, Rng &) override
    {
        return perm_[src];
    }
    std::string name() const override { return "transpose"; }
    std::string
    descriptor() const override
    {
        return "transpose/r" + std::to_string(perm_.size());
    }

  private:
    std::vector<std::uint32_t> perm_;
};

class BitComplement : public TrafficPattern
{
  public:
    explicit BitComplement(std::uint32_t radix) : radix_(radix) {}
    std::uint32_t
    dest(std::uint32_t src, Rng &) override
    {
        return (radix_ - 1) - src;
    }
    std::string name() const override { return "bit-complement"; }
    std::string
    descriptor() const override
    {
        return "bit-complement/r" + std::to_string(radix_);
    }

  private:
    std::uint32_t radix_;
};

} // namespace hirise::traffic

#endif // HIRISE_TRAFFIC_PATTERN_HH
