#include "traffic/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace hirise::traffic {

TraceReplay::TraceReplay(std::vector<TraceRecord> records,
                         std::uint32_t radix)
    : perSrc_(radix)
{
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.cycle < b.cycle;
                     });
    digest_ = 0xcbf29ce484222325ull;
    auto mix = [this](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            digest_ ^= (v >> (8 * i)) & 0xff;
            digest_ *= 0x100000001b3ull;
        }
    };
    mix(radix);
    for (const auto &r : records) {
        if (r.src >= radix || r.dst >= radix)
            fatal("trace record (%llu, %u, %u) outside radix %u",
                  static_cast<unsigned long long>(r.cycle), r.src,
                  r.dst, radix);
        if (r.src == r.dst)
            fatal("trace record with src == dst == %u", r.src);
        mix(r.cycle);
        mix((static_cast<std::uint64_t>(r.src) << 32) | r.dst);
        perSrc_[r.src].push_back(r);
        ++pending_;
    }
}

TraceReplay
TraceReplay::fromFile(const std::string &path, std::uint32_t radix)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open trace file %s", path.c_str());
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream is(line);
        TraceRecord r;
        if (!(is >> r.cycle))
            continue; // blank / comment-only line
        if (!(is >> r.src >> r.dst))
            fatal("%s:%llu: expected 'cycle src dst'", path.c_str(),
                  static_cast<unsigned long long>(lineno));
        records.push_back(r);
    }
    return TraceReplay(std::move(records), radix);
}

bool
TraceReplay::injectAt(std::uint32_t src, std::uint64_t cycle,
                      double /*rate*/, std::uint64_t /*seed*/)
{
    const auto &q = perSrc_[src];
    return !q.empty() && q.front().cycle <= cycle;
}

std::uint32_t
TraceReplay::destAt(std::uint32_t src, std::uint64_t /*cycle*/,
                    std::uint64_t /*seed*/)
{
    auto &q = perSrc_[src];
    sim_assert(!q.empty(), "destAt() without a due record");
    std::uint32_t d = q.front().dst;
    q.pop_front();
    --pending_;
    return d;
}

bool
TraceReplay::participates(std::uint32_t src) const
{
    return !perSrc_[src].empty();
}

std::string
TraceReplay::descriptor() const
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest_));
    return std::string("trace-replay/") + buf;
}

} // namespace hirise::traffic
