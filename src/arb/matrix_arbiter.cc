#include "arb/matrix_arbiter.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/simd.hh"

namespace hirise::arb {

MatrixArbiter::MatrixArbiter(std::uint32_t n)
    : n_(n), rowWords_((n + kWordBits - 1) / kWordBits),
      prio_(std::size_t(n) * rowWords_, 0)
{
    sim_assert(n >= 1, "arbiter needs at least one port");
    // Initial strict order: lower index outranks higher index.
    for (std::uint32_t i = 0; i < n_; ++i)
        for (std::uint32_t j = i + 1; j < n_; ++j)
            set(i, j, true);
}

std::uint32_t
MatrixArbiter::pick(const BitVec &req) const
{
    sim_assert(req.size() == n_, "request vector size %u != %u",
               req.size(), n_);
    const Word *rw = req.words();
#ifdef HIRISE_SIMD_AVX2_COMPILED
    // Hoisted tier tests: the vector dominance kernels only pay off
    // once a priority row spans at least one full vector (256-bit:
    // radix > 192, e.g. the flat-2D monolithic arbiter at radix 256;
    // 512-bit: radix > 448); smaller arbiters stay on the scalar word
    // loop.
    const bool wide = rowWords_ >= 4 && simd::avx2();
#ifdef HIRISE_SIMD_AVX512_COMPILED
    const bool wide512 = rowWords_ >= 8 && simd::avx512();
#endif
#endif
    for (std::uint32_t k = 0; k < rowWords_; ++k) {
        Word cand = rw[k];
        while (cand) {
            std::uint32_t bit = static_cast<std::uint32_t>(
                std::countr_zero(cand));
            cand &= cand - 1;
            std::uint32_t i = k * kWordBits + bit;
            // i wins iff no other requestor outranks it:
            // (req & ~row(i)) must contain no bit besides i itself.
            const Word *ri = row(i);
            const Word self = Word(1) << bit;
            bool wins;
#ifdef HIRISE_SIMD_AVX512_COMPILED
            if (wide512)
                wins = !simd::losingAnyAvx512(rw, ri, rowWords_, k,
                                              self);
            else
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
            if (wide)
                wins = !simd::losingAnyAvx2(rw, ri, rowWords_, k, self);
            else
#endif
                wins = !simd::losingAnyScalar(rw, ri, rowWords_, k,
                                              self);
            if (wins)
                return i;
        }
    }
    return kNone;
}

std::uint32_t
MatrixArbiter::pick(const std::vector<bool> &req) const
{
    sim_assert(req.size() == n_, "request vector size %zu != %u",
               req.size(), n_);
    BitVec b(n_);
    for (std::uint32_t i = 0; i < n_; ++i)
        if (req[i])
            b.set(i);
    return pick(b);
}

void
MatrixArbiter::update(std::uint32_t winner)
{
    sim_assert(winner < n_, "winner %u out of range", winner);
    // Row write: the winner now outranks nobody.
    Word *rw = row(winner);
    std::fill(rw, rw + rowWords_, 0);
    // Column write: everyone else outranks the winner.
    Word m = Word(1) << (winner % kWordBits);
    std::uint32_t wk = winner / kWordBits;
    for (std::uint32_t j = 0; j < n_; ++j)
        row(j)[wk] |= m;
    row(winner)[wk] &= ~m; // keep the diagonal zero
}

bool
MatrixArbiter::outranks(std::uint32_t i, std::uint32_t j) const
{
    sim_assert(i < n_ && j < n_ && i != j, "bad pair %u,%u", i, j);
    return at(i, j);
}

std::vector<std::uint32_t>
MatrixArbiter::order() const
{
    std::vector<std::uint32_t> idx(n_);
    for (std::uint32_t i = 0; i < n_; ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return at(a, b);
              });
    return idx;
}

} // namespace hirise::arb
