#include "arb/matrix_arbiter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hirise::arb {

MatrixArbiter::MatrixArbiter(std::uint32_t n)
    : n_(n), prio_(std::size_t(n) * n, false)
{
    sim_assert(n >= 1, "arbiter needs at least one port");
    // Initial strict order: lower index outranks higher index.
    for (std::uint32_t i = 0; i < n_; ++i)
        for (std::uint32_t j = i + 1; j < n_; ++j)
            set(i, j, true);
}

std::uint32_t
MatrixArbiter::pick(const std::vector<bool> &req) const
{
    sim_assert(req.size() == n_, "request vector size %zu != %u",
               req.size(), n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
        if (!req[i])
            continue;
        bool wins = true;
        for (std::uint32_t j = 0; j < n_ && wins; ++j) {
            if (j != i && req[j] && !at(i, j))
                wins = false;
        }
        if (wins)
            return i;
    }
    return kNone;
}

void
MatrixArbiter::update(std::uint32_t winner)
{
    sim_assert(winner < n_, "winner %u out of range", winner);
    for (std::uint32_t j = 0; j < n_; ++j) {
        if (j == winner)
            continue;
        set(winner, j, false);
        set(j, winner, true);
    }
}

bool
MatrixArbiter::outranks(std::uint32_t i, std::uint32_t j) const
{
    sim_assert(i < n_ && j < n_ && i != j, "bad pair %u,%u", i, j);
    return at(i, j);
}

std::vector<std::uint32_t>
MatrixArbiter::order() const
{
    std::vector<std::uint32_t> idx(n_);
    for (std::uint32_t i = 0; i < n_; ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return at(a, b);
              });
    return idx;
}

} // namespace hirise::arb
