/**
 * @file
 * Pluggable single-stage crossbar schedulers (ROADMAP item 3): the
 * grant-decision strategy behind Flat2dFabric. The fabric's collect
 * pass bins requests into per-output columns (a `contended` output
 * set plus a `want` requestor bitmap per column); the scheduler turns
 * those columns into at most one winner per column, one per input —
 * a matching. Selected via SwitchSpec::arb (makeScheduler below).
 *
 * Implemented strategies:
 *  - LRG: per-column matrix arbiter, exactly the decision sequence the
 *    fabric hard-wired before the interface existed (bit-identical).
 *  - iSLIP: 1..k iterations of round-robin grant/accept pointer
 *    matching (McKeown); pointers move one past the match only when
 *    the grant is accepted in the first iteration, which is what
 *    desynchronizes the pointers under contention.
 *  - PIM: 1..k rounds of uniform-random grant/accept (Anderson et
 *    al., Tiny Tera lineage) driven by the counter RNG
 *    (common/random.hh) so every draw is a pure function of
 *    (schedSeed, draw index) — order-independent and replayable.
 *  - Wavefront: combinational rotating-priority diagonal sweep.
 *
 * Statefulness contract: the fabric calls match() exactly once per
 * arbitration cycle in which at least one input requested, and never
 * on all-idle cycles (the event core skips those entirely — see
 * Fabric::advanceIdle). Schedulers may therefore advance per-call
 * state (round-robin pointers, the PIM draw tick, the wavefront
 * priority diagonal) inside match() and stay bit-identical across
 * dense, event-driven, and batched stepping. Each strategy has a
 * deliberately naive reference twin in src/check/oracle.cc whose
 * decision order must track this file operation for operation.
 *
 * Pointer/update rules and references: docs/SCHEDULERS.md.
 */

#ifndef HIRISE_ARB_SCHEDULER_HH
#define HIRISE_ARB_SCHEDULER_HH

#include <memory>
#include <span>
#include <vector>

#include "arb/matrix_arbiter.hh"
#include "common/bitvec.hh"
#include "common/random.hh"
#include "common/spec.hh"

namespace hirise::arb {

class CrossbarScheduler
{
  public:
    static constexpr std::uint32_t kNone = ~0u;

    explicit CrossbarScheduler(std::uint32_t n) : n_(n) {}
    virtual ~CrossbarScheduler() = default;

    std::uint32_t size() const { return n_; }

    /**
     * One matching pass over the crossbar's request columns.
     *
     * @param contended outputs with >= 1 requestor this cycle (busy
     *                  outputs never appear — their requests lost at
     *                  collect time)
     * @param want      want[o] = requestor bitmap of output o's
     *                  column; valid only for contended o
     * @param winner    out-param: winner[o] = granted input or kNone
     *                  for every contended o (entries of other
     *                  outputs are left untouched)
     *
     * Must produce a matching: distinct contended outputs never get
     * the same winner, and winner[o] is always a requestor of o.
     * Exception: LrgScheduler decides each column independently (the
     * paper's design), so it relies on the degree-1 invariant the
     * fabric's collect pass guarantees — each input requests at most
     * one output per cycle — and may double-grant an input on
     * arbitrary multi-request matrices. The iterative schedulers
     * produce a proper matching for any request matrix.
     */
    virtual void match(const BitVec &contended,
                       std::span<const BitVec> want,
                       std::span<std::uint32_t> winner) = 0;

    /** Checkpoint per-call state (pointers, ticks, priority rows);
     *  load() runs on a same-configuration fresh instance. */
    virtual void save(snap::Writer &w) const = 0;
    virtual void load(snap::Reader &r) = 0;

  protected:
    std::uint32_t n_;
};

/** The paper's flat scheme: one least-recently-granted matrix arbiter
 *  per output column, picked and demoted in ascending column order. */
class LrgScheduler final : public CrossbarScheduler
{
  public:
    explicit LrgScheduler(std::uint32_t n)
        : CrossbarScheduler(n), arb_(n, MatrixArbiter(n))
    {}

    void match(const BitVec &contended, std::span<const BitVec> want,
               std::span<std::uint32_t> winner) override;

    const MatrixArbiter &columnArb(std::uint32_t o) const
    {
        return arb_[o];
    }

    void
    save(snap::Writer &w) const override
    {
        for (const auto &a : arb_)
            a.save(w);
    }
    void
    load(snap::Reader &r) override
    {
        for (auto &a : arb_)
            a.load(r);
    }

  private:
    std::vector<MatrixArbiter> arb_;
};

/** iSLIP with @p iters iterations (iters == 1 is plain SLIP). */
class IslipScheduler final : public CrossbarScheduler
{
  public:
    IslipScheduler(std::uint32_t n, std::uint32_t iters)
        : CrossbarScheduler(n), iters_(iters), grantPtr_(n, 0),
          acceptPtr_(n, 0), bestOut_(n, 0), bestDist_(n, 0),
          matchedIn_(n), grantedIn_(n), outPending_(n), cand_(n)
    {}

    void match(const BitVec &contended, std::span<const BitVec> want,
               std::span<std::uint32_t> winner) override;

    std::uint32_t grantPtr(std::uint32_t o) const { return grantPtr_[o]; }
    std::uint32_t acceptPtr(std::uint32_t i) const
    {
        return acceptPtr_[i];
    }

    void
    save(snap::Writer &w) const override
    {
        w.vec(grantPtr_);
        w.vec(acceptPtr_);
    }
    void
    load(snap::Reader &r) override
    {
        r.vec(grantPtr_);
        r.vec(acceptPtr_);
    }

  private:
    std::uint32_t iters_;
    std::vector<std::uint32_t> grantPtr_;  //!< per output column
    std::vector<std::uint32_t> acceptPtr_; //!< per input

    // -- per-call scratch (no steady-state allocation) ---------------
    std::vector<std::uint32_t> bestOut_;  //!< per input: best grant
    std::vector<std::uint32_t> bestDist_; //!< circular dist to accept ptr
    BitVec matchedIn_;  //!< inputs matched in an earlier iteration
    BitVec grantedIn_;  //!< inputs granted this iteration
    BitVec outPending_; //!< contended outputs still unmatched
    BitVec cand_;       //!< want[o] & ~matchedIn_
};

/** Parallel iterative matching with @p rounds random grant/accept
 *  rounds. Every random choice is one counter-RNG draw addressed by a
 *  sequential tick, so the draw sequence — and hence the schedule —
 *  is a pure function of (seed, request history), independent of
 *  stepping mode and replayable by the oracle. A draw is consumed per
 *  granting output and per accepting input even when only one choice
 *  exists, keeping the tick stream aligned with the request history
 *  alone. */
class PimScheduler final : public CrossbarScheduler
{
  public:
    PimScheduler(std::uint32_t n, std::uint32_t rounds,
                 std::uint64_t seed)
        : CrossbarScheduler(n), rounds_(rounds),
          key_(counterKey(seed, 0)), grants_(n), matchedIn_(n),
          grantedIn_(n), outPending_(n), cand_(n)
    {}

    void match(const BitVec &contended, std::span<const BitVec> want,
               std::span<std::uint32_t> winner) override;

    std::uint64_t tick() const { return tick_; }

    void save(snap::Writer &w) const override { w.u64(tick_); }
    void load(snap::Reader &r) override { tick_ = r.u64(); }

  private:
    std::uint32_t rounds_;
    std::uint64_t key_;      //!< counter-RNG stream key
    std::uint64_t tick_ = 0; //!< next draw index

    // -- per-call scratch --------------------------------------------
    std::vector<std::vector<std::uint32_t>> grants_; //!< per input
    BitVec matchedIn_;
    BitVec grantedIn_;
    BitVec outPending_;
    BitVec cand_;
};

/** Rotating-priority wavefront allocator: sweep the n diagonals
 *  i + o == diag (mod n) starting from a priority diagonal that
 *  rotates one position per arbitration call; cells on one diagonal
 *  are conflict-free, so each sweep grants greedily. */
class WavefrontScheduler final : public CrossbarScheduler
{
  public:
    explicit WavefrontScheduler(std::uint32_t n)
        : CrossbarScheduler(n), matchedIn_(n)
    {}

    void match(const BitVec &contended, std::span<const BitVec> want,
               std::span<std::uint32_t> winner) override;

    std::uint32_t priority() const { return prio_; }

    void save(snap::Writer &w) const override { w.u32(prio_); }
    void load(snap::Reader &r) override { prio_ = r.u32(); }

  private:
    std::uint32_t prio_ = 0; //!< priority diagonal, rotates per call
    BitVec matchedIn_;
};

/** Build the scheduler selected by spec.arb (fatal()s for the
 *  two-phase HiRise schemes — those live in SubBlockArbiter). */
std::unique_ptr<CrossbarScheduler>
makeScheduler(const SwitchSpec &spec);

} // namespace hirise::arb

#endif // HIRISE_ARB_SCHEDULER_HH
