#include "arb/mwm.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace hirise::arb {

MwmResult
maxWeightMatching(std::uint32_t n, std::span<const std::int64_t> weight)
{
    sim_assert(weight.size() == std::size_t(n) * n,
               "weight matrix must be n x n");
    constexpr std::int64_t kInf =
        std::numeric_limits<std::int64_t>::max() / 4;

    // Kuhn-Munkres in the shortest-augmenting-path / dual-potentials
    // form, minimizing cost = wmax - weight over the complete graph
    // (so a maximum-weight perfect matching always exists). 1-based
    // arrays with row/column 0 as the virtual start vertex.
    std::int64_t wmax = 0;
    for (std::int64_t w : weight) {
        sim_assert(w >= 0, "negative matching weight");
        wmax = std::max(wmax, w);
    }
    auto cost = [&](std::uint32_t i, std::uint32_t j) {
        return wmax - weight[std::size_t(i) * n + j];
    };

    std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0), minv(n + 1);
    std::vector<std::uint32_t> p(n + 1, 0), way(n + 1, 0);
    std::vector<char> used(n + 1);
    for (std::uint32_t i = 1; i <= n; ++i) {
        p[0] = i;
        std::uint32_t j0 = 0;
        std::fill(minv.begin(), minv.end(), kInf);
        std::fill(used.begin(), used.end(), char(0));
        do {
            used[j0] = 1;
            std::uint32_t i0 = p[j0], j1 = 0;
            std::int64_t delta = kInf;
            for (std::uint32_t j = 1; j <= n; ++j) {
                if (used[j])
                    continue;
                std::int64_t cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if (cur < minv[j]) {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if (minv[j] < delta) {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for (std::uint32_t j = 0; j <= n; ++j) {
                if (used[j]) {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
        } while (p[j0] != 0);
        do {
            std::uint32_t j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
        } while (j0);
    }

    MwmResult r;
    r.inputOf.assign(n, ~0u);
    for (std::uint32_t j = 1; j <= n; ++j) {
        std::uint32_t i = p[j];
        if (i == 0)
            continue;
        std::int64_t w = weight[std::size_t(i - 1) * n + (j - 1)];
        if (w > 0) { // zero-weight pairs are "unmatched"
            r.inputOf[j - 1] = i - 1;
            r.weight += w;
            ++r.size;
        }
    }
    return r;
}

} // namespace hirise::arb
