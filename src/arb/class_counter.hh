/**
 * @file
 * CLRG thermometer class-counter bank (paper sections III-B4, IV-B1).
 */

#ifndef HIRISE_ARB_CLASS_COUNTER_HH
#define HIRISE_ARB_CLASS_COUNTER_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/snapshot.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hirise::arb {

namespace detail {

inline obs::Counter &
clrgPromoteCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("arb.clrg_promotions");
    return c;
}

inline obs::Counter &
clrgHalveCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("arb.clrg_halves");
    return c;
}

} // namespace detail

/**
 * One bank of per-primary-input usage counters, as kept inside every
 * inter-layer sub-block crosspoint group. The counter value is the
 * input's priority class: 0 is the highest class; larger values mean
 * the input has consumed more of this output's bandwidth.
 *
 * The hardware uses a thermometer counter ({00,01,11} for the paper's
 * three classes, i.e. maxCount == 2). When an increment would pass
 * maxCount, all counters in the bank are halved, preserving relative
 * class order while forgetting stale history (bursty-traffic rule).
 */
class ClassCounterBank
{
  public:
    /**
     * @param num_inputs  number of primary inputs tracked (radix N)
     * @param max_count   saturation value; classes = max_count + 1
     */
    ClassCounterBank(std::uint32_t num_inputs, std::uint32_t max_count)
        : maxCount_(max_count), count_(num_inputs, 0)
    {
        sim_assert(max_count >= 1, "need at least two classes");
    }

    std::uint32_t numInputs() const
    {
        return static_cast<std::uint32_t>(count_.size());
    }
    std::uint32_t maxCount() const { return maxCount_; }

    /** Priority class of @p input (0 = highest priority). */
    std::uint32_t
    classOf(std::uint32_t input) const
    {
        sim_assert(input < count_.size(), "input %u out of range", input);
        return count_[input];
    }

    /**
     * Record that @p input won this output. Applies the divide-by-2
     * rule on saturation.
     */
    void
    onWin(std::uint32_t input)
    {
        sim_assert(input < count_.size(), "input %u out of range", input);
        // Saturation rule: halve the whole bank first, then apply the
        // increment, so the winner keeps its relative penalty. (The
        // reverse order would reward the input that saturated.)
        bool halved = (count_[input] == maxCount_);
        if (halved)
            simd::halveU32(count_.data(), count_.size());
        ++count_[input];
        if (obs::on()) [[unlikely]]
            recordWin(input, halved);
    }

    void
    save(snap::Writer &w) const
    {
        w.vec(count_);
    }

    void
    load(snap::Reader &r)
    {
        std::size_t shape = count_.size();
        r.vec(count_);
        sim_assert(count_.size() == shape,
                   "class-counter snapshot shape mismatch");
    }

  private:
    /** Cold and out-of-line so the traced path costs the hot
     *  arbitration loop nothing but the guard's test+branch. */
    [[gnu::cold]] [[gnu::noinline]] void
    recordWin(std::uint32_t input, bool halved)
    {
        auto &tr = obs::CycleTracer::global();
        if (halved) {
            tr.record(obs::Ev::ClassHalve, input, maxCount_);
            detail::clrgHalveCounter().inc();
        }
        tr.record(obs::Ev::ClassPromote, input, count_[input]);
        detail::clrgPromoteCounter().inc();
    }

    std::uint32_t maxCount_;
    std::vector<std::uint32_t> count_;
};

} // namespace hirise::arb

#endif // HIRISE_ARB_CLASS_COUNTER_HH
