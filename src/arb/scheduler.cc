#include "arb/scheduler.hh"

#include "common/logging.hh"

namespace hirise::arb {

namespace {

/** First set bit of @p v at or circularly after @p start, or kNpos. */
std::uint32_t
circularFirst(const BitVec &v, std::uint32_t start)
{
    std::uint32_t i =
        start == 0 ? v.firstSet() : v.nextSet(start - 1);
    if (i != BitVec::kNpos || start == 0)
        return i;
    return v.firstSet(); // wrap: any hit here is < start
}

/** Index of the @p idx-th (0-based) set bit; @pre idx < v.count(). */
std::uint32_t
nthSet(const BitVec &v, std::uint32_t idx)
{
    std::uint32_t b = v.firstSet();
    while (idx--)
        b = v.nextSet(b);
    return b;
}

} // namespace

// ---------------------------------------------------------------------
// LRG
// ---------------------------------------------------------------------

void
LrgScheduler::match(const BitVec &contended,
                    std::span<const BitVec> want,
                    std::span<std::uint32_t> winner)
{
    // Exactly the op sequence Flat2dFabric::finishArbitrate ran before
    // the strategy interface existed: ascending contended columns,
    // pick then demote. Bit-identity with the pre-refactor fabric is
    // enforced by the golden suite and the differential oracle.
    contended.forEachSet([&](std::uint32_t o) {
        std::uint32_t w = arb_[o].pick(want[o]);
        winner[o] = w; // MatrixArbiter::kNone == kNone
        if (w != MatrixArbiter::kNone)
            arb_[o].update(w);
    });
}

// ---------------------------------------------------------------------
// iSLIP
// ---------------------------------------------------------------------

void
IslipScheduler::match(const BitVec &contended,
                      std::span<const BitVec> want,
                      std::span<std::uint32_t> winner)
{
    contended.forEachSet([&](std::uint32_t o) { winner[o] = kNone; });
    matchedIn_.clear();
    outPending_.copyFrom(contended);
    std::uint32_t pending = contended.count();

    for (std::uint32_t it = 0; it < iters_ && pending; ++it) {
        // Grant phase: each unmatched column offers to the first
        // still-unmatched requestor at or after its grant pointer.
        grantedIn_.clear();
        bool anyGrant = false;
        outPending_.forEachSet([&](std::uint32_t o) {
            cand_.copyFrom(want[o]);
            cand_.andNot(matchedIn_);
            std::uint32_t i = circularFirst(cand_, grantPtr_[o]);
            if (i == BitVec::kNpos)
                return;
            anyGrant = true;
            // Accept phase preview: an input takes the granting
            // output circularly closest to its accept pointer.
            std::uint32_t d = o >= acceptPtr_[i]
                                  ? o - acceptPtr_[i]
                                  : o + n_ - acceptPtr_[i];
            if (!grantedIn_[i]) {
                grantedIn_.set(i);
                bestOut_[i] = o;
                bestDist_[i] = d;
            } else if (d < bestDist_[i]) {
                bestOut_[i] = o;
                bestDist_[i] = d;
            }
        });
        if (!anyGrant)
            break;

        // Accept phase: commit each granted input's closest offer.
        // Pointers move one past the match only on first-iteration
        // accepts (McKeown's rule; later iterations must not move
        // them or the desynchronization property is lost).
        grantedIn_.forEachSet([&](std::uint32_t i) {
            std::uint32_t o = bestOut_[i];
            winner[o] = i;
            matchedIn_.set(i);
            outPending_.reset(o);
            --pending;
            if (it == 0) {
                grantPtr_[o] = i + 1 == n_ ? 0 : i + 1;
                acceptPtr_[i] = o + 1 == n_ ? 0 : o + 1;
            }
        });
    }
}

// ---------------------------------------------------------------------
// PIM
// ---------------------------------------------------------------------

void
PimScheduler::match(const BitVec &contended,
                    std::span<const BitVec> want,
                    std::span<std::uint32_t> winner)
{
    contended.forEachSet([&](std::uint32_t o) { winner[o] = kNone; });
    matchedIn_.clear();
    outPending_.copyFrom(contended);
    std::uint32_t pending = contended.count();

    for (std::uint32_t r = 0; r < rounds_ && pending; ++r) {
        // Grant phase, ascending columns: one draw per column with
        // candidates, uniform over the still-unmatched requestors.
        grantedIn_.clear();
        bool anyGrant = false;
        outPending_.forEachSet([&](std::uint32_t o) {
            cand_.copyFrom(want[o]);
            cand_.andNot(matchedIn_);
            std::uint32_t m = cand_.count();
            if (m == 0)
                return;
            auto idx = static_cast<std::uint32_t>(
                counterBelow(counterDrawKeyed(key_, tick_++), m));
            std::uint32_t i = nthSet(cand_, idx);
            grantedIn_.set(i);
            grants_[i].push_back(o);
            anyGrant = true;
        });
        if (!anyGrant)
            break;

        // Accept phase, ascending inputs: one draw per granted input,
        // uniform over the columns that granted it.
        grantedIn_.forEachSet([&](std::uint32_t i) {
            auto &g = grants_[i];
            auto idx = static_cast<std::uint32_t>(counterBelow(
                counterDrawKeyed(key_, tick_++), g.size()));
            std::uint32_t o = g[idx];
            winner[o] = i;
            matchedIn_.set(i);
            outPending_.reset(o);
            --pending;
            g.clear();
        });
    }
}

// ---------------------------------------------------------------------
// Wavefront
// ---------------------------------------------------------------------

void
WavefrontScheduler::match(const BitVec &contended,
                          std::span<const BitVec> want,
                          std::span<std::uint32_t> winner)
{
    contended.forEachSet([&](std::uint32_t o) { winner[o] = kNone; });
    matchedIn_.clear();
    std::uint32_t pending = contended.count();

    for (std::uint32_t k = 0; k < n_ && pending; ++k) {
        std::uint32_t diag = prio_ + k >= n_ ? prio_ + k - n_
                                             : prio_ + k;
        // Cells on one diagonal (i + o == diag mod n) are mutually
        // conflict-free; grant every requested free one.
        contended.forEachSet([&](std::uint32_t o) {
            if (winner[o] != kNone)
                return;
            std::uint32_t i =
                diag >= o ? diag - o : diag + n_ - o;
            if (!matchedIn_[i] && want[o][i]) {
                winner[o] = i;
                matchedIn_.set(i);
                --pending;
            }
        });
    }
    prio_ = prio_ + 1 == n_ ? 0 : prio_ + 1;
}

// ---------------------------------------------------------------------

std::unique_ptr<CrossbarScheduler>
makeScheduler(const SwitchSpec &spec)
{
    switch (spec.arb) {
      case ArbScheme::Lrg:
        return std::make_unique<LrgScheduler>(spec.radix);
      case ArbScheme::Islip:
        return std::make_unique<IslipScheduler>(spec.radix,
                                                spec.schedIters);
      case ArbScheme::Pim:
        return std::make_unique<PimScheduler>(
            spec.radix, spec.schedIters, spec.schedSeed);
      case ArbScheme::Wavefront:
        return std::make_unique<WavefrontScheduler>(spec.radix);
      default:
        break;
    }
    fatal("no single-stage crossbar scheduler for %s", toString(spec.arb));
}

} // namespace hirise::arb
