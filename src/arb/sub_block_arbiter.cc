#include "arb/sub_block_arbiter.hh"

#include "common/simd.hh"

namespace hirise::arb {

namespace {

void
validMask(const std::vector<SubBlockRequest> &reqs, BitVec &mask)
{
    mask.clear();
    for (std::size_t i = 0; i < reqs.size(); ++i)
        if (reqs[i].valid)
            mask.set(static_cast<std::uint32_t>(i));
}

} // namespace

std::uint32_t
LrgSubArbiter::arbitrate(const std::vector<SubBlockRequest> &reqs)
{
    validMask(reqs, mask_);
    std::uint32_t w = lrg_.pick(mask_);
    if (w != kNone)
        lrg_.update(w);
    return w;
}

std::uint32_t
WlrgSubArbiter::arbitrate(const std::vector<SubBlockRequest> &reqs)
{
    validMask(reqs, mask_);
    std::uint32_t w = lrg_.pick(mask_);
    if (w == kNone)
        return w;
    // Freeze the LRG demotion until this port has won once per
    // requestor it represented, so heavier L2LCs keep a proportional
    // share of the output (the "weights" of section III-B3).
    ++wins_[w];
    if (wins_[w] >= reqs[w].weight) {
        lrg_.update(w);
        wins_[w] = 0;
    }
    return w;
}

std::uint32_t
ClrgSubArbiter::arbitrate(const std::vector<SubBlockRequest> &reqs)
{
    // Flatten each port's class into cls_ (idle ports carry
    // kInvalidClass), then coarse priority — lowest class among
    // contenders — is a SIMD min-reduction.
    const std::size_t n = reqs.size();
    for (std::size_t i = 0; i < n; ++i) {
        cls_[i] = reqs[i].valid
                      ? counters_.classOf(reqs[i].primaryInput)
                      : kInvalidClass;
    }
    const std::uint32_t best_class = simd::minU32(cls_.data(), n);
    if (best_class == kInvalidClass)
        return kNone;

    // The priority-select muxes inhibit every request outside the best
    // class; LRG breaks ties within it (Fig 7). eqBitsU32 writes the
    // mask's words wholesale (exactly ceil(n/64) of them).
    simd::eqBitsU32(cls_.data(), n, best_class, mask_.words());
    std::uint32_t w = lrg_.pick(mask_);
    sim_assert(w != kNone, "class mask had a requestor");
    // LRG is updated even on class-decided cycles (paper III-B4).
    lrg_.update(w);
    counters_.onWin(reqs[w].primaryInput);
    return w;
}

std::unique_ptr<SubBlockArbiter>
makeSubBlockArbiter(ArbScheme scheme, std::uint32_t num_ports,
                    std::uint32_t num_inputs, std::uint32_t max_count)
{
    switch (scheme) {
      case ArbScheme::LayerLrg:
        return std::make_unique<LrgSubArbiter>(num_ports);
      case ArbScheme::Wlrg:
        return std::make_unique<WlrgSubArbiter>(num_ports);
      case ArbScheme::Clrg:
        return std::make_unique<ClrgSubArbiter>(num_ports, num_inputs,
                                                max_count);
      case ArbScheme::Lrg:
        // A flat switch has no sub-blocks; callers use MatrixArbiter.
        break;
    }
    panic("no sub-block arbiter for scheme %s", toString(scheme));
}

} // namespace hirise::arb
