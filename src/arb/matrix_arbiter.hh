/**
 * @file
 * Matrix (least-recently-granted) arbiter, the building block of the
 * Swizzle-Switch crosspoint priority vectors (paper section II-A).
 */

#ifndef HIRISE_ARB_MATRIX_ARBITER_HH
#define HIRISE_ARB_MATRIX_ARBITER_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"

namespace hirise::arb {

/**
 * Classic matrix arbiter implementing LRG priority over n requestors.
 *
 * State is a strict total order encoded as a triangular matrix:
 * row i bit j == true means i currently outranks j. Granting i moves
 * it behind everyone (least recently granted wins next time).
 *
 * Rows are stored as uint64 word arrays so pick() evaluates
 * "req[i] && none_set(req & ~row(i))" a word at a time: input i wins
 * exactly when no other requestor outranks it, and the whole O(n)
 * inner dominance test collapses to a handful of AND/ANDNOT word ops.
 *
 * pick() is const so callers can decompose arbitration (e.g. Hi-Rise
 * only updates the local-switch LRG when the inter-layer stage
 * confirms the end-to-end win, section III-B1).
 */
class MatrixArbiter
{
  public:
    static constexpr std::uint32_t kNone = ~0u;

    explicit MatrixArbiter(std::uint32_t n);

    std::uint32_t size() const { return n_; }

    /**
     * Highest-priority requestor, or kNone when req is empty.
     * @param req requestor bitmap, req.size() == size()
     */
    std::uint32_t pick(const BitVec &req) const;

    /** Convenience overload (tests, cold paths): allocates. */
    std::uint32_t pick(const std::vector<bool> &req) const;

    /** Demote @p winner to the lowest priority. */
    void update(std::uint32_t winner);

    /** Does i currently outrank j? (i != j) */
    bool outranks(std::uint32_t i, std::uint32_t j) const;

    /** Full priority order, highest first (for tests/debug). */
    std::vector<std::uint32_t> order() const;

    void
    save(snap::Writer &w) const
    {
        w.vec(prio_);
    }

    void
    load(snap::Reader &r)
    {
        std::size_t shape = prio_.size();
        r.vec(prio_);
        sim_assert(prio_.size() == shape,
                   "matrix-arbiter snapshot shape mismatch");
    }

  private:
    using Word = BitVec::Word;
    static constexpr std::uint32_t kWordBits = BitVec::kWordBits;

    std::uint32_t n_;
    std::uint32_t rowWords_; //!< words per priority row
    /** Row-major n rows x rowWords_ words; diagonal bits unused and
     *  kept zero. */
    std::vector<Word> prio_;

    const Word *row(std::uint32_t i) const
    {
        return prio_.data() + std::size_t(i) * rowWords_;
    }
    Word *
    row(std::uint32_t i)
    {
        return prio_.data() + std::size_t(i) * rowWords_;
    }
    bool
    at(std::uint32_t i, std::uint32_t j) const
    {
        return (row(i)[j / kWordBits] >> (j % kWordBits)) & 1u;
    }
    void
    set(std::uint32_t i, std::uint32_t j, bool v)
    {
        Word m = Word(1) << (j % kWordBits);
        if (v)
            row(i)[j / kWordBits] |= m;
        else
            row(i)[j / kWordBits] &= ~m;
    }
};

} // namespace hirise::arb

#endif // HIRISE_ARB_MATRIX_ARBITER_HH
