/**
 * @file
 * Matrix (least-recently-granted) arbiter, the building block of the
 * Swizzle-Switch crosspoint priority vectors (paper section II-A).
 */

#ifndef HIRISE_ARB_MATRIX_ARBITER_HH
#define HIRISE_ARB_MATRIX_ARBITER_HH

#include <cstdint>
#include <vector>

namespace hirise::arb {

/**
 * Classic matrix arbiter implementing LRG priority over n requestors.
 *
 * State is a strict total order encoded as a triangular matrix:
 * prio_[i][j] == true means i currently outranks j. Granting i moves
 * it behind everyone (least recently granted wins next time).
 *
 * pick() is const so callers can decompose arbitration (e.g. Hi-Rise
 * only updates the local-switch LRG when the inter-layer stage
 * confirms the end-to-end win, section III-B1).
 */
class MatrixArbiter
{
  public:
    static constexpr std::uint32_t kNone = ~0u;

    explicit MatrixArbiter(std::uint32_t n);

    std::uint32_t size() const { return n_; }

    /**
     * Highest-priority requestor, or kNone when req is empty.
     * @param req requestor bitmap, req.size() == size()
     */
    std::uint32_t pick(const std::vector<bool> &req) const;

    /** Demote @p winner to the lowest priority. */
    void update(std::uint32_t winner);

    /** Does i currently outrank j? (i != j) */
    bool outranks(std::uint32_t i, std::uint32_t j) const;

    /** Full priority order, highest first (for tests/debug). */
    std::vector<std::uint32_t> order() const;

  private:
    std::uint32_t n_;
    /** Row-major n x n; diagonal unused. */
    std::vector<bool> prio_;

    bool at(std::uint32_t i, std::uint32_t j) const
    {
        return prio_[i * n_ + j];
    }
    void
    set(std::uint32_t i, std::uint32_t j, bool v)
    {
        prio_[i * n_ + j] = v;
    }
};

} // namespace hirise::arb

#endif // HIRISE_ARB_MATRIX_ARBITER_HH
