/**
 * @file
 * Exact maximum-weight bipartite matching (Kuhn-Munkres / Hungarian
 * algorithm, O(n^3)): the offline scheduling oracle of the MWM ->
 * iSLIP lineage. Given per-(input, output) weights — VOQ occupancies,
 * waiting times, or plain 0/1 request indicators — it returns the
 * matching with maximum total weight; with 0/1 weights that is a
 * maximum-cardinality matching, the upper bound on what any one-cycle
 * crossbar schedule can serve.
 *
 * This is a reference oracle, not a fabric: it never runs inside a
 * simulated switch (MWM is not implementable in a single-cycle
 * arbiter). tests/sched_property_test.cc uses it to bound every
 * online scheduler, and sim/mwm_bound.cc uses the same idea in fluid
 * (max-flow) form for sustained-throughput bounds.
 */

#ifndef HIRISE_ARB_MWM_HH
#define HIRISE_ARB_MWM_HH

#include <cstdint>
#include <span>
#include <vector>

namespace hirise::arb {

struct MwmResult
{
    /** inputOf[o] = input matched to output o, or ~0u. Only pairs
     *  with strictly positive weight count as matched. */
    std::vector<std::uint32_t> inputOf;
    std::int64_t weight = 0; //!< total weight of the matched pairs
    std::uint32_t size = 0;  //!< number of matched pairs
};

/**
 * Maximum-weight matching over the complete bipartite graph on
 * n inputs x n outputs with weight[i * n + o] >= 0. A zero weight
 * means "no edge": the algorithm may route its internal perfect
 * matching through it, but such pairs are reported unmatched.
 */
MwmResult maxWeightMatching(std::uint32_t n,
                            std::span<const std::int64_t> weight);

} // namespace hirise::arb

#endif // HIRISE_ARB_MWM_HH
