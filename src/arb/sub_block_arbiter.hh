/**
 * @file
 * Inter-layer sub-block arbiters: one final output choosing among the
 * incoming L2LCs and the local intermediate output (paper III-B).
 */

#ifndef HIRISE_ARB_SUB_BLOCK_ARBITER_HH
#define HIRISE_ARB_SUB_BLOCK_ARBITER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arb/class_counter.hh"
#include "arb/matrix_arbiter.hh"
#include "common/spec.hh"

namespace hirise::arb {

/** One contender at a sub-block port for this arbitration cycle. */
struct SubBlockRequest
{
    bool valid = false;
    /** Global id of the primary input the port currently represents
     *  (the local-switch winner riding this L2LC). */
    std::uint32_t primaryInput = 0;
    /** WLRG only: number of requestors this L2LC represented at its
     *  local switch when it won (shipped along with the request). */
    std::uint32_t weight = 1;
};

/**
 * Abstract sub-block arbiter. The sub-block is the final arbitration
 * stage, so its winner always owns the output: arbitrate() both picks
 * and commits priority-state updates.
 */
class SubBlockArbiter
{
  public:
    static constexpr std::uint32_t kNone = MatrixArbiter::kNone;

    virtual ~SubBlockArbiter() = default;

    /** Winner port index, or kNone if nothing valid requested. */
    virtual std::uint32_t
    arbitrate(const std::vector<SubBlockRequest> &reqs) = 0;

    /** Checkpoint the priority state (common/snapshot.hh contract:
     *  load() runs on a same-configuration fresh instance). */
    virtual void save(snap::Writer &w) const = 0;
    virtual void load(snap::Reader &r) = 0;
};

/** Baseline layer-to-layer LRG: plain matrix LRG over ports. */
class LrgSubArbiter : public SubBlockArbiter
{
  public:
    explicit LrgSubArbiter(std::uint32_t num_ports)
        : lrg_(num_ports), mask_(num_ports)
    {}

    std::uint32_t
    arbitrate(const std::vector<SubBlockRequest> &reqs) override;

    void save(snap::Writer &w) const override { lrg_.save(w); }
    void load(snap::Reader &r) override { lrg_.load(r); }

  private:
    MatrixArbiter lrg_;
    BitVec mask_; //!< per-cycle scratch, preallocated
};

/**
 * Weighted LRG: hold the winner's LRG demotion until it has won as
 * many times as the requestor count it represents (paper III-B3).
 * Simulated for comparison only; its hardware is infeasible (Table V).
 */
class WlrgSubArbiter : public SubBlockArbiter
{
  public:
    explicit WlrgSubArbiter(std::uint32_t num_ports)
        : lrg_(num_ports), wins_(num_ports, 0), mask_(num_ports)
    {}

    std::uint32_t
    arbitrate(const std::vector<SubBlockRequest> &reqs) override;

    void
    save(snap::Writer &w) const override
    {
        lrg_.save(w);
        w.vec(wins_);
    }
    void
    load(snap::Reader &r) override
    {
        lrg_.load(r);
        r.vec(wins_);
    }

  private:
    MatrixArbiter lrg_;
    std::vector<std::uint32_t> wins_;
    BitVec mask_; //!< per-cycle scratch, preallocated
};

/**
 * Class-based LRG (the paper's scheme): coarse priority by per-
 * primary-input usage class, LRG tie-break inside a class. The LRG is
 * updated on every grant even when the class decided (paper III-B4).
 */
class ClrgSubArbiter : public SubBlockArbiter
{
  public:
    ClrgSubArbiter(std::uint32_t num_ports, std::uint32_t num_inputs,
                   std::uint32_t max_count)
        : lrg_(num_ports), counters_(num_inputs, max_count),
          mask_(num_ports), cls_(num_ports, kInvalidClass)
    {}

    std::uint32_t
    arbitrate(const std::vector<SubBlockRequest> &reqs) override;

    const ClassCounterBank &counters() const { return counters_; }

    void
    save(snap::Writer &w) const override
    {
        lrg_.save(w);
        counters_.save(w);
    }
    void
    load(snap::Reader &r) override
    {
        lrg_.load(r);
        counters_.load(r);
    }

  private:
    /** Idle-port marker in cls_; equals simd::minU32's identity so a
     *  best class of kInvalidClass means "no valid request". Real
     *  classes are bounded by maxCount and can never collide. */
    static constexpr std::uint32_t kInvalidClass = ~0u;

    MatrixArbiter lrg_;
    ClassCounterBank counters_;
    BitVec mask_; //!< per-cycle scratch, preallocated
    /** Per-port class of the current request vector (kInvalidClass
     *  for idle ports), flat so the best-class reduction and the
     *  class-match mask build run as SIMD sweeps. */
    std::vector<std::uint32_t> cls_;
};

/** Factory keyed on the spec's arbitration scheme. */
std::unique_ptr<SubBlockArbiter>
makeSubBlockArbiter(ArbScheme scheme, std::uint32_t num_ports,
                    std::uint32_t num_inputs, std::uint32_t max_count);

} // namespace hirise::arb

#endif // HIRISE_ARB_SUB_BLOCK_ARBITER_HH
