/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * histograms registered by component ("sim.packets_injected",
 * "fabric.grants_cross", "harness.table4.wall_ms", ...), with a
 * consistent snapshot and JSON/CSV export for dashboards and CI.
 *
 * Modeled on the per-port/per-queue counter subsystems of production
 * switch stacks (sonic-swss FlexCounter et al.): components obtain a
 * stable reference once and bump it with a relaxed atomic increment.
 * Hot-path call sites additionally guard the bump behind obs::on()
 * (see obs/trace.hh) so the default-off configuration costs only a
 * predictable never-taken branch.
 */

#ifndef HIRISE_OBS_METRICS_HH
#define HIRISE_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"

namespace hirise::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-written instantaneous value (queue depth, wall time, ...). */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Thread-safe wrapper over the fixed-bin Histogram accumulator. */
class HistogramMetric
{
  public:
    HistogramMetric(double bin_width, std::size_t num_bins)
        : binWidth_(bin_width), numBins_(num_bins),
          h_(bin_width, num_bins)
    {}

    void
    observe(double x)
    {
        std::lock_guard<std::mutex> lk(mu_);
        h_.add(x);
    }

    Histogram
    snapshot() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return h_;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lk(mu_);
        h_ = Histogram(binWidth_, numBins_);
    }

  private:
    mutable std::mutex mu_;
    double binWidth_;
    std::size_t numBins_;
    Histogram h_;
};

/** One exported metric value (see MetricsRegistry::snapshot). */
struct MetricSnapshot
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string name;
    Kind kind = Kind::Counter;
    double value = 0.0;        //!< counter/gauge value; histogram mean
    std::uint64_t count = 0;   //!< histogram sample count
    double p50 = 0.0;          //!< histogram only
    double p99 = 0.0;          //!< histogram only
    std::uint64_t overflow = 0; //!< histogram overflow-bin samples
};

const char *toString(MetricSnapshot::Kind k);

/**
 * Registry of named metrics. Registration returns a reference that
 * stays valid for the registry's lifetime (node-based storage), so
 * components look their metric up once and keep the handle.
 */
class MetricsRegistry
{
  public:
    /** Find-or-create; the same name always yields the same object. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    HistogramMetric &histogram(std::string_view name,
                               double bin_width = 1.0,
                               std::size_t num_bins = 1024);

    /** All metrics, sorted by (kind-independent) name. */
    std::vector<MetricSnapshot> snapshot() const;

    void writeJson(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;
    bool writeJsonFile(const std::string &path) const;
    bool writeCsvFile(const std::string &path) const;

    /** Zero every registered metric (registrations survive). */
    void reset();

    std::size_t size() const;

    static MetricsRegistry &global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
        hists_;
};

} // namespace hirise::obs

#endif // HIRISE_OBS_METRICS_HH
