/**
 * @file
 * Cycle-event tracer: a ring-buffered log of structured simulation
 * events (inject, grant, release, L2LC allocation, CLRG class
 * promotion/halve, cache hit/miss, experiment begin/end), exportable
 * as JSONL and as Chrome trace_event JSON for chrome://tracing.
 *
 * Cost model: instrumentation sites are guarded by obs::on(), a single
 * relaxed atomic-bool load plus a branch that is never taken in the
 * default (disabled) state, so tracing off costs nothing measurable on
 * the simulation hot path. Building with -DHIRISE_TRACE=OFF defines
 * HIRISE_TRACE_DISABLED and turns obs::on() into `constexpr false`,
 * removing every guarded site at compile time (the kill switch).
 *
 * The tracer is process-wide (CycleTracer::global()). Events carry the
 * current simulation cycle, published per worker thread via
 * setTraceCycle() (thread-local, so parallel campaign workers never
 * race), and a small per-thread id for disentangling interleaved runs.
 * The ring overwrites its oldest entries when full; dropped() reports
 * how many were lost so exports can say so.
 */

#ifndef HIRISE_OBS_TRACE_HH
#define HIRISE_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hirise::obs {

// -- master runtime guard for all hot-path instrumentation ------------
#ifdef HIRISE_TRACE_DISABLED
constexpr bool compiledIn() { return false; }
constexpr bool on() { return false; }
inline void setEnabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_obsOn;
} // namespace detail

constexpr bool compiledIn() { return true; }

/** True iff observability (tracer and/or hot-path metrics) is live. */
inline bool
on()
{
    return detail::g_obsOn.load(std::memory_order_relaxed);
}

void setEnabled(bool v);
#endif

/** Event kinds; toString()/evFromString() define the wire names. */
enum class Ev : std::uint8_t
{
    Inject,       //!< a=src, b=dst, id=packet id
    Grant,        //!< a=input, b=output, c=VC, id=packet id
    Release,      //!< a=input, b=output, id=packet id
    ChanAlloc,    //!< a=chanId, b=input, c=output (Hi-Rise cross grant)
    ClassPromote, //!< a=primary input, b=new counter value (CLRG)
    ClassHalve,   //!< a=saturating input, b=maxCount (CLRG bank halve)
    CacheHit,     //!< id=cache key
    CacheMiss,    //!< id=cache key
    ExpBegin,     //!< a=name id, cycle=wall-clock microseconds
    ExpEnd,       //!< a=name id, cycle=wall-clock microseconds
    ChanFail,     //!< a=chanId (scheduled/layer fault)
    ChanRecover,  //!< a=chanId (scheduled recovery / unisolation)
    LinkError,    //!< a=chanId (flaky-link flit error, corrected)
    Isolate,      //!< a=chanId, b=errors in window (threshold trip)
    Unisolate,    //!< a=chanId (recovery window elapsed)
};

constexpr std::uint32_t kNumEv = 15;

const char *toString(Ev e);

/** Parse a wire name back to its kind; false if unknown. */
bool evFromString(std::string_view s, Ev *out);

/** One ring entry; meaning of a/b/c/id depends on kind (see Ev). */
struct TraceEvent
{
    std::uint64_t cycle = 0;
    std::uint64_t id = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::uint16_t tid = 0;
    Ev kind = Ev::Inject;
};

/** Publish the current simulation cycle for this thread's events. */
void setTraceCycle(std::uint64_t cycle);

class CycleTracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    /** Arm the tracer (allocating the ring) and flip the global
     *  obs::on() guard so instrumented sites start recording. */
    void enable(std::size_t capacity = kDefaultCapacity);

    /** Stop recording. Leaves obs::on() untouched (metrics may still
     *  be wanted); buffered events remain exportable. */
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all buffered events and interned names. */
    void clear();

    /** Append one event stamped with this thread's current cycle. */
    void record(Ev kind, std::uint32_t a = 0, std::uint32_t b = 0,
                std::uint32_t c = 0, std::uint64_t id = 0);

    /** Append one event with an explicit timestamp (wall-clock events
     *  from the harness use microseconds instead of cycles). */
    void recordAt(std::uint64_t stamp, Ev kind, std::uint32_t a = 0,
                  std::uint32_t b = 0, std::uint32_t c = 0,
                  std::uint64_t id = 0);

    /** Intern @p name for ExpBegin/ExpEnd events; returns its id. */
    std::uint32_t internName(std::string_view name);

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Interned name table (index == name id). */
    std::vector<std::string> names() const;

    std::uint64_t recorded() const; //!< total events ever recorded
    std::uint64_t dropped() const;  //!< overwritten by ring wrap

    /** Write header + one JSON object per event; false on I/O error. */
    bool exportJsonl(const std::string &path) const;

    /** Write Chrome trace_event JSON (chrome://tracing / Perfetto). */
    bool exportChrome(const std::string &path) const;

    static CycleTracer &global();

  private:
    mutable std::mutex mu_;
    std::atomic<bool> enabled_{false};
    std::vector<TraceEvent> ring_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0; //!< next write slot
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::vector<std::string> names_;
};

} // namespace hirise::obs

#endif // HIRISE_OBS_TRACE_HH
