#include "obs/metrics.hh"

#include <algorithm>
#include <fstream>

#include "common/logging.hh"

namespace hirise::obs {

const char *
toString(MetricSnapshot::Kind k)
{
    switch (k) {
      case MetricSnapshot::Kind::Counter:
        return "counter";
      case MetricSnapshot::Kind::Gauge:
        return "gauge";
      case MetricSnapshot::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

HistogramMetric &
MetricsRegistry::histogram(std::string_view name, double bin_width,
                           std::size_t num_bins)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = hists_.find(name);
    if (it == hists_.end()) {
        it = hists_
                 .emplace(std::string(name),
                          std::make_unique<HistogramMetric>(bin_width,
                                                            num_bins))
                 .first;
    }
    return *it->second;
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSnapshot> out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto &[name, c] : counters_) {
            MetricSnapshot s;
            s.name = name;
            s.kind = MetricSnapshot::Kind::Counter;
            s.value = static_cast<double>(c->value());
            s.count = c->value();
            out.push_back(std::move(s));
        }
        for (const auto &[name, g] : gauges_) {
            MetricSnapshot s;
            s.name = name;
            s.kind = MetricSnapshot::Kind::Gauge;
            s.value = g->value();
            out.push_back(std::move(s));
        }
        for (const auto &[name, h] : hists_) {
            MetricSnapshot s;
            s.name = name;
            s.kind = MetricSnapshot::Kind::Histogram;
            Histogram snap = h->snapshot();
            s.count = snap.count();
            s.p50 = snap.quantile(0.5);
            s.p99 = snap.quantile(0.99);
            s.overflow = snap.overflowCount();
            out.push_back(std::move(s));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });
    return out;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    auto snaps = snapshot();
    os << "{\n";
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const auto &s = snaps[i];
        os << "  \"" << s.name << "\": {\"kind\": \"" << toString(s.kind)
           << "\"";
        if (s.kind == MetricSnapshot::Kind::Histogram) {
            os << ", \"count\": " << s.count << ", \"p50\": " << s.p50
               << ", \"p99\": " << s.p99
               << ", \"overflow\": " << s.overflow;
        } else if (s.kind == MetricSnapshot::Kind::Counter) {
            // Counters export the exact integer, not a %g double.
            os << ", \"value\": " << s.count;
        } else {
            os << ", \"value\": " << s.value;
        }
        os << "}" << (i + 1 < snaps.size() ? "," : "") << "\n";
    }
    os << "}\n";
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    os << "name,kind,value,count,p50,p99,overflow\n";
    for (const auto &s : snapshot()) {
        os << s.name << ',' << toString(s.kind) << ',' << s.value << ','
           << s.count << ',' << s.p50 << ',' << s.p99 << ','
           << s.overflow << '\n';
    }
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("metrics: cannot open '%s' for writing", path.c_str());
        return false;
    }
    writeJson(f);
    return static_cast<bool>(f);
}

bool
MetricsRegistry::writeCsvFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("metrics: cannot open '%s' for writing", path.c_str());
        return false;
    }
    writeCsv(f);
    return static_cast<bool>(f);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : hists_)
        h->reset();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.size() + gauges_.size() + hists_.size();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace hirise::obs
