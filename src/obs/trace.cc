#include "obs/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace hirise::obs {

#ifndef HIRISE_TRACE_DISABLED
namespace detail {
std::atomic<bool> g_obsOn{false};
} // namespace detail

void
setEnabled(bool v)
{
    detail::g_obsOn.store(v, std::memory_order_relaxed);
}
#endif

namespace {

thread_local std::uint64_t t_cycle = 0;
thread_local std::uint32_t t_tid = ~0u;
std::atomic<std::uint32_t> g_nextTid{0};

std::uint16_t
localTid()
{
    if (t_tid == ~0u)
        t_tid = g_nextTid.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::uint16_t>(t_tid & 0xffff);
}

constexpr const char *kEvNames[kNumEv] = {
    "inject",        "grant",       "release",    "chan_alloc",
    "class_promote", "class_halve", "cache_hit",  "cache_miss",
    "exp_begin",     "exp_end",     "chan_fail",  "chan_recover",
    "link_error",    "isolate",     "unisolate",
};

/** Minimal JSON string escaping for interned names. */
void
writeJsonString(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    for (char ch : s) {
        switch (ch) {
          case '"':
            std::fputs("\\\"", f);
            break;
          case '\\':
            std::fputs("\\\\", f);
            break;
          case '\n':
            std::fputs("\\n", f);
            break;
          case '\t':
            std::fputs("\\t", f);
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                std::fprintf(f, "\\u%04x", ch);
            else
                std::fputc(ch, f);
        }
    }
    std::fputc('"', f);
}

} // namespace

const char *
toString(Ev e)
{
    auto idx = static_cast<std::uint32_t>(e);
    sim_assert(idx < kNumEv, "bad event kind %u", idx);
    return kEvNames[idx];
}

bool
evFromString(std::string_view s, Ev *out)
{
    for (std::uint32_t i = 0; i < kNumEv; ++i) {
        if (s == kEvNames[i]) {
            *out = static_cast<Ev>(i);
            return true;
        }
    }
    return false;
}

void
setTraceCycle(std::uint64_t cycle)
{
    t_cycle = cycle;
}

void
CycleTracer::enable(std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(mu_);
    capacity_ = capacity ? capacity : 1;
    ring_.assign(capacity_, TraceEvent{});
    head_ = size_ = 0;
    recorded_ = 0;
    enabled_.store(true, std::memory_order_relaxed);
    setEnabled(true);
}

void
CycleTracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
CycleTracer::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    head_ = size_ = 0;
    recorded_ = 0;
    names_.clear();
}

void
CycleTracer::record(Ev kind, std::uint32_t a, std::uint32_t b,
                    std::uint32_t c, std::uint64_t id)
{
    recordAt(t_cycle, kind, a, b, c, id);
}

void
CycleTracer::recordAt(std::uint64_t stamp, Ev kind, std::uint32_t a,
                      std::uint32_t b, std::uint32_t c, std::uint64_t id)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.cycle = stamp;
    e.id = id;
    e.a = a;
    e.b = b;
    e.c = c;
    e.tid = localTid();
    e.kind = kind;
    std::lock_guard<std::mutex> lk(mu_);
    if (ring_.empty())
        return; // enabled() raced with enable(); drop harmlessly
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_)
        ++size_;
    ++recorded_;
}

std::uint32_t
CycleTracer::internName(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return static_cast<std::uint32_t>(i);
    }
    names_.emplace_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

std::vector<TraceEvent>
CycleTracer::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest entry sits at head_ once the ring has wrapped.
    std::size_t start = size_ == capacity_ ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % capacity_]);
    return out;
}

std::vector<std::string>
CycleTracer::names() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return names_;
}

std::uint64_t
CycleTracer::recorded() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return recorded_;
}

std::uint64_t
CycleTracer::dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return recorded_ - size_;
}

bool
CycleTracer::exportJsonl(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    auto events = snapshot();
    auto nm = names();
    std::fprintf(f,
                 "{\"schema\":\"hirise-trace-v1\",\"events\":%zu,"
                 "\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64
                 ",\"names\":[",
                 events.size(), recorded(), dropped());
    for (std::size_t i = 0; i < nm.size(); ++i) {
        if (i)
            std::fputc(',', f);
        writeJsonString(f, nm[i]);
    }
    std::fputs("]}\n", f);
    for (const auto &e : events) {
        std::fprintf(f,
                     "{\"cycle\":%" PRIu64 ",\"kind\":\"%s\",\"tid\":%u,"
                     "\"a\":%u,\"b\":%u,\"c\":%u,\"id\":%" PRIu64 "}\n",
                     e.cycle, toString(e.kind), e.tid, e.a, e.b, e.c,
                     e.id);
    }
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

bool
CycleTracer::exportChrome(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    auto events = snapshot();
    auto nm = names();
    // Two synthetic processes: pid 0 holds cycle-stamped simulation
    // events (ts == cycle), pid 1 holds wall-clock harness spans
    // (ts == microseconds). chrome://tracing renders both.
    std::fputs("{\"traceEvents\":[", f);
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            std::fputc(',', f);
        first = false;
        if (e.kind == Ev::ExpBegin || e.kind == Ev::ExpEnd) {
            const char *ph = e.kind == Ev::ExpBegin ? "B" : "E";
            std::string name = e.a < nm.size()
                                   ? nm[e.a]
                                   : std::string("experiment");
            std::fprintf(f,
                         "{\"name\":");
            writeJsonString(f, name);
            std::fprintf(f,
                         ",\"ph\":\"%s\",\"ts\":%" PRIu64
                         ",\"pid\":1,\"tid\":%u}",
                         ph, e.cycle, e.tid);
            continue;
        }
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                     "\"ts\":%" PRIu64 ",\"pid\":0,\"tid\":%u,"
                     "\"args\":{\"a\":%u,\"b\":%u,\"c\":%u,"
                     "\"id\":%" PRIu64 "}}",
                     toString(e.kind), e.cycle, e.tid, e.a, e.b, e.c,
                     e.id);
    }
    std::fputs("]}\n", f);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

CycleTracer &
CycleTracer::global()
{
    static CycleTracer tracer;
    return tracer;
}

} // namespace hirise::obs
