/**
 * @file
 * Flit and packet types for the cycle-accurate switch simulator.
 * Simulations use 4-flit packets of 128-bit flits to match the paper's
 * methodology (section V), but lengths are configurable.
 */

#ifndef HIRISE_NET_PACKET_HH
#define HIRISE_NET_PACKET_HH

#include <cstdint>

#include "common/snapshot.hh"

namespace hirise::net {

using Cycle = std::uint64_t;
using PacketId = std::uint64_t;

/** A fixed-size unit of transfer: one bus-width beat. */
struct Flit
{
    PacketId packet = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t index = 0; //!< position within the packet
    bool head = false;
    bool tail = false;
    Cycle genCycle = 0; //!< cycle the parent packet was created

    void
    save(snap::Writer &w) const
    {
        w.u64(packet);
        w.u32(src);
        w.u32(dst);
        w.pod(index);
        w.b(head);
        w.b(tail);
        w.u64(genCycle);
    }

    void
    load(snap::Reader &r)
    {
        packet = r.u64();
        src = r.u32();
        dst = r.u32();
        index = r.pod<std::uint16_t>();
        head = r.b();
        tail = r.b();
        genCycle = r.u64();
    }
};

/** A multi-flit message, serialized into flits at the source. */
struct Packet
{
    PacketId id = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t lenFlits = 4;
    Cycle genCycle = 0;

    void
    save(snap::Writer &w) const
    {
        w.u64(id);
        w.u32(src);
        w.u32(dst);
        w.pod(lenFlits);
        w.u64(genCycle);
    }

    void
    load(snap::Reader &r)
    {
        id = r.u64();
        src = r.u32();
        dst = r.u32();
        lenFlits = r.pod<std::uint16_t>();
        genCycle = r.u64();
    }

    Flit
    flit(std::uint16_t idx) const
    {
        Flit f;
        f.packet = id;
        f.src = src;
        f.dst = dst;
        f.index = idx;
        f.head = (idx == 0);
        f.tail = (idx + 1 == lenFlits);
        f.genCycle = genCycle;
        return f;
    }
};

} // namespace hirise::net

#endif // HIRISE_NET_PACKET_HH
