/**
 * @file
 * Input-port model: an unbounded source queue feeding a small set of
 * virtual channels (paper section V: 4 VCs x 4-flit buffers), with
 * one flit per cycle of injection bandwidth and round-robin VC
 * candidate selection for arbitration.
 */

#ifndef HIRISE_NET_INPUT_PORT_HH
#define HIRISE_NET_INPUT_PORT_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "common/ring_buffer.hh"
#include "net/packet.hh"

namespace hirise::net {

/** One virtual-channel FIFO plus its packet bookkeeping. */
class VirtualChannel
{
  public:
    explicit VirtualChannel(std::uint32_t depth)
        : depth_(depth), fifo_(depth)
    {}

    bool empty() const { return fifo_.empty(); }
    bool full() const { return fifo_.size() >= depth_; }
    std::size_t size() const { return fifo_.size(); }

    /** A packet owns this VC from its head entering until its tail
     *  leaves; no interleaving of packets within a VC. */
    bool busy() const { return busy_; }

    void
    pushFlit(const Flit &f)
    {
        fifo_.push_back(f);
        busy_ = true;
        if (f.tail)
            tailQueued_ = true;
    }

    const Flit &front() const { return fifo_.front(); }

    Flit
    popFlit()
    {
        Flit f = fifo_.front();
        fifo_.pop_front();
        if (f.tail) {
            busy_ = false;
            tailQueued_ = false;
        }
        return f;
    }

    /** Is the head flit the start of a packet, ready to arbitrate? */
    bool
    headReady() const
    {
        return !fifo_.empty() && fifo_.front().head;
    }

    /** Has the current packet's tail already been buffered? */
    bool tailQueued() const { return tailQueued_; }

    /** Discard every buffered flit and the packet's VC ownership.
     *  Used when a fault forcibly breaks the connection draining this
     *  VC: the in-flight packet is dropped, so its remaining flits
     *  must not linger as an ownerless partial packet. */
    void
    clear()
    {
        fifo_.clear();
        busy_ = false;
        tailQueued_ = false;
    }

    void
    save(snap::Writer &w) const
    {
        w.u64(fifo_.size());
        for (std::size_t i = 0; i < fifo_.size(); ++i)
            fifo_[i].save(w);
        w.b(busy_);
        w.b(tailQueued_);
    }

    void
    load(snap::Reader &r)
    {
        fifo_.clear();
        std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            Flit f;
            f.load(r);
            fifo_.push_back(f);
        }
        busy_ = r.b();
        tailQueued_ = r.b();
    }

  private:
    std::uint32_t depth_;
    /** Sized to depth_ up front; a full() check gates every push, so
     *  the ring never regrows past its initial capacity. */
    RingBuffer<Flit> fifo_;
    bool busy_ = false;
    bool tailQueued_ = false;
};

/**
 * An input port of the switch: source queue, VCs, the active
 * connection (if any), and the injection link that serializes one
 * flit per cycle from the source queue into the VCs.
 */
class InputPort
{
  public:
    static constexpr std::uint32_t kNoVc = ~0u;

    InputPort(std::uint32_t num_vcs, std::uint32_t vc_depth)
        : vcs_(num_vcs, VirtualChannel(vc_depth))
    {}

    RingBuffer<Packet> &sourceQueue() { return sourceQueue_; }
    const RingBuffer<Packet> &sourceQueue() const
    {
        return sourceQueue_;
    }

    std::vector<VirtualChannel> &vcs() { return vcs_; }
    const std::vector<VirtualChannel> &vcs() const { return vcs_; }

    /** Move up to one flit from the source queue into the VCs.
     *  Prefers continuing the packet currently streaming in. */
    void fillCycle();

    /**
     * Core of fillCycle for an externally supplied head packet:
     * streams at most one flit of @p head into a VC. Returns true
     * when @p head 's last flit went in (the caller advances its
     * queue). While a packet is mid-stream (fillProgress() > 0) the
     * caller must keep passing the same packet. Used by the batched
     * simulator's virtual source queues, which reconstruct head
     * packets from the counter streams instead of materializing them.
     */
    bool fillFrom(const Packet &head);

    /** Flits of the currently streaming packet already moved into a
     *  VC (0 when no packet is mid-stream). */
    std::uint32_t
    fillProgress() const
    {
        return fillVc_ == kNoVc ? 0u : fillIdx_;
    }

    // -- connection state ------------------------------------------
    bool connected() const { return connVc_ != kNoVc; }
    std::uint32_t connVc() const { return connVc_; }
    std::uint32_t connOutput() const { return connOutput_; }
    std::uint32_t flitsLeft() const { return connFlitsLeft_; }
    /** genCycle of the connected packet (valid while connected);
     *  lets a forced break attribute the dropped packet to the
     *  measurement window without digging for its flits. */
    Cycle connGenCycle() const { return connGenCycle_; }

    void
    connect(std::uint32_t vc, std::uint32_t output,
            std::uint32_t len_flits, Cycle gen_cycle = 0)
    {
        connVc_ = vc;
        connOutput_ = output;
        connFlitsLeft_ = len_flits;
        connGenCycle_ = gen_cycle;
        justConnected_ = true;
    }

    /**
     * The arbitration cycle occupies the input and output buses
     * (priority-line reuse), so data moves starting the next cycle.
     * Returns true exactly once per connection: on the grant cycle.
     */
    bool
    consumeJustConnected()
    {
        bool j = justConnected_;
        justConnected_ = false;
        return j;
    }

    /** One flit transferred; returns true when the packet completed. */
    bool
    transferOne()
    {
        --connFlitsLeft_;
        if (connFlitsLeft_ == 0) {
            connVc_ = kNoVc;
            return true;
        }
        return false;
    }

    /**
     * The VC that should arbitrate this cycle (round-robin over VCs
     * with a ready head flit), or kNoVc. Ports with an active
     * connection must not arbitrate (the input bus is in use).
     *
     * @param dst_free  availability of each destination, observed via
     *                  the crosspoints' Channel_free lines (Fig 6);
     *                  VCs headed to busy outputs are skipped. Pass
     *                  nullptr to consider every ready VC.
     */
    std::uint32_t
    pickCandidateVc(const BitVec *dst_free = nullptr);

    /** As pickCandidateVc, but reading availability straight from a
     *  word array (a BitSpan plane inside the batched simulator's
     *  structure-of-arrays state). Same round-robin semantics. */
    std::uint32_t
    pickCandidateVcWords(const BitVec::Word *dst_free);

    /** Destination requested by the candidate VC. */
    std::uint32_t
    vcDest(std::uint32_t vc) const
    {
        return vcs_[vc].front().dst;
    }

    /** Any flit buffered in any VC? For a non-connected port this is
     *  equivalent to "some VC is head-ready" (packets enter a VC head
     *  first and drain only while connected), which is what makes it
     *  a valid arbitration-eligibility signal for the event-driven
     *  simulator core. */
    bool
    anyVcOccupied() const
    {
        for (const auto &vc : vcs_) {
            if (!vc.empty())
                return true;
        }
        return false;
    }

    /** Total flits buffered in VCs plus queued at the source. */
    std::uint64_t backlogFlits() const;

    /**
     * Forcibly tear down the active connection because its channel
     * failed, dropping the in-flight packet: clears the connection's
     * VC, cancels the injection stream if it was still feeding that
     * same packet (VC ownership guarantees the streaming packet *is*
     * the connected one), and reports what must be dropped.
     *
     * @param[out] flits_dropped  connection flits never transferred
     *                            (the caller charges these to its
     *                            dropped-flit ledger)
     * @param[out] pop_source     true when the dropped packet is still
     *                            the source queue's head (fill was
     *                            mid-stream); the caller advances the
     *                            real or virtual source queue
     */
    void breakConnection(std::uint32_t &flits_dropped,
                         bool &pop_source);

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    RingBuffer<Packet> sourceQueue_;
    std::vector<VirtualChannel> vcs_;

    /** Injection-side streaming state. */
    std::uint32_t fillVc_ = kNoVc;   //!< VC receiving the current packet
    std::uint16_t fillIdx_ = 0;      //!< next flit index to inject

    /** Arbitration round-robin pointer. */
    std::uint32_t rrNext_ = 0;

    /** Active crossbar connection. */
    std::uint32_t connVc_ = kNoVc;
    std::uint32_t connOutput_ = 0;
    std::uint32_t connFlitsLeft_ = 0;
    Cycle connGenCycle_ = 0;
    bool justConnected_ = false;
};

} // namespace hirise::net

#endif // HIRISE_NET_INPUT_PORT_HH
