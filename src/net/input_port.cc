#include "net/input_port.hh"

#include "common/logging.hh"

namespace hirise::net {

void
InputPort::fillCycle()
{
    if (sourceQueue_.empty())
        return;
    if (fillFrom(sourceQueue_.front()))
        sourceQueue_.pop_front();
}

bool
InputPort::fillFrom(const Packet &head)
{
    // Continue streaming the current packet into its VC.
    if (fillVc_ != kNoVc) {
        VirtualChannel &vc = vcs_[fillVc_];
        if (vc.full())
            return false; // backpressure: wait for the crossbar
        vc.pushFlit(head.flit(fillIdx_));
        ++fillIdx_;
        if (fillIdx_ == head.lenFlits) {
            fillVc_ = kNoVc;
            fillIdx_ = 0;
            return true;
        }
        return false;
    }

    // Allocate a free VC (idle, empty) for the next packet.
    for (std::uint32_t v = 0; v < vcs_.size(); ++v) {
        if (!vcs_[v].busy() && vcs_[v].empty()) {
            fillVc_ = v;
            vcs_[v].pushFlit(head.flit(0));
            fillIdx_ = 1;
            if (fillIdx_ == head.lenFlits) {
                fillVc_ = kNoVc;
                fillIdx_ = 0;
                return true;
            }
            return false;
        }
    }
    return false;
}

std::uint32_t
InputPort::pickCandidateVc(const BitVec *dst_free)
{
    return pickCandidateVcWords(dst_free ? dst_free->words()
                                         : nullptr);
}

std::uint32_t
InputPort::pickCandidateVcWords(const BitVec::Word *dst_free)
{
    sim_assert(!connected(), "busy input must not arbitrate");
    const std::uint32_t n = static_cast<std::uint32_t>(vcs_.size());
    for (std::uint32_t k = 0; k < n; ++k) {
        std::uint32_t v = (rrNext_ + k) % n;
        if (!vcs_[v].headReady())
            continue;
        if (dst_free) {
            std::uint32_t d = vcs_[v].front().dst;
            if (!((dst_free[d / BitVec::kWordBits] >>
                   (d % BitVec::kWordBits)) &
                  1u))
                continue;
        }
        rrNext_ = (v + 1) % n;
        return v;
    }
    return kNoVc;
}

void
InputPort::breakConnection(std::uint32_t &flits_dropped,
                           bool &pop_source)
{
    sim_assert(connected(), "breaking an idle port");
    flits_dropped = connFlitsLeft_;
    pop_source = false;
    if (fillVc_ == connVc_) {
        // The dropped packet was still streaming from the source
        // queue head (a VC holds exactly one packet head-to-tail, so
        // the streaming packet is the connected one). Cancel the
        // stream; the caller pops the head we never finished pulling.
        fillVc_ = kNoVc;
        fillIdx_ = 0;
        pop_source = true;
    }
    vcs_[connVc_].clear();
    connVc_ = kNoVc;
    connFlitsLeft_ = 0;
    justConnected_ = false;
}

void
InputPort::save(snap::Writer &w) const
{
    w.u64(sourceQueue_.size());
    for (std::size_t i = 0; i < sourceQueue_.size(); ++i)
        sourceQueue_[i].save(w);
    for (const auto &vc : vcs_)
        vc.save(w);
    w.u32(fillVc_);
    w.pod(fillIdx_);
    w.u32(rrNext_);
    w.u32(connVc_);
    w.u32(connOutput_);
    w.u32(connFlitsLeft_);
    w.u64(connGenCycle_);
    w.b(justConnected_);
}

void
InputPort::load(snap::Reader &r)
{
    sourceQueue_.clear();
    std::uint64_t n = r.u64();
    sourceQueue_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Packet p;
        p.load(r);
        sourceQueue_.push_back(p);
    }
    for (auto &vc : vcs_)
        vc.load(r);
    fillVc_ = r.u32();
    fillIdx_ = r.pod<std::uint16_t>();
    rrNext_ = r.u32();
    connVc_ = r.u32();
    connOutput_ = r.u32();
    connFlitsLeft_ = r.u32();
    connGenCycle_ = r.u64();
    justConnected_ = r.b();
}

std::uint64_t
InputPort::backlogFlits() const
{
    std::uint64_t n = 0;
    for (const auto &vc : vcs_)
        n += vc.size();
    for (std::size_t i = 0; i < sourceQueue_.size(); ++i)
        n += sourceQueue_[i].lenFlits;
    // The packet currently streaming sits in both the source queue
    // and (partially) a VC; discount the flits counted twice.
    if (fillVc_ != kNoVc)
        n -= fillIdx_;
    return n;
}

} // namespace hirise::net
