#include "fabric/fabric.hh"

#include "fabric/flat2d.hh"
#include "fabric/hirise.hh"

namespace hirise::fabric {

std::unique_ptr<Fabric>
makeFabric(const SwitchSpec &spec)
{
    switch (spec.topo) {
      case Topology::Flat2D:
      case Topology::Folded3D:
        return std::make_unique<Flat2dFabric>(spec);
      case Topology::HiRise:
        return std::make_unique<HiRiseFabric>(spec);
    }
    panic("unknown topology");
}

} // namespace hirise::fabric
