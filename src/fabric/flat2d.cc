#include "fabric/flat2d.hh"

namespace hirise::fabric {

Flat2dFabric::Flat2dFabric(const SwitchSpec &spec)
    : Fabric(spec),
      outputArb_(spec.radix, arb::MatrixArbiter(spec.radix)),
      holder_(spec.radix, kNoRequest)
{
    sim_assert(spec.topo == Topology::Flat2D ||
                   spec.topo == Topology::Folded3D,
               "Flat2dFabric models 2D and folded switches only");
}

std::vector<bool>
Flat2dFabric::arbitrate(const std::vector<std::uint32_t> &req)
{
    sim_assert(req.size() == spec_.radix, "bad request vector");
    std::vector<bool> grant(spec_.radix, false);

    // Group requests per output column.
    std::vector<std::vector<bool>> want(
        spec_.radix, std::vector<bool>());
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        std::uint32_t o = req[i];
        if (o == kNoRequest)
            continue;
        sim_assert(o < spec_.radix, "request to bad output %u", o);
        if (holder_[o] != kNoRequest)
            continue; // busy output: request loses this cycle
        if (want[o].empty())
            want[o].assign(spec_.radix, false);
        want[o][i] = true;
    }

    for (std::uint32_t o = 0; o < spec_.radix; ++o) {
        if (want[o].empty())
            continue;
        std::uint32_t w = outputArb_[o].pick(want[o]);
        if (w == arb::MatrixArbiter::kNone)
            continue;
        outputArb_[o].update(w);
        holder_[o] = w;
        grant[w] = true;
    }
    return grant;
}

void
Flat2dFabric::release(std::uint32_t input, std::uint32_t output)
{
    sim_assert(output < spec_.radix && holder_[output] == input,
               "release of unheld connection %u->%u", input, output);
    holder_[output] = kNoRequest;
}

bool
Flat2dFabric::outputBusy(std::uint32_t output) const
{
    return holder_[output] != kNoRequest;
}

std::uint32_t
Flat2dFabric::outputHolder(std::uint32_t output) const
{
    return holder_[output];
}

} // namespace hirise::fabric
