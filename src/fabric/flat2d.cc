#include "fabric/flat2d.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

#ifdef HIRISE_CHECK_ENABLED
#include "check/invariants.hh"
#endif

namespace hirise::fabric {

namespace {

[[gnu::cold]] [[gnu::noinline]] void
countFlatGrants(std::uint32_t n)
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("fabric.grants_flat");
    c.inc(n);
}

} // namespace

Flat2dFabric::Flat2dFabric(const SwitchSpec &spec)
    : Fabric(spec), sched_(arb::makeScheduler(spec)),
      holder_(spec.radix, kNoRequest),
      want_(spec.radix, BitVec(spec.radix)), contended_(spec.radix),
      winner_(spec.radix, kNoRequest)
{
    sim_assert(spec.topo == Topology::Flat2D ||
                   spec.topo == Topology::Folded3D,
               "Flat2dFabric models 2D and folded switches only");
}

// Group one request into its output column; a column's mask is
// cleared lazily when it first gains a requestor this cycle.
inline void
Flat2dFabric::collectRequest(std::uint32_t i, std::uint32_t o)
{
    sim_assert(o < spec_.radix, "request to bad output %u", o);
    if (holder_[o] != kNoRequest)
        return; // busy output: request loses this cycle
    if (!contended_[o]) {
        contended_.set(o);
        want_[o].clear();
    }
    want_[o].set(i);
}

const BitVec &
Flat2dFabric::arbitrate(std::span<const std::uint32_t> req)
{
    sim_assert(req.size() == spec_.radix, "bad request vector");
    grant_.clear();
    contended_.clear();

    bool any_req = false;
    for (std::uint32_t i = 0; i < spec_.radix; ++i) {
        if (req[i] != kNoRequest) {
            any_req = true;
            collectRequest(i, req[i]);
        }
    }
    return finishArbitrate(req, any_req);
}

const BitVec &
Flat2dFabric::arbitrateActive(std::span<const std::uint32_t> req,
                              std::span<const std::uint32_t> active)
{
    sim_assert(req.size() == spec_.radix, "bad request vector");
    grant_.clear();
    contended_.clear();

    // active is ascending, so columns fill in the same order as the
    // dense scan above — the arbiter outcomes are bit-identical.
    for (std::uint32_t i : active) {
        sim_assert(i < spec_.radix && req[i] != kNoRequest,
                   "active list entry %u has no request", i);
        collectRequest(i, req[i]);
    }
    return finishArbitrate(req, !active.empty());
}

const BitVec &
Flat2dFabric::finishArbitrate(std::span<const std::uint32_t> req,
                              bool any_req)
{
    (void)req; // used by the HIRISE_CHECK build only
    // The scheduler runs — and advances its per-call state — exactly
    // when some input requested, even if every request lost to a busy
    // output (contended_ empty). Those are precisely the cycles the
    // event core arbitrates, so dense stepping matches it by gating
    // here instead of calling unconditionally.
    if (any_req) {
        sched_->match(contended_, want_, winner_);
        contended_.forEachSet([this](std::uint32_t o) {
            std::uint32_t w = winner_[o];
            if (w == arb::CrossbarScheduler::kNone)
                return;
            holder_[o] = w;
            grant_.set(w);
        });
    }
    // One guard per arbitrate, not per grant: the loop stays clean
    // and the counter batches via popcount.
    if (obs::on()) [[unlikely]]
        countFlatGrants(grant_.count());
#ifdef HIRISE_CHECK_ENABLED
    auto holder = [this](std::uint32_t o) { return holder_[o]; };
    check::verifyGrantMatching(req, grant_, spec_.radix, holder);
    check::verifyHolderInjective(spec_.radix, holder);
#endif
    return grant_;
}

void
Flat2dFabric::release(std::uint32_t input, std::uint32_t output)
{
    sim_assert(output < spec_.radix && holder_[output] == input,
               "release of unheld connection %u->%u", input, output);
    holder_[output] = kNoRequest;
}

bool
Flat2dFabric::outputBusy(std::uint32_t output) const
{
    return holder_[output] != kNoRequest;
}

std::uint32_t
Flat2dFabric::outputHolder(std::uint32_t output) const
{
    return holder_[output];
}

void
Flat2dFabric::save(snap::Writer &w) const
{
    w.vec(holder_);
    sched_->save(w);
}

void
Flat2dFabric::load(snap::Reader &r)
{
    r.vec(holder_);
    sched_->load(r);
}

} // namespace hirise::fabric
