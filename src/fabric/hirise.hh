/**
 * @file
 * The Hi-Rise hierarchical 3D switch fabric (paper section III).
 *
 * Per layer: a local switch (N/L inputs x [N/L intermediate outputs +
 * c*(L-1) outgoing L2LCs]) and an inter-layer switch of N/L sub-blocks
 * (each (c*(L-1)+1) x 1). Arbitration is two-phase within a single
 * cycle: phase 1 resolves each local-switch column, phase 2 resolves
 * each sub-block; an input only holds resources on an end-to-end win,
 * and local LRG state is updated only when the inter-layer stage
 * confirms the win (back-propagated update, section III-B1).
 */

#ifndef HIRISE_FABRIC_HIRISE_HH
#define HIRISE_FABRIC_HIRISE_HH

#include <memory>

#include "arb/matrix_arbiter.hh"
#include "arb/sub_block_arbiter.hh"
#include "fabric/fabric.hh"

namespace hirise::fabric {

class HiRiseFabric : public Fabric
{
  public:
    explicit HiRiseFabric(const SwitchSpec &spec);

    const BitVec &
    arbitrate(std::span<const std::uint32_t> req) override;
    const BitVec &
    arbitrateActive(std::span<const std::uint32_t> req,
                    std::span<const std::uint32_t> active) override;
    void release(std::uint32_t input, std::uint32_t output) override;
    void advanceIdle(std::uint64_t cycles) override;
    bool outputBusy(std::uint32_t output) const override;
    std::uint32_t outputHolder(std::uint32_t output) const override;

    // -- topology helpers (also used by tests) -----------------------
    std::uint32_t layerOf(std::uint32_t port) const
    {
        return port / ppl_;
    }
    std::uint32_t localIdx(std::uint32_t port) const
    {
        return port % ppl_;
    }

    /** L2LC chosen by the allocation policy for input -> output,
     *  after remapping around failed channels; kNoRequest when no
     *  usable channel survives (binned policies only). */
    std::uint32_t channelFor(std::uint32_t input,
                             std::uint32_t output) const;

    /**
     * Disable the L2LC (src layer, dst layer, k), e.g. a failed TSV
     * bundle. Binned traffic remaps to the next surviving channel of
     * the same layer pair; the priority allocator skips failed
     * channels natively. A connection holding the channel mid-packet
     * is forcibly broken and reported through @p broken (the simulator
     * drops the in-flight packet). Idempotent. Extension beyond the
     * paper (TSV yield tolerance).
     */
    void failChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                     std::uint32_t chan,
                     std::vector<BrokenConn> *broken = nullptr)
        override;

    /** Re-enable a failed L2LC (TSV repair / isolation lifted). */
    void recoverChannel(std::uint32_t src_layer,
                        std::uint32_t dst_layer,
                        std::uint32_t chan) override;

    bool supportsChannelFaults() const override { return true; }

    std::uint32_t heldChannelId(std::uint32_t output) const override
    {
        return heldChan_[output];
    }

    bool channelFailed(std::uint32_t src_layer,
                       std::uint32_t dst_layer, std::uint32_t k) const
    {
        return chanFailed_[chanId(src_layer, dst_layer, k)] != 0;
    }

    /** Surviving (non-failed) L2LCs of the pair src -> dst. */
    std::uint32_t survivingChannels(std::uint32_t src_layer,
                                    std::uint32_t dst_layer) const;

    /** Total surviving L2LCs across all layer pairs — the capacity
     *  the fabric currently advertises (== c*L*(L-1) when healthy).
     *  Re-published to the "fabric.advertised_capacity" gauge on
     *  every fail/recover so dashboards track degradation live. */
    std::uint32_t advertisedCapacity() const;

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

    /** Is the L2LC (src layer, dst layer, k) held by a connection? */
    bool channelBusy(std::uint32_t src_layer, std::uint32_t dst_layer,
                     std::uint32_t k) const;

    /** The sub-block arbiter of a final output (test introspection). */
    const arb::SubBlockArbiter &subArbiter(std::uint32_t output) const
    {
        return *subArb_[output];
    }

    /** Observability counters since construction. */
    struct Stats
    {
        std::uint64_t grantsLocal = 0; //!< same-layer connections
        std::uint64_t grantsCross = 0; //!< connections over an L2LC
        /** Grants carried per L2LC, indexed by chanId order
         *  (src_layer * layers + dst_layer) * channels + k. */
        std::vector<std::uint64_t> chanGrants;
        /** Cycles each L2LC spent held by a connection. */
        std::vector<std::uint64_t> chanBusyCycles;
    };
    const Stats &stats() const { return stats_; }

    /** Utilization of L2LC (s,d,k): busy cycles / arbitrate calls. */
    double channelUtilization(std::uint32_t s, std::uint32_t d,
                              std::uint32_t k) const;

  private:
    // -- static shape -------------------------------------------------
    std::uint32_t ppl_;   //!< ports per layer
    std::uint32_t nlay_;  //!< layers
    std::uint32_t chan_;  //!< channel multiplicity c
    std::uint32_t ports_; //!< sub-block ports: c*(L-1)+1

    std::uint32_t
    chanId(std::uint32_t s, std::uint32_t d, std::uint32_t k) const
    {
        return (s * nlay_ + d) * chan_ + k;
    }

    /** Sub-block port index of the L2LC from layer s, channel k, at
     *  destination layer d; the last port is the local intermediate. */
    std::uint32_t subPort(std::uint32_t d, std::uint32_t s,
                          std::uint32_t k) const;
    /** Inverse of subPort for ports below ports_-1. */
    void subPortOrigin(std::uint32_t d, std::uint32_t port,
                       std::uint32_t &s, std::uint32_t &k) const;

    // -- arbitration state --------------------------------------------
    /** Phase-1 LRG per local intermediate-output column, indexed by
     *  global output id. */
    std::vector<arb::MatrixArbiter> interArb_;
    /** Phase-1 LRG per L2LC column, indexed by chanId. */
    std::vector<arb::MatrixArbiter> chanArb_;
    /** Phase-2 arbiter per final output. */
    std::vector<std::unique_ptr<arb::SubBlockArbiter>> subArb_;

    // -- connection state ----------------------------------------------
    std::vector<std::uint32_t> holder_;   //!< per output
    std::vector<std::uint32_t> heldChan_; //!< per output; kNoRequest
    /** Busy/failed flags per chanId, 0/1 in flat byte arrays (not
     *  vector<bool>) so the per-call busy-cycle accumulation runs
     *  through simd::accumulateFlagsU64. */
    std::vector<std::uint8_t> chanBusy_;
    std::vector<std::uint8_t> chanFailed_;

    // -- per-cycle scratch (members to avoid reallocation) -------------
    struct ColumnState
    {
        BitVec mask;              //!< requesting local inputs
        bool active = false;      //!< mask has >= 1 requestor
        std::uint32_t winner = arb::MatrixArbiter::kNone;
        std::uint32_t weight = 0; //!< requestor count (WLRG)
        std::uint32_t winnerDst = 0; //!< global dst of the winner
    };
    std::vector<ColumnState> interCol_; //!< by global output id
    std::vector<ColumnState> chanCol_;  //!< by chanId
    /** Columns touched this cycle (reset lazily next cycle), so every
     *  per-cycle pass scales with offered traffic, not with radix^2
     *  worth of idle columns. */
    std::vector<std::uint32_t> activeInter_; //!< global output ids
    std::vector<std::uint32_t> activeChan_;  //!< chanIds
    BitVec contendedOut_; //!< outputs with >= 1 phase-1 winner
    BitVec remaining_;  //!< Priority-alloc pool walk scratch
    std::vector<arb::SubBlockRequest> subReqs_; //!< phase-2 scratch
    /** Requesting-input indices compacted from the dense request
     *  vector (simd::gatherNonSentinelU32 scratch). */
    std::vector<std::uint32_t> reqIdxScratch_;
    /** Per-output chains of this cycle's channel winners, built while
     *  finishArbitrate records winner destinations: outChanHead_[o]
     *  heads an intrusive list linked through chanNext_[chanId]. The
     *  phase-2 walk then visits exactly the channels targeting each
     *  contended output instead of scanning all (layer, channel)
     *  columns per output. Chains are consumed (reset to kNoRequest)
     *  by phase2, held outputs included. */
    std::vector<std::uint32_t> chanNext_;    //!< per chanId
    std::vector<std::uint32_t> outChanHead_; //!< per output
    /** Sub-block ports filled for the current output, for sparse
     *  reset of subReqs_ (kept all-invalid between outputs). */
    std::vector<std::uint32_t> filledPorts_;

    void resetScratch();
    void beginArbitrate();
    void collectRequest(std::uint32_t i, std::uint32_t o);
    void collectRequests(std::span<const std::uint32_t> req);
    const BitVec &finishArbitrate(std::span<const std::uint32_t> req);
    void phase1();
    void phase2();
#ifdef HIRISE_CHECK_ENABLED
    void checkInvariants(std::span<const std::uint32_t> req) const;
#endif

    Stats stats_;
    std::uint64_t arbitrateCalls_ = 0;
};

} // namespace hirise::fabric

#endif // HIRISE_FABRIC_HIRISE_HH
