/**
 * @file
 * Abstract switch-fabric interface: single-cycle arbitration over a
 * set of per-input output requests, with connections held for the
 * packet duration (Swizzle-Switch semantics: a port either arbitrates
 * or transfers in a given cycle, never both).
 */

#ifndef HIRISE_FABRIC_FABRIC_HH
#define HIRISE_FABRIC_FABRIC_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bitvec.hh"
#include "common/snapshot.hh"
#include "common/spec.hh"

namespace hirise::fabric {

constexpr std::uint32_t kNoRequest = ~0u;

/** A connection forcibly torn down because its channel failed while a
 *  multi-flit packet held it (see Fabric::failChannel). */
struct BrokenConn
{
    std::uint32_t input = kNoRequest;
    std::uint32_t output = kNoRequest;
};

/**
 * One switch datapath + its built-in arbitration state.
 *
 * Contract with the simulator:
 *  - arbitrate() is called once per cycle with req[i] = desired output
 *    of input i, or kNoRequest when input i is idle or mid-transfer.
 *    Requests from inputs holding a connection are invalid.
 *  - a granted input owns the path to its output until release().
 *  - requests to outputs that are busy simply lose (no queueing inside
 *    the fabric; the input re-arbitrates next cycle, matching the
 *    retry behaviour of the real switch).
 */
class Fabric
{
  public:
    explicit Fabric(const SwitchSpec &spec)
        : spec_(spec), grant_(spec.radix)
    {
        spec_.validate();
    }
    virtual ~Fabric() = default;

    const SwitchSpec &spec() const { return spec_; }
    std::uint32_t radix() const { return spec_.radix; }

    /**
     * Run one arbitration cycle.
     * @return grant[i] == true iff input i won an end-to-end path.
     *         The reference is to preallocated scratch owned by the
     *         fabric; it is overwritten by the next arbitrate() call.
     */
    virtual const BitVec &
    arbitrate(std::span<const std::uint32_t> req) = 0;

    /**
     * As arbitrate(), but with the requesting inputs enumerated in
     * @p active (ascending, exactly the i with req[i] != kNoRequest).
     * Semantically identical to arbitrate(req) — the list only lets
     * implementations skip the O(radix) scan for idle inputs, which
     * is what the event-driven simulator's active-set arbitration
     * feeds. Default: full arbitrate(req).
     */
    virtual const BitVec &
    arbitrateActive(std::span<const std::uint32_t> req,
                    std::span<const std::uint32_t> /*active*/)
    {
        return arbitrate(req);
    }

    /** Tear down the connection input -> output (tail flit sent). */
    virtual void release(std::uint32_t input, std::uint32_t output) = 0;

    /**
     * Account @p cycles arbitration cycles in which no input
     * requested, without running arbitration. An all-kNoRequest
     * arbitrate() call leaves every arbiter and connection untouched,
     * so the event-driven simulator skips it entirely for request-free
     * cycles (including whole fast-forwarded idle spans) and calls
     * this instead; implementations that keep per-call statistics
     * (HiRise's channel-utilization denominators) override it so the
     * stats match dense stepping exactly. Default: no-op.
     */
    virtual void advanceIdle(std::uint64_t /*cycles*/) {}

    virtual bool outputBusy(std::uint32_t output) const = 0;

    /** Input currently connected to @p output, or kNoRequest. */
    virtual std::uint32_t outputHolder(std::uint32_t output) const = 0;

    // -- dynamic channel faults (topologies with L2LCs only) ---------

    /** Does this fabric model failable inter-layer channels? False
     *  (the default) makes the fault entry points below fatal. */
    virtual bool supportsChannelFaults() const { return false; }

    /**
     * Fail L2LC @p k between layers @p src_layer -> @p dst_layer, as
     * of the current cycle. If a connection holds the channel
     * mid-packet it is forcibly broken — holder bookkeeping cleared,
     * the victim appended to @p broken (when non-null) so the
     * simulator can drop the in-flight packet. Idempotent on an
     * already-failed channel.
     */
    virtual void
    failChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                std::uint32_t chan,
                std::vector<BrokenConn> *broken = nullptr)
    {
        (void)src_layer;
        (void)dst_layer;
        (void)chan;
        (void)broken;
        fatal("fabric '%s' has no failable channels",
              toString(spec_.topo));
    }

    /** Return a previously failed channel to service (idempotent). */
    virtual void
    recoverChannel(std::uint32_t src_layer, std::uint32_t dst_layer,
                   std::uint32_t chan)
    {
        (void)src_layer;
        (void)dst_layer;
        (void)chan;
        fatal("fabric '%s' has no failable channels",
              toString(spec_.topo));
    }

    /** Flat channel id (s*L + d)*c + k held by @p output 's active
     *  connection, or kNoRequest for idle outputs and same-layer
     *  (channel-less) connections. Lets the simulator attribute each
     *  transferred flit to the L2LC it crosses (flaky-link error
     *  draws). Default: no channels, always kNoRequest. */
    virtual std::uint32_t
    heldChannelId(std::uint32_t /*output*/) const
    {
        return kNoRequest;
    }

    // -- checkpoint/restore ------------------------------------------

    /** Serialize all mutable state (holders, arbiter priorities,
     *  fault flags, statistics). load() runs on a freshly constructed
     *  fabric of the same spec; per-cycle scratch needs no saving. */
    virtual void
    save(snap::Writer & /*w*/) const
    {
        fatal("fabric '%s' does not support snapshots",
              toString(spec_.topo));
    }

    virtual void
    load(snap::Reader & /*r*/)
    {
        fatal("fabric '%s' does not support snapshots",
              toString(spec_.topo));
    }

  protected:
    SwitchSpec spec_;
    BitVec grant_; //!< per-cycle grant scratch, reused across cycles
};

/** Build the fabric matching spec.topo / spec.arb. */
std::unique_ptr<Fabric> makeFabric(const SwitchSpec &spec);

} // namespace hirise::fabric

#endif // HIRISE_FABRIC_FABRIC_HH
