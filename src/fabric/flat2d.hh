/**
 * @file
 * Flat 2D Swizzle-Switch fabric (paper section II-A): a single N x N
 * matrix crossbar with per-output LRG priority vectors. Also models
 * the 3D folded baseline (section II-B), which is logically the same
 * switch redistributed over layers; only its physical model differs.
 */

#ifndef HIRISE_FABRIC_FLAT2D_HH
#define HIRISE_FABRIC_FLAT2D_HH

#include "arb/matrix_arbiter.hh"
#include "fabric/fabric.hh"

namespace hirise::fabric {

class Flat2dFabric : public Fabric
{
  public:
    explicit Flat2dFabric(const SwitchSpec &spec);

    const BitVec &
    arbitrate(std::span<const std::uint32_t> req) override;
    const BitVec &
    arbitrateActive(std::span<const std::uint32_t> req,
                    std::span<const std::uint32_t> active) override;
    void release(std::uint32_t input, std::uint32_t output) override;
    bool outputBusy(std::uint32_t output) const override;
    std::uint32_t outputHolder(std::uint32_t output) const override;

  private:
    void collectRequest(std::uint32_t i, std::uint32_t o);
    const BitVec &finishArbitrate(std::span<const std::uint32_t> req);

    /** One LRG arbiter per output column (the crosspoint priority
     *  vectors of that column). */
    std::vector<arb::MatrixArbiter> outputArb_;
    std::vector<std::uint32_t> holder_; //!< per output; kNoRequest=free

    // -- per-cycle scratch (preallocated; zero steady-state alloc) ---
    std::vector<BitVec> want_; //!< requestor mask per output column
    BitVec contended_;         //!< outputs with >= 1 requestor
};

} // namespace hirise::fabric

#endif // HIRISE_FABRIC_FLAT2D_HH
