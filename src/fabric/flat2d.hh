/**
 * @file
 * Flat 2D Swizzle-Switch fabric (paper section II-A): a single N x N
 * matrix crossbar. Also models the 3D folded baseline (section II-B),
 * which is logically the same switch redistributed over layers; only
 * its physical model differs.
 *
 * The grant decision is a pluggable strategy (arb::CrossbarScheduler,
 * selected by spec.arb): the fabric bins requests into per-output
 * columns and the scheduler — LRG matrix arbiters, iSLIP, PIM, or a
 * wavefront allocator — turns the columns into a matching. The
 * scheduler runs only on cycles with at least one request, which is
 * exactly the set of cycles the event-driven simulator arbitrates, so
 * stateful schedulers stay bit-identical across stepping modes.
 */

#ifndef HIRISE_FABRIC_FLAT2D_HH
#define HIRISE_FABRIC_FLAT2D_HH

#include <memory>

#include "arb/scheduler.hh"
#include "fabric/fabric.hh"

namespace hirise::fabric {

class Flat2dFabric : public Fabric
{
  public:
    explicit Flat2dFabric(const SwitchSpec &spec);

    const BitVec &
    arbitrate(std::span<const std::uint32_t> req) override;
    const BitVec &
    arbitrateActive(std::span<const std::uint32_t> req,
                    std::span<const std::uint32_t> active) override;
    void release(std::uint32_t input, std::uint32_t output) override;
    bool outputBusy(std::uint32_t output) const override;
    std::uint32_t outputHolder(std::uint32_t output) const override;

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    void collectRequest(std::uint32_t i, std::uint32_t o);
    const BitVec &finishArbitrate(std::span<const std::uint32_t> req,
                                  bool any_req);

    /** Grant-decision strategy for the collected columns. */
    std::unique_ptr<arb::CrossbarScheduler> sched_;
    std::vector<std::uint32_t> holder_; //!< per output; kNoRequest=free

    // -- per-cycle scratch (preallocated; zero steady-state alloc) ---
    std::vector<BitVec> want_; //!< requestor mask per output column
    BitVec contended_;         //!< outputs with >= 1 requestor
    std::vector<std::uint32_t> winner_; //!< scheduler out-params
};

} // namespace hirise::fabric

#endif // HIRISE_FABRIC_FLAT2D_HH
