#include "fabric/hirise.hh"

#include "common/simd.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

#ifdef HIRISE_CHECK_ENABLED
#include "check/invariants.hh"
#endif

namespace hirise::fabric {

namespace {

/** Process-wide fabric counters; bumps are obs::on()-guarded. */
struct FabricMetrics
{
    obs::Counter &grantsLocal;
    obs::Counter &grantsCross;

    static FabricMetrics &
    get()
    {
        static FabricMetrics m{
            obs::MetricsRegistry::global().counter(
                "fabric.grants_local"),
            obs::MetricsRegistry::global().counter(
                "fabric.grants_cross"),
        };
        return m;
    }
};

/**
 * Cold, out-of-line batch recorder, called once per arbitrate() so
 * the phase-2 grant loop carries no guard at all. ChanAlloc events
 * are reconstructed from this cycle's grant set: a granted input's
 * output is its request, and heldChan_ distinguishes cross-layer
 * grants (channel id) from local ones (kNoRequest).
 */
[[gnu::cold]] [[gnu::noinline]] void
recordArbitrateObs(const BitVec &grant,
                   std::span<const std::uint32_t> req,
                   const std::vector<std::uint32_t> &held_chan,
                   std::uint64_t d_local, std::uint64_t d_cross)
{
    auto &m = FabricMetrics::get();
    m.grantsLocal.inc(d_local);
    m.grantsCross.inc(d_cross);
    auto &tr = obs::CycleTracer::global();
    grant.forEachSet([&](std::uint32_t in) {
        std::uint32_t o = req[in];
        std::uint32_t id = held_chan[o];
        if (id != kNoRequest)
            tr.record(obs::Ev::ChanAlloc, id, in, o);
    });
}

} // namespace

HiRiseFabric::HiRiseFabric(const SwitchSpec &spec)
    : Fabric(spec), ppl_(spec.portsPerLayer()), nlay_(spec.layers),
      chan_(spec.channels), ports_(spec.incomingChannels() + 1),
      holder_(spec.radix, kNoRequest),
      heldChan_(spec.radix, kNoRequest),
      chanBusy_(std::size_t(nlay_) * nlay_ * chan_, 0),
      chanFailed_(chanBusy_.size(), 0)
{
    sim_assert(spec.topo == Topology::HiRise, "wrong topology");

    interArb_.assign(spec.radix, arb::MatrixArbiter(ppl_));
    chanArb_.assign(std::size_t(nlay_) * nlay_ * chan_,
                    arb::MatrixArbiter(ppl_));
    subArb_.reserve(spec.radix);
    for (std::uint32_t o = 0; o < spec.radix; ++o) {
        subArb_.push_back(arb::makeSubBlockArbiter(
            spec.arb, ports_, spec.radix, spec.clrgMaxCount));
    }
    interCol_.resize(spec.radix);
    chanCol_.resize(chanBusy_.size());
    for (auto &c : interCol_)
        c.mask.resize(ppl_);
    for (auto &c : chanCol_)
        c.mask.resize(ppl_);
    activeInter_.reserve(interCol_.size());
    activeChan_.reserve(chanCol_.size());
    contendedOut_.resize(spec.radix);
    remaining_.resize(ppl_);
    subReqs_.resize(ports_); // default entries are invalid, and
                             // phase2 keeps them that way between
                             // outputs (sparse filledPorts_ reset)
    reqIdxScratch_.resize(spec.radix);
    chanNext_.assign(chanBusy_.size(), kNoRequest);
    outChanHead_.assign(spec.radix, kNoRequest);
    filledPorts_.reserve(ports_);
    stats_.chanGrants.assign(chanBusy_.size(), 0);
    stats_.chanBusyCycles.assign(chanBusy_.size(), 0);
}

double
HiRiseFabric::channelUtilization(std::uint32_t s, std::uint32_t d,
                                 std::uint32_t k) const
{
    if (arbitrateCalls_ == 0)
        return 0.0;
    return static_cast<double>(stats_.chanBusyCycles[chanId(s, d, k)]) /
           static_cast<double>(arbitrateCalls_);
}

std::uint32_t
HiRiseFabric::channelFor(std::uint32_t input, std::uint32_t output) const
{
    std::uint32_t k0;
    switch (spec_.alloc) {
      case ChannelAlloc::InputBinned:
        k0 = localIdx(input) % chan_;
        break;
      case ChannelAlloc::OutputBinned:
        k0 = localIdx(output) % chan_;
        break;
      case ChannelAlloc::Priority:
        return kNoRequest; // chosen dynamically in phase 1
      default:
        return kNoRequest;
    }
    // Remap around failed channels: probe the bin's channel first,
    // then the next surviving channel of the same layer pair.
    std::uint32_t s = layerOf(input), d = layerOf(output);
    for (std::uint32_t i = 0; i < chan_; ++i) {
        std::uint32_t k = (k0 + i) % chan_;
        if (!chanFailed_[chanId(s, d, k)])
            return k;
    }
    return kNoRequest;
}

void
HiRiseFabric::failChannel(std::uint32_t src_layer,
                          std::uint32_t dst_layer, std::uint32_t k,
                          std::vector<BrokenConn> *broken)
{
    sim_assert(src_layer != dst_layer && src_layer < nlay_ &&
                   dst_layer < nlay_ && k < chan_,
               "bad channel (%u,%u,%u)", src_layer, dst_layer, k);
    std::uint32_t id = chanId(src_layer, dst_layer, k);
    if (chanFailed_[id])
        return;
    chanFailed_[id] = 1;
    if (chanBusy_[id]) {
        // The channel is pinned by an in-flight connection: break it.
        // A destination layer has ppl_ final outputs; only those can
        // pin a channel ending at dst_layer.
        std::uint32_t victim = kNoRequest;
        for (std::uint32_t lo = 0; lo < ppl_; ++lo) {
            std::uint32_t o = dst_layer * ppl_ + lo;
            if (heldChan_[o] != id)
                continue;
            victim = o;
            if (broken)
                broken->push_back({holder_[o], o});
            holder_[o] = kNoRequest;
            heldChan_[o] = kNoRequest;
            break;
        }
        sim_assert(victim != kNoRequest,
                   "busy channel %u pinned by no output", id);
        chanBusy_[id] = 0;
    }
    if (obs::on()) [[unlikely]]
        obs::MetricsRegistry::global()
            .gauge("fabric.advertised_capacity")
            .set(advertisedCapacity());
}

void
HiRiseFabric::recoverChannel(std::uint32_t src_layer,
                             std::uint32_t dst_layer, std::uint32_t k)
{
    sim_assert(src_layer != dst_layer && src_layer < nlay_ &&
                   dst_layer < nlay_ && k < chan_,
               "bad channel (%u,%u,%u)", src_layer, dst_layer, k);
    std::uint32_t id = chanId(src_layer, dst_layer, k);
    if (!chanFailed_[id])
        return;
    chanFailed_[id] = 0;
    if (obs::on()) [[unlikely]]
        obs::MetricsRegistry::global()
            .gauge("fabric.advertised_capacity")
            .set(advertisedCapacity());
}

std::uint32_t
HiRiseFabric::survivingChannels(std::uint32_t src_layer,
                                std::uint32_t dst_layer) const
{
    std::uint32_t n = 0;
    for (std::uint32_t k = 0; k < chan_; ++k) {
        if (!chanFailed_[chanId(src_layer, dst_layer, k)])
            ++n;
    }
    return n;
}

std::uint32_t
HiRiseFabric::advertisedCapacity() const
{
    std::uint32_t n = 0;
    for (std::uint32_t s = 0; s < nlay_; ++s) {
        for (std::uint32_t d = 0; d < nlay_; ++d) {
            if (s != d)
                n += survivingChannels(s, d);
        }
    }
    return n;
}

bool
HiRiseFabric::channelBusy(std::uint32_t s, std::uint32_t d,
                          std::uint32_t k) const
{
    return chanBusy_[chanId(s, d, k)] != 0;
}

std::uint32_t
HiRiseFabric::subPort(std::uint32_t d, std::uint32_t s,
                      std::uint32_t k) const
{
    // Source layers in increasing order, skipping the local layer.
    std::uint32_t s_rank = s < d ? s : s - 1;
    return s_rank * chan_ + k;
}

void
HiRiseFabric::subPortOrigin(std::uint32_t d, std::uint32_t port,
                            std::uint32_t &s, std::uint32_t &k) const
{
    sim_assert(port + 1 < ports_, "local port has no L2LC origin");
    std::uint32_t s_rank = port / chan_;
    k = port % chan_;
    s = s_rank < d ? s_rank : s_rank + 1;
}

void
HiRiseFabric::resetScratch()
{
    // Only columns touched last cycle need resetting (masks are
    // cleared lazily on first touch in collectRequests), so idle
    // columns cost nothing.
    for (std::uint32_t o : activeInter_) {
        auto &c = interCol_[o];
        c.active = false;
        c.winner = arb::MatrixArbiter::kNone;
        c.weight = 0;
    }
    for (std::uint32_t id : activeChan_) {
        auto &c = chanCol_[id];
        c.active = false;
        c.winner = arb::MatrixArbiter::kNone;
        c.weight = 0;
    }
    activeInter_.clear();
    activeChan_.clear();
}

// Bin one request into its phase-1 column(s). Shared by the dense
// full-radix scan and the active-list path; column fill order depends
// only on the (ascending) order of calls, so both paths are
// bit-identical when the active list is ascending.
inline void
HiRiseFabric::collectRequest(std::uint32_t i, std::uint32_t o)
{
    sim_assert(o < spec_.radix, "request to bad output %u", o);
    std::uint32_t s = layerOf(i);
    std::uint32_t d = layerOf(o);

    if (d == s) {
        // Same-layer: contend for the dedicated intermediate
        // output column. The column is in use iff the output is
        // held through it.
        if (holder_[o] != kNoRequest && heldChan_[o] == kNoRequest &&
            layerOf(holder_[o]) == d)
            return;
        auto &col = interCol_[o];
        if (!col.active) {
            col.active = true;
            col.mask.clear();
            activeInter_.push_back(o);
        }
        col.mask.set(localIdx(i));
        ++col.weight;
        return;
    }

    if (spec_.alloc == ChannelAlloc::Priority) {
        // Pool request: mark interest on every channel (s,d,*);
        // phase1 serializes the choice across free channels.
        for (std::uint32_t k = 0; k < chan_; ++k) {
            std::uint32_t id = chanId(s, d, k);
            auto &col = chanCol_[id];
            if (!col.active) {
                col.active = true;
                col.mask.clear();
                activeChan_.push_back(id);
            }
            col.mask.set(localIdx(i));
        }
        // weight counted once per input on channel 0's column
        ++chanCol_[chanId(s, d, 0)].weight;
        return;
    }

    std::uint32_t k = channelFor(i, o);
    if (k == kNoRequest)
        return; // every channel to that layer has failed
    std::uint32_t id = chanId(s, d, k);
    if (chanBusy_[id])
        return; // channel mid-transfer: retry next cycle
    auto &col = chanCol_[id];
    if (!col.active) {
        col.active = true;
        col.mask.clear();
        activeChan_.push_back(id);
    }
    col.mask.set(localIdx(i));
    ++col.weight;
}

void
HiRiseFabric::collectRequests(std::span<const std::uint32_t> req)
{
    // Compact the requesting inputs out of the dense vector in one
    // SIMD sweep (most entries are kNoRequest below saturation), then
    // bin just those. gatherNonSentinelU32 emits ascending indices,
    // so column fill order — and with it every phase-1 pick — matches
    // the plain scan bit for bit.
    const std::uint32_t n = simd::gatherNonSentinelU32(
        req.data(), spec_.radix, kNoRequest, reqIdxScratch_.data());
    for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint32_t i = reqIdxScratch_[k];
        collectRequest(i, req[i]);
    }
}

void
HiRiseFabric::phase1()
{
    // Intermediate-output columns: plain pick, update deferred to the
    // end-to-end win (back-propagated priority update). Columns pick
    // independently, so list order (vs output order) is immaterial.
    for (std::uint32_t o : activeInter_) {
        auto &col = interCol_[o];
        col.winner = interArb_[o].pick(col.mask);
        col.winnerDst = o;
    }

    if (spec_.alloc != ChannelAlloc::Priority) {
        for (std::uint32_t id : activeChan_) {
            auto &col = chanCol_[id];
            col.winner = chanArb_[id].pick(col.mask);
        }
        return;
    }

    // Priority allocation: for each (s,d) pair walk the channels in
    // order; each free channel picks from the remaining requestors.
    for (std::uint32_t s = 0; s < nlay_; ++s) {
        for (std::uint32_t d = 0; d < nlay_; ++d) {
            if (s == d)
                continue;
            // Pool lives on channel 0's mask.
            auto &pool = chanCol_[chanId(s, d, 0)];
            if (!pool.active)
                continue;
            remaining_.copyFrom(pool.mask);
            std::uint32_t weight = pool.weight;
            for (std::uint32_t k = 0; k < chan_; ++k) {
                std::uint32_t id = chanId(s, d, k);
                if (chanBusy_[id] || chanFailed_[id])
                    continue;
                std::uint32_t w = chanArb_[id].pick(remaining_);
                if (w == arb::MatrixArbiter::kNone)
                    break;
                auto &col = chanCol_[id];
                col.winner = w;
                col.weight = weight;
                remaining_.reset(w);
            }
        }
    }
}

void
HiRiseFabric::phase2()
{
    auto &reqs = subReqs_;
    // Only outputs with a phase-1 winner contend (ascending order, as
    // the sub-blocks are mutually independent within a cycle).
    contendedOut_.forEachSet([&](std::uint32_t o) {
        // Consume this output's winner chain unconditionally — held
        // outputs included — so stale links never survive into the
        // next cycle's chains.
        std::uint32_t chain = outChanHead_[o];
        outChanHead_[o] = kNoRequest;
        if (holder_[o] != kNoRequest)
            return;
        std::uint32_t d = layerOf(o);
        filledPorts_.clear();

        // Incoming L2LC ports: walk exactly this cycle's winning
        // channels targeting o (the chain finishArbitrate threaded)
        // instead of scanning every (layer, channel) column. reqs is
        // indexed by subPort, so chain order is immaterial to the
        // sub-block arbitration.
        for (std::uint32_t id = chain; id != kNoRequest;
             id = chanNext_[id]) {
            const auto &col = chanCol_[id];
            std::uint32_t s = id / (nlay_ * chan_);
            std::uint32_t k = id % chan_;
            std::uint32_t port = subPort(d, s, k);
            auto &r = reqs[port];
            r.valid = true;
            r.primaryInput = s * ppl_ + col.winner;
            r.weight = std::max(1u, col.weight);
            filledPorts_.push_back(port);
        }
        // Local intermediate port.
        const auto &icol = interCol_[o];
        if (icol.winner != arb::MatrixArbiter::kNone) {
            auto &r = reqs[ports_ - 1];
            r.valid = true;
            r.primaryInput = d * ppl_ + icol.winner;
            r.weight = std::max(1u, icol.weight);
            filledPorts_.push_back(ports_ - 1);
        }
        if (filledPorts_.empty())
            return;

        std::uint32_t p = subArb_[o]->arbitrate(reqs);
        sim_assert(p != arb::SubBlockArbiter::kNone,
                   "sub-block with valid requests granted nothing");

        std::uint32_t winner_in = reqs[p].primaryInput;
        holder_[o] = winner_in;
        grant_.set(winner_in);

        if (p + 1 == ports_) {
            // Local path: back-propagate the LRG update to the
            // intermediate-output column.
            heldChan_[o] = kNoRequest;
            interArb_[o].update(localIdx(winner_in));
            ++stats_.grantsLocal;
        } else {
            std::uint32_t s, k;
            subPortOrigin(d, p, s, k);
            std::uint32_t id = chanId(s, d, k);
            heldChan_[o] = id;
            chanBusy_[id] = 1;
            chanArb_[id].update(localIdx(winner_in));
            ++stats_.grantsCross;
            ++stats_.chanGrants[id];
        }

        // Sparse reset: subReqs_ stays all-invalid between outputs.
        for (std::uint32_t fp : filledPorts_)
            reqs[fp].valid = false;
    });
}

// Per-call prologue shared by both arbitrate entry points: clear the
// grant scratch, keep the stats denominators dense-identical, and
// lazily reset last cycle's touched columns.
void
HiRiseFabric::beginArbitrate()
{
    grant_.clear();
    ++arbitrateCalls_;
    simd::accumulateFlagsU64(stats_.chanBusyCycles.data(),
                             chanBusy_.data(), chanBusy_.size(), 1);
    resetScratch();
}

const BitVec &
HiRiseFabric::arbitrate(std::span<const std::uint32_t> req)
{
    sim_assert(req.size() == spec_.radix, "bad request vector");
    beginArbitrate();
    collectRequests(req);
    return finishArbitrate(req);
}

const BitVec &
HiRiseFabric::arbitrateActive(std::span<const std::uint32_t> req,
                              std::span<const std::uint32_t> active)
{
    sim_assert(req.size() == spec_.radix, "bad request vector");
    beginArbitrate();
    // active is ascending, so columns fill in the same order as the
    // dense collectRequests scan — phase-1 picks are bit-identical.
    for (std::uint32_t i : active) {
        sim_assert(i < spec_.radix && req[i] != kNoRequest,
                   "active list entry %u has no request", i);
        collectRequest(i, req[i]);
    }
    return finishArbitrate(req);
}

const BitVec &
HiRiseFabric::finishArbitrate(std::span<const std::uint32_t> req)
{
    // Record each channel winner's destination before phase 2, mark
    // the outputs that have at least one phase-1 winner so phase 2
    // visits only those sub-blocks, and thread each winning channel
    // onto its destination output's intrusive chain so phase 2 walks
    // exactly those channels.
    phase1();
    contendedOut_.clear();
    for (std::uint32_t id : activeChan_) {
        auto &col = chanCol_[id];
        if (col.winner == arb::MatrixArbiter::kNone)
            continue;
        std::uint32_t s = id / (nlay_ * chan_);
        std::uint32_t in = s * ppl_ + col.winner;
        col.winnerDst = req[in];
        contendedOut_.set(col.winnerDst);
        chanNext_[id] = outChanHead_[col.winnerDst];
        outChanHead_[col.winnerDst] = id;
    }
    for (std::uint32_t o : activeInter_) {
        if (interCol_[o].winner != arb::MatrixArbiter::kNone)
            contendedOut_.set(o);
    }

    const std::uint64_t local0 = stats_.grantsLocal;
    const std::uint64_t cross0 = stats_.grantsCross;
    phase2();
    if (obs::on()) [[unlikely]]
        recordArbitrateObs(grant_, req, heldChan_,
                           stats_.grantsLocal - local0,
                           stats_.grantsCross - cross0);
#ifdef HIRISE_CHECK_ENABLED
    checkInvariants(req);
#endif
    return grant_;
}

#ifdef HIRISE_CHECK_ENABLED
void
HiRiseFabric::checkInvariants(std::span<const std::uint32_t> req) const
{
    auto holder = [this](std::uint32_t o) { return holder_[o]; };
    check::verifyGrantMatching(req, grant_, spec_.radix, holder);
    check::verifyHolderInjective(spec_.radix, holder);

    // holder/heldChan/chanBusy must stay a bijection: every held
    // cross-layer connection pins exactly one busy channel whose
    // endpoints match the connection's layers, and every busy channel
    // is pinned by exactly one held connection.
    std::vector<std::uint32_t> pinned(chanBusy_.size(), kNoRequest);
    for (std::uint32_t o = 0; o < spec_.radix; ++o) {
        std::uint32_t id = heldChan_[o];
        if (holder_[o] == kNoRequest) {
            sim_assert(id == kNoRequest,
                       "idle output %u pins channel %u", o, id);
            continue;
        }
        if (id == kNoRequest) {
            sim_assert(layerOf(holder_[o]) == layerOf(o),
                       "local connection %u->%u crosses layers",
                       holder_[o], o);
            continue;
        }
        sim_assert(id < chanBusy_.size(), "bad held channel id %u", id);
        sim_assert(chanBusy_[id], "held channel %u not busy", id);
        sim_assert(!chanFailed_[id], "failed channel %u is held", id);
        sim_assert(pinned[id] == kNoRequest,
                   "channel %u pinned by outputs %u and %u", id,
                   pinned[id], o);
        pinned[id] = o;
        std::uint32_t s = id / (nlay_ * chan_);
        std::uint32_t d = (id / chan_) % nlay_;
        sim_assert(layerOf(holder_[o]) == s && layerOf(o) == d,
                   "channel %u endpoints do not match connection "
                   "%u->%u",
                   id, holder_[o], o);
    }
    for (std::uint32_t id = 0; id < chanBusy_.size(); ++id) {
        if (chanBusy_[id])
            sim_assert(pinned[id] != kNoRequest,
                       "busy channel %u pinned by no connection", id);
    }

    // CLRG class counters must stay thermometer-encodable.
    if (spec_.arb == ArbScheme::Clrg) {
        for (const auto &sub : subArb_) {
            auto *clrg =
                dynamic_cast<const arb::ClrgSubArbiter *>(sub.get());
            sim_assert(clrg != nullptr, "CLRG spec without CLRG arbiter");
            check::verifyClassCounterBounds(clrg->counters());
        }
    }
}
#endif

void
HiRiseFabric::advanceIdle(std::uint64_t cycles)
{
    // Mirror the per-call stats prologue of arbitrate() for cycles in
    // which the simulator had no requests to submit, so utilization
    // denominators and busy-cycle counts are independent of stepping
    // mode. Channels stay busy across request-free cycles while their
    // connection is still transferring.
    arbitrateCalls_ += cycles;
    simd::accumulateFlagsU64(stats_.chanBusyCycles.data(),
                             chanBusy_.data(), chanBusy_.size(),
                             cycles);
}

void
HiRiseFabric::release(std::uint32_t input, std::uint32_t output)
{
    sim_assert(output < spec_.radix && holder_[output] == input,
               "release of unheld connection %u->%u", input, output);
    holder_[output] = kNoRequest;
    if (heldChan_[output] != kNoRequest) {
        chanBusy_[heldChan_[output]] = 0;
        heldChan_[output] = kNoRequest;
    }
}

bool
HiRiseFabric::outputBusy(std::uint32_t output) const
{
    return holder_[output] != kNoRequest;
}

std::uint32_t
HiRiseFabric::outputHolder(std::uint32_t output) const
{
    return holder_[output];
}

void
HiRiseFabric::save(snap::Writer &w) const
{
    w.vec(holder_);
    w.vec(heldChan_);
    w.vec(chanBusy_);
    w.vec(chanFailed_);
    for (const auto &a : interArb_)
        a.save(w);
    for (const auto &a : chanArb_)
        a.save(w);
    for (const auto &a : subArb_)
        a->save(w);
    w.u64(stats_.grantsLocal);
    w.u64(stats_.grantsCross);
    w.vec(stats_.chanGrants);
    w.vec(stats_.chanBusyCycles);
    w.u64(arbitrateCalls_);
    // Per-cycle scratch (columns, chains, grant_) is rebuilt from
    // scratch each arbitrate() call and needs no saving: resetScratch
    // plus lazy mask clears make a fresh object equivalent.
}

void
HiRiseFabric::load(snap::Reader &r)
{
    r.vec(holder_);
    r.vec(heldChan_);
    r.vec(chanBusy_);
    r.vec(chanFailed_);
    for (auto &a : interArb_)
        a.load(r);
    for (auto &a : chanArb_)
        a.load(r);
    for (auto &a : subArb_)
        a->load(r);
    stats_.grantsLocal = r.u64();
    stats_.grantsCross = r.u64();
    r.vec(stats_.chanGrants);
    r.vec(stats_.chanBusyCycles);
    arbitrateCalls_ = r.u64();
}

} // namespace hirise::fabric
