/**
 * @file
 * Versioned binary snapshot serialization (checkpoint/restore of a
 * running simulation). A snapshot is a flat byte payload written
 * through snap::Writer and read back through snap::Reader, framed on
 * disk by a fixed header:
 *
 *   magic "HRSN" | format version | config key | payload size | FNV-1a
 *
 * The config key is a caller-supplied content hash of everything the
 * restoring process must already have reconstructed identically
 * (SwitchSpec, SimConfig, pattern descriptor, fault schedule): a
 * snapshot only restores *state*, never configuration, so loading one
 * against a mismatched configuration is rejected up front instead of
 * silently producing garbage.
 *
 * Serialization convention: every stateful component exposes
 *   void save(snap::Writer &) const;
 *   void load(snap::Reader &);
 * writing fields in declaration order, scalars through pod() and
 * containers as a u64 count followed by elements. load() runs on a
 * freshly constructed object of the *same configuration* and
 * overwrites state only. Restored runs must be bit-identical to
 * uninterrupted ones (tests/snapshot_test.cc enforces this across
 * dense, event, and batched stepping, with fault events active).
 *
 * Bump kSnapshotVersion whenever any component's save layout changes;
 * stale snapshots are then rejected at load.
 */

#ifndef HIRISE_COMMON_SNAPSHOT_HH
#define HIRISE_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace hirise::snap {

/** Snapshot format version; part of the on-disk header. v1: initial
 *  format (NetworkSim/BatchSim + fabric + arbiters + fault state). */
constexpr std::uint32_t kSnapshotVersion = 1;

class Writer
{
  public:
    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                      "pod() serializes scalars only");
        bytes(&v, sizeof(T));
    }

    void u32(std::uint32_t v) { pod(v); }
    void u64(std::uint64_t v) { pod(v); }
    void b(bool v) { pod(static_cast<std::uint8_t>(v ? 1 : 0)); }

    /** u64 count + raw element bytes (trivially copyable T). */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(v.size());
        if (!v.empty())
            bytes(v.data(), v.size() * sizeof(T));
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }

    /** Frame the payload with the snapshot header and write it
     *  atomically (temp file + rename). Returns false on I/O error. */
    bool writeFile(const std::string &path, std::uint64_t key) const;

  private:
    std::vector<std::uint8_t> buf_;
};

class Reader
{
  public:
    Reader() = default;
    explicit Reader(std::vector<std::uint8_t> payload)
        : buf_(std::move(payload))
    {}

    /**
     * Open @p path, verify magic / version / checksum, and check the
     * embedded config key against @p key. Returns false (with a
     * warn()) on any mismatch — never loads partial state.
     */
    bool readFile(const std::string &path, std::uint64_t key);

    void
    bytes(void *p, std::size_t n)
    {
        sim_assert(pos_ + n <= buf_.size(),
                   "snapshot underrun: need %zu bytes at offset %zu "
                   "of %zu",
                   n, pos_, buf_.size());
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }

    template <typename T>
    T
    pod()
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        T v;
        bytes(&v, sizeof(T));
        return v;
    }

    std::uint32_t u32() { return pod<std::uint32_t>(); }
    std::uint64_t u64() { return pod<std::uint64_t>(); }
    bool b() { return pod<std::uint8_t>() != 0; }

    template <typename T>
    void
    vec(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = u64();
        v.resize(static_cast<std::size_t>(n));
        if (n)
            bytes(v.data(), v.size() * sizeof(T));
    }

    /** All payload bytes consumed (save/load layouts agree). */
    bool done() const { return pos_ == buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
};

} // namespace hirise::snap

#endif // HIRISE_COMMON_SNAPSHOT_HH
