#include "common/thread_pool.hh"

#include <cstdlib>

namespace hirise {

namespace {

/** Worker identity for nested-submit routing. */
thread_local ThreadPool *t_pool = nullptr;
thread_local unsigned t_idx = 0;

std::atomic<unsigned> g_globalThreads{0};

unsigned
defaultThreads()
{
    if (unsigned req = g_globalThreads.load())
        return req;
    if (const char *env = std::getenv("HIRISE_THREADS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = threads ? threads : defaultThreads();
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMu_);
        stop_.store(true);
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
    // A task running during shutdown may have submitted follow-ups
    // after the workers decided to exit; run them here so every
    // future is satisfied.
    while (tryRunOne()) {}
}

bool
ThreadPool::onWorkerThread() const
{
    return t_pool == this;
}

void
ThreadPool::push(Task t)
{
    if (t_pool == this) {
        WorkerQueue &wq = *queues_[t_idx];
        std::lock_guard<std::mutex> lk(wq.mu);
        wq.q.push_back(std::move(t));
    } else {
        std::lock_guard<std::mutex> lk(injectMu_);
        inject_.push_back(std::move(t));
    }
    pending_.fetch_add(1);
    cv_.notify_one();
}

void
ThreadPool::requeueLocal(unsigned self, std::deque<Task> &&batch)
{
    if (batch.empty())
        return;
    std::size_t n = batch.size();
    {
        WorkerQueue &wq = *queues_[self];
        std::lock_guard<std::mutex> lk(wq.mu);
        for (auto &t : batch)
            wq.q.push_back(std::move(t));
    }
    // Already counted in pending_; just make sure sleepers see them.
    if (n > 1)
        cv_.notify_all();
}

bool
ThreadPool::acquire(unsigned self, Task &out)
{
    // 1. Own deque, LIFO end: newest work is cache-hot and keeps
    //    nested fan-outs depth-first.
    {
        WorkerQueue &wq = *queues_[self];
        std::lock_guard<std::mutex> lk(wq.mu);
        if (!wq.q.empty()) {
            out = std::move(wq.q.back());
            wq.q.pop_back();
            return true;
        }
    }
    // 2. Shared injector queue, FIFO.
    {
        std::lock_guard<std::mutex> lk(injectMu_);
        if (!inject_.empty()) {
            out = std::move(inject_.front());
            inject_.pop_front();
            return true;
        }
    }
    // 3. Steal half of a victim's deque from the FIFO end (the
    //    oldest, largest-granularity work), starting at a
    //    self-dependent offset to spread contention.
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned d = 1; d < n; ++d) {
        unsigned victim = (self + d) % n;
        std::deque<Task> got;
        {
            WorkerQueue &vq = *queues_[victim];
            std::lock_guard<std::mutex> lk(vq.mu);
            std::size_t take = (vq.q.size() + 1) / 2;
            for (std::size_t k = 0; k < take; ++k) {
                got.push_back(std::move(vq.q.front()));
                vq.q.pop_front();
            }
        }
        if (!got.empty()) {
            out = std::move(got.front());
            got.pop_front();
            requeueLocal(self, std::move(got));
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOne()
{
    Task t;
    // Helpers (waiting callers, the destructor) have no own deque;
    // drain the injector first, then any worker deque.
    {
        std::lock_guard<std::mutex> lk(injectMu_);
        if (!inject_.empty()) {
            t = std::move(inject_.front());
            inject_.pop_front();
        }
    }
    if (!t) {
        for (auto &qp : queues_) {
            std::lock_guard<std::mutex> lk(qp->mu);
            if (!qp->q.empty()) {
                t = std::move(qp->q.front());
                qp->q.pop_front();
                break;
            }
        }
    }
    if (!t)
        return false;
    pending_.fetch_sub(1);
    t();
    return true;
}

void
ThreadPool::workerLoop(unsigned idx)
{
    t_pool = this;
    t_idx = idx;
    for (;;) {
        Task t;
        if (acquire(idx, t)) {
            pending_.fetch_sub(1);
            t();
            t = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMu_);
        if (stop_.load() && pending_.load() == 0)
            return;
        cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
            return stop_.load() || pending_.load() > 0;
        });
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    g_globalThreads.store(threads);
}

} // namespace hirise
