/**
 * @file
 * Lightweight statistics accumulators used throughout the simulators.
 */

#ifndef HIRISE_COMMON_STATS_HH
#define HIRISE_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/snapshot.hh"

namespace hirise {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    void
    reset()
    {
        *this = RunningStat();
    }

    void
    save(snap::Writer &w) const
    {
        w.u64(n_);
        w.pod(mean_);
        w.pod(m2_);
        w.pod(sum_);
        w.pod(min_);
        w.pod(max_);
    }

    void
    load(snap::Reader &r)
    {
        n_ = r.u64();
        mean_ = r.pod<double>();
        m2_ = r.pod<double>();
        sum_ = r.pod<double>();
        min_ = r.pod<double>();
        max_ = r.pod<double>();
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram with overflow bin; supports quantile queries.
 */
class Histogram
{
  public:
    /**
     * @param bin_width  width of each bin
     * @param num_bins   number of regular bins (values beyond go to the
     *                   overflow bin)
     */
    explicit Histogram(double bin_width = 1.0, std::size_t num_bins = 1024)
        : binWidth_(bin_width), bins_(num_bins + 1, 0)
    {}

    void
    add(double x)
    {
        ++n_;
        // Clamp negatives (and NaN) to bin 0: casting a negative
        // double to size_t is undefined behaviour.
        std::size_t idx = 0;
        if (x >= 0.0)
            idx = static_cast<std::size_t>(x / binWidth_);
        if (idx >= bins_.size() - 1)
            idx = bins_.size() - 1;
        ++bins_[idx];
    }

    /** Bin shape is configuration, not state: load() requires a
     *  histogram constructed with the same width and bin count. */
    void
    save(snap::Writer &w) const
    {
        w.u64(n_);
        w.vec(bins_);
    }

    void
    load(snap::Reader &r)
    {
        n_ = r.u64();
        std::size_t shape = bins_.size();
        r.vec(bins_);
        sim_assert(bins_.size() == shape,
                   "histogram snapshot has %zu bins, expected %zu",
                   bins_.size(), shape);
    }

    std::uint64_t count() const { return n_; }

    /** Samples that landed beyond the last regular bin. A nonzero
     *  value means high quantiles are clamped to the overflow edge
     *  and should be treated as ">= edge", not exact. */
    std::uint64_t
    overflowCount() const
    {
        return bins_.back();
    }

    /** Value below which fraction q of the samples fall (bin upper
     *  edge). q >= 1.0 returns the highest occupied bin's edge rather
     *  than the overflow edge, so an all-regular-bin population never
     *  reports a value no sample reached. */
    double
    quantile(double q) const
    {
        if (n_ == 0)
            return 0.0;
        if (q >= 1.0) {
            for (std::size_t i = bins_.size(); i-- > 0;) {
                if (bins_[i])
                    return binWidth_ * static_cast<double>(i + 1);
            }
            return 0.0; // unreachable: n_ > 0 implies an occupied bin
        }
        auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(n_));
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < bins_.size(); ++i) {
            acc += bins_[i];
            if (acc > target)
                return binWidth_ * static_cast<double>(i + 1);
        }
        return binWidth_ * static_cast<double>(bins_.size());
    }

  private:
    double binWidth_;
    std::uint64_t n_ = 0;
    std::vector<std::uint64_t> bins_;
};

/**
 * Jain's fairness index over a vector of per-client allocations.
 * 1.0 == perfectly fair; 1/n == maximally unfair.
 */
double jainFairness(const std::vector<double> &alloc);

} // namespace hirise

#endif // HIRISE_COMMON_STATS_HH
