/**
 * @file
 * Persistent work-stealing thread pool for campaign-scale experiment
 * execution. One pool outlives thousands of simulation tasks, so the
 * spawn/join cost of the former fork-join parallelMap (a fresh
 * std::thread per worker per call) is paid once per process instead
 * of once per sweep.
 *
 * Design:
 *  - per-worker deques: a worker pushes/pops its own deque LIFO (hot
 *    caches, nested submits stay local); external submitters go
 *    through a shared injector queue.
 *  - steal-half: an idle worker takes half of a victim's deque FIFO,
 *    amortizing steal traffic under fan-out imbalance.
 *  - futures + exception propagation: submit() returns a real
 *    std::future; an exception thrown by the task is rethrown by
 *    future::get() on the waiter's thread.
 *  - helping waits: waitHelping() runs queued tasks while blocked on
 *    a future, so nested submits cannot deadlock even on a 1-thread
 *    pool.
 *  - graceful shutdown: the destructor stops intake, wakes everyone,
 *    joins the workers, and drains any stragglers on the destructing
 *    thread, so every submitted task runs exactly once (no broken
 *    promises).
 *
 * Determinism: the pool never reorders *results* — callers index
 * output slots by task id — so simulation campaigns are bit-identical
 * for any thread count or steal interleaving (see tests/campaign_test).
 */

#ifndef HIRISE_COMMON_THREAD_POOL_HH
#define HIRISE_COMMON_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hirise {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads worker count; 0 = HIRISE_THREADS env or
     *  hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue @p fn; the returned future carries its result or
     *  exception. Safe to call from worker threads (nested submit
     *  lands on the submitting worker's own deque). */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using R = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        push([task]() { (*task)(); });
        return fut;
    }

    /** Dequeue and run one pending task on the calling thread, if
     *  any. Lets waiters (and tests) make progress without a worker. */
    bool tryRunOne();

    /** Submitted-but-unfinished task count (approximate under
     *  concurrency; exact once the pool is quiescent). */
    std::uint64_t
    pendingTasks() const
    {
        return pending_.load(std::memory_order_relaxed);
    }

    /** Is the calling thread one of this pool's workers? */
    bool onWorkerThread() const;

    /** The process-wide pool (sized once on first use; see
     *  setGlobalThreads / HIRISE_THREADS). */
    static ThreadPool &global();

    /** Request a size for the global pool. Takes effect only if
     *  called before the first global() use (e.g. from --threads
     *  flag parsing at program start). */
    static void setGlobalThreads(unsigned threads);

  private:
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<Task> q;
    };

    void push(Task t);
    /** Raw enqueue of already-counted tasks (steal-half re-queue). */
    void requeueLocal(unsigned self, std::deque<Task> &&batch);
    bool acquire(unsigned self, Task &out);
    void workerLoop(unsigned idx);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::mutex injectMu_;
    std::deque<Task> inject_;

    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> pending_{0};
    std::atomic<bool> stop_{false};
    std::mutex sleepMu_;
    std::condition_variable cv_;
};

/**
 * Block on @p fut, running other queued pool tasks while waiting.
 * Required instead of fut.get() whenever the waiter may itself be a
 * pool task (nested parallelism): a plain get() from the last worker
 * would deadlock.
 */
template <typename R>
R
waitHelping(ThreadPool &pool, std::future<R> &fut)
{
    using namespace std::chrono_literals;
    while (fut.wait_for(0s) != std::future_status::ready) {
        if (!pool.tryRunOne())
            fut.wait_for(200us);
    }
    return fut.get();
}

} // namespace hirise

#endif // HIRISE_COMMON_THREAD_POOL_HH
