#include "common/stats.hh"

namespace hirise {

double
jainFairness(const std::vector<double> &alloc)
{
    if (alloc.empty())
        return 1.0;
    double sum = 0.0, sum_sq = 0.0;
    for (double a : alloc) {
        sum += a;
        sum_sq += a * a;
    }
    if (sum_sq == 0.0)
        return 1.0;
    double n = static_cast<double>(alloc.size());
    return (sum * sum) / (n * sum_sq);
}

} // namespace hirise
