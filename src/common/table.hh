/**
 * @file
 * Console table / CSV emission used by the benchmark harness to print
 * paper-vs-measured result rows.
 */

#ifndef HIRISE_COMMON_TABLE_HH
#define HIRISE_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace hirise {

/**
 * Simple column-aligned table with an optional title, printable to
 * stdout, and exportable as CSV.
 */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void header(std::vector<std::string> cols);
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    static std::string integer(long long v);

    /** Render aligned to stdout. */
    void print() const;

    /** Render as CSV (header + rows). */
    std::string csv() const;

    /** Write CSV to a file; fatal() on failure. */
    void writeCsv(const std::string &path) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hirise

#endif // HIRISE_COMMON_TABLE_HH
