/**
 * @file
 * Switch configuration description shared by the physical model, the
 * fabric simulators, and the experiment harness.
 */

#ifndef HIRISE_COMMON_SPEC_HH
#define HIRISE_COMMON_SPEC_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace hirise {

/** Which switch datapath is being modeled. */
enum class Topology
{
    Flat2D,   //!< flat 2D Swizzle-Switch (single-stage matrix)
    Folded3D, //!< 2D switch folded over L layers (Sewell et al. baseline)
    HiRise,   //!< hierarchical 3D switch (this paper)
};

/** Arbitration scheme (paper section III-B; flat-crossbar schedulers
 *  beyond LRG come from the input-queued-switch literature, ROADMAP
 *  item 3 — see docs/SCHEDULERS.md). */
enum class ArbScheme
{
    Lrg,      //!< flat least-recently-granted (2D / folded baseline)
    LayerLrg, //!< baseline layer-to-layer LRG (independent two-phase)
    Wlrg,     //!< weighted LRG (hardware-infeasible; simulated only)
    Clrg,     //!< class-based LRG (the paper's proposal)
    Islip,    //!< iterative SLIP round-robin matching (flat 2D only)
    Pim,      //!< parallel iterative matching, random (flat 2D only)
    Wavefront,//!< rotating-diagonal wavefront allocator (flat 2D only)
};

/** L2LC channel-allocation policy (paper section III-A). */
enum class ChannelAlloc
{
    InputBinned,  //!< input i uses channel (i mod c), interleaved
    OutputBinned, //!< channel chosen by destination output index
    Priority,     //!< any free channel via priority mux (slower clock)
};

/**
 * Full architectural description of one switch instance.
 *
 * For Topology::Flat2D, layers/channels are ignored (treated as 1).
 */
struct SwitchSpec
{
    Topology topo = Topology::HiRise;
    std::uint32_t radix = 64;    //!< N: total inputs == total outputs
    std::uint32_t layers = 4;    //!< L: stacked silicon layers
    std::uint32_t channels = 4;  //!< c: L2LC multiplicity per layer pair
    std::uint32_t flitBits = 128;
    ArbScheme arb = ArbScheme::Clrg;
    ChannelAlloc alloc = ChannelAlloc::InputBinned;
    /** CLRG class-counter saturation value (count range 0..maxCount,
     *  i.e. maxCount+1 classes; the paper uses 3 classes -> 2). */
    std::uint32_t clrgMaxCount = 2;
    /** iSLIP iteration / PIM round count per arbitration cycle
     *  (Islip/Pim only; other schemes ignore it). */
    std::uint32_t schedIters = 1;
    /** Base seed of the PIM scheduler's counter-RNG draw stream
     *  (Pim only). Part of the simulation identity, so sim::SimCache
     *  hashes it into its keys. */
    std::uint64_t schedSeed = 0;

    /** Inputs (== outputs) per layer, rounded up for uneven splits. */
    std::uint32_t
    portsPerLayer() const
    {
        if (topo == Topology::Flat2D)
            return radix;
        return (radix + layers - 1) / layers;
    }

    /** Number of incoming L2LCs at one layer's inter-layer switch. */
    std::uint32_t
    incomingChannels() const
    {
        return channels * (layers - 1);
    }

    /** Short human-readable description, e.g. "HiRise r64 L4 c4 CLRG". */
    std::string name() const;

    /** fatal()s if the configuration is inconsistent. */
    void validate() const;
};

const char *toString(Topology t);
const char *toString(ArbScheme a);
const char *toString(ChannelAlloc a);

} // namespace hirise

#endif // HIRISE_COMMON_SPEC_HH
