/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * A thin wrapper around xoshiro256** with convenience draws. Every
 * simulator component takes an explicit Rng (or a seed) so experiments
 * are reproducible and components are independent.
 */

#ifndef HIRISE_COMMON_RANDOM_HH
#define HIRISE_COMMON_RANDOM_HH

#include <cstdint>

namespace hirise {

/**
 * xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, and fully
 * deterministic across platforms, unlike std::mt19937 distributions.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 seeding to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded draw (biased by < 2^-64,
        // irrelevant for simulation purposes).
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Geometric draw: number of failures before first success. */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        std::uint64_t n = 0;
        while (!bernoulli(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hirise

#endif // HIRISE_COMMON_RANDOM_HH
