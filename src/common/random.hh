/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * A thin wrapper around xoshiro256** with convenience draws. Every
 * simulator component takes an explicit Rng (or a seed) so experiments
 * are reproducible and components are independent.
 */

#ifndef HIRISE_COMMON_RANDOM_HH
#define HIRISE_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace hirise {

/**
 * One splitmix64 scramble step (Steele et al.). Used standalone to
 * derive statistically independent per-task seeds from a campaign
 * base seed: the derivation is a pure function of (seed, index), so
 * sharded runs are deterministic for any thread count or execution
 * order.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Deterministic per-task seed for shard @p index of campaign seed
 *  @p seed (loadSweep points, fuzz batches, seed sweeps). */
constexpr std::uint64_t
shardSeed(std::uint64_t seed, std::uint64_t index)
{
    return splitmix64(seed ^ (0xd1b54a32d192ed03ull * (index + 1)));
}

// ---------------------------------------------------------------------
// Counter-based (stateless) streams
// ---------------------------------------------------------------------
//
// A counter stream is a pure function of (seed, lane, tick): lane
// identifies an independent logical stream (e.g. one per input port
// and draw purpose), tick is the position within it (e.g. the sim
// cycle). Unlike the sequential Rng below, draws are order-independent
// and skippable, so an event-driven consumer can evaluate exactly the
// ticks it needs and still agree bit-for-bit with a dense consumer
// that evaluates every tick.

/** Per-(seed, lane) stream key; hoist out of tick loops. */
constexpr std::uint64_t
counterKey(std::uint64_t seed, std::uint64_t lane)
{
    return splitmix64(seed ^ (0xd1b54a32d192ed03ull * (lane + 1)));
}

/** Per-tick stride of a counter stream (the splitmix64 increment).
 *  The batched 4-lane draw kernel (common/simd.hh counterDraw4) must
 *  reproduce key + kCounterTickMul * tick exactly. */
constexpr std::uint64_t kCounterTickMul = 0x9e3779b97f4a7c15ull;

/** Raw 64-bit draw at @p tick of the stream keyed by @p key. */
constexpr std::uint64_t
counterDrawKeyed(std::uint64_t key, std::uint64_t tick)
{
    return splitmix64(key + kCounterTickMul * tick);
}

/** Raw 64-bit draw at (seed, lane, tick). */
constexpr std::uint64_t
counterDraw(std::uint64_t seed, std::uint64_t lane, std::uint64_t tick)
{
    return counterDrawKeyed(counterKey(seed, lane), tick);
}

/** Map a raw draw to a uniform double in [0, 1) (same 53-bit mantissa
 *  construction as Rng::uniform). */
constexpr double
counterUniform(std::uint64_t draw)
{
    return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

/**
 * Integer threshold T such that, for every raw draw d,
 *     (d >> 11) < T  <=>  counterUniform(d) < p.
 * Proof: m = d >> 11 is an integer < 2^53, m * 2^-53 is exact in
 * double, so the float compare is the real compare m < p * 2^53; for
 * integer m that is m < ceil(p * 2^53). p * 2^53 is computed exactly
 * (scaling by a power of two). Lets the geometric-skip scan test one
 * shift+compare per cycle instead of an int->double conversion.
 */
constexpr std::uint64_t
bernoulliThreshold(double p)
{
    if (!(p > 0.0))
        return 0;
    if (p >= 1.0)
        return 1ull << 53;
    const double s = p * 0x1.0p53;
    const auto t = static_cast<std::uint64_t>(s); // floor (s > 0)
    return t + (static_cast<double>(t) < s ? 1 : 0);
}

/** Bernoulli(p) decision for a raw draw. */
constexpr bool
counterBernoulli(std::uint64_t draw, double p)
{
    return (draw >> 11) < bernoulliThreshold(p);
}

/** Uniform integer in [0, bound) from a raw draw (Lemire reduction,
 *  same map as Rng::below). @pre bound > 0. */
constexpr std::uint64_t
counterBelow(std::uint64_t draw, std::uint64_t bound)
{
    const unsigned __int128 m =
        static_cast<unsigned __int128>(draw) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

/** Geometric draw (failures before first success) via the inverse
 *  CDF, so one raw draw suffices; mean (1-p)/p like Rng::geometric. */
inline std::uint64_t
counterGeometric(std::uint64_t draw, double p)
{
    if (p >= 1.0)
        return 0;
    const double u = counterUniform(draw);
    return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

/**
 * xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, and fully
 * deterministic across platforms, unlike std::mt19937 distributions.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 seeding to fill the state from a single word.
        for (std::uint64_t i = 0; i < 4; ++i)
            state_[i] = splitmix64(seed + i * 0x9e3779b97f4a7c15ull);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded draw (biased by < 2^-64,
        // irrelevant for simulation purposes).
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Geometric draw: number of failures before first success. */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        std::uint64_t n = 0;
        while (!bernoulli(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hirise

#endif // HIRISE_COMMON_RANDOM_HH
