/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  -- unrecoverable condition caused by the user (bad config);
 *             exits with status 1.
 * panic()  -- unrecoverable condition caused by a simulator bug; aborts.
 * warn()   -- something is suspicious but simulation continues.
 * inform() -- plain status message.
 */

#ifndef HIRISE_COMMON_LOGGING_HH
#define HIRISE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hirise {

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace hirise

#define fatal(...)                                                        \
    ::hirise::detail::fatalImpl(__FILE__, __LINE__,                       \
                                ::hirise::detail::format(__VA_ARGS__))

#define panic(...)                                                        \
    ::hirise::detail::panicImpl(__FILE__, __LINE__,                       \
                                ::hirise::detail::format(__VA_ARGS__))

#define warn(...)                                                         \
    ::hirise::detail::warnImpl(__FILE__, __LINE__,                        \
                               ::hirise::detail::format(__VA_ARGS__))

#define inform(...)                                                       \
    ::hirise::detail::informImpl(::hirise::detail::format(__VA_ARGS__))

/**
 * Invariant check that stays enabled in release builds. Use for checks
 * whose failure indicates a simulator bug.
 */
#define sim_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::hirise::detail::panicImpl(                                  \
                __FILE__, __LINE__,                                       \
                std::string("assertion failed: " #cond " -- ") +          \
                    ::hirise::detail::format(__VA_ARGS__));               \
        }                                                                 \
    } while (0)

#endif // HIRISE_COMMON_LOGGING_HH
