#include "common/snapshot.hh"

#include <cstdio>

namespace hirise::snap {

namespace {

constexpr std::uint32_t kMagic = 0x4852534e; // "HRSN"

struct FileHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t key;
    std::uint64_t payloadSize;
    std::uint64_t checksum;
};

std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

bool
Writer::writeFile(const std::string &path, std::uint64_t key) const
{
    FileHeader h{};
    h.magic = kMagic;
    h.version = kSnapshotVersion;
    h.key = key;
    h.payloadSize = buf_.size();
    h.checksum = fnv1a(buf_.data(), buf_.size());

    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
    if (ok && !buf_.empty())
        ok = std::fwrite(buf_.data(), 1, buf_.size(), f) ==
             buf_.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
Reader::readFile(const std::string &path, std::uint64_t key)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warn("snapshot: cannot open '%s'", path.c_str());
        return false;
    }
    FileHeader h{};
    if (std::fread(&h, sizeof(h), 1, f) != 1) {
        warn("snapshot '%s': truncated header", path.c_str());
        std::fclose(f);
        return false;
    }
    if (h.magic != kMagic) {
        warn("snapshot '%s': bad magic", path.c_str());
        std::fclose(f);
        return false;
    }
    if (h.version != kSnapshotVersion) {
        warn("snapshot '%s': format version %u, expected %u",
             path.c_str(), h.version, kSnapshotVersion);
        std::fclose(f);
        return false;
    }
    if (h.key != key) {
        warn("snapshot '%s': config key mismatch (snapshot "
             "%016llx, expected %016llx) — refusing to restore "
             "state into a different configuration",
             path.c_str(), static_cast<unsigned long long>(h.key),
             static_cast<unsigned long long>(key));
        std::fclose(f);
        return false;
    }
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(h.payloadSize));
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), f) !=
            payload.size()) {
        warn("snapshot '%s': truncated payload", path.c_str());
        std::fclose(f);
        return false;
    }
    std::fclose(f);
    if (fnv1a(payload.data(), payload.size()) != h.checksum) {
        warn("snapshot '%s': payload checksum mismatch",
             path.c_str());
        return false;
    }
    buf_ = std::move(payload);
    pos_ = 0;
    return true;
}

} // namespace hirise::snap
