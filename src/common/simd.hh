/**
 * @file
 * Explicit SIMD kernels for the arbitration and batched-simulation
 * hot paths, with a scalar fallback that is always compiled and
 * runtime-dispatched AVX2 and AVX-512 tiers.
 *
 * Build gating: the HIRISE_SIMD CMake option (ON by default) defines
 * HIRISE_SIMD_ENABLED; together with an x86-64 target that compiles
 * the AVX2 and AVX-512 bodies (per-function `target(...)` attributes,
 * so the rest of the binary stays portable). At runtime activeTier()
 * probes __builtin_cpu_supports once and caches the answer;
 * HIRISE_SIMD_FORCE_SCALAR=1 pins the scalar tier, and
 * HIRISE_SIMD_FORCE_TIER=scalar|avx2|avx512 pins any tier (clamped to
 * what build + host support) for same-host A/B runs.
 *
 * Determinism contract: every kernel computes the exact same bits as
 * its scalar counterpart (same word ops, same splitmix64 scramble),
 * so tier selection can never change a simulated outcome — only how
 * many lanes are processed per instruction. tests/bitvec_test.cc
 * compares the tiers word for word.
 */

#ifndef HIRISE_COMMON_SIMD_HH
#define HIRISE_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

#if defined(HIRISE_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HIRISE_SIMD_AVX2_COMPILED 1
#define HIRISE_SIMD_AVX512_COMPILED 1
#include <immintrin.h>
#endif

/** Feature set every AVX-512 kernel compiles against and the runtime
 *  probe requires: foundation + DQ (64-bit vpmullq) + VL (256-bit
 *  forms for the 4-lane counter draw). */
#define HIRISE_AVX512_TARGET "avx512f,avx512dq,avx512vl"

namespace hirise::simd {

using Word = std::uint64_t;

enum class Tier : std::uint8_t
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Highest tier this build + host supports; resolved once per process
 *  (cpuid probe + HIRISE_SIMD_FORCE_* env checks, cached). */
Tier activeTier();

const char *tierName(Tier t);

/** Test hook: pin the dispatch tier (clamped down to what the
 *  build/host/environment supports). Not thread-safe against
 *  concurrent kernel calls; call it between runs only. */
void forceTier(Tier t);

/** At least the AVX2 tier is active (AVX-512 implies AVX2: every
 *  256-bit kernel is valid on an AVX-512 host). */
inline bool
avx2()
{
    return activeTier() >= Tier::Avx2;
}

inline bool
avx512()
{
    return activeTier() >= Tier::Avx512;
}

// ---------------------------------------------------------------------
// Word-array kernels (BitVec storage: little-endian uint64 words)
// ---------------------------------------------------------------------

inline void
zeroWordsScalar(Word *dst, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = 0;
}

inline void
copyWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = src[k];
}

inline void
andWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] &= src[k];
}

inline void
orWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] |= src[k];
}

inline void
andNotWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] &= ~src[k];
}

inline bool
anyWordScalar(const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        if (src[k])
            return true;
    return false;
}

/**
 * Matrix-arbiter dominance test: does any requestor other than the
 * candidate itself outrank it? True iff (req & ~row) has a set bit
 * besides the candidate's own (word @p self_word, mask @p self_mask).
 * This is the inner loop of arb::MatrixArbiter::pick().
 */
inline bool
losingAnyScalar(const Word *req, const Word *row, std::size_t n,
                std::size_t self_word, Word self_mask)
{
    for (std::size_t w = 0; w < n; ++w) {
        Word losing = req[w] & ~row[w];
        if (w == self_word)
            losing &= ~self_mask;
        if (losing)
            return true;
    }
    return false;
}

#ifdef HIRISE_SIMD_AVX2_COMPILED

__attribute__((target("avx2"))) inline void
zeroWordsAvx2(Word *dst, std::size_t n)
{
    std::size_t k = 0;
    const __m256i z = _mm256_setzero_si256();
    for (; k + 4 <= n; k += 4)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k), z);
    for (; k < n; ++k)
        dst[k] = 0;
}

__attribute__((target("avx2"))) inline void
copyWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + k),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + k)));
    }
    for (; k < n; ++k)
        dst[k] = src[k];
}

__attribute__((target("avx2"))) inline void
andWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + k));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_and_si256(d, s));
    }
    for (; k < n; ++k)
        dst[k] &= src[k];
}

__attribute__((target("avx2"))) inline void
orWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + k));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_or_si256(d, s));
    }
    for (; k < n; ++k)
        dst[k] |= src[k];
}

__attribute__((target("avx2"))) inline void
andNotWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + k));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        // vpandn computes ~a & b, so src is the first operand.
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_andnot_si256(s, d));
    }
    for (; k < n; ++k)
        dst[k] &= ~src[k];
}

__attribute__((target("avx2"))) inline bool
anyWordAvx2(const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        if (!_mm256_testz_si256(s, s))
            return true;
    }
    for (; k < n; ++k)
        if (src[k])
            return true;
    return false;
}

__attribute__((target("avx2"))) inline bool
losingAnyAvx2(const Word *req, const Word *row, std::size_t n,
              std::size_t self_word, Word self_mask)
{
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(req + w));
        __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + w));
        __m256i losing = _mm256_andnot_si256(p, r);
        if (self_word >= w && self_word < w + 4) {
            alignas(32) Word m[4] = {~Word(0), ~Word(0), ~Word(0),
                                     ~Word(0)};
            m[self_word - w] = ~self_mask;
            losing = _mm256_and_si256(
                losing,
                _mm256_load_si256(reinterpret_cast<const __m256i *>(m)));
        }
        if (!_mm256_testz_si256(losing, losing))
            return true;
    }
    for (; w < n; ++w) {
        Word losing = req[w] & ~row[w];
        if (w == self_word)
            losing &= ~self_mask;
        if (losing)
            return true;
    }
    return false;
}

#endif // HIRISE_SIMD_AVX2_COMPILED

#ifdef HIRISE_SIMD_AVX512_COMPILED

// 512-bit variants process 8 words per step and finish odd tails with
// masked loads/stores (masked-out lanes are architecturally never
// touched, so reading right up to the array end is safe).

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
zeroWordsAvx512(Word *dst, std::size_t n)
{
    std::size_t k = 0;
    const __m512i z = _mm512_setzero_si512();
    for (; k + 8 <= n; k += 8)
        _mm512_storeu_si512(dst + k, z);
    if (k < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - k)) - 1u);
        _mm512_mask_storeu_epi64(dst + k, m, z);
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
copyWordsAvx512(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8)
        _mm512_storeu_si512(dst + k, _mm512_loadu_si512(src + k));
    if (k < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - k)) - 1u);
        _mm512_mask_storeu_epi64(
            dst + k, m, _mm512_maskz_loadu_epi64(m, src + k));
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
andWordsAvx512(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        _mm512_storeu_si512(
            dst + k, _mm512_and_si512(_mm512_loadu_si512(dst + k),
                                      _mm512_loadu_si512(src + k)));
    }
    if (k < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - k)) - 1u);
        _mm512_mask_storeu_epi64(
            dst + k, m,
            _mm512_and_si512(_mm512_maskz_loadu_epi64(m, dst + k),
                             _mm512_maskz_loadu_epi64(m, src + k)));
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
orWordsAvx512(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        _mm512_storeu_si512(
            dst + k, _mm512_or_si512(_mm512_loadu_si512(dst + k),
                                     _mm512_loadu_si512(src + k)));
    }
    if (k < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - k)) - 1u);
        _mm512_mask_storeu_epi64(
            dst + k, m,
            _mm512_or_si512(_mm512_maskz_loadu_epi64(m, dst + k),
                            _mm512_maskz_loadu_epi64(m, src + k)));
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
andNotWordsAvx512(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        // vpandnq computes ~a & b, so src is the first operand.
        _mm512_storeu_si512(
            dst + k, _mm512_andnot_si512(_mm512_loadu_si512(src + k),
                                         _mm512_loadu_si512(dst + k)));
    }
    if (k < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - k)) - 1u);
        _mm512_mask_storeu_epi64(
            dst + k, m,
            _mm512_andnot_si512(_mm512_maskz_loadu_epi64(m, src + k),
                                _mm512_maskz_loadu_epi64(m, dst + k)));
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline bool
anyWordAvx512(const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i s = _mm512_loadu_si512(src + k);
        if (_mm512_test_epi64_mask(s, s))
            return true;
    }
    if (k < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - k)) - 1u);
        __m512i s = _mm512_maskz_loadu_epi64(m, src + k);
        if (_mm512_test_epi64_mask(s, s))
            return true;
    }
    return false;
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline bool
losingAnyAvx512(const Word *req, const Word *row, std::size_t n,
                std::size_t self_word, Word self_mask)
{
    std::size_t w = 0;
    while (w < n) {
        const std::size_t rem = n - w;
        const __mmask8 m =
            rem >= 8 ? static_cast<__mmask8>(0xff)
                     : static_cast<__mmask8>((1u << rem) - 1u);
        __m512i r = _mm512_maskz_loadu_epi64(m, req + w);
        __m512i p = _mm512_maskz_loadu_epi64(m, row + w);
        __m512i losing = _mm512_andnot_si512(p, r);
        if (self_word >= w && self_word < w + 8) {
            alignas(64) Word sm[8] = {~Word(0), ~Word(0), ~Word(0),
                                      ~Word(0), ~Word(0), ~Word(0),
                                      ~Word(0), ~Word(0)};
            sm[self_word - w] = ~self_mask;
            losing = _mm512_and_si512(losing, _mm512_load_si512(sm));
        }
        if (_mm512_test_epi64_mask(losing, losing))
            return true;
        w += 8;
    }
    return false;
}

#endif // HIRISE_SIMD_AVX512_COMPILED

// Dispatching fronts. The tier test is one cached load + predictable
// branch; callers in per-candidate loops should hoist the tier test
// themselves and call the *Scalar/*Avx2/*Avx512 variants directly.

inline void
zeroWords(Word *dst, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return zeroWordsAvx512(dst, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return zeroWordsAvx2(dst, n);
#endif
    zeroWordsScalar(dst, n);
}

inline void
copyWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return copyWordsAvx512(dst, src, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return copyWordsAvx2(dst, src, n);
#endif
    copyWordsScalar(dst, src, n);
}

inline void
andWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return andWordsAvx512(dst, src, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return andWordsAvx2(dst, src, n);
#endif
    andWordsScalar(dst, src, n);
}

inline void
orWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return orWordsAvx512(dst, src, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return orWordsAvx2(dst, src, n);
#endif
    orWordsScalar(dst, src, n);
}

inline void
andNotWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return andNotWordsAvx512(dst, src, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return andNotWordsAvx2(dst, src, n);
#endif
    andNotWordsScalar(dst, src, n);
}

inline bool
anyWord(const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return anyWordAvx512(src, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return anyWordAvx2(src, n);
#endif
    return anyWordScalar(src, n);
}

inline bool
losingAny(const Word *req, const Word *row, std::size_t n,
          std::size_t self_word, Word self_mask)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return losingAnyAvx512(req, row, n, self_word, self_mask);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return losingAnyAvx2(req, row, n, self_word, self_mask);
#endif
    return losingAnyScalar(req, row, n, self_word, self_mask);
}

// ---------------------------------------------------------------------
// u32-lane kernels for the two-phase arbitration hot path
// (fabric/hirise.cc, arb/sub_block_arbiter.cc, arb/class_counter.hh)
// ---------------------------------------------------------------------

/**
 * Compact the indices i in [0, n) with v[i] != sentinel into @p out
 * (ascending), returning the count. Phase-1 request collection: the
 * dense request vector is mostly kNoRequest below saturation, and the
 * downstream binning wants just the requesting inputs.
 * @p out must have room for n entries.
 */
inline std::uint32_t
gatherNonSentinelU32Scalar(const std::uint32_t *v, std::uint32_t n,
                           std::uint32_t sentinel, std::uint32_t *out)
{
    std::uint32_t c = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (v[i] != sentinel)
            out[c++] = i;
    }
    return c;
}

/** Minimum of v[0..n); ~0u when n == 0. CLRG best-class reduction. */
inline std::uint32_t
minU32Scalar(const std::uint32_t *v, std::size_t n)
{
    std::uint32_t best = ~0u;
    for (std::size_t i = 0; i < n; ++i)
        best = v[i] < best ? v[i] : best;
    return best;
}

/** Bitmask of positions with v[i] == value, written to
 *  ceil(n/64) words of @p out (tail bits zero). CLRG class-equality
 *  mask over BitVec word storage. */
inline void
eqBitsU32Scalar(const std::uint32_t *v, std::size_t n,
                std::uint32_t value, Word *out)
{
    for (std::size_t w = 0; w < (n + 63) / 64; ++w)
        out[w] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (v[i] == value)
            out[i / 64] |= Word(1) << (i % 64);
    }
}

/** v[i] >>= 1 for all i: the CLRG bank-wide halve-on-saturation. */
inline void
halveU32Scalar(std::uint32_t *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] >>= 1;
}

/** acc[i] += scale where flags[i] != 0: the per-channel busy-cycle
 *  accumulation of beginArbitrate()/advanceIdle(). */
inline void
accumulateFlagsU64Scalar(std::uint64_t *acc, const std::uint8_t *flags,
                         std::size_t n, std::uint64_t scale)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (flags[i])
            acc[i] += scale;
    }
}

#ifdef HIRISE_SIMD_AVX2_COMPILED

__attribute__((target("avx2"))) inline std::uint32_t
gatherNonSentinelU32Avx2(const std::uint32_t *v, std::uint32_t n,
                         std::uint32_t sentinel, std::uint32_t *out)
{
    std::uint32_t c = 0;
    const __m256i sent =
        _mm256_set1_epi32(static_cast<int>(sentinel));
    std::uint32_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        unsigned keep =
            0xffu & ~static_cast<unsigned>(_mm256_movemask_ps(
                        _mm256_castsi256_ps(
                            _mm256_cmpeq_epi32(x, sent))));
        while (keep) {
            out[c++] = i + static_cast<std::uint32_t>(
                               __builtin_ctz(keep));
            keep &= keep - 1;
        }
    }
    for (; i < n; ++i) {
        if (v[i] != sentinel)
            out[c++] = i;
    }
    return c;
}

__attribute__((target("avx2"))) inline std::uint32_t
minU32Avx2(const std::uint32_t *v, std::size_t n)
{
    std::size_t i = 0;
    __m256i acc = _mm256_set1_epi32(-1); // unsigned max
    for (; i + 8 <= n; i += 8) {
        acc = _mm256_min_epu32(
            acc, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(v + i)));
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::uint32_t best = ~0u;
    for (std::uint32_t lane : lanes)
        best = lane < best ? lane : best;
    for (; i < n; ++i)
        best = v[i] < best ? v[i] : best;
    return best;
}

__attribute__((target("avx2"))) inline void
eqBitsU32Avx2(const std::uint32_t *v, std::size_t n,
              std::uint32_t value, Word *out)
{
    for (std::size_t w = 0; w < (n + 63) / 64; ++w)
        out[w] = 0;
    const __m256i val = _mm256_set1_epi32(static_cast<int>(value));
    std::size_t i = 0;
    // i advances by 8, so a chunk's 8 bits never straddle a word.
    for (; i + 8 <= n; i += 8) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        unsigned bits = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(x, val))));
        out[i / 64] |= Word(bits) << (i % 64);
    }
    for (; i < n; ++i) {
        if (v[i] == value)
            out[i / 64] |= Word(1) << (i % 64);
    }
}

__attribute__((target("avx2"))) inline void
halveU32Avx2(std::uint32_t *v, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(v + i),
            _mm256_srli_epi32(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(v + i)),
                1));
    }
    for (; i < n; ++i)
        v[i] >>= 1;
}

__attribute__((target("avx2"))) inline void
accumulateFlagsU64Avx2(std::uint64_t *acc, const std::uint8_t *flags,
                       std::size_t n, std::uint64_t scale)
{
    const __m256i sc =
        _mm256_set1_epi64x(static_cast<long long>(scale));
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint32_t four;
        __builtin_memcpy(&four, flags + i, 4);
        __m256i f = _mm256_cvtepu8_epi64(
            _mm_cvtsi32_si128(static_cast<int>(four)));
        // All-ones where the flag is set (flags are 0/1).
        __m256i on = _mm256_cmpgt_epi64(f, zero);
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + i),
            _mm256_add_epi64(a, _mm256_and_si256(on, sc)));
    }
    for (; i < n; ++i) {
        if (flags[i])
            acc[i] += scale;
    }
}

#endif // HIRISE_SIMD_AVX2_COMPILED

#ifdef HIRISE_SIMD_AVX512_COMPILED

__attribute__((target(HIRISE_AVX512_TARGET))) inline std::uint32_t
gatherNonSentinelU32Avx512(const std::uint32_t *v, std::uint32_t n,
                           std::uint32_t sentinel, std::uint32_t *out)
{
    std::uint32_t c = 0;
    const __m512i sent =
        _mm512_set1_epi32(static_cast<int>(sentinel));
    __m512i idx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                    11, 12, 13, 14, 15);
    const __m512i step = _mm512_set1_epi32(16);
    std::uint32_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512i x = _mm512_loadu_si512(v + i);
        __mmask16 keep = _mm512_cmpneq_epu32_mask(x, sent);
        _mm512_mask_compressstoreu_epi32(out + c, keep, idx);
        c += static_cast<std::uint32_t>(__builtin_popcount(keep));
        idx = _mm512_add_epi32(idx, step);
    }
    for (; i < n; ++i) {
        if (v[i] != sentinel)
            out[c++] = i;
    }
    return c;
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline std::uint32_t
minU32Avx512(const std::uint32_t *v, std::size_t n)
{
    __m512i acc = _mm512_set1_epi32(-1); // unsigned max
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        acc = _mm512_min_epu32(acc, _mm512_loadu_si512(v + i));
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        // Masked-out lanes stay at unsigned max so they never win.
        acc = _mm512_min_epu32(
            acc, _mm512_mask_loadu_epi32(_mm512_set1_epi32(-1), m,
                                         v + i));
    }
    return _mm512_reduce_min_epu32(acc);
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
eqBitsU32Avx512(const std::uint32_t *v, std::size_t n,
                std::uint32_t value, Word *out)
{
    for (std::size_t w = 0; w < (n + 63) / 64; ++w)
        out[w] = 0;
    const __m512i val = _mm512_set1_epi32(static_cast<int>(value));
    std::size_t i = 0;
    // i advances by 16, so a chunk's bits never straddle a word.
    for (; i + 16 <= n; i += 16) {
        __mmask16 bits =
            _mm512_cmpeq_epu32_mask(_mm512_loadu_si512(v + i), val);
        out[i / 64] |= Word(bits) << (i % 64);
    }
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        __mmask16 bits = _mm512_mask_cmpeq_epu32_mask(
            m, _mm512_maskz_loadu_epi32(m, v + i), val);
        out[i / 64] |= Word(bits) << (i % 64);
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
halveU32Avx512(std::uint32_t *v, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm512_storeu_si512(
            v + i, _mm512_srli_epi32(_mm512_loadu_si512(v + i), 1));
    }
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_epi32(
            v + i, m,
            _mm512_srli_epi32(_mm512_maskz_loadu_epi32(m, v + i), 1));
    }
}

__attribute__((target(HIRISE_AVX512_TARGET))) inline void
accumulateFlagsU64Avx512(std::uint64_t *acc, const std::uint8_t *flags,
                         std::size_t n, std::uint64_t scale)
{
    const __m512i sc =
        _mm512_set1_epi64(static_cast<long long>(scale));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i f = _mm512_cvtepu8_epi64(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(flags + i)));
        __mmask8 on = _mm512_test_epi64_mask(f, f);
        __m512i a = _mm512_loadu_si512(acc + i);
        _mm512_storeu_si512(acc + i,
                            _mm512_mask_add_epi64(a, on, a, sc));
    }
    for (; i < n; ++i) {
        if (flags[i])
            acc[i] += scale;
    }
}

#endif // HIRISE_SIMD_AVX512_COMPILED

inline std::uint32_t
gatherNonSentinelU32(const std::uint32_t *v, std::uint32_t n,
                     std::uint32_t sentinel, std::uint32_t *out)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return gatherNonSentinelU32Avx512(v, n, sentinel, out);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return gatherNonSentinelU32Avx2(v, n, sentinel, out);
#endif
    return gatherNonSentinelU32Scalar(v, n, sentinel, out);
}

inline std::uint32_t
minU32(const std::uint32_t *v, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return minU32Avx512(v, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return minU32Avx2(v, n);
#endif
    return minU32Scalar(v, n);
}

inline void
eqBitsU32(const std::uint32_t *v, std::size_t n, std::uint32_t value,
          Word *out)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return eqBitsU32Avx512(v, n, value, out);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return eqBitsU32Avx2(v, n, value, out);
#endif
    eqBitsU32Scalar(v, n, value, out);
}

inline void
halveU32(std::uint32_t *v, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return halveU32Avx512(v, n);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return halveU32Avx2(v, n);
#endif
    halveU32Scalar(v, n);
}

inline void
accumulateFlagsU64(std::uint64_t *acc, const std::uint8_t *flags,
                   std::size_t n, std::uint64_t scale)
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return accumulateFlagsU64Avx512(acc, flags, n, scale);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return accumulateFlagsU64Avx2(acc, flags, n, scale);
#endif
    accumulateFlagsU64Scalar(acc, flags, n, scale);
}

// ---------------------------------------------------------------------
// Batched-transpose counter draws: the same tick evaluated across four
// replica-lane stream keys at once (sim/batch_sim.cc injection plane).
// ---------------------------------------------------------------------

/** splitmix64 increment; counterDrawKeyed's per-tick multiplier is the
 *  same constant (common/random.hh). */
constexpr Word kSplitmixGolden = 0x9e3779b97f4a7c15ull;

/** Scalar reference: out[j] = counterDrawKeyed(keys[j], tick). */
inline void
counterDraw4Scalar(const Word keys[4], Word tick, Word out[4])
{
    const Word add = kSplitmixGolden * tick + kSplitmixGolden;
    for (int j = 0; j < 4; ++j) {
        Word x = keys[j] + add; // == splitmix64(key + golden*tick)
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        out[j] = x ^ (x >> 31);
    }
}

#ifdef HIRISE_SIMD_AVX2_COMPILED

/** 4x64-bit multiply by a broadcast constant; AVX2 has no 64-bit
 *  vpmullq (that is AVX-512DQ), so synthesize it from 32x32 partial
 *  products. */
__attribute__((target("avx2"))) inline __m256i
mullo64Avx2(__m256i a, __m256i b)
{
    __m256i lo = _mm256_mul_epu32(a, b);
    __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline void
counterDraw4Avx2(const Word keys[4], Word tick, Word out[4])
{
    const Word add = kSplitmixGolden * tick + kSplitmixGolden;
    __m256i x = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(keys)),
        _mm256_set1_epi64x(static_cast<long long>(add)));
    x = mullo64Avx2(
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
        _mm256_set1_epi64x(
            static_cast<long long>(0xbf58476d1ce4e5b9ull)));
    x = mullo64Avx2(
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
        _mm256_set1_epi64x(
            static_cast<long long>(0x94d049bb133111ebull)));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), x);
}

#endif // HIRISE_SIMD_AVX2_COMPILED

#ifdef HIRISE_SIMD_AVX512_COMPILED

/** AVX-512DQ+VL gives the native 64-bit multiply (vpmullq) the AVX2
 *  tier has to synthesize — same four lanes, fewer uops. */
__attribute__((target(HIRISE_AVX512_TARGET))) inline void
counterDraw4Avx512(const Word keys[4], Word tick, Word out[4])
{
    const Word add = kSplitmixGolden * tick + kSplitmixGolden;
    __m256i x = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(keys)),
        _mm256_set1_epi64x(static_cast<long long>(add)));
    x = _mm256_mullo_epi64(
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
        _mm256_set1_epi64x(
            static_cast<long long>(0xbf58476d1ce4e5b9ull)));
    x = _mm256_mullo_epi64(
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
        _mm256_set1_epi64x(
            static_cast<long long>(0x94d049bb133111ebull)));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), x);
}

#endif // HIRISE_SIMD_AVX512_COMPILED

/** Four draws of one tick across four lane keys; bit-identical to
 *  counterDrawKeyed on each lane in every tier. */
inline void
counterDraw4(const Word keys[4], Word tick, Word out[4])
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (avx512())
        return counterDraw4Avx512(keys, tick, out);
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return counterDraw4Avx2(keys, tick, out);
#endif
    counterDraw4Scalar(keys, tick, out);
}

} // namespace hirise::simd

#endif // HIRISE_COMMON_SIMD_HH
