/**
 * @file
 * Explicit SIMD kernels for the arbitration and batched-simulation
 * hot paths, with a scalar fallback that is always compiled and a
 * runtime-dispatched AVX2 tier.
 *
 * Build gating: the HIRISE_SIMD CMake option (ON by default) defines
 * HIRISE_SIMD_ENABLED; together with an x86-64 target that compiles
 * the AVX2 bodies (per-function `target("avx2")` attributes, so the
 * rest of the binary stays portable). At runtime activeTier() probes
 * __builtin_cpu_supports("avx2") once and caches the answer;
 * HIRISE_SIMD_FORCE_SCALAR=1 in the environment pins the scalar tier
 * for A/B runs on the same host.
 *
 * Determinism contract: every kernel computes the exact same bits as
 * its scalar counterpart (same word ops, same splitmix64 scramble),
 * so tier selection can never change a simulated outcome — only how
 * many lanes are processed per instruction. tests/bitvec_test.cc
 * compares the tiers word for word.
 */

#ifndef HIRISE_COMMON_SIMD_HH
#define HIRISE_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

#if defined(HIRISE_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HIRISE_SIMD_AVX2_COMPILED 1
#include <immintrin.h>
#endif

namespace hirise::simd {

using Word = std::uint64_t;

enum class Tier : std::uint8_t
{
    Scalar = 0,
    Avx2 = 1,
};

/** Highest tier this build + host supports; resolved once per process
 *  (cpuid probe + HIRISE_SIMD_FORCE_SCALAR env check, cached). */
Tier activeTier();

const char *tierName(Tier t);

/** Test hook: pin the dispatch tier (Tier::Avx2 is clamped to what
 *  the build/host supports). Not thread-safe against concurrent
 *  kernel calls; call it between runs only. */
void forceTier(Tier t);

inline bool
avx2()
{
    return activeTier() == Tier::Avx2;
}

// ---------------------------------------------------------------------
// Word-array kernels (BitVec storage: little-endian uint64 words)
// ---------------------------------------------------------------------

inline void
zeroWordsScalar(Word *dst, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = 0;
}

inline void
copyWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = src[k];
}

inline void
andWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] &= src[k];
}

inline void
orWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] |= src[k];
}

inline void
andNotWordsScalar(Word *dst, const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] &= ~src[k];
}

inline bool
anyWordScalar(const Word *src, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        if (src[k])
            return true;
    return false;
}

/**
 * Matrix-arbiter dominance test: does any requestor other than the
 * candidate itself outrank it? True iff (req & ~row) has a set bit
 * besides the candidate's own (word @p self_word, mask @p self_mask).
 * This is the inner loop of arb::MatrixArbiter::pick().
 */
inline bool
losingAnyScalar(const Word *req, const Word *row, std::size_t n,
                std::size_t self_word, Word self_mask)
{
    for (std::size_t w = 0; w < n; ++w) {
        Word losing = req[w] & ~row[w];
        if (w == self_word)
            losing &= ~self_mask;
        if (losing)
            return true;
    }
    return false;
}

#ifdef HIRISE_SIMD_AVX2_COMPILED

__attribute__((target("avx2"))) inline void
zeroWordsAvx2(Word *dst, std::size_t n)
{
    std::size_t k = 0;
    const __m256i z = _mm256_setzero_si256();
    for (; k + 4 <= n; k += 4)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k), z);
    for (; k < n; ++k)
        dst[k] = 0;
}

__attribute__((target("avx2"))) inline void
copyWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + k),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + k)));
    }
    for (; k < n; ++k)
        dst[k] = src[k];
}

__attribute__((target("avx2"))) inline void
andWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + k));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_and_si256(d, s));
    }
    for (; k < n; ++k)
        dst[k] &= src[k];
}

__attribute__((target("avx2"))) inline void
orWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + k));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_or_si256(d, s));
    }
    for (; k < n; ++k)
        dst[k] |= src[k];
}

__attribute__((target("avx2"))) inline void
andNotWordsAvx2(Word *dst, const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + k));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        // vpandn computes ~a & b, so src is the first operand.
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_andnot_si256(s, d));
    }
    for (; k < n; ++k)
        dst[k] &= ~src[k];
}

__attribute__((target("avx2"))) inline bool
anyWordAvx2(const Word *src, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        if (!_mm256_testz_si256(s, s))
            return true;
    }
    for (; k < n; ++k)
        if (src[k])
            return true;
    return false;
}

__attribute__((target("avx2"))) inline bool
losingAnyAvx2(const Word *req, const Word *row, std::size_t n,
              std::size_t self_word, Word self_mask)
{
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(req + w));
        __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + w));
        __m256i losing = _mm256_andnot_si256(p, r);
        if (self_word >= w && self_word < w + 4) {
            alignas(32) Word m[4] = {~Word(0), ~Word(0), ~Word(0),
                                     ~Word(0)};
            m[self_word - w] = ~self_mask;
            losing = _mm256_and_si256(
                losing,
                _mm256_load_si256(reinterpret_cast<const __m256i *>(m)));
        }
        if (!_mm256_testz_si256(losing, losing))
            return true;
    }
    for (; w < n; ++w) {
        Word losing = req[w] & ~row[w];
        if (w == self_word)
            losing &= ~self_mask;
        if (losing)
            return true;
    }
    return false;
}

#endif // HIRISE_SIMD_AVX2_COMPILED

// Dispatching fronts. The tier test is one cached load + predictable
// branch; callers in per-candidate loops should hoist simd::avx2()
// themselves and call the *Scalar/*Avx2 variants directly.

inline void
zeroWords(Word *dst, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return zeroWordsAvx2(dst, n);
#endif
    zeroWordsScalar(dst, n);
}

inline void
copyWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return copyWordsAvx2(dst, src, n);
#endif
    copyWordsScalar(dst, src, n);
}

inline void
andWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return andWordsAvx2(dst, src, n);
#endif
    andWordsScalar(dst, src, n);
}

inline void
orWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return orWordsAvx2(dst, src, n);
#endif
    orWordsScalar(dst, src, n);
}

inline void
andNotWords(Word *dst, const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return andNotWordsAvx2(dst, src, n);
#endif
    andNotWordsScalar(dst, src, n);
}

inline bool
anyWord(const Word *src, std::size_t n)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return anyWordAvx2(src, n);
#endif
    return anyWordScalar(src, n);
}

inline bool
losingAny(const Word *req, const Word *row, std::size_t n,
          std::size_t self_word, Word self_mask)
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return losingAnyAvx2(req, row, n, self_word, self_mask);
#endif
    return losingAnyScalar(req, row, n, self_word, self_mask);
}

// ---------------------------------------------------------------------
// Batched-transpose counter draws: the same tick evaluated across four
// replica-lane stream keys at once (sim/batch_sim.cc injection plane).
// ---------------------------------------------------------------------

/** splitmix64 increment; counterDrawKeyed's per-tick multiplier is the
 *  same constant (common/random.hh). */
constexpr Word kSplitmixGolden = 0x9e3779b97f4a7c15ull;

/** Scalar reference: out[j] = counterDrawKeyed(keys[j], tick). */
inline void
counterDraw4Scalar(const Word keys[4], Word tick, Word out[4])
{
    const Word add = kSplitmixGolden * tick + kSplitmixGolden;
    for (int j = 0; j < 4; ++j) {
        Word x = keys[j] + add; // == splitmix64(key + golden*tick)
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        out[j] = x ^ (x >> 31);
    }
}

#ifdef HIRISE_SIMD_AVX2_COMPILED

/** 4x64-bit multiply by a broadcast constant; AVX2 has no 64-bit
 *  vpmullq (that is AVX-512DQ), so synthesize it from 32x32 partial
 *  products. */
__attribute__((target("avx2"))) inline __m256i
mullo64Avx2(__m256i a, __m256i b)
{
    __m256i lo = _mm256_mul_epu32(a, b);
    __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline void
counterDraw4Avx2(const Word keys[4], Word tick, Word out[4])
{
    const Word add = kSplitmixGolden * tick + kSplitmixGolden;
    __m256i x = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(keys)),
        _mm256_set1_epi64x(static_cast<long long>(add)));
    x = mullo64Avx2(
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
        _mm256_set1_epi64x(
            static_cast<long long>(0xbf58476d1ce4e5b9ull)));
    x = mullo64Avx2(
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
        _mm256_set1_epi64x(
            static_cast<long long>(0x94d049bb133111ebull)));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), x);
}

#endif // HIRISE_SIMD_AVX2_COMPILED

/** Four draws of one tick across four lane keys; bit-identical to
 *  counterDrawKeyed on each lane in either tier. */
inline void
counterDraw4(const Word keys[4], Word tick, Word out[4])
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (avx2())
        return counterDraw4Avx2(keys, tick, out);
#endif
    counterDraw4Scalar(keys, tick, out);
}

} // namespace hirise::simd

#endif // HIRISE_COMMON_SIMD_HH
