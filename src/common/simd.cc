#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hirise::simd {

namespace {

/** Highest tier the build and the host CPU can run, before any
 *  environment pinning. */
Tier
hwTier()
{
#ifdef HIRISE_SIMD_AVX512_COMPILED
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl"))
        return Tier::Avx512;
#endif
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (__builtin_cpu_supports("avx2"))
        return Tier::Avx2;
#endif
    return Tier::Scalar;
}

Tier
clampTier(Tier t)
{
    const Tier hw = hwTier();
    return t <= hw ? t : hw;
}

Tier
probeTier()
{
    // Legacy pin: HIRISE_SIMD_FORCE_SCALAR=1 predates the named knob
    // and always wins (the forced-scalar CI job sets it).
    if (const char *e = std::getenv("HIRISE_SIMD_FORCE_SCALAR");
        e != nullptr && e[0] == '1')
        return Tier::Scalar;
    if (const char *e = std::getenv("HIRISE_SIMD_FORCE_TIER");
        e != nullptr) {
        if (std::strcmp(e, "scalar") == 0)
            return Tier::Scalar;
        if (std::strcmp(e, "avx2") == 0)
            return clampTier(Tier::Avx2);
        if (std::strcmp(e, "avx512") == 0)
            return clampTier(Tier::Avx512);
        // Unknown value: fall through to the probe rather than
        // silently running a tier the user did not name.
    }
    return hwTier();
}

std::atomic<Tier> &
tierSlot()
{
    static std::atomic<Tier> t{probeTier()};
    return t;
}

} // namespace

Tier
activeTier()
{
    return tierSlot().load(std::memory_order_relaxed);
}

void
forceTier(Tier t)
{
    // Clamp to what build + host + environment can actually run, so a
    // test asking for avx512 on an avx2 host degrades instead of
    // faulting (and HIRISE_SIMD_FORCE_SCALAR still pins everything).
    tierSlot().store(t <= probeTier() ? t : probeTier(),
                     std::memory_order_relaxed);
}

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Scalar: return "scalar";
      case Tier::Avx2: return "avx2";
      case Tier::Avx512: return "avx512";
    }
    return "?";
}

} // namespace hirise::simd
