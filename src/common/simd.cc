#include "common/simd.hh"

#include <atomic>
#include <cstdlib>

namespace hirise::simd {

namespace {

Tier
probeTier()
{
#ifdef HIRISE_SIMD_AVX2_COMPILED
    if (const char *e = std::getenv("HIRISE_SIMD_FORCE_SCALAR");
        e != nullptr && e[0] == '1')
        return Tier::Scalar;
    if (__builtin_cpu_supports("avx2"))
        return Tier::Avx2;
#endif
    return Tier::Scalar;
}

std::atomic<Tier> &
tierSlot()
{
    static std::atomic<Tier> t{probeTier()};
    return t;
}

} // namespace

Tier
activeTier()
{
    return tierSlot().load(std::memory_order_relaxed);
}

void
forceTier(Tier t)
{
    if (t == Tier::Avx2 && probeTier() != Tier::Avx2)
        t = Tier::Scalar; // clamp to what build + host can run
    tierSlot().store(t, std::memory_order_relaxed);
}

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Scalar: return "scalar";
      case Tier::Avx2: return "avx2";
    }
    return "?";
}

} // namespace hirise::simd
