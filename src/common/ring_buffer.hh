/**
 * @file
 * Growable circular FIFO used for the simulator's packet and flit
 * queues. std::deque allocates and frees a storage block every ~few
 * dozen push/pop pairs as the occupied window crosses block
 * boundaries, which keeps a nominally steady-state simulation loop on
 * the heap; a ring buffer reaches its high-water capacity once and
 * never allocates again.
 */

#ifndef HIRISE_COMMON_RING_BUFFER_HH
#define HIRISE_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hirise {

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;
    explicit RingBuffer(std::size_t initial_capacity)
    {
        reserve(initial_capacity);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    /** Grow storage to hold at least @p n elements (power of two). */
    void
    reserve(std::size_t n)
    {
        if (n <= buf_.size())
            return;
        std::size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < n)
            cap *= 2;
        regrow(cap);
    }

    void
    push_back(const T &v)
    {
        if (size_ == buf_.size())
            regrow(buf_.empty() ? 8 : buf_.size() * 2);
        buf_[(head_ + size_) & (buf_.size() - 1)] = v;
        ++size_;
    }

    T &
    front()
    {
        sim_assert(size_ > 0, "front() of empty ring");
        return buf_[head_];
    }
    const T &
    front() const
    {
        sim_assert(size_ > 0, "front() of empty ring");
        return buf_[head_];
    }

    void
    pop_front()
    {
        sim_assert(size_ > 0, "pop_front() of empty ring");
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    /** Element @p i positions behind the front (0 == front()). */
    const T &
    operator[](std::size_t i) const
    {
        sim_assert(i < size_, "ring index %zu out of range", i);
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    regrow(std::size_t cap)
    {
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_; //!< capacity; always a power of two when set
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace hirise

#endif // HIRISE_COMMON_RING_BUFFER_HH
