/**
 * @file
 * Word-parallel bitset for the arbitration hot path. Unlike
 * std::vector<bool>, the word array is directly addressable, so
 * request masks combine with priority rows via uint64 AND/ANDNOT and
 * winners are located with count-trailing-zeros instead of per-bit
 * loads. Capacity is fixed at resize() time; all per-bit and per-word
 * operations are allocation-free, which is what keeps the simulator's
 * steady-state cycle loop off the heap.
 */

#ifndef HIRISE_COMMON_BITVEC_HH
#define HIRISE_COMMON_BITVEC_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/snapshot.hh"

namespace hirise {

class BitVec
{
  public:
    using Word = std::uint64_t;
    static constexpr std::uint32_t kWordBits = 64;
    static constexpr std::uint32_t kNpos = ~0u;

    BitVec() = default;
    explicit BitVec(std::uint32_t nbits) { resize(nbits); }

    /** Set the bit capacity; all bits become zero. The only member
     *  that may allocate — call it once at construction time. */
    void
    resize(std::uint32_t nbits)
    {
        nbits_ = nbits;
        w_.assign((nbits + kWordBits - 1) / kWordBits, 0);
    }

    std::uint32_t size() const { return nbits_; }
    std::uint32_t numWords() const
    {
        return static_cast<std::uint32_t>(w_.size());
    }

    bool
    operator[](std::uint32_t i) const
    {
        return (w_[i / kWordBits] >> (i % kWordBits)) & 1u;
    }
    bool test(std::uint32_t i) const { return (*this)[i]; }

    void
    set(std::uint32_t i)
    {
        sim_assert(i < nbits_, "bit %u out of range", i);
        w_[i / kWordBits] |= Word(1) << (i % kWordBits);
    }
    void
    reset(std::uint32_t i)
    {
        sim_assert(i < nbits_, "bit %u out of range", i);
        w_[i / kWordBits] &= ~(Word(1) << (i % kWordBits));
    }
    void
    assign(std::uint32_t i, bool v)
    {
        v ? set(i) : reset(i);
    }

    /** Zero every bit, keeping the capacity. */
    void
    clear()
    {
        simd::zeroWords(w_.data(), w_.size());
    }

    /** Set every bit in [0, size()). */
    void
    fill()
    {
        for (auto &w : w_)
            w = ~Word(0);
        trimTail();
    }

    void
    save(snap::Writer &w) const
    {
        w.u32(nbits_);
        w.vec(w_);
    }

    void
    load(snap::Reader &r)
    {
        std::uint32_t nbits = r.u32();
        sim_assert(nbits == nbits_,
                   "bitvec snapshot has %u bits, expected %u", nbits,
                   nbits_);
        r.vec(w_);
    }

    bool
    any() const
    {
        return simd::anyWord(w_.data(), w_.size());
    }
    bool none() const { return !any(); }

    std::uint32_t
    count() const
    {
        std::uint32_t n = 0;
        for (Word w : w_)
            n += static_cast<std::uint32_t>(std::popcount(w));
        return n;
    }

    /** Lowest set bit, or kNpos. */
    std::uint32_t
    firstSet() const
    {
        for (std::uint32_t k = 0; k < w_.size(); ++k) {
            if (w_[k])
                return k * kWordBits +
                       static_cast<std::uint32_t>(
                           std::countr_zero(w_[k]));
        }
        return kNpos;
    }

    /** Lowest set bit strictly above @p i, or kNpos. */
    std::uint32_t
    nextSet(std::uint32_t i) const
    {
        std::uint32_t k = (i + 1) / kWordBits;
        if (k >= w_.size())
            return kNpos;
        Word w = w_[k] & (~Word(0) << ((i + 1) % kWordBits));
        for (;;) {
            if (w)
                return k * kWordBits +
                       static_cast<std::uint32_t>(std::countr_zero(w));
            if (++k >= w_.size())
                return kNpos;
            w = w_[k];
        }
    }

    /** Call @p fn(index) for each set bit in ascending order. */
    template <typename Fn>
    void
    forEachSet(Fn fn) const
    {
        for (std::uint32_t k = 0; k < w_.size(); ++k) {
            Word w = w_[k];
            while (w) {
                fn(k * kWordBits +
                   static_cast<std::uint32_t>(std::countr_zero(w)));
                w &= w - 1;
            }
        }
    }

    // -- word-parallel combination (operands must match in size) ------
    // Routed through the simd kernels (common/simd.hh): the fabric
    // phase-1 column binning and phase-2 contended-output walks are
    // built from exactly these ops plus clear()/copyFrom().
    BitVec &
    operator&=(const BitVec &o)
    {
        sim_assert(o.nbits_ == nbits_, "size mismatch");
        simd::andWords(w_.data(), o.w_.data(), w_.size());
        return *this;
    }
    BitVec &
    operator|=(const BitVec &o)
    {
        sim_assert(o.nbits_ == nbits_, "size mismatch");
        simd::orWords(w_.data(), o.w_.data(), w_.size());
        return *this;
    }
    /** this &= ~o */
    BitVec &
    andNot(const BitVec &o)
    {
        sim_assert(o.nbits_ == nbits_, "size mismatch");
        simd::andNotWords(w_.data(), o.w_.data(), w_.size());
        return *this;
    }

    bool
    intersects(const BitVec &o) const
    {
        sim_assert(o.nbits_ == nbits_, "size mismatch");
        for (std::size_t k = 0; k < w_.size(); ++k)
            if (w_[k] & o.w_[k])
                return true;
        return false;
    }

    bool
    operator==(const BitVec &o) const
    {
        return nbits_ == o.nbits_ && w_ == o.w_;
    }

    /** Copy bit values from @p o without changing capacity. */
    void
    copyFrom(const BitVec &o)
    {
        sim_assert(o.nbits_ == nbits_, "size mismatch");
        simd::copyWords(w_.data(), o.w_.data(), w_.size());
    }

    const Word *words() const { return w_.data(); }
    Word *words() { return w_.data(); }

  private:
    void
    trimTail()
    {
        std::uint32_t tail = nbits_ % kWordBits;
        if (tail && !w_.empty())
            w_.back() &= (Word(1) << tail) - 1;
    }

    std::uint32_t nbits_ = 0;
    std::vector<Word> w_;
};

/**
 * Non-owning bit-plane view over externally managed words: one
 * replica's lane inside a batched structure-of-arrays buffer
 * (sim/batch_sim.cc keeps R replica planes contiguous and hands out
 * one BitSpan per replica). Mirrors the BitVec per-bit interface; the
 * caller owns word storage and lifetime, and planes of one buffer
 * must not overlap.
 */
class BitSpan
{
  public:
    using Word = BitVec::Word;
    static constexpr std::uint32_t kWordBits = BitVec::kWordBits;

    BitSpan(Word *words, std::uint32_t nbits)
        : w_(words), nbits_(nbits),
          nwords_((nbits + kWordBits - 1) / kWordBits)
    {}

    std::uint32_t size() const { return nbits_; }
    std::uint32_t numWords() const { return nwords_; }
    const Word *words() const { return w_; }
    Word *words() { return w_; }

    bool
    test(std::uint32_t i) const
    {
        return (w_[i / kWordBits] >> (i % kWordBits)) & 1u;
    }

    void
    set(std::uint32_t i)
    {
        sim_assert(i < nbits_, "bit %u out of range", i);
        w_[i / kWordBits] |= Word(1) << (i % kWordBits);
    }
    void
    reset(std::uint32_t i)
    {
        sim_assert(i < nbits_, "bit %u out of range", i);
        w_[i / kWordBits] &= ~(Word(1) << (i % kWordBits));
    }

    void clear() { simd::zeroWords(w_, nwords_); }

    /** Set every bit in [0, size()), zeroing the word tail. */
    void
    fill()
    {
        for (std::uint32_t k = 0; k < nwords_; ++k)
            w_[k] = ~Word(0);
        std::uint32_t tail = nbits_ % kWordBits;
        if (tail && nwords_)
            w_[nwords_ - 1] &= (Word(1) << tail) - 1;
    }

    bool any() const { return simd::anyWord(w_, nwords_); }
    bool none() const { return !any(); }

    /** Call @p fn(index) for each set bit in ascending order. Safe to
     *  reset the current bit inside @p fn (iteration copies words). */
    template <typename Fn>
    void
    forEachSet(Fn fn) const
    {
        for (std::uint32_t k = 0; k < nwords_; ++k) {
            Word w = w_[k];
            while (w) {
                fn(k * kWordBits +
                   static_cast<std::uint32_t>(std::countr_zero(w)));
                w &= w - 1;
            }
        }
    }

  private:
    Word *w_;
    std::uint32_t nbits_;
    std::uint32_t nwords_;
};

} // namespace hirise

#endif // HIRISE_COMMON_BITVEC_HH
