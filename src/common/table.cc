#include "common/table.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace hirise {

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

void
Table::print() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i >= widths.size())
                widths.resize(i + 1, 0);
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::printf("\n== %s ==\n", title_.c_str());
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i]
                                                    : std::string();
            std::printf("%-*s  ", static_cast<int>(widths[i]), c.c_str());
        }
        std::printf("\n");
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &r : rows_)
        emit(r);
    std::fflush(stdout);
}

std::string
Table::csv() const
{
    auto join = [](const std::vector<std::string> &cells) {
        std::string out;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ',';
            out += cells[i];
        }
        out += '\n';
        return out;
    };
    std::string out = join(header_);
    for (const auto &r : rows_)
        out += join(r);
    return out;
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot open %s for writing", path.c_str());
    f << csv();
}

} // namespace hirise
