#include "common/spec.hh"

namespace hirise {

const char *
toString(Topology t)
{
    switch (t) {
      case Topology::Flat2D: return "2D";
      case Topology::Folded3D: return "3D-Folded";
      case Topology::HiRise: return "HiRise";
    }
    return "?";
}

const char *
toString(ArbScheme a)
{
    switch (a) {
      case ArbScheme::Lrg: return "LRG";
      case ArbScheme::LayerLrg: return "L-2-L LRG";
      case ArbScheme::Wlrg: return "WLRG";
      case ArbScheme::Clrg: return "CLRG";
      case ArbScheme::Islip: return "iSLIP";
      case ArbScheme::Pim: return "PIM";
      case ArbScheme::Wavefront: return "WF";
    }
    return "?";
}

const char *
toString(ChannelAlloc a)
{
    switch (a) {
      case ChannelAlloc::InputBinned: return "input-binned";
      case ChannelAlloc::OutputBinned: return "output-binned";
      case ChannelAlloc::Priority: return "priority";
    }
    return "?";
}

std::string
SwitchSpec::name() const
{
    std::string out = toString(topo);
    out += " r" + std::to_string(radix);
    if (topo != Topology::Flat2D) {
        out += " L" + std::to_string(layers);
        if (topo == Topology::HiRise)
            out += " c" + std::to_string(channels);
    }
    out += std::string(" ") + toString(arb);
    if (arb == ArbScheme::Islip || arb == ArbScheme::Pim)
        out += "/" + std::to_string(schedIters);
    return out;
}

/** True for the single-stage crossbar schedulers Flat2D supports. */
static bool
isFlatScheme(ArbScheme a)
{
    return a == ArbScheme::Lrg || a == ArbScheme::Islip ||
           a == ArbScheme::Pim || a == ArbScheme::Wavefront;
}

void
SwitchSpec::validate() const
{
    if (radix < 2)
        fatal("radix must be >= 2 (got %u)", radix);
    if (flitBits == 0)
        fatal("flitBits must be > 0");
    if (schedIters < 1)
        fatal("schedulers need >= 1 iteration per cycle");
    if (topo == Topology::Flat2D) {
        if (!isFlatScheme(arb))
            fatal("a flat 2D switch only supports the single-stage "
                  "crossbar schedulers (LRG, iSLIP, PIM, WF)");
        return;
    }
    if (layers < 2)
        fatal("3D topologies need >= 2 layers (got %u)", layers);
    if (topo == Topology::Folded3D && arb != ArbScheme::Lrg)
        fatal("the folded 3D switch uses flat LRG arbitration");
    if (topo == Topology::HiRise) {
        if (channels < 1)
            fatal("channel multiplicity must be >= 1");
        if (isFlatScheme(arb))
            fatal("HiRise needs a two-phase scheme "
                  "(LayerLrg, Wlrg, or Clrg)");
        std::uint32_t ppl = portsPerLayer();
        if (alloc == ChannelAlloc::InputBinned && channels > ppl)
            fatal("more channels (%u) than inputs per layer (%u)",
                  channels, ppl);
        if (clrgMaxCount < 1)
            fatal("CLRG needs at least 2 classes (maxCount >= 1)");
    }
}

} // namespace hirise
