/**
 * @file
 * Parallel map over the persistent work-stealing pool (see
 * thread_pool.hh). Formerly a fork-join helper that spawned and
 * joined fresh std::threads per call; at campaign scale (thousands of
 * independent simulation runs per figure suite) that start-up cost
 * dominated, so parallelMap is now a thin wrapper that submits one
 * task per item to a shared pool and helps execute tasks while
 * waiting. Results land in index-order slots, so output is
 * bit-identical for any thread count or execution order.
 */

#ifndef HIRISE_COMMON_PARALLEL_HH
#define HIRISE_COMMON_PARALLEL_HH

#include <exception>
#include <future>
#include <type_traits>
#include <vector>

#include "common/thread_pool.hh"

namespace hirise {

/**
 * Apply @p fn to every element of @p items through @p pool (null =
 * the global pool) and return the results in order. @p fn must be
 * safe to call concurrently on distinct items; exceptions thrown by
 * any invocation are rethrown (the earliest item's first) after every
 * task has finished. Pass @p max_threads = 1 to force a serial
 * in-place loop (identical results, no pool traffic).
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn,
            unsigned max_threads = 0, ThreadPool *pool = nullptr)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    using R = std::invoke_result_t<Fn, const T &>;
    std::vector<R> out(items.size());
    if (items.empty())
        return out;

    if (max_threads == 1 || items.size() == 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            out[i] = fn(items[i]);
        return out;
    }

    ThreadPool &p = pool ? *pool : ThreadPool::global();
    std::vector<std::future<void>> futs;
    futs.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        futs.push_back(
            p.submit([&items, &out, &fn, i] { out[i] = fn(items[i]); }));
    }

    // Wait on every future (helping, so nested parallelMap calls on
    // an exhausted pool still make progress) and surface the lowest-
    // index failure once all tasks have quiesced.
    std::exception_ptr first_error;
    for (auto &f : futs) {
        try {
            waitHelping(p, f);
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return out;
}

} // namespace hirise

#endif // HIRISE_COMMON_PARALLEL_HH
