/**
 * @file
 * Minimal fork-join helper for embarrassingly parallel experiment
 * sweeps (each simulation run is independent and self-seeded, so load
 * sweeps and seed sweeps parallelize trivially).
 */

#ifndef HIRISE_COMMON_PARALLEL_HH
#define HIRISE_COMMON_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hirise {

/**
 * Apply @p fn to every element of @p items on up to @p max_threads
 * worker threads (0 = hardware concurrency) and return the results in
 * order. @p fn must be safe to call concurrently on distinct items.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn,
            unsigned max_threads = 0)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    using R = std::invoke_result_t<Fn, const T &>;
    std::vector<R> out(items.size());
    if (items.empty())
        return out;

    unsigned hw = std::thread::hardware_concurrency();
    unsigned n_threads = max_threads ? max_threads : (hw ? hw : 1);
    n_threads = std::min<unsigned>(
        n_threads, static_cast<unsigned>(items.size()));
    if (n_threads <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            out[i] = fn(items[i]);
        return out;
    }

    // An exception escaping a worker thread would std::terminate the
    // process; capture the first one and rethrow it on the caller's
    // thread after every worker has joined. Workers drain the item
    // counter once a failure is recorded so the join is prompt.
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= items.size())
                return;
            try {
                out[i] = fn(items[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lk(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                next.store(items.size());
                return;
            }
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return out;
}

} // namespace hirise

#endif // HIRISE_COMMON_PARALLEL_HH
