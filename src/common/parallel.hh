/**
 * @file
 * Minimal fork-join helper for embarrassingly parallel experiment
 * sweeps (each simulation run is independent and self-seeded, so load
 * sweeps and seed sweeps parallelize trivially).
 */

#ifndef HIRISE_COMMON_PARALLEL_HH
#define HIRISE_COMMON_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

namespace hirise {

/**
 * Apply @p fn to every element of @p items on up to @p max_threads
 * worker threads (0 = hardware concurrency) and return the results in
 * order. @p fn must be safe to call concurrently on distinct items.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn,
            unsigned max_threads = 0)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    using R = std::invoke_result_t<Fn, const T &>;
    std::vector<R> out(items.size());
    if (items.empty())
        return out;

    unsigned hw = std::thread::hardware_concurrency();
    unsigned n_threads = max_threads ? max_threads : (hw ? hw : 1);
    n_threads = std::min<unsigned>(
        n_threads, static_cast<unsigned>(items.size()));
    if (n_threads <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            out[i] = fn(items[i]);
        return out;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= items.size())
                return;
            out[i] = fn(items[i]);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    return out;
}

} // namespace hirise

#endif // HIRISE_COMMON_PARALLEL_HH
