#include "cmp/graph_transport.hh"

#include "common/logging.hh"

namespace hirise::cmp {

GraphTransport::GraphTransport(std::shared_ptr<noc::Topology> topo,
                               DeliverFn deliver,
                               std::uint32_t fifo_pkts,
                               std::uint64_t seed)
    : net_(std::move(topo), 4, fifo_pkts, seed),
      deliver_(std::move(deliver))
{
    net_.setDeliverFn([this](std::uint64_t tag) {
        auto it = inFlight_.find(tag);
        sim_assert(it != inFlight_.end(), "unknown delivery tag");
        Message m = it->second;
        inFlight_.erase(it);
        ++delivered_;
        deliver_(m);
    });
}

void
GraphTransport::send(const Message &m)
{
    std::uint64_t tag = nextTag_++;
    inFlight_.emplace(tag, m);
    net_.sendTagged(m.srcTile, m.dstTile, m.lenFlits(), tag);
}

void
GraphTransport::step()
{
    net_.step();
}

} // namespace hirise::cmp
