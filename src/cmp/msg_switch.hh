/**
 * @file
 * Closed-loop message transport over one switch fabric: the central
 * interconnect of the 64-core system. Same timing contract as the
 * open-loop NetworkSim (connection-held, one arbitration cycle, one
 * flit per data cycle), but fed by tile events and delivering whole
 * messages to a callback.
 */

#ifndef HIRISE_CMP_MSG_SWITCH_HH
#define HIRISE_CMP_MSG_SWITCH_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cmp/transport.hh"
#include "fabric/fabric.hh"

namespace hirise::cmp {

class MsgSwitch : public Transport
{
  public:
    MsgSwitch(const SwitchSpec &spec, std::uint32_t num_vcs,
              DeliverFn deliver);

    /** Enqueue @p m at its source tile's input port. */
    void send(const Message &m) override;

    /** Advance one switch cycle. */
    void step() override;

    std::uint64_t flitsDelivered() const { return flitsDelivered_; }
    std::uint64_t
    messagesDelivered() const override
    {
        return delivered_;
    }
    std::uint64_t backlogMessages() const;

    /** Mean over time of the total queued messages (congestion). */
    double avgBacklog() const
    {
        return cycles_ ? backlogAccum_ / double(cycles_) : 0.0;
    }

  private:
    struct Connection
    {
        bool active = false;
        bool justGranted = false;
        std::uint32_t vc = 0;
        std::uint32_t flitsLeft = 0;
        std::uint32_t output = 0;
    };

    struct Port
    {
        std::vector<std::deque<Message>> vcs;
        Connection conn;
        std::uint32_t rr = 0;
    };

    SwitchSpec spec_;
    std::unique_ptr<fabric::Fabric> fabric_;
    DeliverFn deliver_;
    std::vector<Port> ports_;

    std::uint64_t delivered_ = 0;
    std::uint64_t flitsDelivered_ = 0;
    std::uint64_t cycles_ = 0;
    double backlogAccum_ = 0.0;
};

} // namespace hirise::cmp

#endif // HIRISE_CMP_MSG_SWITCH_HH
