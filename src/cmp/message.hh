/**
 * @file
 * Message types exchanged over the central switch in the 64-core
 * system (paper section VI-D): cache requests (1 flit) and data
 * responses (4 flits of 128 bits = one 64-byte cache block).
 */

#ifndef HIRISE_CMP_MESSAGE_HH
#define HIRISE_CMP_MESSAGE_HH

#include <cstdint>

namespace hirise::cmp {

enum class MsgType : std::uint8_t
{
    L2Request,  //!< core -> home L2 bank (control, 1 flit)
    L2Response, //!< L2 bank -> core (data, 4 flits)
    MemRequest, //!< L2 bank -> memory controller (control, 1 flit)
    MemResponse //!< memory controller -> L2 bank (data, 4 flits)
};

struct Message
{
    MsgType type = MsgType::L2Request;
    std::uint32_t srcTile = 0;
    std::uint32_t dstTile = 0;
    /** Tile of the core whose miss started this chain. */
    std::uint32_t requesterTile = 0;
    /** Home L2 bank tile of the accessed block. */
    std::uint32_t homeTile = 0;
    /** Core-local transaction id (MSHR slot). */
    std::uint32_t txnId = 0;
    /** Whether the original miss stalls the core until data returns. */
    bool blocking = false;
    /** Whether the L2 lookup for this chain hits (decided at miss
     *  generation time from the benchmark's L2 hit rate). */
    bool l2Hit = true;

    std::uint32_t
    lenFlits() const
    {
        return (type == MsgType::L2Response ||
                type == MsgType::MemResponse)
                   ? 4u
                   : 1u;
    }
};

} // namespace hirise::cmp

#endif // HIRISE_CMP_MESSAGE_HH
