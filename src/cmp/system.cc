#include "cmp/system.hh"

#include "common/logging.hh"

namespace hirise::cmp {

CmpSystem::CmpSystem(const TransportFactory &make_net,
                     const SystemConfig &cfg,
                     std::vector<Benchmark> per_core)
    : cfg_(cfg), rng_(cfg.seed), l2FreeAt_(cfg.numTiles, 0),
      mcFreeAt_(cfg.numMemCtrls, 0)
{
    net_ = make_net([this](const Message &m) { onMessage(m); });
    sim_assert(per_core.size() == cfg.numTiles,
               "one benchmark per tile required");
    cores_.resize(cfg.numTiles);
    for (std::uint32_t c = 0; c < cfg.numTiles; ++c) {
        cores_[c].bench = per_core[c];
        cores_[c].txns.resize(cfg.mshrsPerCore);
    }
}

CmpSystem::CmpSystem(const SwitchSpec &switch_spec,
                     const SystemConfig &cfg,
                     std::vector<Benchmark> per_core)
    : CmpSystem(
          [&](Transport::DeliverFn deliver) {
              sim_assert(switch_spec.radix == cfg.numTiles,
                         "switch radix must match tile count");
              return std::make_unique<MsgSwitch>(
                  switch_spec, cfg.switchVcs, std::move(deliver));
          },
          cfg, std::move(per_core))
{
}

std::uint32_t
CmpSystem::pickMcTile()
{
    std::uint32_t idx = static_cast<std::uint32_t>(
        rng_.below(cfg_.numMemCtrls));
    return idx * (cfg_.numTiles / cfg_.numMemCtrls);
}

void
CmpSystem::coreCycleOne(std::uint32_t c)
{
    Core &core = cores_[c];
    if (core.blockedOn != kNoTxn) {
        if (counting_)
            ++core.stallCycles;
        return;
    }
    double miss_prob = core.bench.mpki / 1000.0;
    for (std::uint32_t slot = 0; slot < cfg_.issueWidth; ++slot) {
        if (core.outstanding >= cfg_.maxOutstanding) {
            if (counting_)
                ++core.stallCycles;
            return; // window full: no further retire this cycle
        }
        if (counting_)
            ++core.retired;
        if (!rng_.bernoulli(miss_prob))
            continue;

        // L1 miss: allocate a transaction (MSHR slot).
        std::uint32_t id = kNoTxn;
        for (std::uint32_t t = 0; t < core.txns.size(); ++t) {
            if (!core.txns[t].inUse) {
                id = t;
                break;
            }
        }
        sim_assert(id != kNoTxn, "outstanding < MSHRs but none free");
        Txn &txn = core.txns[id];
        txn.inUse = true;
        txn.blocking = rng_.bernoulli(cfg_.blockingFraction);
        txn.l2Hit = rng_.bernoulli(core.bench.l2HitRate);
        txn.startCoreCycle = coreCycle_;
        ++core.outstanding;
        if (counting_)
            ++core.misses;

        Message m;
        m.type = MsgType::L2Request;
        m.requesterTile = c;
        m.txnId = id;
        m.blocking = txn.blocking;
        m.l2Hit = txn.l2Hit;
        m.homeTile = static_cast<std::uint32_t>(
            rng_.below(cfg_.numTiles));
        m.srcTile = c;
        m.dstTile = m.homeTile;
        if (m.homeTile == c)
            l2Access(m); // bank co-located with the requester
        else
            net_->send(m);

        if (txn.blocking) {
            core.blockedOn = id;
            return; // demand load: the core waits for the data
        }
    }
}

void
CmpSystem::stepCores()
{
    for (std::uint32_t c = 0; c < cfg_.numTiles; ++c)
        coreCycleOne(c);
}

void
CmpSystem::l2Access(const Message &m)
{
    std::uint32_t tile = m.homeTile;
    std::uint64_t start = std::max(l2FreeAt_[tile], coreCycle_);
    std::uint64_t done = start + cfg_.l2AccessCycles;
    l2FreeAt_[tile] = done;
    events_.push({done, Event::Kind::L2Done, m});
}

void
CmpSystem::l2Done(const Message &m)
{
    if (m.l2Hit) {
        l2Respond(m);
        return;
    }
    // L2 miss: go to a memory controller.
    Message req = m;
    req.type = MsgType::MemRequest;
    req.srcTile = m.homeTile;
    req.dstTile = pickMcTile();
    if (req.dstTile == req.srcTile)
        memAccess(req);
    else
        net_->send(req);
}

void
CmpSystem::memAccess(const Message &m)
{
    std::uint32_t mc_idx =
        m.dstTile / (cfg_.numTiles / cfg_.numMemCtrls);
    double cycles_per_ns = cfg_.coreFreqGhz;
    auto service = static_cast<std::uint64_t>(
        cfg_.memServiceNs * cycles_per_ns);
    auto latency = static_cast<std::uint64_t>(
        cfg_.memLatencyNs * cycles_per_ns);
    std::uint64_t start = std::max(mcFreeAt_[mc_idx], coreCycle_);
    mcFreeAt_[mc_idx] = start + service;
    events_.push({start + latency, Event::Kind::MemDone, m});
}

void
CmpSystem::memDone(const Message &m)
{
    // DRAM data arrives at the MC; ship it back to the home L2 bank.
    if (m.dstTile == m.homeTile) {
        l2Respond(m);
        return;
    }
    Message resp = m;
    resp.type = MsgType::MemResponse;
    resp.srcTile = m.dstTile; // the MC tile
    resp.dstTile = m.homeTile;
    net_->send(resp);
}

void
CmpSystem::l2Respond(const Message &m)
{
    // Data is at the home bank; return it to the requesting core.
    if (m.homeTile == m.requesterTile) {
        finishTxn(m);
        return;
    }
    Message resp = m;
    resp.type = MsgType::L2Response;
    resp.srcTile = m.homeTile;
    resp.dstTile = m.requesterTile;
    net_->send(resp);
}

void
CmpSystem::finishTxn(const Message &m)
{
    Core &core = cores_[m.requesterTile];
    Txn &txn = core.txns[m.txnId];
    sim_assert(txn.inUse, "completion for idle transaction");
    txn.inUse = false;
    sim_assert(core.outstanding > 0, "outstanding underflow");
    --core.outstanding;
    if (core.blockedOn == m.txnId)
        core.blockedOn = kNoTxn;
    if (counting_) {
        missLatAccumCycles_ += coreCycle_ - txn.startCoreCycle;
        ++missLatCount_;
    }
}

void
CmpSystem::onMessage(const Message &m)
{
    switch (m.type) {
      case MsgType::L2Request:
        l2Access(m);
        break;
      case MsgType::MemRequest:
        memAccess(m);
        break;
      case MsgType::MemResponse:
        l2Respond(m);
        break;
      case MsgType::L2Response:
        finishTxn(m);
        break;
    }
}

void
CmpSystem::dispatchEvents()
{
    while (!events_.empty() &&
           events_.top().coreCycle <= coreCycle_) {
        Event e = events_.top();
        events_.pop();
        if (e.kind == Event::Kind::L2Done)
            l2Done(e.msg);
        else
            memDone(e.msg);
    }
}

SystemResult
CmpSystem::run(std::uint64_t warmup, std::uint64_t core_cycles)
{
    double core_period_ps = 1000.0 / cfg_.coreFreqGhz;
    double switch_period_ps = 1000.0 / cfg_.switchFreqGhz;
    double t_core = 0.0, t_switch = 0.0;

    std::uint64_t end = warmup + core_cycles;
    std::uint64_t msg_base = 0;
    while (coreCycle_ < end) {
        if (coreCycle_ == warmup && !counting_) {
            counting_ = true;
            msg_base = net_->messagesDelivered();
        }
        if (t_core <= t_switch) {
            dispatchEvents();
            stepCores();
            ++coreCycle_;
            t_core += core_period_ps;
        } else {
            net_->step();
            t_switch += switch_period_ps;
        }
    }

    SystemResult r;
    r.cores.reserve(cores_.size());
    double cycles = static_cast<double>(core_cycles);
    for (const auto &c : cores_) {
        r.cores.push_back({c.retired, c.misses, c.stallCycles});
        r.totalIpc += static_cast<double>(c.retired) / cycles;
    }
    r.avgMissLatencyNs =
        missLatCount_
            ? (static_cast<double>(missLatAccumCycles_) /
               missLatCount_) /
                  cfg_.coreFreqGhz
            : 0.0;
    r.networkMessages = net_->messagesDelivered() - msg_base;
    return r;
}

} // namespace hirise::cmp
