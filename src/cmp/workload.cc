#include "cmp/workload.hh"

#include <cstring>

#include "common/logging.hh"

namespace hirise::cmp {

namespace {

/** Representative L1+L2 MPKI magnitudes and L2 hit rates for the
 *  benchmarks appearing in Table VI. */
const Benchmark kBenchmarks[] = {
    // SPEC CPU2006 / SPLASH / commercial, ordered alphabetically.
    {"Gems", 70.0, 0.35},    {"applu", 20.0, 0.55},
    {"art", 60.0, 0.70},     {"astar", 18.0, 0.50},
    {"barnes", 10.0, 0.60},  {"deal", 12.0, 0.60},
    {"gcc", 12.0, 0.55},     {"gromacs", 8.0, 0.65},
    {"hmmer", 4.0, 0.70},    {"lbm", 65.0, 0.30},
    {"leslie", 40.0, 0.55},  {"libquantum", 50.0, 0.25},
    {"mcf", 90.0, 0.30},     {"milc", 55.0, 0.30},
    {"namd", 4.0, 0.70},     {"ocean", 45.0, 0.40},
    {"omnet", 35.0, 0.60},   {"povray", 2.0, 0.75},
    {"sap", 30.0, 0.50},     {"sjas", 28.0, 0.60},
    {"sjbb", 25.0, 0.60},    {"sjeng", 5.0, 0.65},
    {"soplex", 50.0, 0.40},
    {"swim", 45.0, 0.50},    {"tonto", 6.0, 0.65},
    {"tpcw", 35.0, 0.55},    {"xalan", 22.0, 0.60},
};

} // namespace

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const auto &b : kBenchmarks) {
        if (name == b.name)
            return b;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

const std::vector<Mix> &
paperMixes()
{
    static const std::vector<Mix> mixes = {
        {"Mix1",
         {{"milc", 11}, {"applu", 11}, {"astar", 10}, {"sjeng", 11},
          {"tonto", 11}, {"hmmer", 10}},
         15.0},
        {"Mix2",
         {{"sjas", 11}, {"gcc", 11}, {"sjbb", 11}, {"gromacs", 11},
          {"sjeng", 10}, {"xalan", 10}},
         21.3},
        {"Mix3",
         {{"milc", 11}, {"libquantum", 10}, {"astar", 11},
          {"barnes", 11}, {"tpcw", 11}, {"povray", 10}},
         33.3},
        {"Mix4",
         {{"astar", 11}, {"swim", 11}, {"leslie", 10}, {"omnet", 10},
          {"sjas", 11}, {"art", 11}},
         38.4},
        {"Mix5",
         {{"mcf", 11}, {"ocean", 10}, {"gromacs", 10}, {"lbm", 11},
          {"deal", 11}, {"sap", 11}},
         52.2},
        {"Mix6",
         {{"mcf", 10}, {"namd", 11}, {"hmmer", 11}, {"tpcw", 11},
          {"omnet", 10}, {"swim", 11}},
         58.4},
        {"Mix7",
         {{"Gems", 10}, {"sjbb", 11}, {"sjas", 11}, {"mcf", 10},
          {"xalan", 11}, {"sap", 10}},
         66.9},
        {"Mix8",
         {{"milc", 11}, {"tpcw", 10}, {"Gems", 11}, {"mcf", 11},
          {"sjas", 11}, {"soplex", 10}},
         76.0},
    };
    return mixes;
}

std::vector<Benchmark>
assignMix(const Mix &mix, std::uint32_t cores)
{
    std::vector<Benchmark> out;
    out.reserve(cores);
    for (const auto &e : mix.entries) {
        const Benchmark &b = findBenchmark(e.benchmark);
        for (std::uint32_t i = 0; i < e.instances; ++i)
            out.push_back(b);
    }
    // The paper's Mix7 instance counts sum to 63 (an off-by-one in
    // Table VI); pad short mixes with their first benchmark.
    while (out.size() < cores)
        out.push_back(findBenchmark(mix.entries.front().benchmark));
    if (out.size() != cores)
        fatal("mix %s has %zu instances for %u cores", mix.name,
              out.size(), cores);

    // Interleave so same-benchmark instances spread across layers.
    std::vector<Benchmark> inter;
    inter.reserve(cores);
    std::uint32_t stride = 7; // coprime with 64
    for (std::uint32_t i = 0; i < cores; ++i)
        inter.push_back(out[(i * stride) % cores]);

    // Scale MPKI so the average matches the paper's column.
    double sum = 0.0;
    for (const auto &b : inter)
        sum += b.mpki;
    double scale = mix.paperAvgMpki / (sum / cores);
    for (auto &b : inter)
        b.mpki *= scale;
    return inter;
}

} // namespace hirise::cmp
