#include "cmp/msg_switch.hh"

namespace hirise::cmp {

MsgSwitch::MsgSwitch(const SwitchSpec &spec, std::uint32_t num_vcs,
                     DeliverFn deliver)
    : spec_(spec), fabric_(fabric::makeFabric(spec)),
      deliver_(std::move(deliver))
{
    ports_.resize(spec.radix);
    for (auto &p : ports_)
        p.vcs.resize(num_vcs);
}

void
MsgSwitch::send(const Message &m)
{
    sim_assert(m.srcTile < spec_.radix && m.dstTile < spec_.radix,
               "message endpoints out of range");
    sim_assert(m.srcTile != m.dstTile,
               "tile-local traffic must not enter the switch");
    Port &p = ports_[m.srcTile];
    // Join the shortest VC queue (stable for equal lengths).
    std::size_t best = 0;
    for (std::size_t v = 1; v < p.vcs.size(); ++v) {
        if (p.vcs[v].size() < p.vcs[best].size())
            best = v;
    }
    p.vcs[best].push_back(m);
}

std::uint64_t
MsgSwitch::backlogMessages() const
{
    std::uint64_t n = 0;
    for (const auto &p : ports_)
        for (const auto &vc : p.vcs)
            n += vc.size();
    return n;
}

void
MsgSwitch::step()
{
    const std::uint32_t n = spec_.radix;

    // Arbitration for idle ports.
    std::vector<std::uint32_t> req(n, fabric::kNoRequest);
    std::vector<std::uint32_t> cand(n, ~0u);
    for (std::uint32_t i = 0; i < n; ++i) {
        Port &p = ports_[i];
        if (p.conn.active)
            continue;
        const std::uint32_t vcs = static_cast<std::uint32_t>(
            p.vcs.size());
        for (std::uint32_t k = 0; k < vcs; ++k) {
            std::uint32_t v = (p.rr + k) % vcs;
            if (p.vcs[v].empty())
                continue;
            std::uint32_t dst = p.vcs[v].front().dstTile;
            if (fabric_->outputBusy(dst))
                continue;
            cand[i] = v;
            req[i] = dst;
            p.rr = (v + 1) % vcs;
            break;
        }
    }
    const auto &grant = fabric_->arbitrate(req);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!grant[i])
            continue;
        Port &p = ports_[i];
        p.conn.active = true;
        p.conn.justGranted = true;
        p.conn.vc = cand[i];
        p.conn.output = req[i];
        p.conn.flitsLeft = p.vcs[cand[i]].front().lenFlits();
    }

    // Data transfer for connections granted in earlier cycles.
    for (std::uint32_t i = 0; i < n; ++i) {
        Port &p = ports_[i];
        if (!p.conn.active)
            continue;
        if (p.conn.justGranted) {
            p.conn.justGranted = false;
            continue;
        }
        ++flitsDelivered_;
        if (--p.conn.flitsLeft == 0) {
            Message m = p.vcs[p.conn.vc].front();
            p.vcs[p.conn.vc].pop_front();
            fabric_->release(i, p.conn.output);
            p.conn.active = false;
            ++delivered_;
            deliver_(m);
        }
    }

    ++cycles_;
    backlogAccum_ += static_cast<double>(backlogMessages());
}

} // namespace hirise::cmp
