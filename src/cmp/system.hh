/**
 * @file
 * The 64-core single-switch system of paper section VI-D / Table III:
 * 2-way cores at 2 GHz, private L1s (misses modeled), 64 shared L2
 * banks (6-cycle access), 8 memory controllers (80 ns), 32 MSHRs, all
 * connected by one central switch running in its own clock domain at
 * the frequency given by the physical model.
 */

#ifndef HIRISE_CMP_SYSTEM_HH
#define HIRISE_CMP_SYSTEM_HH

#include <queue>
#include <vector>

#include "cmp/msg_switch.hh"
#include "cmp/transport.hh"
#include "cmp/workload.hh"
#include "common/random.hh"
#include "common/spec.hh"

namespace hirise::cmp {

/** Table III parameters plus core-model knobs. */
struct SystemConfig
{
    std::uint32_t numTiles = 64;
    std::uint32_t numMemCtrls = 8;
    double coreFreqGhz = 2.0;
    double switchFreqGhz = 2.0; //!< from the physical model
    std::uint32_t issueWidth = 2;
    std::uint32_t l2AccessCycles = 6;   //!< core cycles
    double memLatencyNs = 80.0;
    double memServiceNs = 1.0;          //!< 64 B over 4 DDR channels @16 GB/s
    std::uint32_t mshrsPerCore = 32;
    /** Outstanding misses a core tolerates before stalling (limited
     *  by the 2-way out-of-order window). */
    std::uint32_t maxOutstanding = 16;
    /** Probability a miss is a demand load the core must wait on. */
    double blockingFraction = 0.05;
    std::uint32_t switchVcs = 4;
    std::uint64_t seed = 1;
};

/** Per-core results. */
struct CoreStats
{
    std::uint64_t retired = 0;
    std::uint64_t misses = 0;
    std::uint64_t stallCycles = 0;
};

struct SystemResult
{
    double totalIpc = 0.0; //!< sum of per-core IPC
    double avgMissLatencyNs = 0.0;
    std::vector<CoreStats> cores;
    std::uint64_t networkMessages = 0;
};

/**
 * Trace-driven (synthetic-trace) execution of one workload mix on one
 * switch configuration.
 */
class CmpSystem
{
  public:
    /** Builds a transport once the system's delivery callback is
     *  known (the transport delivers messages back into the tiles). */
    using TransportFactory = std::function<std::unique_ptr<Transport>(
        Transport::DeliverFn)>;

    /** Central-switch system (the paper's main configuration). */
    CmpSystem(const SwitchSpec &switch_spec, const SystemConfig &cfg,
              std::vector<Benchmark> per_core);

    /** System over an arbitrary transport (e.g. a routed topology
     *  for the section VI-E comparison). cfg.switchFreqGhz clocks
     *  the transport. */
    CmpSystem(const TransportFactory &make_net,
              const SystemConfig &cfg,
              std::vector<Benchmark> per_core);

    /** Run for @p core_cycles core cycles (after @p warmup). */
    SystemResult run(std::uint64_t warmup, std::uint64_t core_cycles);

  private:
    struct Txn
    {
        bool inUse = false;
        bool blocking = false;
        bool l2Hit = true;
        std::uint64_t startCoreCycle = 0;
    };

    struct Core
    {
        Benchmark bench;
        std::vector<Txn> txns;
        std::uint32_t outstanding = 0;
        std::uint32_t blockedOn = kNoTxn; //!< txn id or kNoTxn
        std::uint64_t retired = 0;
        std::uint64_t misses = 0;
        std::uint64_t stallCycles = 0;
    };

    static constexpr std::uint32_t kNoTxn = ~0u;

    /** Deferred tile-side completion (L2 access done, DRAM done). */
    struct Event
    {
        enum class Kind { L2Done, MemDone };
        std::uint64_t coreCycle;
        Kind kind;
        Message msg; //!< transaction context
        bool operator>(const Event &o) const
        {
            return coreCycle > o.coreCycle;
        }
    };

    void stepCores();
    void coreCycleOne(std::uint32_t c);
    void onMessage(const Message &m);
    void l2Access(const Message &m);
    void l2Done(const Message &m);
    void memAccess(const Message &m);
    void memDone(const Message &m);
    void l2Respond(const Message &m);
    void finishTxn(const Message &m);
    void dispatchEvents();
    std::uint32_t pickMcTile();

    SystemConfig cfg_;
    std::vector<Core> cores_;
    std::unique_ptr<Transport> net_;
    Rng rng_;

    std::uint64_t coreCycle_ = 0;
    bool counting_ = false;
    std::uint64_t missLatAccumCycles_ = 0;
    std::uint64_t missLatCount_ = 0;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    std::vector<std::uint64_t> l2FreeAt_;  //!< per tile, core cycles
    std::vector<std::uint64_t> mcFreeAt_;  //!< per MC tile index
};

} // namespace hirise::cmp

#endif // HIRISE_CMP_SYSTEM_HH
