/**
 * @file
 * Application workloads for the 64-core system experiments (paper
 * section VI-D, Table VI).
 *
 * Substitution note (DESIGN.md section 2): the paper replays Pin
 * traces of SPEC CPU2006 and four commercial workloads. Those traces
 * are not redistributable, so each benchmark is modeled by a
 * synthetic memory-reference generator parameterized by its
 * misses-per-kilo-instruction (network load) and L2 hit rate. The
 * per-benchmark MPKI values are representative magnitudes; each mix
 * is then scaled so its per-core average MPKI matches the paper's
 * Table VI column exactly.
 */

#ifndef HIRISE_CMP_WORKLOAD_HH
#define HIRISE_CMP_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hirise::cmp {

/** Memory behaviour of one application. */
struct Benchmark
{
    const char *name;
    double mpki;      //!< L1-MPKI + L2-MPKI per core (network load)
    double l2HitRate; //!< fraction of L1 misses that hit in the L2
};

/** Look up a benchmark by name; fatal() if unknown. */
const Benchmark &findBenchmark(const std::string &name);

/** One application slot in a mix: benchmark + instance count. */
struct MixEntry
{
    const char *benchmark;
    std::uint32_t instances;
};

/** A multi-programmed workload (one row of Table VI). */
struct Mix
{
    const char *name;
    std::vector<MixEntry> entries;
    double paperAvgMpki; //!< Table VI "avg. MPKI" column
};

/** The paper's eight mixes. */
const std::vector<Mix> &paperMixes();

/** Per-core assignment of a mix to @p cores cores. Entries are
 *  interleaved across cores (allocation is random/oblivious in the
 *  paper; interleaving is the deterministic equivalent). The MPKI of
 *  every core is scaled so the mix average equals paperAvgMpki. */
std::vector<Benchmark> assignMix(const Mix &mix, std::uint32_t cores);

} // namespace hirise::cmp

#endif // HIRISE_CMP_WORKLOAD_HH
