/**
 * @file
 * Interconnect abstraction for the 64-core system: the central
 * switch (MsgSwitch) and routed topologies (GraphTransport over a
 * noc::Topology) both move Messages between tiles, so the CMP model
 * can compare Hi-Rise against mesh / flattened-butterfly networks
 * (paper section VI-E discussion).
 */

#ifndef HIRISE_CMP_TRANSPORT_HH
#define HIRISE_CMP_TRANSPORT_HH

#include <functional>
#include <memory>

#include "cmp/message.hh"

namespace hirise::cmp {

/** Closed-loop message mover clocked by the system. */
class Transport
{
  public:
    using DeliverFn = std::function<void(const Message &)>;

    virtual ~Transport() = default;

    virtual void send(const Message &m) = 0;
    virtual void step() = 0;
    virtual std::uint64_t messagesDelivered() const = 0;
};

} // namespace hirise::cmp

#endif // HIRISE_CMP_TRANSPORT_HH
