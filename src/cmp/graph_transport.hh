/**
 * @file
 * Routed-topology transport for the CMP system: carries tile-to-tile
 * Messages over a noc::Topology (low-radix mesh or flattened
 * butterfly) via GraphNoc, so application workloads can be run on the
 * discussion-section baselines (paper VI-E).
 */

#ifndef HIRISE_CMP_GRAPH_TRANSPORT_HH
#define HIRISE_CMP_GRAPH_TRANSPORT_HH

#include <unordered_map>

#include "cmp/transport.hh"
#include "noc/graph_noc.hh"

namespace hirise::cmp {

class GraphTransport : public Transport
{
  public:
    GraphTransport(std::shared_ptr<noc::Topology> topo,
                   DeliverFn deliver, std::uint32_t fifo_pkts = 4,
                   std::uint64_t seed = 1);

    void send(const Message &m) override;
    void step() override;
    std::uint64_t
    messagesDelivered() const override
    {
        return delivered_;
    }

  private:
    noc::GraphNoc net_;
    DeliverFn deliver_;
    std::unordered_map<std::uint64_t, Message> inFlight_;
    std::uint64_t nextTag_ = 1;
    std::uint64_t delivered_ = 0;
};

} // namespace hirise::cmp

#endif // HIRISE_CMP_GRAPH_TRANSPORT_HH
