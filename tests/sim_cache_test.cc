/**
 * @file
 * SimCache tests: key stability and sensitivity, hit/miss/stores
 * accounting, LRU eviction, the on-disk tier (round-trip through a
 * fresh cache instance, i.e. a simulated second process run), and
 * version-tag invalidation of stale disk records.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "sim/sim_cache.hh"
#include "sim/sweep.hh"
#include "traffic/pattern.hh"

namespace hirise {
namespace {

sim::SimConfig
quickCfg()
{
    sim::SimConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    cfg.seed = 7;
    return cfg;
}

SwitchSpec
flatSpec(std::uint32_t radix = 16)
{
    SwitchSpec s;
    s.topo = Topology::Flat2D;
    s.radix = radix;
    s.arb = ArbScheme::Lrg;
    return s;
}

sim::PatternFactory
uniformFactory(std::uint32_t radix)
{
    return [radix] {
        return std::make_shared<traffic::UniformRandom>(radix);
    };
}

sim::SimResult
makeResult(double accepted)
{
    sim::SimResult r;
    r.offeredFlitsPerCycle = 1.0;
    r.acceptedFlitsPerCycle = accepted;
    r.avgLatencyCycles = 12.5;
    r.p99LatencyCycles = 40.0;
    r.avgQueueingCycles = 3.25;
    r.fairness = 0.875;
    r.packetsDelivered = 1234;
    r.inFlightAtMeasureEnd = 17;
    r.latencyOverflowPackets = 3;
    r.perInputLatency = {1.0, 2.0, 3.0};
    r.perInputThroughput = {0.5, 0.25};
    return r;
}

void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.offeredFlitsPerCycle, b.offeredFlitsPerCycle);
    EXPECT_EQ(a.acceptedFlitsPerCycle, b.acceptedFlitsPerCycle);
    EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
    EXPECT_EQ(a.p99LatencyCycles, b.p99LatencyCycles);
    EXPECT_EQ(a.avgQueueingCycles, b.avgQueueingCycles);
    EXPECT_EQ(a.fairness, b.fairness);
    EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
    EXPECT_EQ(a.inFlightAtMeasureEnd, b.inFlightAtMeasureEnd);
    EXPECT_EQ(a.latencyOverflowPackets, b.latencyOverflowPackets);
    EXPECT_EQ(a.perInputLatency, b.perInputLatency);
    EXPECT_EQ(a.perInputThroughput, b.perInputThroughput);
}

/** Unique per-test scratch dir under the build tree. */
std::string
scratchDir(const char *tag)
{
    std::string dir = std::string("simcache_test_") + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(SimCacheKey, StableForEqualInputs)
{
    auto cfg = quickCfg();
    auto k1 = sim::SimCache::key(flatSpec(), cfg, "uniform-random/r16");
    auto k2 = sim::SimCache::key(flatSpec(), cfg, "uniform-random/r16");
    EXPECT_EQ(k1, k2);
}

TEST(SimCacheKey, SensitiveToEveryRelevantField)
{
    auto cfg = quickCfg();
    auto base = sim::SimCache::key(flatSpec(), cfg, "p");

    SwitchSpec s2 = flatSpec();
    s2.radix = 17;
    EXPECT_NE(sim::SimCache::key(s2, cfg, "p"), base);

    SwitchSpec s3 = flatSpec();
    s3.flitBits = 64;
    EXPECT_NE(sim::SimCache::key(s3, cfg, "p"), base);

    auto cfg2 = cfg;
    cfg2.seed = 8;
    EXPECT_NE(sim::SimCache::key(flatSpec(), cfg2, "p"), base);

    auto cfg3 = cfg;
    cfg3.injectionRate = 0.5;
    EXPECT_NE(sim::SimCache::key(flatSpec(), cfg3, "p"), base);

    auto cfg4 = cfg;
    cfg4.measureCycles += 1;
    EXPECT_NE(sim::SimCache::key(flatSpec(), cfg4, "p"), base);

    EXPECT_NE(sim::SimCache::key(flatSpec(), cfg, "q"), base);
}

// Regression: the key hashed doubles via their raw bit pattern, so
// -0.0 and +0.0 — equal injection rates as far as the simulator is
// concerned, and both producible by sweep arithmetic like
// `lo + t * (hi - lo)` — landed in different cache entries.
TEST(SimCacheKey, NegativeZeroAndPositiveZeroCollide)
{
    auto cfg_pos = quickCfg();
    cfg_pos.injectionRate = 0.0;
    auto cfg_neg = quickCfg();
    cfg_neg.injectionRate = -0.0;
    EXPECT_EQ(sim::SimCache::key(flatSpec(), cfg_pos, "p"),
              sim::SimCache::key(flatSpec(), cfg_neg, "p"));
}

TEST(SimCacheKeyDeathTest, NanInjectionRateIsRejected)
{
    auto cfg = quickCfg();
    cfg.injectionRate = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(
        { (void)sim::SimCache::key(flatSpec(), cfg, "p"); },
        "NaN in simulation cache key");
}

TEST(SimCache, HitMissAccounting)
{
    sim::SimCache cache(8);
    sim::SimResult out;
    EXPECT_FALSE(cache.lookup(1, &out));
    cache.store(1, makeResult(0.5));
    EXPECT_TRUE(cache.lookup(1, &out));
    EXPECT_EQ(out.acceptedFlitsPerCycle, 0.5);
    EXPECT_FALSE(cache.lookup(2, &out));

    auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 1.0 / 3.0);

    cache.resetStats();
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SimCache, LruEvictsOldestEntry)
{
    sim::SimCache cache(2);
    cache.store(1, makeResult(0.1));
    cache.store(2, makeResult(0.2));
    sim::SimResult out;
    EXPECT_TRUE(cache.lookup(1, &out)); // 1 becomes most recent
    cache.store(3, makeResult(0.3));    // evicts 2
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup(1, &out));
    EXPECT_FALSE(cache.lookup(2, &out));
    EXPECT_TRUE(cache.lookup(3, &out));
}

TEST(SimCache, DiskRoundTripAcrossInstances)
{
    std::string dir = scratchDir("roundtrip");
    sim::SimResult want = makeResult(0.75);
    {
        sim::SimCache writer(8, dir);
        ASSERT_TRUE(writer.diskEnabled());
        writer.store(99, want);
    }
    // A fresh instance (empty memory tier) must serve it from disk.
    sim::SimCache reader(8, dir);
    sim::SimResult out;
    ASSERT_TRUE(reader.lookup(99, &out));
    expectSameResult(out, want);
    auto s = reader.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.diskHits, 1u);

    // The disk hit was promoted into memory: a second lookup hits
    // the memory tier.
    ASSERT_TRUE(reader.lookup(99, &out));
    EXPECT_EQ(reader.stats().diskHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(SimCache, VersionTagInvalidatesStaleRecords)
{
    std::string dir = scratchDir("version");
    {
        sim::SimCache writer(8, dir, /*version=*/1);
        writer.store(7, makeResult(0.5));
    }
    // Same dir, bumped version: the old record is a miss, and a
    // store overwrites it with the new tag.
    sim::SimCache bumped(8, dir, /*version=*/2);
    sim::SimResult out;
    EXPECT_FALSE(bumped.lookup(7, &out));
    bumped.store(7, makeResult(0.9));

    sim::SimCache reader(8, dir, /*version=*/2);
    ASSERT_TRUE(reader.lookup(7, &out));
    EXPECT_EQ(out.acceptedFlitsPerCycle, 0.9);
    std::filesystem::remove_all(dir);
}

TEST(SimCache, CorruptRecordIsAMiss)
{
    std::string dir = scratchDir("corrupt");
    sim::SimCache cache(8, dir);
    cache.store(5, makeResult(0.5));

    // Truncate the record behind the cache's back; a fresh instance
    // must treat it as a miss rather than crash or return garbage.
    std::string path;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        path = e.path().string();
    ASSERT_FALSE(path.empty());
    std::filesystem::resize_file(path, 10);

    sim::SimCache reader(8, dir);
    sim::SimResult out;
    EXPECT_FALSE(reader.lookup(5, &out));
    std::filesystem::remove_all(dir);
}

TEST(RunAtLoadCached, SecondCallIsServedFromCache)
{
    sim::SimCache cache(32);
    auto spec = flatSpec();
    auto cfg = quickCfg();
    auto r1 = sim::runAtLoadCached(spec, cfg, uniformFactory(16), 0.2,
                                   &cache);
    auto r2 = sim::runAtLoadCached(spec, cfg, uniformFactory(16), 0.2,
                                   &cache);
    expectSameResult(r1, r2);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.stores, 1u);

    // And the cached value matches an uncached run exactly.
    auto fresh = sim::runAtLoad(spec, cfg, uniformFactory(16), 0.2);
    expectSameResult(r2, fresh);
}

TEST(SimCacheDisk, EvictionEnforcesSizeCap)
{
    std::string dir = scratchDir("evict");
    // ~200 bytes per record; cap at roughly 5 records' worth.
    sim::SimCache cache(4, dir, sim::kSimCacheVersion, 1000);
    ASSERT_TRUE(cache.diskEnabled());
    for (std::uint64_t k = 1; k <= 40; ++k)
        cache.store(k, makeResult(0.01 * double(k)));
    ASSERT_TRUE(cache.evictDisk(/*wait=*/true));

    std::uint64_t total = 0;
    std::size_t records = 0;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        if (ent.path().extension() == ".simres") {
            total += ent.file_size();
            ++records;
        }
    }
    EXPECT_LE(total, 1000u);
    EXPECT_GT(records, 0u); // eviction trims, never empties

    // Survivors still read back intact through a fresh instance.
    sim::SimCache reader(4, dir, sim::kSimCacheVersion, 1000);
    std::size_t readable = 0;
    for (std::uint64_t k = 1; k <= 40; ++k) {
        sim::SimResult out;
        if (reader.lookup(k, &out)) {
            expectSameResult(out, makeResult(0.01 * double(k)));
            ++readable;
        }
    }
    EXPECT_EQ(readable, records);
    std::filesystem::remove_all(dir);
}

TEST(SimCacheDisk, StaleTmpFilesAreCollected)
{
    std::string dir = scratchDir("tmpgc");
    sim::SimCache cache(4, dir, sim::kSimCacheVersion, 1 << 20);
    cache.store(1, makeResult(0.5));

    // A crashed writer's leftover, backdated past the GC threshold.
    std::string stale = dir + "/00000000000000ff.simres.tmp.123";
    {
        std::ofstream f(stale, std::ios::binary);
        f << "partial";
    }
    std::filesystem::last_write_time(
        stale, std::filesystem::file_time_type::clock::now() -
                   std::chrono::hours(1));
    // A fresh one must survive (it could be a live writer's).
    std::string fresh = dir + "/00000000000000fe.simres.tmp.456";
    {
        std::ofstream f(fresh, std::ios::binary);
        f << "partial";
    }

    ASSERT_TRUE(cache.evictDisk(/*wait=*/true));
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_TRUE(std::filesystem::exists(fresh));
    sim::SimResult out;
    EXPECT_TRUE(cache.lookup(1, &out));
    std::filesystem::remove_all(dir);
}

TEST(SimCacheDisk, TwoThreadsRacingTheSameKeyStayConsistent)
{
    // Two cache instances over one directory model two daemons
    // sharing HIRISE_SIMCACHE_DIR: one keeps (re)storing a key and
    // kicking eviction passes, the other keeps reading it. Every
    // successful read must return the exact record — never a torn or
    // partially-evicted one. flock() locks belong to the open file
    // description, so the two threads' separate descriptors contend
    // exactly like two processes would.
    std::string dir = scratchDir("race");
    sim::SimResult want = makeResult(0.625);
    constexpr std::uint64_t kKey = 42;
    constexpr int kIters = 300;

    std::atomic<bool> fail{false};
    std::thread writer([&] {
        sim::SimCache mine(2, dir, sim::kSimCacheVersion, 4096);
        for (int i = 0; i < kIters; ++i) {
            mine.store(kKey, want);
            mine.evictDisk(/*wait=*/false);
        }
    });
    std::thread reader([&] {
        sim::SimCache mine(1, dir, sim::kSimCacheVersion, 4096);
        for (int i = 0; i < kIters; ++i) {
            // Keep a second key churning so the reader's memory tier
            // (capacity 1) keeps dropping kKey and re-reading disk.
            mine.store(7, makeResult(0.125));
            sim::SimResult out;
            if (mine.lookup(kKey, &out) &&
                (out.acceptedFlitsPerCycle !=
                     want.acceptedFlitsPerCycle ||
                 out.perInputLatency != want.perInputLatency)) {
                fail.store(true);
                return;
            }
        }
    });
    writer.join();
    reader.join();
    EXPECT_FALSE(fail.load()) << "torn read under store/evict race";

    // After the dust settles the record reads back exactly.
    sim::SimCache check(2, dir, sim::kSimCacheVersion, 4096);
    sim::SimResult out;
    check.store(kKey, want); // re-store in case eviction removed it
    ASSERT_TRUE(check.lookup(kKey, &out));
    expectSameResult(out, want);
    std::filesystem::remove_all(dir);
}

TEST(RunAtLoadCached, DistinctPatternsDoNotCollide)
{
    sim::SimCache cache(32);
    auto cfg = quickCfg();
    auto spec = flatSpec();
    auto hot = [] {
        return std::make_shared<traffic::Hotspot>(16, 3);
    };
    auto r_uni = sim::runAtLoadCached(spec, cfg, uniformFactory(16),
                                      0.2, &cache);
    auto r_hot = sim::runAtLoadCached(spec, cfg, hot, 0.2, &cache);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_NE(r_uni.acceptedFlitsPerCycle, r_hot.acceptedFlitsPerCycle);
}

} // namespace
} // namespace hirise
