/**
 * @file
 * Campaign-engine determinism tests: the same load sweep and
 * saturation search must produce bit-identical results for any pool
 * size (1, 2, 8), and the speculative bisection must return exactly
 * the serial bisection's answer on the paper's switch configurations.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "sim/sweep.hh"
#include "traffic/pattern.hh"

namespace hirise {
namespace {

sim::SimConfig
quickCfg(std::uint64_t seed = 7)
{
    sim::SimConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    cfg.seed = seed;
    return cfg;
}

SwitchSpec
flat64()
{
    SwitchSpec s;
    s.topo = Topology::Flat2D;
    s.radix = 64;
    s.arb = ArbScheme::Lrg;
    return s;
}

SwitchSpec
hirise64(std::uint32_t channels, ArbScheme arb = ArbScheme::Clrg)
{
    SwitchSpec s;
    s.topo = Topology::HiRise;
    s.radix = 64;
    s.layers = 4;
    s.channels = channels;
    s.arb = arb;
    return s;
}

sim::PatternFactory
uniformFactory(std::uint32_t radix)
{
    return [radix] {
        return std::make_shared<traffic::UniformRandom>(radix);
    };
}

void
expectBitIdentical(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.offeredFlitsPerCycle, b.offeredFlitsPerCycle);
    EXPECT_EQ(a.acceptedFlitsPerCycle, b.acceptedFlitsPerCycle);
    EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
    EXPECT_EQ(a.p99LatencyCycles, b.p99LatencyCycles);
    EXPECT_EQ(a.avgQueueingCycles, b.avgQueueingCycles);
    EXPECT_EQ(a.fairness, b.fairness);
    EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
    EXPECT_EQ(a.inFlightAtMeasureEnd, b.inFlightAtMeasureEnd);
    EXPECT_EQ(a.latencyOverflowPackets, b.latencyOverflowPackets);
    EXPECT_EQ(a.perInputLatency, b.perInputLatency);
    EXPECT_EQ(a.perInputThroughput, b.perInputThroughput);
}

TEST(Campaign, LoadSweepIsThreadCountInvariant)
{
    const std::vector<double> loads{0.05, 0.1, 0.15, 0.2, 0.25};
    const auto spec = hirise64(4);
    const auto cfg = quickCfg();

    // Pool size 1 is the reference; 2 and 8 must match bit for bit.
    // Each run gets a private cache so every point actually executes.
    std::vector<std::vector<sim::SweepPoint>> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        sim::SimCache cache(64);
        sim::CampaignOptions opt;
        opt.pool = &pool;
        opt.cache = &cache;
        runs.push_back(sim::loadSweep(spec, cfg, uniformFactory(64),
                                      loads, opt));
        EXPECT_EQ(cache.stats().misses, loads.size());
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (std::size_t i = 0; i < loads.size(); ++i) {
            EXPECT_EQ(runs[r][i].load, runs[0][i].load);
            expectBitIdentical(runs[r][i].result, runs[0][i].result);
        }
    }
}

TEST(Campaign, ShardedSeedingIsThreadCountInvariant)
{
    const std::vector<double> loads{0.1, 0.1, 0.1, 0.1};
    const auto spec = flat64();
    const auto cfg = quickCfg();

    std::vector<std::vector<sim::SweepPoint>> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        sim::SimCache cache(64);
        sim::CampaignOptions opt;
        opt.pool = &pool;
        opt.cache = &cache;
        opt.shardSeeds = true;
        runs.push_back(sim::loadSweep(spec, cfg, uniformFactory(64),
                                      loads, opt));
    }
    // Shard seeds differ per index, so equal loads give different
    // results within one run...
    EXPECT_NE(runs[0][0].result.acceptedFlitsPerCycle,
              runs[0][1].result.acceptedFlitsPerCycle);
    // ...but each index is identical across thread counts.
    for (std::size_t r = 1; r < runs.size(); ++r)
        for (std::size_t i = 0; i < loads.size(); ++i)
            expectBitIdentical(runs[r][i].result, runs[0][i].result);
}

TEST(Campaign, SpeculativeSaturationMatchesSerialBisection)
{
    // The Table IV / Table V simulated configurations.
    const std::vector<SwitchSpec> specs{
        flat64(), hirise64(4), hirise64(2), hirise64(1),
        hirise64(4, ArbScheme::LayerLrg)};
    const auto cfg = quickCfg();

    for (const auto &spec : specs) {
        double serial = sim::saturationLoad(spec, cfg,
                                            uniformFactory(64), 0.0,
                                            0.5, 8);
        for (int depth : {1, 2, 3}) {
            ThreadPool pool(4);
            sim::SimCache cache(256);
            sim::CampaignOptions opt;
            opt.pool = &pool;
            opt.cache = &cache;
            double spec_load = sim::saturationLoadSpeculative(
                spec, cfg, uniformFactory(64), 0.0, 0.5, 8, depth,
                opt);
            EXPECT_EQ(spec_load, serial)
                << spec.name() << " depth=" << depth;
        }
    }
}

TEST(Campaign, SpeculativeSearchCachesCutRepeatCost)
{
    // A repeated speculative search with the same cache must be
    // served entirely from memory: the warm-path critical cost is
    // hash lookups, not simulations.
    ThreadPool pool(2);
    sim::SimCache cache(256);
    sim::CampaignOptions opt;
    opt.pool = &pool;
    opt.cache = &cache;
    const auto spec = flat64();
    const auto cfg = quickCfg();

    double first = sim::saturationLoadSpeculative(
        spec, cfg, uniformFactory(64), 0.0, 0.5, 8, 2, opt);
    auto cold = cache.stats();
    EXPECT_GT(cold.misses, 0u);

    cache.resetStats();
    double second = sim::saturationLoadSpeculative(
        spec, cfg, uniformFactory(64), 0.0, 0.5, 8, 2, opt);
    auto warm = cache.stats();
    EXPECT_EQ(first, second);
    EXPECT_EQ(warm.misses, 0u);
    EXPECT_GT(warm.hits, 0u);
}

TEST(Campaign, SpeculativeDepthOneDegeneratesToSerialSchedule)
{
    // Depth 1 evaluates exactly one midpoint per round: the same
    // simulation count as serial bisection (no wasted speculation).
    ThreadPool pool(2);
    sim::SimCache cache(64);
    sim::CampaignOptions opt;
    opt.pool = &pool;
    opt.cache = &cache;
    sim::saturationLoadSpeculative(flat64(), quickCfg(),
                                   uniformFactory(64), 0.0, 0.5, 6, 1,
                                   opt);
    EXPECT_EQ(cache.stats().misses, 6u);
}

} // namespace
} // namespace hirise
